// Ablation studies of the design choices DESIGN.md calls out:
//
//  1. Cost of determinism: linearHash-D vs linearHash-ND inserts, by load —
//     isolates the priority-swap overhead.
//  2. Cost of combining: deterministic pair inserts with duplicate keys,
//     full-entry 16-byte CAS (D) vs in-place value merge (ND), by
//     duplication rate.
//  3. Find early-exit: the ordering invariant lets linearHash-D finds stop
//     early on ABSENT keys; ND must scan to an empty slot.
//  4. Growable overhead: growable_table vs pre-sized deterministic_table.
//  5. Phase-check overhead: checked_phases vs unchecked_phases.
//  6. Tombstone deletion (Gao et al., §2) vs back-shift deletion under
//     churn: find cost after repeated insert/delete phases.
//  7. Automatic phasing via room synchronizations (auto_phased_table, the
//     paper's future-work item) vs caller-separated phases.
//  8. Batched operations with software prefetch (core/batch_ops.h) vs plain
//     per-op loops — memory-level parallelism for the phase-batch pattern.
#include <optional>

#include "bench_common.h"
#include "phch/core/auto_phased_table.h"
#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/growable_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/tombstone_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"

using namespace phch;
using namespace phch::bench;

int main() {
  const std::size_t n = scaled_size(1000000);
  std::printf("Ablations (n = %zu, threads = %d)\n", n, num_workers());

  // 1. determinism cost by load
  {
    std::printf("\n--- priority-swap overhead (insert, uniform keys) ---\n");
    std::printf("  %6s %14s %14s %8s\n", "load", "linearHash-D", "linearHash-ND",
                "D/ND");
    for (const double load : {0.1, 0.33, 0.6, 0.8}) {
      const std::size_t cap = round_up_pow2(static_cast<std::size_t>(n / load));
      const auto keys = workloads::random_int_seq(n, 1);
      std::optional<deterministic_table<int_entry<>>> td;
      const double d = time_median(
          [&] { td.emplace(cap); },
          [&] { parallel_for(0, n, [&](std::size_t i) { td->insert(keys[i]); }); });
      std::optional<nd_linear_table<int_entry<>>> tn;
      const double nd = time_median(
          [&] { tn.emplace(cap); },
          [&] { parallel_for(0, n, [&](std::size_t i) { tn->insert(keys[i]); }); });
      std::printf("  %6.2f %12.3f s %12.3f s %8.2f\n", load, d, nd, d / nd);
    }
  }

  // 2. combining cost by duplication
  {
    std::printf("\n--- duplicate-key combining: 16B CAS (D) vs in-place xadd (ND) ---\n");
    std::printf("  %10s %14s %14s %8s\n", "distinct", "D (CAS pair)", "ND (xadd)",
                "D/ND");
    for (const std::size_t distinct : {n, n / 10, n / 100, n / 1000}) {
      const std::size_t cap = round_up_pow2(3 * n);
      std::optional<deterministic_table<pair_entry<combine_add>>> td;
      const double d = time_median(
          [&] { td.emplace(cap); },
          [&] {
            parallel_for(0, n, [&](std::size_t i) {
              td->insert(kv64{1 + hash64(i) % distinct, 1});
            });
          });
      std::optional<nd_linear_table<pair_entry<combine_add>>> tn;
      const double nd = time_median(
          [&] { tn.emplace(cap); },
          [&] {
            parallel_for(0, n, [&](std::size_t i) {
              tn->insert(kv64{1 + hash64(i) % distinct, 1});
            });
          });
      std::printf("  %10zu %12.3f s %12.3f s %8.2f\n", distinct, d, nd, d / nd);
    }
  }

  // 3. absent-key find early exit
  {
    std::printf("\n--- find of ABSENT keys: ordering-invariant early exit ---\n");
    const std::size_t cap = round_up_pow2(2 * n);
    deterministic_table<int_entry<>> td(cap);
    nd_linear_table<int_entry<>> tn(cap);
    parallel_for(0, n, [&](std::size_t i) { td.insert(2 * (hash64(i) % n) + 2); });
    parallel_for(0, n, [&](std::size_t i) { tn.insert(2 * (hash64(i) % n) + 2); });
    std::vector<std::uint8_t> sink(n);
    const double d = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) {
        sink[i] = td.contains(2 * (hash64(i) % n) + 1);  // all odd: absent
      });
    });
    const double nd = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) {
        sink[i] = tn.contains(2 * (hash64(i) % n) + 1);
      });
    });
    std::printf("  linearHash-D  %8.3f s\n  linearHash-ND %8.3f s  (D/ND %.2f; the\n"
                "  paper notes absent-key finds can be *cheaper* than standard probing)\n",
                d, nd, d / nd);
  }

  // 4. growable vs pre-sized
  {
    std::printf("\n--- resizing overhead: growable_table vs pre-sized table ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    std::optional<deterministic_table<int_entry<>>> fixed;
    const double f = time_median(
        [&] { fixed.emplace(round_up_pow2(3 * n)); },
        [&] { parallel_for(0, n, [&](std::size_t i) { fixed->insert(keys[i]); }); });
    std::optional<growable_table<int_entry<>>> grow;
    const double g = time_median(
        [&] { grow.emplace(1024); },
        [&] { parallel_for(0, n, [&](std::size_t i) { grow->insert(keys[i]); }); });
    std::printf("  pre-sized %8.3f s, growable-from-1024 %8.3f s (overhead %.2fx, "
                "%zu growths)\n", f, g, g / f, grow->growth_count());
  }

  // 5. phase-check overhead
  {
    std::printf("\n--- checked_phases overhead (debug feature) ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> plain;
    const double p = time_median(
        [&] { plain.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { plain->insert(keys[i]); }); });
    std::optional<deterministic_table<int_entry<>, checked_phases>> chk;
    const double c = time_median(
        [&] { chk.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { chk->insert(keys[i]); }); });
    std::printf("  unchecked %8.3f s, checked %8.3f s (%.2fx)\n", p, c, c / p);
  }

  // 6. tombstones vs back-shift under churn
  {
    std::printf("\n--- deletion strategy under churn: tombstones vs back-shift ---\n");
    const std::size_t live = n / 8;
    const std::size_t cap = round_up_pow2(4 * live);
    tombstone_table<int_entry<>> tomb(cap);
    nd_linear_table<int_entry<>> shift(cap);
    std::printf("  %8s %14s %14s %16s\n", "round", "tombstone find", "backshift find",
                "tomb footprint");
    std::vector<std::uint8_t> sink(live);
    for (int round = 0; round < 5; ++round) {
      const auto keys = tabulate(live, [&](std::size_t i) {
        return 1 + hash64(static_cast<std::uint64_t>(round) * live + i) % (1ULL << 40);
      });
      parallel_for(0, live, [&](std::size_t i) { tomb.insert(keys[i]); });
      parallel_for(0, live, [&](std::size_t i) { shift.insert(keys[i]); });
      const double tf = time_once([&] {
        parallel_for(0, live, [&](std::size_t i) { sink[i] = tomb.contains(keys[i]); });
      });
      const double sf = time_once([&] {
        parallel_for(0, live, [&](std::size_t i) { sink[i] = shift.contains(keys[i]); });
      });
      std::printf("  %8d %12.4f s %12.4f s %15zu\n", round, tf, sf, tomb.footprint());
      parallel_for(0, live, [&](std::size_t i) { tomb.erase(keys[i]); });
      parallel_for(0, live, [&](std::size_t i) { shift.erase(keys[i]); });
    }
    std::printf("  (tombstone finds degrade as garbage accumulates; back-shift stays flat)\n");
  }

  // 7. automatic phasing overhead
  {
    std::printf("\n--- room-synchronized automatic phasing vs caller phases ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> raw;
    const double r = time_median(
        [&] { raw.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { raw->insert(keys[i]); }); });
    std::optional<auto_phased_table<deterministic_table<int_entry<>>>> ap;
    const double a = time_median(
        [&] { ap.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { ap->insert(keys[i]); }); });
    std::printf("  caller-phased %8.3f s, auto-phased %8.3f s (%.2fx; single-class\n"
                "  streams pay only the room fast path)\n", r, a, a / r);
  }

  // 8. prefetched batches vs per-op loops
  {
    std::printf("\n--- batched ops with software prefetch vs plain loops ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> t;
    const double plain_ins = time_median(
        [&] { t.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { t->insert(keys[i]); }); });
    const double batch_ins = time_median(
        [&] { t.emplace(cap); }, [&] { insert_batch(*t, keys); });
    std::vector<std::uint8_t> sink(n);
    const double plain_find = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) { sink[i] = t->contains(keys[i]); });
    });
    double batch_find;
    {
      std::vector<std::uint64_t> found_values;
      batch_find = time_median([] {}, [&] { found_values = find_batch(*t, keys); });
    }
    std::printf("  insert: plain %8.3f s, batch %8.3f s (%.2fx)\n", plain_ins, batch_ins,
                plain_ins / batch_ins);
    std::printf("  find:   plain %8.3f s, batch %8.3f s (%.2fx)\n", plain_find,
                batch_find, plain_find / batch_find);
  }
  return 0;
}
