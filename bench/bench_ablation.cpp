// Ablation studies of the design choices DESIGN.md calls out:
//
//  1. Cost of determinism: linearHash-D vs linearHash-ND inserts, by load —
//     isolates the priority-swap overhead.
//  2. Cost of combining: deterministic pair inserts with duplicate keys,
//     full-entry 16-byte CAS (D) vs in-place value merge (ND), by
//     duplication rate.
//  3. Find early-exit: the ordering invariant lets linearHash-D finds stop
//     early on ABSENT keys; ND must scan to an empty slot.
//  4. Growable overhead: growable_table vs pre-sized deterministic_table.
//  5. Phase-check overhead: checked_phases vs unchecked_phases.
//  6. Tombstone deletion (Gao et al., §2) vs back-shift deletion under
//     churn: find cost after repeated insert/delete phases.
//  7. Automatic phasing via room synchronizations (auto_phased_table, the
//     paper's future-work item) vs caller-separated phases.
//  8. Batched operations with software prefetch (core/batch_ops.h) vs plain
//     per-op loops — memory-level parallelism for the phase-batch pattern.
//  9. Phase-epoch runtime: room-transition cost on mixed auto_phased
//     streams (single-class vs alternating-class, telemetry on/off when
//     compiled) and deferred vs immediate reclamation on a growth-heavy
//     insert loop. This section also writes BENCH_phase.json (or argv[1])
//     for the CI artifact.
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "phch/core/auto_phased_table.h"
#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/growable_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/tombstone_table.h"
#include "phch/obs/export.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/reclaim.h"
#include "phch/workloads/sequences.h"

using namespace phch;
using namespace phch::bench;

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_phase.json";
  const std::size_t n = scaled_size(1000000);
  std::printf("Ablations (n = %zu, threads = %d)\n", n, num_workers());

  // 1. determinism cost by load
  {
    std::printf("\n--- priority-swap overhead (insert, uniform keys) ---\n");
    std::printf("  %6s %14s %14s %8s\n", "load", "linearHash-D", "linearHash-ND",
                "D/ND");
    for (const double load : {0.1, 0.33, 0.6, 0.8}) {
      const std::size_t cap = round_up_pow2(static_cast<std::size_t>(n / load));
      const auto keys = workloads::random_int_seq(n, 1);
      std::optional<deterministic_table<int_entry<>>> td;
      const double d = time_median(
          [&] { td.emplace(cap); },
          [&] { parallel_for(0, n, [&](std::size_t i) { td->insert(keys[i]); }); });
      std::optional<nd_linear_table<int_entry<>>> tn;
      const double nd = time_median(
          [&] { tn.emplace(cap); },
          [&] { parallel_for(0, n, [&](std::size_t i) { tn->insert(keys[i]); }); });
      std::printf("  %6.2f %12.3f s %12.3f s %8.2f\n", load, d, nd, d / nd);
    }
  }

  // 2. combining cost by duplication
  {
    std::printf("\n--- duplicate-key combining: 16B CAS (D) vs in-place xadd (ND) ---\n");
    std::printf("  %10s %14s %14s %8s\n", "distinct", "D (CAS pair)", "ND (xadd)",
                "D/ND");
    for (const std::size_t distinct : {n, n / 10, n / 100, n / 1000}) {
      const std::size_t cap = round_up_pow2(3 * n);
      std::optional<deterministic_table<pair_entry<combine_add>>> td;
      const double d = time_median(
          [&] { td.emplace(cap); },
          [&] {
            parallel_for(0, n, [&](std::size_t i) {
              td->insert(kv64{1 + hash64(i) % distinct, 1});
            });
          });
      std::optional<nd_linear_table<pair_entry<combine_add>>> tn;
      const double nd = time_median(
          [&] { tn.emplace(cap); },
          [&] {
            parallel_for(0, n, [&](std::size_t i) {
              tn->insert(kv64{1 + hash64(i) % distinct, 1});
            });
          });
      std::printf("  %10zu %12.3f s %12.3f s %8.2f\n", distinct, d, nd, d / nd);
    }
  }

  // 3. absent-key find early exit
  {
    std::printf("\n--- find of ABSENT keys: ordering-invariant early exit ---\n");
    const std::size_t cap = round_up_pow2(2 * n);
    deterministic_table<int_entry<>> td(cap);
    nd_linear_table<int_entry<>> tn(cap);
    parallel_for(0, n, [&](std::size_t i) { td.insert(2 * (hash64(i) % n) + 2); });
    parallel_for(0, n, [&](std::size_t i) { tn.insert(2 * (hash64(i) % n) + 2); });
    std::vector<std::uint8_t> sink(n);
    const double d = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) {
        sink[i] = td.contains(2 * (hash64(i) % n) + 1);  // all odd: absent
      });
    });
    const double nd = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) {
        sink[i] = tn.contains(2 * (hash64(i) % n) + 1);
      });
    });
    std::printf("  linearHash-D  %8.3f s\n  linearHash-ND %8.3f s  (D/ND %.2f; the\n"
                "  paper notes absent-key finds can be *cheaper* than standard probing)\n",
                d, nd, d / nd);
  }

  // 4. growable vs pre-sized
  {
    std::printf("\n--- resizing overhead: growable_table vs pre-sized table ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    std::optional<deterministic_table<int_entry<>>> fixed;
    const double f = time_median(
        [&] { fixed.emplace(round_up_pow2(3 * n)); },
        [&] { parallel_for(0, n, [&](std::size_t i) { fixed->insert(keys[i]); }); });
    std::optional<growable_table<int_entry<>>> grow;
    const double g = time_median(
        [&] { grow.emplace(1024); },
        [&] { parallel_for(0, n, [&](std::size_t i) { grow->insert(keys[i]); }); });
    std::printf("  pre-sized %8.3f s, growable-from-1024 %8.3f s (overhead %.2fx, "
                "%zu growths)\n", f, g, g / f, grow->growth_count());
  }

  // 5. phase-check overhead
  {
    std::printf("\n--- checked_phases overhead (debug feature) ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> plain;
    const double p = time_median(
        [&] { plain.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { plain->insert(keys[i]); }); });
    std::optional<deterministic_table<int_entry<>, checked_phases>> chk;
    const double c = time_median(
        [&] { chk.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { chk->insert(keys[i]); }); });
    std::printf("  unchecked %8.3f s, checked %8.3f s (%.2fx)\n", p, c, c / p);
  }

  // 6. tombstones vs back-shift under churn
  {
    std::printf("\n--- deletion strategy under churn: tombstones vs back-shift ---\n");
    const std::size_t live = n / 8;
    const std::size_t cap = round_up_pow2(4 * live);
    tombstone_table<int_entry<>> tomb(cap);
    nd_linear_table<int_entry<>> shift(cap);
    std::printf("  %8s %14s %14s %16s\n", "round", "tombstone find", "backshift find",
                "tomb footprint");
    std::vector<std::uint8_t> sink(live);
    for (int round = 0; round < 5; ++round) {
      const auto keys = tabulate(live, [&](std::size_t i) {
        return 1 + hash64(static_cast<std::uint64_t>(round) * live + i) % (1ULL << 40);
      });
      parallel_for(0, live, [&](std::size_t i) { tomb.insert(keys[i]); });
      parallel_for(0, live, [&](std::size_t i) { shift.insert(keys[i]); });
      const double tf = time_once([&] {
        parallel_for(0, live, [&](std::size_t i) { sink[i] = tomb.contains(keys[i]); });
      });
      const double sf = time_once([&] {
        parallel_for(0, live, [&](std::size_t i) { sink[i] = shift.contains(keys[i]); });
      });
      std::printf("  %8d %12.4f s %12.4f s %15zu\n", round, tf, sf, tomb.footprint());
      parallel_for(0, live, [&](std::size_t i) { tomb.erase(keys[i]); });
      parallel_for(0, live, [&](std::size_t i) { shift.erase(keys[i]); });
    }
    std::printf("  (tombstone finds degrade as garbage accumulates; back-shift stays flat)\n");
  }

  // 7. automatic phasing overhead
  {
    std::printf("\n--- room-synchronized automatic phasing vs caller phases ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> raw;
    const double r = time_median(
        [&] { raw.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { raw->insert(keys[i]); }); });
    std::optional<auto_phased_table<deterministic_table<int_entry<>>>> ap;
    const double a = time_median(
        [&] { ap.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { ap->insert(keys[i]); }); });
    std::printf("  caller-phased %8.3f s, auto-phased %8.3f s (%.2fx; single-class\n"
                "  streams pay only the room fast path)\n", r, a, a / r);
  }

  // 8. prefetched batches vs per-op loops
  {
    std::printf("\n--- batched ops with software prefetch vs plain loops ---\n");
    const auto keys = workloads::random_int_seq(n, 1);
    const std::size_t cap = round_up_pow2(3 * n);
    std::optional<deterministic_table<int_entry<>>> t;
    const double plain_ins = time_median(
        [&] { t.emplace(cap); },
        [&] { parallel_for(0, n, [&](std::size_t i) { t->insert(keys[i]); }); });
    const double batch_ins = time_median(
        [&] { t.emplace(cap); }, [&] { insert_batch(*t, keys); });
    std::vector<std::uint8_t> sink(n);
    const double plain_find = time_median([] {}, [&] {
      parallel_for(0, n, [&](std::size_t i) { sink[i] = t->contains(keys[i]); });
    });
    double batch_find;
    {
      std::vector<std::uint64_t> found_values;
      batch_find = time_median([] {}, [&] { found_values = find_batch(*t, keys); });
    }
    std::printf("  insert: plain %8.3f s, batch %8.3f s (%.2fx)\n", plain_ins, batch_ins,
                plain_ins / batch_ins);
    std::printf("  find:   plain %8.3f s, batch %8.3f s (%.2fx)\n", plain_find,
                batch_find, plain_find / batch_find);
  }

  // 9. phase-epoch runtime: room-transition cost and reclamation ablation
  {
    std::printf("\n--- phase-epoch runtime: room transitions and reclamation ---\n");
    const std::size_t m = n / 8;
    const std::size_t cap = round_up_pow2(4 * m);
    const auto keys = workloads::random_int_seq(m, 9);
    using apt = auto_phased_table<deterministic_table<int_entry<>>>;

    // Single-class stream: every operation enters the same room, so the
    // whole run is one phase transition — the room fast path.
    std::optional<apt> t;
    const double single_s = time_median(
        [&] { t.emplace(cap); },
        [&] { parallel_for(0, m, [&](std::size_t i) { t->insert(keys[i]); }); });

    // Alternating-class stream: concurrent inserts and finds with no caller
    // phasing force the rooms to drain and hand over continually — the
    // worst case for automatic phasing, and the stream that prices a room
    // transition. The wrapped table's phase epoch counts the transitions.
    const std::uint64_t waits_before = obs::total(obs::counter::room_waits);
    const auto alternating = [&] {
      parallel_for(0, m, [&](std::size_t i) {
        if ((i & 1) != 0) {
          t->insert(keys[i]);
        } else {
          (void)t->contains(keys[i]);
        }
      });
    };
    const double alt_s = time_median([&] { t.emplace(cap); }, alternating);
    const std::uint64_t transitions = t->underlying().phase_rt().epoch();
    const std::uint64_t room_waits =
        obs::total(obs::counter::room_waits) - waits_before;
    std::printf("  single-class %8.3f s, alternating %8.3f s (%.2fx; final run "
                "crossed %" PRIu64 " phase boundaries)\n",
                single_s, alt_s, alt_s / single_s, transitions);

    // Telemetry cost on the transition-heavy stream (when compiled in, each
    // boundary also feeds a striped counter and the trace ring).
    double tele_on_s = 0.0, tele_off_s = 0.0;
    if (obs::compiled) {
      const bool was = obs::enabled();
      obs::set_enabled(false);
      tele_off_s = time_median([&] { t.emplace(cap); }, alternating);
      obs::set_enabled(true);
      tele_on_s = time_median([&] { t.emplace(cap); }, alternating);
      obs::set_enabled(was);
      std::printf("  alternating w/ telemetry off %8.3f s, on %8.3f s (%.2fx)\n",
                  tele_off_s, tele_on_s, tele_on_s / tele_off_s);
    } else {
      std::printf("  (telemetry compiled out; rebuild with -DPHCH_TELEMETRY=ON "
                  "for the on/off split)\n");
    }

    // Reclamation ablation: growth-heavy inserts with deferred reclamation
    // (production) vs immediate free (the pre-reclaim lifetime discipline).
    // Immediate free is safe *here only* because the stream is insert-only:
    // grow() drains in-flight writers before it retires the old array, and
    // no finds run concurrently, so nobody can still hold the old pointer.
    const auto rs_before = reclaim::stats();
    std::optional<growable_table<int_entry<>>> g;
    const auto grow_insert = [&] {
      parallel_for(0, m, [&](std::size_t i) { g->insert(keys[i]); });
    };
    const double reclaim_deferred_s = time_median([&] { g.emplace(1024); }, grow_insert);
    const bool prev_deferred = reclaim::set_deferred(false);
    const double reclaim_immediate_s = time_median([&] { g.emplace(1024); }, grow_insert);
    reclaim::set_deferred(prev_deferred);
    const auto rs_after = reclaim::stats();
    std::printf("  growable inserts: reclaim deferred %8.3f s, immediate %8.3f s "
                "(%.2fx, %" PRIu64 " arrays retired)\n",
                reclaim_deferred_s, reclaim_immediate_s,
                reclaim_deferred_s / reclaim_immediate_s,
                rs_after.retired - rs_before.retired);

    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"phase_ablation\",\n");
    std::fprintf(f, "  \"n\": %zu,\n  \"threads\": %d,\n", m, num_workers());
    std::fprintf(f,
                 "  \"room\": {\"single_class_s\": %.6f, \"alternating_s\": %.6f, "
                 "\"transitions\": %" PRIu64 ", \"room_waits\": %" PRIu64 "},\n",
                 single_s, alt_s, transitions, room_waits);
    std::fprintf(f,
                 "  \"telemetry\": {\"compiled\": %s, \"off_s\": %.6f, "
                 "\"on_s\": %.6f},\n",
                 obs::compiled ? "true" : "false", tele_off_s, tele_on_s);
    std::fprintf(f,
                 "  \"reclaim\": {\"deferred_s\": %.6f, \"immediate_s\": %.6f, "
                 "\"retired\": %" PRIu64 ", \"freed\": %" PRIu64
                 ", \"pending\": %zu},\n",
                 reclaim_deferred_s, reclaim_immediate_s,
                 rs_after.retired - rs_before.retired,
                 rs_after.freed - rs_before.freed, rs_after.pending);
    std::fprintf(f, "  \"counters\": ");
    obs::write_counters_json(f, obs::snapshot(), "  ");
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path);
  }
  return 0;
}
