// Table 1 (and the data behind Figure 3): Insert / Find-Random /
// Find-Inserted / Delete-Random / Delete-Inserted / Elements for all nine
// hash table implementations across the six PBBS input distributions.
//
// Output: one matrix per distribution, seconds per full pass of n
// operations. The paper ran n = 1e8 on 40 cores; defaults here are scaled
// (see bench_common.h). Shape to verify against the paper:
//   - linearHash-D within ~10% of linearHash-ND on all ops;
//   - both linear tables beat cuckoo, chained and hopscotch on updates;
//   - chainedHash (non-CR) collapses on duplicate-heavy inputs.
#include <optional>

#include "bench_common.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

struct six_ops {
  double insert = 0, find_rand = 0, find_ins = 0, del_rand = 0, del_ins = 0,
         elements = 0;
};

template <typename Table, bool Concurrent, typename V, typename KeyOf>
six_ops run_one(const std::vector<V>& ins, const std::vector<V>& rnd, std::size_t cap,
                KeyOf key_of) {
  auto fill = [&](Table& t) {
    if constexpr (Concurrent) {
      parallel_for(0, ins.size(), [&](std::size_t i) { t.insert(ins[i]); });
    } else {
      for (const auto& v : ins) t.insert(v);
    }
  };
  std::optional<Table> t;
  six_ops r;

  r.insert = time_median([&] { t.emplace(cap); }, [&] { fill(*t); });

  // t holds a filled table now; finds and elements are non-mutating.
  std::vector<std::uint8_t> sink(std::max(ins.size(), rnd.size()));
  auto find_pass = [&](const std::vector<V>& keys) {
    if constexpr (Concurrent) {
      parallel_for(0, keys.size(),
                   [&](std::size_t i) { sink[i] = t->contains(key_of(keys[i])); });
    } else {
      for (std::size_t i = 0; i < keys.size(); ++i)
        sink[i] = t->contains(key_of(keys[i]));
    }
  };
  r.find_rand = time_median([] {}, [&] { find_pass(rnd); });
  r.find_ins = time_median([] {}, [&] { find_pass(ins); });
  r.elements = time_median([] {}, [&] { sink[0] = t->elements().size() & 1; });

  auto erase_pass = [&](const std::vector<V>& keys) {
    if constexpr (Concurrent) {
      parallel_for(0, keys.size(), [&](std::size_t i) { t->erase(key_of(keys[i])); });
    } else {
      for (const auto& v : keys) t->erase(key_of(v));
    }
  };
  r.del_rand = time_median(
      [&] {
        t.emplace(cap);
        fill(*t);
      },
      [&] { erase_pass(rnd); });
  r.del_ins = time_median(
      [&] {
        t.emplace(cap);
        fill(*t);
      },
      [&] { erase_pass(ins); });
  return r;
}

void print_ops_row(const char* impl, const six_ops& r) {
  std::printf("  %-18s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", impl, r.insert,
              r.find_rand, r.find_ins, r.del_rand, r.del_ins, r.elements);
}

template <typename Traits, typename V, typename KeyOf>
void bench_distribution(const char* name, const std::vector<V>& ins,
                        const std::vector<V>& rnd, KeyOf key_of) {
  const std::size_t cap = round_up_pow2(2 * ins.size() + 16);
  print_header(name, ins.size());
  std::printf("  %-18s %8s %8s %8s %8s %8s %8s\n", "impl", "insert", "findR", "findI",
              "delR", "delI", "elems");
  print_ops_row("serialHash-HI", (run_one<serial_table_hi<Traits>, false>(
                                     ins, rnd, cap, key_of)));
  print_ops_row("serialHash-HD", (run_one<serial_table_hd<Traits>, false>(
                                     ins, rnd, cap, key_of)));
  print_ops_row("linearHash-D", (run_one<deterministic_table<Traits>, true>(
                                    ins, rnd, cap, key_of)));
  print_ops_row("linearHash-ND", (run_one<nd_linear_table<Traits>, true>(
                                     ins, rnd, cap, key_of)));
  print_ops_row("cuckooHash", (run_one<cuckoo_table<Traits>, true>(
                                  ins, rnd, cap, key_of)));
  print_ops_row("chainedHash", (run_one<chained_table<Traits, false>, true>(
                                   ins, rnd, cap, key_of)));
  print_ops_row("chainedHash-CR", (run_one<chained_table<Traits, true>, true>(
                                      ins, rnd, cap, key_of)));
  print_ops_row("hopscotchHash", (run_one<hopscotch_table<Traits, true>, true>(
                                     ins, rnd, cap, key_of)));
  print_ops_row("hopscotchHash-PC", (run_one<hopscotch_table<Traits, false>, true>(
                                        ins, rnd, cap, key_of)));
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(1000000);
  std::printf("Table 1: hash table operations, %zu ops per cell "
              "(paper: n = 1e8 on 40 cores)\n", n);

  {
    const auto ins = workloads::random_int_seq(n, 1);
    const auto rnd = workloads::random_int_seq(n, 2);
    bench_distribution<int_entry<>>("randomSeq-int", ins, rnd,
                                    [](std::uint64_t v) { return v; });
  }
  {
    const auto ins = workloads::random_pair_seq(n, 1);
    const auto rnd = workloads::random_pair_seq(n, 2);
    bench_distribution<pair_entry<combine_min>>("randomSeq-pairInt", ins, rnd,
                                                [](const kv64& v) { return v.k; });
  }
  {
    const auto ins = workloads::trigram_string_seq(n, 1);
    const auto rnd = workloads::trigram_string_seq(n, 2);
    bench_distribution<string_entry>("trigramSeq", ins.keys, rnd.keys,
                                     [](const char* v) { return v; });
  }
  {
    const auto ins = workloads::trigram_pair_seq(n, 1);
    const auto rnd = workloads::trigram_pair_seq(n, 2);
    bench_distribution<string_pair_entry>(
        "trigramSeq-pairInt", ins.entries, rnd.entries,
        [](const string_kv* v) { return v->key; });
  }
  {
    const auto ins = workloads::expt_int_seq(n, 1);
    const auto rnd = workloads::expt_int_seq(n, 2);
    bench_distribution<int_entry<>>("exptSeq-int", ins, rnd,
                                    [](std::uint64_t v) { return v; });
  }
  {
    const auto ins = workloads::expt_pair_seq(n, 1);
    const auto rnd = workloads::expt_pair_seq(n, 2);
    bench_distribution<pair_entry<combine_min>>("exptSeq-pairInt", ins, rnd,
                                                [](const kv64& v) { return v.k; });
  }
  return 0;
}
