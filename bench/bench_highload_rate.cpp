// §6 Li-et-al comparison: insert rate (millions of key-value inserts per
// second) when filling a table to 95% load with 8-byte integer pairs.
//
// Paper: on 16 cores linearHash-ND reached 75 M/s and linearHash-D 65 M/s
// to 95% load (vs 40 M/s for Li et al.'s concurrent cuckoo). Shape: D
// within ~15% of ND, both degrade as the table approaches full.
#include <optional>

#include "bench_common.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"

using namespace phch;
using namespace phch::bench;

namespace {

template <typename Table>
double fill_rate(std::size_t cap, const std::vector<kv64>& pairs) {
  std::optional<Table> t;
  const double secs = time_median(
      [&] { t.emplace(cap); },
      [&] {
        parallel_for(0, pairs.size(), [&](std::size_t i) { t->insert(pairs[i]); });
      });
  return static_cast<double>(pairs.size()) / secs / 1e6;
}

}  // namespace

int main() {
  const std::size_t cap = round_up_pow2(scaled_size(1 << 21));
  const std::size_t n = cap * 95 / 100;
  print_header("High-load insert rate (fill to 95%, int key-value pairs)", n);
  // Distinct keys so the final load really is 95%.
  const auto pairs = tabulate(n, [&](std::size_t i) {
    return kv64{i + 1, hash64(i) % 1000000};
  });
  const double d = fill_rate<deterministic_table<pair_entry<combine_min>>>(cap, pairs);
  const double nd = fill_rate<nd_linear_table<pair_entry<combine_min>>>(cap, pairs);
  std::printf("  %-18s %8.1f M inserts/s   [paper, 16 cores: 65 M/s]\n", "linearHash-D", d);
  std::printf("  %-18s %8.1f M inserts/s   [paper, 16 cores: 75 M/s]\n", "linearHash-ND",
              nd);
  print_ratio("linearHash-ND / linearHash-D rate", nd / d, 75.0 / 65.0);
  return 0;
}
