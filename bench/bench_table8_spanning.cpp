// Table 8: spanning forest — serial, array-based reservations, and
// hash-table reservations (four backends) on 3D-grid, random, rMat graphs.
//
// Shape (paper, 40h): hash-based with linearHash-D is 14-26% slower than
// array-based; D ≈ ND; cuckoo and chained slower still.
#include "bench_common.h"
#include "phch/apps/spanning_forest.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"

using namespace phch;
using namespace phch::bench;

namespace {

using res_traits = packed_pair_entry<combine_min>;

void panel(const char* name, std::size_t n, const std::vector<graph::edge>& edges,
           const double paper[6]) {
  print_header(name, edges.size());
  const double ts = time_median([] {}, [&] { apps::serial_spanning_forest(n, edges); });
  const double ta = time_median([] {}, [&] { apps::array_spanning_forest(n, edges); });
  const double td = time_median([] {}, [&] {
    apps::hash_spanning_forest<deterministic_table<res_traits>>(n, edges);
  });
  const double tn = time_median([] {}, [&] {
    apps::hash_spanning_forest<nd_linear_table<res_traits>>(n, edges);
  });
  const double tc = time_median([] {}, [&] {
    apps::hash_spanning_forest<cuckoo_table<res_traits>>(n, edges);
  });
  const double th = time_median([] {}, [&] {
    apps::hash_spanning_forest<chained_table<res_traits, true>>(n, edges);
  });
  print_row_vs("serial", ts, paper[0]);
  print_row_vs("array", ta, paper[1]);
  print_row_vs("linearHash-D", td, paper[2]);
  print_row_vs("linearHash-ND", tn, paper[3]);
  print_row_vs("cuckooHash", tc, paper[4]);
  print_row_vs("chainedHash-CR", th, paper[5]);
  print_ratio("linearHash-D / array", td / ta, paper[2] / paper[1]);
  print_ratio("chainedHash-CR / linearHash-D", th / td, paper[5] / paper[2]);
}

}  // namespace

int main() {
  std::printf("Table 8: spanning forest (paper: 1e7-vertex graphs, 40h)\n");
  {
    std::size_t d = 1;
    while ((d + 1) * (d + 1) * (d + 1) <= scaled_size(250000)) ++d;
    const double paper[6] = {0, 0.186, 0.212, 0.215, 0.251, 0.408};
    panel("3D-grid", d * d * d, graph::grid3d_edges(d), paper);
  }
  {
    const std::size_t n = scaled_size(250000);
    const double paper[6] = {0, 0.226, 0.286, 0.282, 0.341, 0.544};
    panel("random", n, graph::random_k_edges(n, 5, 1), paper);
  }
  {
    std::size_t lg = 1;
    while ((std::size_t{1} << (lg + 1)) <= scaled_size(1 << 18)) ++lg;
    const double paper[6] = {0, 0.289, 0.346, 0.344, 0.387, 0.662};
    panel("rMat", std::size_t{1} << lg, graph::rmat_edges(lg, scaled_size(1250000), 1),
          paper);
  }
  return 0;
}
