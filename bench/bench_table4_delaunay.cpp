// Table 4: the hash-table portion of Delaunay refinement (ELEMENTS() +
// inserts of newly created bad triangles) on 2D-cube and 2D-kuzmin inputs.
//
// Shape (paper, 40h): linearHash-D ~3-6% slower than linearHash-ND; both
// ~40% faster than cuckooHash and 2-3x faster than chainedHash-CR.
#include "bench_common.h"
#include "bench_tables.h"
#include "phch/apps/delaunay_refine.h"
#include "phch/geometry/point_generators.h"

using namespace phch;
using namespace phch::bench;

namespace {

template <typename Table>
double hash_portion(const geometry::mesh& base, double alpha, std::size_t max_pts) {
  geometry::mesh m = base;  // refine a copy
  timer clk;
  const auto stats = apps::refine<Table>(m, alpha, max_pts, [&] { return clk.elapsed(); });
  return stats.hash_seconds;
}

void panel(const char* name, const std::vector<geometry::point2d>& pts,
           const double paper[4]) {
  print_header(name, pts.size());
  const auto base = geometry::mesh::delaunay(pts);
  const double alpha = 25.0;
  const std::size_t budget = 2 * pts.size();
  const auto secs = run_paper_backends<int_entry<std::uint64_t>>(
      [&]<typename Table>(std::size_t) {
        return hash_portion<Table>(base, alpha, budget);
      });
  print_backend_rows(secs, paper);
  print_ratio("linearHash-D / linearHash-ND", secs[0] / secs[1],
              paper[0] / paper[1]);
  print_ratio("chainedHash-CR / linearHash-D", secs[3] / secs[0],
              paper[3] / paper[0]);
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(60000);
  std::printf("Table 4: Delaunay refinement hash portion (paper: 5e6 points, 40h)\n");
  {
    const double paper[4] = {0.033, 0.031, 0.051, 0.079};
    panel("2DinCube", geometry::cube2d_points(n, 1), paper);
  }
  {
    const double paper[4] = {0.033, 0.032, 0.054, 0.099};
    panel("2Dkuzmin", geometry::kuzmin_points(n, 1), paper);
  }
  return 0;
}
