// Table 4: the hash-table portion of Delaunay refinement (ELEMENTS() +
// inserts of newly created bad triangles) on 2D-cube and 2D-kuzmin inputs.
//
// Shape (paper, 40h): linearHash-D ~3-6% slower than linearHash-ND; both
// ~40% faster than cuckooHash and 2-3x faster than chainedHash-CR.
#include "bench_common.h"
#include "phch/apps/delaunay_refine.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/geometry/point_generators.h"

using namespace phch;
using namespace phch::bench;

namespace {

template <typename Table>
double hash_portion(const geometry::mesh& base, double alpha, std::size_t max_pts) {
  geometry::mesh m = base;  // refine a copy
  timer clk;
  const auto stats = apps::refine<Table>(m, alpha, max_pts, [&] { return clk.elapsed(); });
  return stats.hash_seconds;
}

void panel(const char* name, const std::vector<geometry::point2d>& pts,
           const double paper[4]) {
  print_header(name, pts.size());
  const auto base = geometry::mesh::delaunay(pts);
  const double alpha = 25.0;
  const std::size_t budget = 2 * pts.size();
  const double d =
      hash_portion<deterministic_table<int_entry<std::uint64_t>>>(base, alpha, budget);
  const double nd =
      hash_portion<nd_linear_table<int_entry<std::uint64_t>>>(base, alpha, budget);
  const double ck =
      hash_portion<cuckoo_table<int_entry<std::uint64_t>>>(base, alpha, budget);
  const double ch = hash_portion<chained_table<int_entry<std::uint64_t>, true>>(
      base, alpha, budget);
  print_row_vs("linearHash-D", d, paper[0]);
  print_row_vs("linearHash-ND", nd, paper[1]);
  print_row_vs("cuckooHash", ck, paper[2]);
  print_row_vs("chainedHash-CR", ch, paper[3]);
  print_ratio("linearHash-D / linearHash-ND", d / nd, paper[0] / paper[1]);
  print_ratio("chainedHash-CR / linearHash-D", ch / d, paper[3] / paper[0]);
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(60000);
  std::printf("Table 4: Delaunay refinement hash portion (paper: 5e6 points, 40h)\n");
  {
    const double paper[4] = {0.033, 0.031, 0.051, 0.079};
    panel("2DinCube", geometry::cube2d_points(n, 1), paper);
  }
  {
    const double paper[4] = {0.033, 0.032, 0.054, 0.099};
    panel("2Dkuzmin", geometry::kuzmin_points(n, 1), paper);
  }
  return 0;
}
