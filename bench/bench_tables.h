// The four table backends of the paper's Tables 3-5 (§6), in fixed row
// order, behind the concepts layer: each bench panel used to spell out one
// timing call per backend; run_paper_backends lets it write the measurement
// once as a templated lambda and get the four results back in row order.
#pragma once

#include <array>
#include <cstddef>

#include "bench_common.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_concepts.h"

namespace phch::bench {

inline constexpr std::size_t kNumPaperBackends = 4;
inline constexpr const char* kPaperBackendNames[kNumPaperBackends] = {
    "linearHash-D", "linearHash-ND", "cuckooHash", "chainedHash-CR"};

// Row index of cuckooHash, which the paper sizes at twice the slots (its
// two tables' worth of memory).
inline constexpr std::size_t kCuckooRow = 2;

// Invokes `fn.template operator()<Table>(row)` once per backend — a C++20
// templated lambda [&]<typename Table>(std::size_t row) { ... } — and
// returns the four results in paper row order. Every backend models
// phase_table (and deletable_table), so the lambda can be written once
// against the concepts layer.
template <typename Traits, typename Fn>
auto run_paper_backends(Fn&& fn) {
  static_assert(deletable_table<deterministic_table<Traits>> &&
                deletable_table<nd_linear_table<Traits>> &&
                deletable_table<cuckoo_table<Traits>> &&
                deletable_table<chained_table<Traits, true>>);
  using R = decltype(fn.template operator()<deterministic_table<Traits>>(0));
  std::array<R, kNumPaperBackends> out{};
  out[0] = fn.template operator()<deterministic_table<Traits>>(0);
  out[1] = fn.template operator()<nd_linear_table<Traits>>(1);
  out[2] = fn.template operator()<cuckoo_table<Traits>>(2);
  out[3] = fn.template operator()<chained_table<Traits, true>>(3);
  return out;
}

// The standard four-row comparison block against the paper's 40h seconds.
inline void print_backend_rows(const std::array<double, kNumPaperBackends>& secs,
                               const double paper[kNumPaperBackends]) {
  for (std::size_t i = 0; i < kNumPaperBackends; ++i) {
    print_row_vs(kPaperBackendNames[i], secs[i], paper[i]);
  }
}

}  // namespace phch::bench
