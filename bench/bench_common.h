// Shared benchmark harness.
//
// Scaling: the paper ran n = 1e8 operations on a 40-core machine with
// 256 GB of RAM. Benchmarks here default to sizes that finish promptly on a
// small machine and scale with:
//     PHCH_SCALE=<mult>    multiply all problem sizes (PHCH_SCALE=100 for
//                          paper-sized runs on comparable hardware)
//     PHCH_THREADS=<p>     worker threads
//     PHCH_REPS=<r>        timing repetitions (median reported; default 3)
//
// Every binary prints a table of measured seconds plus, where meaningful,
// the paper's reported numbers so the *shape* (who wins, by what factor)
// can be compared directly; absolute values are machine-dependent.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "phch/parallel/scheduler.h"
#include "phch/utils/env.h"
#include "phch/utils/timer.h"

namespace phch::bench {

inline long reps() { return std::max(1L, env_long("PHCH_REPS", 3)); }

// Median wall time of reps() runs of body(); setup() runs before each.
template <typename Setup, typename Body>
double time_median(Setup&& setup, Body&& body) {
  std::vector<double> ts;
  for (long r = 0; r < reps(); ++r) {
    setup();
    timer t;
    body();
    ts.push_back(t.elapsed());
  }
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

template <typename Body>
double time_once(Body&& body) {
  timer t;
  body();
  return t.elapsed();
}

inline void print_header(const char* title, std::size_t n) {
  std::printf("\n=== %s ===\n", title);
  std::printf("n = %zu, threads = %d, reps = %ld (median)\n", n, num_workers(), reps());
}

inline void print_row(const char* impl, double seconds) {
  std::printf("  %-18s %10.4f s\n", impl, seconds);
}

inline void print_row_vs(const char* impl, double seconds, double paper_40h) {
  if (paper_40h > 0)
    std::printf("  %-18s %10.4f s    [paper 40h: %7.3f s]\n", impl, seconds, paper_40h);
  else
    std::printf("  %-18s %10.4f s\n", impl, seconds);
}

// Ratio line: "A / B" with the paper's corresponding ratio for shape checks.
inline void print_ratio(const char* what, double ours, double paper) {
  std::printf("  shape: %-40s measured %5.2fx   paper %5.2fx\n", what, ours, paper);
}

}  // namespace phch::bench
