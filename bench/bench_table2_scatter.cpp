// Table 2: hash table insertion vs raw random writes (scatter).
//
// The paper's point: at load 1/3, an insert into linearHash-D costs about
// 1.3x a random write, because both are dominated by one cache miss.
// Rows: random write, conditional random write (write iff empty), hash
// table insertion — all n operations over a 3n-slot array/table.
#include <optional>

#include "bench_common.h"
#include "phch/core/deterministic_table.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"

using namespace phch;
using namespace phch::bench;

int main() {
  const std::size_t n = scaled_size(4000000);
  const std::size_t cap = round_up_pow2(3 * n);
  const auto keys = workloads::random_int_seq(n, 1);
  print_header("Table 2: random writes vs hash insertion", n);

  std::vector<std::uint64_t> array(cap);
  const double t_write = time_median(
      [&] { parallel_for(0, cap, [&](std::size_t i) { array[i] = 0; }); },
      [&] {
        parallel_for(0, n, [&](std::size_t i) {
          array[hash64(keys[i]) & (cap - 1)] = keys[i];
        });
      });
  print_row_vs("random write", t_write, 0.129);

  const double t_cond = time_median(
      [&] { parallel_for(0, cap, [&](std::size_t i) { array[i] = 0; }); },
      [&] {
        parallel_for(0, n, [&](std::size_t i) {
          std::uint64_t* slot = &array[hash64(keys[i]) & (cap - 1)];
          if (atomic_load(slot) == 0) cas(slot, std::uint64_t{0}, keys[i]);
        });
      });
  print_row_vs("conditional write", t_cond, 0.131);

  std::optional<deterministic_table<int_entry<>>> t;
  const double t_ins = time_median(
      [&] { t.emplace(cap); },
      [&] { parallel_for(0, n, [&](std::size_t i) { t->insert(keys[i]); }); });
  print_row_vs("hash insertion", t_ins, 0.171);

  print_ratio("hash insert / random write", t_ins / t_write, 0.171 / 0.129);
  return 0;
}
