// Table 3: remove duplicates with four tables on randomSeq-int,
// trigramSeq-pairInt, exptSeq-int.
//
// Shape (paper, 40h): linearHash-D within 0-23% of linearHash-ND; both
// clearly faster than cuckooHash; chainedHash-CR slowest.
//
// Writes BENCH_dedup.json (or argv[1]) with the measured seconds and, per
// panel, the obs counter deltas the runs generated — all zeros unless the
// build has PHCH_TELEMETRY=ON and recording is enabled (PHCH_TELEMETRY=1
// in the environment).
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_tables.h"
#include "phch/apps/remove_duplicates.h"
#include "phch/obs/export.h"
#include "phch/obs/telemetry.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

struct panel_result {
  std::string name;
  double d = 0, nd = 0, ck = 0, ch = 0;  // seconds
  obs::metrics_snapshot counters;        // obs delta across the panel
};

std::vector<panel_result> results;

// Paper (40h) seconds: {linearHash-D, linearHash-ND, cuckoo, chained-CR}.
template <typename Traits, typename V>
void panel(const char* name, const std::vector<V>& input, const double paper[4]) {
  // Paper: table size 2^27 for n = 1e8, i.e. ~1.3n.
  const std::size_t cap = round_up_pow2(input.size() + input.size() / 3);
  print_header(name, input.size());
  panel_result r;
  r.name = name;
  const obs::metrics_snapshot before = obs::snapshot();
  const auto secs = run_paper_backends<Traits>([&]<typename Table>(std::size_t row) {
    const std::size_t c = row == kCuckooRow ? 2 * cap : cap;
    return time_median([] {},
                       [&] { apps::remove_duplicates<Table>(input, c); });
  });
  r.counters = obs::snapshot() - before;
  r.d = secs[0];
  r.nd = secs[1];
  r.ck = secs[2];
  r.ch = secs[3];
  print_backend_rows(secs, paper);
  print_ratio("linearHash-D / linearHash-ND", r.d / r.nd, paper[0] / paper[1]);
  print_ratio("cuckooHash / linearHash-D", r.ck / r.d, paper[2] / paper[0]);
  results.push_back(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_dedup.json";
  const std::size_t n = scaled_size(1000000);
  std::printf("Table 3: remove duplicates (paper: n = 1e8, 40h)\n");
  {
    const double paper[4] = {0.212, 0.212, 0.417, 1.32};
    panel<int_entry<>>("randomSeq-int", workloads::random_int_seq(n, 1), paper);
  }
  {
    const double paper[4] = {0.242, 0.213, 0.300, 0.586};
    const auto in = workloads::trigram_pair_seq(n, 1);
    panel<string_pair_entry>("trigramSeq-pairInt", in.entries, paper);
  }
  {
    const double paper[4] = {0.139, 0.116, 0.185, 0.541};
    panel<int_entry<>>("exptSeq-int", workloads::expt_int_seq(n, 1), paper);
  }

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"table3_dedup\",\n  \"n\": %zu,\n", n);
  std::fprintf(f, "  \"telemetry_compiled\": %s,\n  \"panels\": [",
               obs::compiled ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\",\n"
                 "     \"linearHash_D_s\": %.4f, \"linearHash_ND_s\": %.4f,\n"
                 "     \"cuckoo_s\": %.4f, \"chained_CR_s\": %.4f,\n"
                 "     \"counters\": ",
                 i == 0 ? "" : ",", r.name.c_str(), r.d, r.nd, r.ck, r.ch);
    obs::write_counters_json(f, r.counters, "     ");
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}
