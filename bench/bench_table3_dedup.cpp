// Table 3: remove duplicates with four tables on randomSeq-int,
// trigramSeq-pairInt, exptSeq-int.
//
// Shape (paper, 40h): linearHash-D within 0-23% of linearHash-ND; both
// clearly faster than cuckooHash; chainedHash-CR slowest.
#include "bench_common.h"
#include "phch/apps/remove_duplicates.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

// Paper (40h) seconds: {linearHash-D, linearHash-ND, cuckoo, chained-CR}.
template <typename Traits, typename V>
void panel(const char* name, const std::vector<V>& input, const double paper[4]) {
  // Paper: table size 2^27 for n = 1e8, i.e. ~1.3n.
  const std::size_t cap = round_up_pow2(input.size() + input.size() / 3);
  print_header(name, input.size());
  const double d = time_median([] {}, [&] {
    apps::remove_duplicates<deterministic_table<Traits>>(input, cap);
  });
  const double nd = time_median([] {}, [&] {
    apps::remove_duplicates<nd_linear_table<Traits>>(input, cap);
  });
  const double ck = time_median([] {}, [&] {
    apps::remove_duplicates<cuckoo_table<Traits>>(input, 2 * cap);
  });
  const double ch = time_median([] {}, [&] {
    apps::remove_duplicates<chained_table<Traits, true>>(input, cap);
  });
  print_row_vs("linearHash-D", d, paper[0]);
  print_row_vs("linearHash-ND", nd, paper[1]);
  print_row_vs("cuckooHash", ck, paper[2]);
  print_row_vs("chainedHash-CR", ch, paper[3]);
  print_ratio("linearHash-D / linearHash-ND", d / nd, paper[0] / paper[1]);
  print_ratio("cuckooHash / linearHash-D", ck / d, paper[2] / paper[0]);
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(1000000);
  std::printf("Table 3: remove duplicates (paper: n = 1e8, 40h)\n");
  {
    const double paper[4] = {0.212, 0.212, 0.417, 1.32};
    panel<int_entry<>>("randomSeq-int", workloads::random_int_seq(n, 1), paper);
  }
  {
    const double paper[4] = {0.242, 0.213, 0.300, 0.586};
    const auto in = workloads::trigram_pair_seq(n, 1);
    panel<string_pair_entry>("trigramSeq-pairInt", in.entries, paper);
  }
  {
    const double paper[4] = {0.139, 0.116, 0.185, 0.541};
    panel<int_entry<>>("exptSeq-int", workloads::expt_int_seq(n, 1), paper);
  }
  return 0;
}
