// Memory-level parallelism of the batch engines (core/batch_ops.h).
//
// Single-worker ns/op for the three find/insert/erase batch paths —
//   scalar     per-op loop, no prefetching
//   prefetch   home-line prefetched kPrefetchAhead positions down the batch
//              (the previous engine, kept as the baseline)
//   pipelined  AMAC-style ring of PHCH_BATCH_WIDTH in-flight probes
// — on a DRAM-resident linearHash-D table (default 2^23 slots, 64 MB) at
// load factors 0.25 / 0.5 / 0.75 / 0.9, uniform integer keys. The engines
// are called through their per-block entry points on one thread, so the
// numbers isolate MLP from multicore parallelism. Mean/max probe lengths
// from table_stats accompany each load so ns/op can be read against the
// probe chains actually traversed.
//
// Expected shape: at low load everything is a one-line probe and prefetch
// ≈ pipelined; as load (and probe length) grows, the pipelined engine keeps
// every chained miss overlapped and pulls ahead of home-line-only prefetch.
//
// Also measures the occupancy-counter contention microbenchmark: ns per
// increment of one shared atomic vs the striped counter the tables now use,
// across PHCH_THREADS workers.
//
// Also measures the tag-sidecar group scans (core/tag_array.h +
// core/simd_scan.h): find ns/op with tags off vs SWAR vs the widest vector
// backend, scalar and pipelined, hit and miss keys, per load — plus the
// fingerprint false-positive rate from telemetry when compiled in. The
// legacy sections run with tags forced off so their numbers keep meaning
// across revisions.
//
// Writes machine-readable results to BENCH_batch.json (or argv[1]).
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "phch/core/batch_ops.h"
#include "phch/core/simd_scan.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/growable_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_stats.h"
#include "phch/core/tombstone_table.h"
#include "phch/obs/export.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/striped_counter.h"

using namespace phch;
using namespace phch::bench;

using table_t = deterministic_table<int_entry<>>;

namespace {

struct engine_times {
  double scalar = 0, prefetch = 0, pipelined = 0;
};

struct load_point {
  double load = 0;
  probe_stats stats;
  engine_times find, insert, erase;
};

// Single-thread reference loops (the parallel wrappers in batch_ops.h would
// measure the scheduler too; here only the probe engine should differ).
template <typename Table>
void find_serial(const Table& t, const std::vector<std::uint64_t>& keys,
                 std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < keys.size(); ++i) out[i] = t.find(keys[i]);
}

void find_serial_prefetch(const table_t& t, const std::vector<std::uint64_t>& keys,
                          std::vector<std::uint64_t>& out) {
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n)
      detail::prefetch_ro(t.home_address(keys[i + kPrefetchAhead]));
    out[i] = t.find(keys[i]);
  }
}

double med(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_batch.json";
  // Tags off for the legacy sections (the scalar loops dispatch on the
  // active backend); the tags section below sweeps backends explicitly.
  simd::set_backend(simd::backend::off);
  const std::size_t cap = round_up_pow2(scaled_size(std::size_t{1} << 23));
  const std::size_t qbatch = std::min(cap / 8, scaled_size(std::size_t{1} << 20));
  const std::size_t width = batch_width();

  std::printf("Batch-probe MLP: scalar vs prefetch-ahead vs pipelined, one worker\n");
  std::printf("table capacity = %zu (%.0f MB), batch = %zu ops, width = %zu, "
              "reps = %ld (median)\n",
              cap, static_cast<double>(cap * sizeof(std::uint64_t)) / 1048576.0,
              qbatch, width, reps());
  std::printf("  %5s %10s | %26s | %26s | %26s\n", "", "", "find ns/op",
              "insert ns/op", "erase ns/op");
  std::printf("  %5s %10s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "load",
              "avg probe", "scalar", "prefetch", "pipeline", "scalar", "prefetch",
              "pipeline", "scalar", "prefetch", "pipeline");

  const auto pool = tabulate(cap, [](std::size_t i) { return std::uint64_t{i + 1}; });
  std::vector<load_point> points;

  for (const double load : {0.25, 0.5, 0.75, 0.9}) {
    load_point pt;
    pt.load = load;
    const std::size_t fill = static_cast<std::size_t>(load * static_cast<double>(cap));
    table_t t(cap);
    parallel_for(0, fill, [&](std::size_t i) { t.insert(pool[i]); });
    pt.stats = analyze(t);

    // Query keys: present keys in hash-scrambled order (random homes).
    const auto qkeys = tabulate(qbatch, [&](std::size_t i) {
      return pool[hash64(i ^ 0x9e3779b97f4a7c15ULL) % fill];
    });
    std::vector<std::uint64_t> out(qbatch);
    const double per_q = 1e9 / static_cast<double>(qbatch);
    pt.find.scalar = per_q * time_median([] {}, [&] { find_serial(t, qkeys, out); });
    pt.find.prefetch =
        per_q * time_median([] {}, [&] { find_serial_prefetch(t, qkeys, out); });
    pt.find.pipelined = per_q * time_median([] {}, [&] {
      batch_detail::find_block_pipelined(t, qkeys.data(), qbatch, out.data(), width);
    });

    // Insert a fresh slab beyond the pool range, then erase it. The table is
    // history-independent (Theorem 2), so erasing restores the exact layout
    // and the next engine measures the same table state.
    const std::size_t dbatch = std::min(qbatch, (cap - fill) / 2 + 1);
    const auto dkeys =
        tabulate(dbatch, [&](std::size_t i) { return std::uint64_t{cap + 1 + i}; });
    const double per_d = 1e9 / static_cast<double>(dbatch);
    std::vector<double> ti, te;
    auto pairwise = [&](auto&& ins, auto&& del) {
      ti.clear();
      te.clear();
      for (long r = 0; r < reps(); ++r) {
        ti.push_back(time_once(ins));
        te.push_back(time_once(del));
      }
      return std::pair<double, double>{per_d * med(ti), per_d * med(te)};
    };
    std::tie(pt.insert.scalar, pt.erase.scalar) = pairwise(
        [&] {
          for (std::size_t i = 0; i < dbatch; ++i) t.insert(dkeys[i]);
        },
        [&] {
          for (std::size_t i = 0; i < dbatch; ++i) t.erase(dkeys[i]);
        });
    std::tie(pt.insert.prefetch, pt.erase.prefetch) = pairwise(
        [&] {
          for (std::size_t i = 0; i < dbatch; ++i) {
            if (i + kPrefetchAhead < dbatch)
              detail::prefetch_rw(t.home_address(dkeys[i + kPrefetchAhead]));
            t.insert(dkeys[i]);
          }
        },
        [&] {
          for (std::size_t i = 0; i < dbatch; ++i) {
            if (i + kPrefetchAhead < dbatch)
              detail::prefetch_rw(t.home_address(dkeys[i + kPrefetchAhead]));
            t.erase(dkeys[i]);
          }
        });
    std::tie(pt.insert.pipelined, pt.erase.pipelined) = pairwise(
        [&] { batch_detail::insert_block_pipelined(t, dkeys.data(), dbatch, width); },
        [&] { batch_detail::erase_block_pipelined(t, dkeys.data(), dbatch, width); });

    std::printf("  %5.2f %10.2f | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | "
                "%8.1f %8.1f %8.1f\n",
                load, pt.stats.mean_probe, pt.find.scalar, pt.find.prefetch,
                pt.find.pipelined, pt.insert.scalar, pt.insert.prefetch,
                pt.insert.pipelined, pt.erase.scalar, pt.erase.prefetch,
                pt.erase.pipelined);
    points.push_back(pt);
  }

  // --- tag sidecar: group-scanned probing vs full-slot probing -------------
  //
  // Same keys, three probing modes: tags off (the untagged loops above),
  // SWAR-on-uint64 groups of 8, and the widest vector backend this machine
  // has (32 tags per AVX2 scan). Measured on linearHash-ND (arrival
  // order), the policy the sidecar targets: its untagged miss must walk
  // every slot line to the first empty, while a tagged miss resolves from
  // tag groups alone (64 tags per line vs 8 int slots) and touches a slot
  // only on a fingerprint collision (p ≈ 1/128 per compared tag). Hits
  // answer "does confirming candidates cost more than it saves". The
  // prioritized table is deliberately not the subject here: ordered
  // probing already short-circuits misses with a priority comparison — a
  // predicate a fingerprint cannot evaluate — so its untagged loops are
  // the right default at DRAM scale (see DESIGN.md §12).
  struct tag_mode {
    const char* name;
    simd::backend b;
    double hit_scalar, miss_scalar, hit_pipe, miss_pipe;
  };
  struct tag_point {
    double load;
    std::vector<tag_mode> modes;
  };
  std::vector<tag_point> tag_points;
  double tag_fp_rate = -1.0;  // candidates that failed slot confirmation
  {
    std::vector<std::pair<const char*, simd::backend>> modes{
        {"off", simd::backend::off}, {"swar", simd::backend::swar}};
    if (simd::best() != simd::backend::swar) {
      modes.emplace_back(simd::backend_name(simd::best()), simd::best());
    }

    using nd_t = nd_linear_table<int_entry<>>;
    std::printf("\ntag sidecar find (linearHash-ND, capacity %zu, batch %zu), "
                "one worker:\n",
                cap, qbatch);
    std::printf("  %5s | %10s | %17s | %17s\n", "", "", "scalar ns/op",
                "pipelined ns/op");
    std::printf("  %5s | %10s | %8s %8s | %8s %8s\n", "load", "backend", "hit",
                "miss", "hit", "miss");

    const bool tele_was = obs::enabled();
    if (obs::compiled) obs::set_enabled(true);
    const auto fp_base = obs::snapshot();

    for (const double load : {0.25, 0.5, 0.75, 0.9}) {
      tag_point tp;
      tp.load = load;
      const std::size_t fill =
          static_cast<std::size_t>(load * static_cast<double>(cap));
      nd_t t(cap);
      simd::set_backend(simd::backend::off);  // identical build layout per mode
      parallel_for(0, fill, [&](std::size_t i) { t.insert(pool[i]); });
      const auto hkeys = tabulate(qbatch, [&](std::size_t i) {
        return pool[hash64(i ^ 0x94d049bb133111ebULL) % fill];
      });
      // Absent keys: beyond the pool range, so every lookup runs to an
      // empty slot (or an empty tag group) before giving up.
      const auto mkeys = tabulate(
          qbatch, [&](std::size_t i) { return std::uint64_t{cap + 1 + i}; });
      std::vector<std::uint64_t> out(qbatch);
      const double per_q = 1e9 / static_cast<double>(qbatch);

      for (const auto& [name, b] : modes) {
        simd::set_backend(b);
        tag_mode m{name, b, 0, 0, 0, 0};
        m.hit_scalar =
            per_q * time_median([] {}, [&] { find_serial(t, hkeys, out); });
        m.miss_scalar =
            per_q * time_median([] {}, [&] { find_serial(t, mkeys, out); });
        auto pipe = [&](const std::vector<std::uint64_t>& keys) {
          return per_q * time_median([] {}, [&] {
                   if (b == simd::backend::off) {
                     batch_detail::find_block_pipelined(t, keys.data(), qbatch,
                                                        out.data(), width);
                   } else {
                     batch_detail::find_block_tagged(t, keys.data(), qbatch,
                                                     out.data(), width, b);
                   }
                 });
        };
        m.hit_pipe = pipe(hkeys);
        m.miss_pipe = pipe(mkeys);
        std::printf("  %5.2f | %10s | %8.1f %8.1f | %8.1f %8.1f\n", load, name,
                    m.hit_scalar, m.miss_scalar, m.hit_pipe, m.miss_pipe);
        tp.modes.push_back(m);
      }
      tag_points.push_back(tp);
    }
    simd::set_backend(simd::backend::off);

    const auto fp_delta = obs::snapshot() - fp_base;
    if (fp_delta[obs::counter::tag_candidates] != 0) {
      tag_fp_rate =
          static_cast<double>(fp_delta[obs::counter::tag_false_positives]) /
          static_cast<double>(fp_delta[obs::counter::tag_candidates]);
      std::printf("  fingerprint false-positive rate: %.4f%% "
                  "(%llu of %llu candidates)\n",
                  100.0 * tag_fp_rate,
                  static_cast<unsigned long long>(
                      fp_delta[obs::counter::tag_false_positives]),
                  static_cast<unsigned long long>(
                      fp_delta[obs::counter::tag_candidates]));
    }
    if (obs::compiled) obs::set_enabled(tele_was);
    std::printf("  (shape: at load 0.75, vector find >= 1.5x off and swar >= "
                "1.1x off on misses)\n");
  }

  // --- tombstone table through the same engine -----------------------------
  //
  // The probe-engine refactor gives the tombstone table the pipelined batch
  // paths through the shared classifiers; measure them against its scalar
  // per-op loops (the only batch path it had before). Smaller table so the
  // insert/erase reps fit in the free slots without tombstone overflow
  // (erased slabs become unreclaimable garbage, so each rep consumes fresh
  // slots).
  struct simple_times {
    double scalar = 0, pipelined = 0;
  };
  simple_times tomb_find, tomb_insert, tomb_erase;
  const std::size_t tcap = std::max<std::size_t>(std::size_t{1} << 16, cap >> 3);
  const std::size_t tfill = tcap / 2;
  {
    using tomb_t = tombstone_table<int_entry<>>;
    tomb_t tf(tcap);
    parallel_for(0, tfill, [&](std::size_t i) { tf.insert(pool[i]); });
    const std::size_t tqbatch = std::min(qbatch, tcap / 8);
    const auto tqkeys = tabulate(tqbatch, [&](std::size_t i) {
      return pool[hash64(i ^ 0x5bd1e995ULL) % tfill];
    });
    std::vector<std::uint64_t> tout(tqbatch);
    const double per_tq = 1e9 / static_cast<double>(tqbatch);
    tomb_find.scalar = per_tq * time_median([] {}, [&] {
      for (std::size_t i = 0; i < tqbatch; ++i) tout[i] = tf.find(tqkeys[i]);
    });
    tomb_find.pipelined = per_tq * time_median([] {}, [&] {
      batch_detail::find_block_pipelined(tf, tqkeys.data(), tqbatch, tout.data(),
                                         width);
    });

    // Insert-then-erase rep pairs on a fresh table per engine; dbatch sized
    // so all reps' garbage fits in the free half.
    const std::size_t tdbatch = std::min(
        tqbatch, (tcap - tfill) / (static_cast<std::size_t>(reps()) + 1));
    const auto tdkeys =
        tabulate(tdbatch, [&](std::size_t i) { return std::uint64_t{cap + 1 + i}; });
    const double per_td = 1e9 / static_cast<double>(tdbatch);
    auto tomb_pairwise = [&](auto&& ins, auto&& del, tomb_t& t) {
      parallel_for(0, tfill, [&](std::size_t i) { t.insert(pool[i]); });
      std::vector<double> ti, te;
      for (long r = 0; r < reps(); ++r) {
        ti.push_back(time_once(ins));
        te.push_back(time_once(del));
      }
      return std::pair<double, double>{per_td * med(ti), per_td * med(te)};
    };
    {
      tomb_t t(tcap);
      std::tie(tomb_insert.scalar, tomb_erase.scalar) = tomb_pairwise(
          [&] {
            for (std::size_t i = 0; i < tdbatch; ++i) t.insert(tdkeys[i]);
          },
          [&] {
            for (std::size_t i = 0; i < tdbatch; ++i) t.erase(tdkeys[i]);
          },
          t);
    }
    {
      tomb_t t(tcap);
      std::tie(tomb_insert.pipelined, tomb_erase.pipelined) = tomb_pairwise(
          [&] { batch_detail::insert_block_pipelined(t, tdkeys.data(), tdbatch, width); },
          [&] { batch_detail::erase_block_pipelined(t, tdkeys.data(), tdbatch, width); },
          t);
    }
    std::printf("\ntombstone table (capacity %zu, load 0.50), one worker:\n", tcap);
    std::printf("  %-8s scalar %8.1f  pipelined %8.1f ns/op\n", "find",
                tomb_find.scalar, tomb_find.pipelined);
    std::printf("  %-8s scalar %8.1f  pipelined %8.1f ns/op\n", "insert",
                tomb_insert.scalar, tomb_insert.pipelined);
    std::printf("  %-8s scalar %8.1f  pipelined %8.1f ns/op\n", "erase",
                tomb_erase.scalar, tomb_erase.pipelined);
  }

  // --- growable wrapper batch forwarding -----------------------------------
  //
  // Whole-batch insert through the wrapper (chunked pipelined engine, one
  // occupancy read per chunk, batched migration) vs the pre-refactor path:
  // a per-op insert loop with a per-insert occupancy read. Both start tiny
  // and grow to the same final capacity. Uses the configured worker pool.
  simple_times grow_insert, grow_find;
  std::size_t grow_n = std::min(qbatch, std::size_t{1} << 17);
  std::size_t grow_growths = 0;
  {
    const auto gkeys =
        tabulate(grow_n, [&](std::size_t i) { return hash64(i) | 1; });
    const double per_g = 1e9 / static_cast<double>(grow_n);
    std::vector<double> ts;
    for (long r = 0; r < reps(); ++r) {
      growable_table<int_entry<>> t(1024);
      ts.push_back(time_once([&] {
        parallel_for(0, grow_n, [&](std::size_t i) { t.insert(gkeys[i]); });
      }));
    }
    grow_insert.scalar = per_g * med(ts);
    ts.clear();
    std::unique_ptr<growable_table<int_entry<>>> grown;
    for (long r = 0; r < reps(); ++r) {
      auto t = std::make_unique<growable_table<int_entry<>>>(1024);
      ts.push_back(time_once([&] { insert_batch(*t, gkeys); }));
      if (r + 1 == reps()) {
        grow_growths = t->growth_count();
        grown = std::move(t);
      }
    }
    grow_insert.pipelined = per_g * med(ts);

    std::vector<std::uint64_t> gout(grow_n);
    grow_find.scalar = per_g * time_median([] {}, [&] {
      for (std::size_t i = 0; i < grow_n; ++i) gout[i] = grown->find(gkeys[i]);
    });
    grow_find.pipelined = per_g * time_median([] {}, [&] {
      const auto out = find_batch(*grown, gkeys);
      gout[0] = out[0];
    });
    std::printf("\ngrowable wrapper (1024 -> %zu slots, %zu growths, %zu keys), "
                "%d workers:\n",
                grown->capacity(), grow_growths, grow_n, num_workers());
    std::printf("  %-8s per-op %8.1f  batched %8.1f ns/op\n", "insert",
                grow_insert.scalar, grow_insert.pipelined);
    std::printf("  %-8s per-op %8.1f  batched %8.1f ns/op\n", "find",
                grow_find.scalar, grow_find.pipelined);
  }

  // --- sparse family: scalar vs batched block engines ----------------------
  //
  // The cuckoo / hopscotch / chained tables now carry their own AMAC-style
  // batch engines (both candidate buckets, home neighborhood, or the chain
  // pointer walk prefetched per in-flight lane). Measure each table's block
  // engine against its scalar per-op loop on one thread at load 0.5 —
  // uniform present keys for find, and a slab of present keys erased then
  // re-inserted so every rep measures the same key set. (Erase-then-insert,
  // not insert-then-erase: load 0.5 is the 2-choice cuckoo placement
  // threshold, so the slab must stay below it, never above.)
  struct sparse_result {
    const char* name = nullptr;
    double find_scalar = 0, find_batched = 0;
    double insert_scalar = 0, insert_batched = 0;
    double erase_scalar = 0, erase_batched = 0;
  };
  std::vector<sparse_result> sparse;
  const std::size_t scap = std::max<std::size_t>(std::size_t{1} << 18, cap >> 1);
  {
    auto sparse_bench = [&]<typename Table>(const char* name) {
      const std::size_t sfill = scap / 2;
      Table t(scap);
      parallel_for(0, sfill, [&](std::size_t i) { t.insert(pool[i]); });

      sparse_result r;
      r.name = name;
      const std::size_t sqbatch = std::min(qbatch, scap / 8);
      const auto sqkeys = tabulate(sqbatch, [&](std::size_t i) {
        return pool[hash64(i ^ 0x27d4eb2f165667c5ULL) % sfill];
      });
      std::vector<std::uint64_t> sout(sqbatch);
      const double per_q = 1e9 / static_cast<double>(sqbatch);
      r.find_scalar = per_q * time_median([] {}, [&] {
        for (std::size_t i = 0; i < sqbatch; ++i) sout[i] = t.find(sqkeys[i]);
      });
      r.find_batched = per_q * time_median([] {}, [&] {
        t.find_batch_block(sqkeys.data(), sqbatch, sout.data(), width);
      });

      const std::size_t sdbatch = std::min(sqbatch, sfill / 2);
      const auto sdkeys =
          tabulate(sdbatch, [&](std::size_t i) { return pool[i]; });
      const double per_d = 1e9 / static_cast<double>(sdbatch);
      std::vector<double> te, ti;
      auto pairwise = [&](auto&& del, auto&& ins) {
        te.clear();
        ti.clear();
        for (long rep = 0; rep < reps(); ++rep) {
          te.push_back(time_once(del));
          ti.push_back(time_once(ins));
        }
        return std::pair<double, double>{per_d * med(te), per_d * med(ti)};
      };
      std::tie(r.erase_scalar, r.insert_scalar) = pairwise(
          [&] {
            for (std::size_t i = 0; i < sdbatch; ++i) t.erase(sdkeys[i]);
          },
          [&] {
            for (std::size_t i = 0; i < sdbatch; ++i) t.insert(sdkeys[i]);
          });
      std::tie(r.erase_batched, r.insert_batched) = pairwise(
          [&] { t.erase_batch_block(sdkeys.data(), sdbatch, width); },
          [&] { t.insert_batch_block(sdkeys.data(), sdbatch, width); });
      sparse.push_back(r);
    };
    sparse_bench.template operator()<cuckoo_table<int_entry<>>>("cuckoo");
    sparse_bench.template operator()<hopscotch_table<int_entry<>, true>>(
        "hopscotch");
    sparse_bench.template operator()<chained_table<int_entry<>, true>>(
        "chained");

    std::printf("\nsparse family (capacity %zu, load 0.50), one worker, "
                "scalar vs batched block engine:\n",
                scap);
    std::printf("  %-10s | %17s | %17s | %17s\n", "", "find ns/op",
                "insert ns/op", "erase ns/op");
    std::printf("  %-10s | %8s %8s | %8s %8s | %8s %8s\n", "table", "scalar",
                "batched", "scalar", "batched", "scalar", "batched");
    for (const auto& r : sparse) {
      std::printf("  %-10s | %8.1f %8.1f | %8.1f %8.1f | %8.1f %8.1f\n", r.name,
                  r.find_scalar, r.find_batched, r.insert_scalar,
                  r.insert_batched, r.erase_scalar, r.erase_batched);
    }
    std::printf("  (shape: batched find should lead scalar by >= 1.3x for "
                "cuckoo at this load)\n");
  }

  // --- telemetry overhead guard --------------------------------------------
  //
  // The obs layer's contract: with PHCH_TELEMETRY compiled in and recording
  // enabled, the pipelined find at load 0.5 stays within 5% of the disabled
  // run. When the layer is compiled out (the default) both runs measure the
  // same object code, so off_ns == on_ns up to noise and the section doubles
  // as a noise floor for the comparison.
  double tele_off = 0, tele_on = 0;
  {
    table_t t(cap);
    const std::size_t fill = cap / 2;
    parallel_for(0, fill, [&](std::size_t i) { t.insert(pool[i]); });
    const auto qkeys = tabulate(qbatch, [&](std::size_t i) {
      return pool[hash64(i ^ 0xc2b2ae3d27d4eb4fULL) % fill];
    });
    std::vector<std::uint64_t> out(qbatch);
    const double per_q = 1e9 / static_cast<double>(qbatch);
    const bool was_enabled = obs::enabled();
    obs::set_enabled(false);
    tele_off = per_q * time_median([] {}, [&] {
      batch_detail::find_block_pipelined(t, qkeys.data(), qbatch, out.data(), width);
    });
    obs::set_enabled(true);
    tele_on = per_q * time_median([] {}, [&] {
      batch_detail::find_block_pipelined(t, qkeys.data(), qbatch, out.data(), width);
    });
    obs::set_enabled(was_enabled);
    std::printf("\ntelemetry overhead (pipelined find, load 0.50, %s):\n",
                obs::compiled ? "compiled in" : "compiled out");
    std::printf("  %-22s %8.1f ns/op\n", "recording off", tele_off);
    std::printf("  %-22s %8.1f ns/op   (%+.1f%%)\n", "recording on", tele_on,
                100.0 * (tele_on - tele_off) / tele_off);
  }

  // Occupancy-counter contention: every worker hammering one cache line vs
  // each worker hammering its own stripe.
  const std::size_t incs = scaled_size(std::size_t{1} << 22);
  std::atomic<std::int64_t> global{0};
  const double t_global = time_median([] {}, [&] {
    parallel_for(0, incs,
                 [&](std::size_t) { global.fetch_add(1, std::memory_order_relaxed); });
  });
  striped_counter striped;
  const double t_striped = time_median([&] { striped.reset(); },
                                       [&] {
                                         parallel_for(0, incs,
                                                      [&](std::size_t) { striped.increment(); });
                                       });
  const double g_ns = 1e9 * t_global / static_cast<double>(incs);
  const double s_ns = 1e9 * t_striped / static_cast<double>(incs);
  std::printf("\ncounter contention (%zu increments, %d threads):\n", incs,
              num_workers());
  std::printf("  %-22s %8.2f ns/inc\n", "shared atomic", g_ns);
  std::printf("  %-22s %8.2f ns/inc   (tables use this)\n", "striped counter", s_ns);
  std::printf("\nshape check: pipelined find should beat prefetch-ahead from load 0.5\n"
              "up, by more as probe chains lengthen; at 0.25 load the two are close.\n");

  FILE* f = std::fopen(json_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"batch_mlp\",\n  \"capacity\": %zu,\n", cap);
  std::fprintf(f, "  \"batch\": %zu,\n  \"width\": %zu,\n  \"reps\": %ld,\n", qbatch,
               width, reps());
  std::fprintf(f, "  \"loads\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f, "    {\"load\": %.2f, \"mean_probe\": %.3f, \"max_probe\": %zu,\n",
                 p.load, p.stats.mean_probe, p.stats.max_probe);
    auto emit = [&](const char* op, const engine_times& e, const char* tail) {
      std::fprintf(f,
                   "     \"%s\": {\"scalar_ns\": %.1f, \"prefetch_ns\": %.1f, "
                   "\"pipelined_ns\": %.1f}%s\n",
                   op, e.scalar, e.prefetch, e.pipelined, tail);
    };
    emit("find", p.find, ",");
    emit("insert", p.insert, ",");
    emit("erase", p.erase, "");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"tags\": {\"table\": \"nd_linear\", "
               "\"simd_backend\": \"%s\", \"fp_rate\": %.6f,\n"
               "    \"loads\": [\n",
               simd::backend_name(simd::best()), tag_fp_rate);
  for (std::size_t i = 0; i < tag_points.size(); ++i) {
    const auto& tp = tag_points[i];
    std::fprintf(f, "    {\"load\": %.2f, \"modes\": [\n", tp.load);
    for (std::size_t j = 0; j < tp.modes.size(); ++j) {
      const auto& m = tp.modes[j];
      std::fprintf(f,
                   "      {\"backend\": \"%s\", "
                   "\"find_hit\": {\"scalar_ns\": %.1f, \"pipelined_ns\": %.1f}, "
                   "\"find_miss\": {\"scalar_ns\": %.1f, \"pipelined_ns\": %.1f}}%s\n",
                   m.name, m.hit_scalar, m.hit_pipe, m.miss_scalar, m.miss_pipe,
                   j + 1 < tp.modes.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < tag_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"tombstone\": {\"capacity\": %zu, \"load\": 0.5,\n"
               "    \"find\": {\"scalar_ns\": %.1f, \"pipelined_ns\": %.1f},\n"
               "    \"insert\": {\"scalar_ns\": %.1f, \"pipelined_ns\": %.1f},\n"
               "    \"erase\": {\"scalar_ns\": %.1f, \"pipelined_ns\": %.1f}},\n",
               tcap, tomb_find.scalar, tomb_find.pipelined, tomb_insert.scalar,
               tomb_insert.pipelined, tomb_erase.scalar, tomb_erase.pipelined);
  std::fprintf(f,
               "  \"growable\": {\"initial_capacity\": 1024, \"n\": %zu, "
               "\"growths\": %zu,\n"
               "    \"insert\": {\"per_op_ns\": %.1f, \"batched_ns\": %.1f},\n"
               "    \"find\": {\"per_op_ns\": %.1f, \"batched_ns\": %.1f}},\n",
               grow_n, grow_growths, grow_insert.scalar, grow_insert.pipelined,
               grow_find.scalar, grow_find.pipelined);
  std::fprintf(f, "  \"sparse\": {\"capacity\": %zu, \"load\": 0.5, \"tables\": [\n",
               scap);
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    const auto& r = sparse[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\",\n"
                 "     \"find\": {\"scalar_ns\": %.1f, \"batched_ns\": %.1f},\n"
                 "     \"insert\": {\"scalar_ns\": %.1f, \"batched_ns\": %.1f},\n"
                 "     \"erase\": {\"scalar_ns\": %.1f, \"batched_ns\": %.1f}}%s\n",
                 r.name, r.find_scalar, r.find_batched, r.insert_scalar,
                 r.insert_batched, r.erase_scalar, r.erase_batched,
                 i + 1 < sparse.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");
  std::fprintf(f,
               "  \"counter\": {\"threads\": %d, \"increments\": %zu, "
               "\"shared_atomic_ns\": %.2f, \"striped_ns\": %.2f},\n",
               num_workers(), incs, g_ns, s_ns);
  std::fprintf(f,
               "  \"telemetry\": {\"compiled\": %s, \"off_ns\": %.2f, "
               "\"on_ns\": %.2f, \"overhead_pct\": %.2f,\n    \"counters\": ",
               obs::compiled ? "true" : "false", tele_off, tele_on,
               100.0 * (tele_on - tele_off) / tele_off);
  obs::write_counters_json(f, obs::snapshot(), "    ");
  // The probe-depth distribution behind the overhead numbers (empty when
  // telemetry is compiled out): what the "on" run actually recorded.
  std::fprintf(f, ",\n    \"probe_depth\": ");
  obs::write_hist_json(f, obs::table_hist_totals(obs::table_hist::probe_depth),
                       "    ");
  std::fprintf(f, "}\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}
