// Table 7: breadth-first search — serial, array-based, and hash-table-based
// (four backends) on 3D-grid, random, rMat graphs.
//
// Shape (paper, 40h): hash-based BFS with linearHash-D is 16-35% slower
// than the array-based version; linearHash-ND ≈ linearHash-D; cuckoo and
// chained clearly slower.
#include "bench_common.h"
#include "phch/apps/bfs.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"

using namespace phch;
using namespace phch::bench;

namespace {

using t32 = int_entry<std::uint32_t>;

void panel(const char* name, const graph::csr_graph& g, const double paper[6]) {
  print_header(name, g.num_edges());
  const double ts = time_median([] {}, [&] { apps::serial_bfs(g, 0); });
  const double ta = time_median([] {}, [&] { apps::array_bfs(g, 0); });
  const double td = time_median([] {}, [&] {
    apps::hash_bfs<deterministic_table<t32>>(g, 0);
  });
  const double tn = time_median([] {}, [&] { apps::hash_bfs<nd_linear_table<t32>>(g, 0); });
  const double tc = time_median([] {}, [&] {
    apps::hash_bfs<cuckoo_table<t32>>(g, 0, 2.0);
  });
  const double th = time_median([] {}, [&] {
    apps::hash_bfs<chained_table<t32, true>>(g, 0);
  });
  print_row_vs("serial", ts, paper[0]);
  print_row_vs("array", ta, paper[1]);
  print_row_vs("linearHash-D", td, paper[2]);
  print_row_vs("linearHash-ND", tn, paper[3]);
  print_row_vs("cuckooHash", tc, paper[4]);
  print_row_vs("chainedHash-CR", th, paper[5]);
  print_ratio("linearHash-D / array", td / ta, paper[2] / paper[1]);
  print_ratio("cuckooHash / linearHash-D", tc / td, paper[4] / paper[2]);
}

}  // namespace

int main() {
  std::printf("Table 7: breadth-first search (paper: 1e7-vertex graphs, 40h)\n");
  {
    std::size_t d = 1;
    while ((d + 1) * (d + 1) * (d + 1) <= scaled_size(250000)) ++d;
    // paper: serial, array, linearHash-D, linearHash-ND, cuckoo, chained-CR
    const double paper[6] = {0, 0.271, 0.367, 0.362, 0.454, 1.14};
    panel("3D-grid", graph::csr_graph::from_edges(d * d * d, graph::grid3d_edges(d)),
          paper);
  }
  {
    const std::size_t n = scaled_size(250000);
    const double paper[6] = {0, 0.169, 0.211, 0.204, 0.292, 0.343};
    panel("random", graph::csr_graph::from_edges(n, graph::random_k_edges(n, 5, 1)),
          paper);
  }
  {
    std::size_t lg = 1;
    while ((std::size_t{1} << (lg + 1)) <= scaled_size(1 << 18)) ++lg;
    const double paper[6] = {0, 0.225, 0.262, 0.256, 0.373, 0.439};
    panel("rMat", graph::csr_graph::from_edges(std::size_t{1} << lg,
                                               graph::rmat_edges(lg, scaled_size(1250000), 1)),
          paper);
  }
  return 0;
}
