// Figure 5: nanoseconds per operation on linearHash-D as a function of the
// load factor (table pre-filled to the load, then timed).
//
// Expected shape (paper): find/insert/delete cost grows slowly up to ~0.7
// load, then climbs rapidly toward full; elements-per-slot cost is flat.
#include <optional>

#include "bench_common.h"
#include "phch/core/deterministic_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"

using namespace phch;
using namespace phch::bench;

int main() {
  const std::size_t cap = round_up_pow2(scaled_size(1 << 21));
  const std::size_t batch = cap / 8;  // ops timed per measurement
  std::printf("Figure 5: per-op cost vs load factor, linearHash-D\n");
  std::printf("table capacity = %zu, %d threads (paper: 2^27 slots, 40h)\n", cap,
              num_workers());
  std::printf("  %6s %12s %12s %12s %12s\n", "load", "insert ns", "find ns",
              "delete ns", "elems ns/slot");

  // Distinct keys (int_entry hashes them, so sequential ids scatter) keep
  // the nominal load exact.
  const auto pool = tabulate(cap, [](std::size_t i) { return std::uint64_t{i + 1}; });

  for (const double load : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const std::size_t fill = static_cast<std::size_t>(load * static_cast<double>(cap));
    std::optional<deterministic_table<int_entry<>>> t;
    auto setup = [&] {
      t.emplace(cap);
      parallel_for(0, fill, [&](std::size_t i) { t->insert(pool[i]); });
    };
    setup();

    std::vector<std::uint8_t> sink(batch);
    const double t_find = time_median([] {}, [&] {
      parallel_for(0, batch, [&](std::size_t i) { sink[i] = t->contains(pool[i]); });
    });
    const double t_elems = time_median([] {}, [&] {
      sink[0] = t->elements().size() & 1;
    });
    // Insert a fresh batch of keys beyond the pool range, then delete it so
    // the load returns to nominal between reps. The batch shrinks near full
    // so the table never overflows.
    const std::size_t ins_batch = std::min(batch, (cap - fill) / 2 + 1);
    double t_ins = 0;
    double t_del = 0;
    for (long r = 0; r < reps(); ++r) {
      t_ins += time_once([&] {
        parallel_for(0, ins_batch,
                     [&](std::size_t i) { t->insert(cap + 1 + i); });
      });
      t_del += time_once([&] {
        parallel_for(0, ins_batch, [&](std::size_t i) { t->erase(cap + 1 + i); });
      });
    }
    t_ins /= static_cast<double>(reps());
    t_del /= static_cast<double>(reps());

    std::printf("  %6.2f %12.1f %12.1f %12.1f %12.2f\n", load,
                1e9 * t_ins / static_cast<double>(ins_batch),
                1e9 * t_find / static_cast<double>(batch),
                1e9 * t_del / static_cast<double>(ins_batch),
                1e9 * t_elems / static_cast<double>(cap));
  }
  std::printf("shape check (paper): costs rise slowly to ~0.7 load, then sharply; at\n"
              "0.95 load inserts/deletes are several times the 0.1-load cost.\n");
  return 0;
}
