// Table 5(a,b): suffix tree node insertion and pattern search with four
// table backends, on two English-like texts and one protein-like text
// (stand-ins for etext99 / rctail96 / sprot34.dat; see DESIGN.md §3).
//
// Shape (paper, 40h): linearHash-D within ~5% of linearHash-ND on inserts;
// cuckooHash ~1.6x slower; chainedHash-CR ~2x slower on inserts and ~30%
// slower on searches.
#include <optional>

#include "bench_common.h"
#include "bench_tables.h"
#include "phch/strings/suffix_tree.h"
#include "phch/utils/rand.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

std::vector<std::string> make_queries(const std::string& text, std::size_t q) {
  const rng r(7);
  std::vector<std::string> out(q);
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t len = 1 + r.ith_rand(2 * i, 50);
    if (i % 2 == 0) {
      out[i] = text.substr(r.ith_rand(2 * i + 1, text.size() - len), len);
    } else {
      out[i].resize(len);
      for (std::size_t c = 0; c < len; ++c)
        out[i][c] = static_cast<char>('a' + r.ith_rand(i * 64 + c, 26));
    }
  }
  return out;
}

template <typename Table>
std::pair<double, double> run_backend(const strings::suffix_tree_skeleton& skel,
                                      const std::vector<std::string>& queries) {
  std::optional<strings::suffix_tree<Table>> st;
  const double t_ins = time_median(
      [&] { st.emplace(skel); },  // copies the skeleton; table starts empty
      [&] { st->populate(); });
  std::vector<std::uint8_t> sink(queries.size());
  const double t_search = time_median([] {}, [&] {
    parallel_for(0, queries.size(),
                 [&](std::size_t i) { sink[i] = st->search(queries[i]); });
  });
  return {t_ins, t_search};
}

void panel(const char* name, const std::string& text, const double paper_ins[4],
           const double paper_search[4]) {
  const std::size_t q = std::min<std::size_t>(scaled_size(100000), text.size());
  print_header(name, text.size());
  const auto skel = strings::suffix_tree_skeleton::build(text);
  std::printf("  (%zu tree nodes; %zu queries)\n", skel.nodes.size(), q);
  const auto queries = make_queries(text, q);
  using cmin = pair_entry<combine_min>;
  const auto res = run_paper_backends<cmin>([&]<typename Table>(std::size_t) {
    return run_backend<Table>(skel, queries);
  });
  std::array<double, kNumPaperBackends> ins{}, search{};
  for (std::size_t i = 0; i < kNumPaperBackends; ++i) {
    ins[i] = res[i].first;
    search[i] = res[i].second;
  }
  std::printf("  insert:\n");
  print_backend_rows(ins, paper_ins);
  std::printf("  search:\n");
  print_backend_rows(search, paper_search);
  print_ratio("insert: D / ND", ins[0] / ins[1], paper_ins[0] / paper_ins[1]);
  print_ratio("search: chained / D", search[3] / search[0],
              paper_search[3] / paper_search[0]);
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(2000000);
  std::printf("Table 5: suffix tree insert & search (paper: ~110 MB texts, 1e6 "
              "queries, 40h)\n");
  {
    const double pi[4] = {0.120, 0.114, 0.184, 0.256};
    const double ps[4] = {0.023, 0.023, 0.026, 0.030};
    panel("etext99-like (English trigram)", workloads::trigram_text(n, 1), pi, ps);
  }
  {
    const double pi[4] = {0.117, 0.112, 0.177, 0.238};
    const double ps[4] = {0.015, 0.015, 0.017, 0.020};
    panel("rctail96-like (English trigram)", workloads::trigram_text(n, 2), pi, ps);
  }
  {
    const double pi[4] = {0.115, 0.109, 0.172, 0.235};
    const double ps[4] = {0.017, 0.017, 0.019, 0.023};
    panel("sprot34-like (protein)", workloads::protein_text(n, 3), pi, ps);
  }
  return 0;
}
