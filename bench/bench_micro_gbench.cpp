// google-benchmark microbenchmarks: single-operation costs of the core
// table and the parallel primitives it is built from, plus an old-vs-new
// scheduler comparison (flat epoch-broadcast pool vs work-stealing
// fork-join). Run without arguments this binary writes the scheduler
// comparison (and everything else it ran) to BENCH_scheduler.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/sort.h"
#include "phch/utils/rand.h"

using namespace phch;

namespace {

// --- single-threaded single-op costs on a pre-loaded table -----------------

template <typename Table>
void BM_TableFindHit(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  Table t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(i + 1);
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(1 + hash64(q++) % load_keys));
  }
}
BENCHMARK(BM_TableFindHit<deterministic_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindHit<nd_linear_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindHit<serial_table_hi<int_entry<>>>)->Arg(1 << 16);

template <typename Table>
void BM_TableFindMiss(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  Table t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(2 * i + 2);
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(2 * (hash64(q++) % load_keys) + 1));
  }
}
BENCHMARK(BM_TableFindMiss<deterministic_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindMiss<nd_linear_table<int_entry<>>>)->Arg(1 << 16);

void BM_InsertEraseCycle(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  deterministic_table<int_entry<>> t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(i + 1);
  std::uint64_t q = 0;
  for (auto _ : state) {
    const std::uint64_t k = (1ULL << 40) + (q++ & 1023);
    t.insert(k);
    t.erase(k);
  }
}
BENCHMARK(BM_InsertEraseCycle)->Arg(1 << 16);

void BM_WriteMin(benchmark::State& state) {
  std::uint64_t cell = ~0ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_min(&cell, hash64(i++)));
  }
}
BENCHMARK(BM_WriteMin);

void BM_Cas16(benchmark::State& state) {
  kv64 cell{0, 0};
  for (auto _ : state) {
    const kv64 cur = atomic_load(&cell);
    benchmark::DoNotOptimize(cas(&cell, cur, kv64{cur.k + 1, cur.v + 1}));
  }
}
BENCHMARK(BM_Cas16);

// --- primitives -------------------------------------------------------------

void BM_ScanAdd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 8; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(scan_add_inplace(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScanAdd)->Arg(1 << 18);

void BM_Pack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(
        n, [](std::size_t i) { return (hash64(i) & 3) == 0; },
        [](std::size_t i) { return i; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Pack)->Arg(1 << 18);

void BM_Elements(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  deterministic_table<int_entry<>> t(3 * n);
  for (std::size_t i = 0; i < n; ++i) t.insert(i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.elements());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Elements)->Arg(1 << 16);

// --- scheduler: flat broadcast pool vs work-stealing fork-join --------------
//
// `flat` is a faithful miniature of the pre-work-stealing runtime (epoch
// broadcast pool, dynamic chunk claiming, nested constructs run serially) so
// the old and new substrates can be compared on the same binary. The
// "Nested" pair is the headline: under the flat pool the inner sorts run
// fully serial, under work stealing they keep their parallelism.

namespace flat {

class pool {
 public:
  explicit pool(int p) : num_workers_(p) {
    for (int id = 1; id < p; ++id) {
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  ~pool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }

  int num_workers() const { return num_workers_; }

  void execute(const std::function<void(int)>& f) {
    if (tl_in_parallel || num_workers_ == 1) {
      f(0);  // nested job (or no pool): run the whole job inline
      return;
    }
    std::lock_guard<std::mutex> job_lock(job_mutex_);
    {
      std::lock_guard<std::mutex> lock(m_);
      job_ = &f;
      pending_ = num_workers_ - 1;
      ++epoch_;
    }
    cv_start_.notify_all();
    tl_in_parallel = true;
    f(0);
    tl_in_parallel = false;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_done_.wait(lock, [&] { return pending_ == 0; });
      job_ = nullptr;
    }
  }

  static thread_local bool tl_in_parallel;

 private:
  void worker_loop(int id) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
        if (shutdown_) return;
        seen_epoch = epoch_;
        job = job_;
      }
      tl_in_parallel = true;
      (*job)(id);
      tl_in_parallel = false;
      {
        std::lock_guard<std::mutex> lock(m_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  int num_workers_;
  std::vector<std::thread> threads_;
  std::mutex job_mutex_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

thread_local bool pool::tl_in_parallel = false;

pool& get_pool() {
  static pool instance(num_workers());
  return instance;
}

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f, std::size_t grain = 0) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  pool& P = get_pool();
  const std::size_t p = static_cast<std::size_t>(P.num_workers());
  if (grain == 0) grain = (n + p * kDefaultGrainTarget - 1) / (p * kDefaultGrainTarget);
  if (grain < 1) grain = 1;
  if (p == 1 || n <= grain || pool::tl_in_parallel) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::atomic<std::size_t> cursor{lo};
  P.execute([&](int) {
    for (;;) {
      const std::size_t start = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (start >= hi) return;
      const std::size_t end = start + grain < hi ? start + grain : hi;
      for (std::size_t i = start; i < end; ++i) f(i);
    }
  });
}

template <typename A, typename B>
void par_do(A&& a, B&& b) {
  pool& P = get_pool();
  if (P.num_workers() == 1 || pool::tl_in_parallel) {
    a();
    b();
    return;
  }
  std::atomic<int> next{0};
  P.execute([&](int) {
    for (;;) {
      const int task = next.fetch_add(1, std::memory_order_relaxed);
      if (task > 1) return;
      if (task == 0)
        a();
      else
        b();
    }
  });
}

template <typename T>
T scan_add_inplace(std::vector<T>& a) {
  const std::size_t n = a.size();
  if (n == 0) return T{};
  const std::size_t num_blocks =
      static_cast<std::size_t>(get_pool().num_workers()) * kDefaultGrainTarget;
  const std::size_t bsize = n / num_blocks + 1;
  const std::size_t blocks = (n + bsize - 1) / bsize;
  std::vector<T> sums(blocks);
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t s = b * bsize, e = std::min(s + bsize, n);
        T acc{};
        for (std::size_t i = s; i < e; ++i) acc += a[i];
        sums[b] = acc;
      },
      1);
  T total{};
  for (std::size_t b = 0; b < blocks; ++b) {
    const T next = total + sums[b];
    sums[b] = total;
    total = next;
  }
  parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t s = b * bsize, e = std::min(s + bsize, n);
        T acc = sums[b];
        for (std::size_t i = s; i < e; ++i) {
          const T next = acc + a[i];
          a[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

// The old blocked merge sort: parallel block sorts, then log rounds of
// pairwise std::inplace_merge (each merge on one worker).
template <typename T>
void parallel_sort(std::vector<T>& a) {
  const std::size_t n = a.size();
  const std::size_t p = static_cast<std::size_t>(get_pool().num_workers());
  if (n < 4096 || p == 1 || pool::tl_in_parallel) {
    std::sort(a.begin(), a.end());
    return;
  }
  std::size_t num_blocks = 1;
  while (num_blocks < 2 * p) num_blocks <<= 1;
  const std::size_t bsize = (n + num_blocks - 1) / num_blocks;
  auto block_begin = [&](std::size_t b) { return std::min(b * bsize, n); };
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::sort(a.begin() + static_cast<std::ptrdiff_t>(block_begin(b)),
                  a.begin() + static_cast<std::ptrdiff_t>(block_begin(b + 1)));
      },
      1);
  for (std::size_t width = 1; width < num_blocks; width <<= 1) {
    parallel_for(
        0, num_blocks / (2 * width),
        [&](std::size_t pair) {
          const std::size_t lo = block_begin(pair * 2 * width);
          const std::size_t mid = block_begin(pair * 2 * width + width);
          const std::size_t hi = block_begin(pair * 2 * width + 2 * width);
          std::inplace_merge(a.begin() + static_cast<std::ptrdiff_t>(lo),
                             a.begin() + static_cast<std::ptrdiff_t>(mid),
                             a.begin() + static_cast<std::ptrdiff_t>(hi));
        },
        1);
  }
}

}  // namespace flat

void BM_Scheduler_ParallelFor_Flat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    flat::parallel_for(0, n, [&](std::size_t i) { out[i] = i * 0x9e3779b97f4a7c15ULL; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_ParallelFor_Flat)->Arg(1 << 20)->UseRealTime();

void BM_Scheduler_ParallelFor_WS(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    parallel_for(0, n, [&](std::size_t i) { out[i] = i * 0x9e3779b97f4a7c15ULL; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_ParallelFor_WS)->Arg(1 << 20)->UseRealTime();

void BM_Scheduler_Scan_Flat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 8; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(flat::scan_add_inplace(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_Scan_Flat)->Arg(1 << 20)->UseRealTime();

void BM_Scheduler_Scan_WS(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 8; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(scan_add_inplace(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_Scan_WS)->Arg(1 << 20)->UseRealTime();

void BM_Scheduler_Sort_Flat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i); });
    state.ResumeTiming();
    flat::parallel_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_Sort_Flat)->Arg(1 << 20)->UseRealTime();

void BM_Scheduler_Sort_WS(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i); });
    state.ResumeTiming();
    parallel_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Scheduler_Sort_WS)->Arg(1 << 20)->UseRealTime();

// Nested par_do of two parallel sorts: the flat pool gives the two branches
// one worker each and their inner sorts run serially; work stealing keeps
// all workers busy across both branches.
void BM_Scheduler_NestedParDoSort_Flat(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto u = tabulate(n, [](std::size_t i) { return hash64(i); });
    auto v = tabulate(n, [n](std::size_t i) { return hash64(i + n); });
    state.ResumeTiming();
    flat::par_do([&] { flat::parallel_sort(u); }, [&] { flat::parallel_sort(v); });
    benchmark::DoNotOptimize(u.data());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_Scheduler_NestedParDoSort_Flat)->Arg(1 << 19)->UseRealTime();

void BM_Scheduler_NestedParDoSort_WS(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto u = tabulate(n, [](std::size_t i) { return hash64(i); });
    auto v = tabulate(n, [n](std::size_t i) { return hash64(i + n); });
    state.ResumeTiming();
    par_do([&] { parallel_sort(u); }, [&] { parallel_sort(v); });
    benchmark::DoNotOptimize(u.data());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_Scheduler_NestedParDoSort_WS)->Arg(1 << 19)->UseRealTime();

}  // namespace

// Custom main: default to emitting BENCH_scheduler.json (JSON format) so CI
// and the acceptance harness get a machine-readable old-vs-new comparison,
// while still honoring explicit --benchmark_out flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_scheduler.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
