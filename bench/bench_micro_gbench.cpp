// google-benchmark microbenchmarks: single-operation costs of the core
// table and the parallel primitives it is built from.
#include <benchmark/benchmark.h>

#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

using namespace phch;

namespace {

// --- single-threaded single-op costs on a pre-loaded table -----------------

template <typename Table>
void BM_TableFindHit(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  Table t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(i + 1);
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(1 + hash64(q++) % load_keys));
  }
}
BENCHMARK(BM_TableFindHit<deterministic_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindHit<nd_linear_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindHit<serial_table_hi<int_entry<>>>)->Arg(1 << 16);

template <typename Table>
void BM_TableFindMiss(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  Table t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(2 * i + 2);
  std::uint64_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(2 * (hash64(q++) % load_keys) + 1));
  }
}
BENCHMARK(BM_TableFindMiss<deterministic_table<int_entry<>>>)->Arg(1 << 16);
BENCHMARK(BM_TableFindMiss<nd_linear_table<int_entry<>>>)->Arg(1 << 16);

void BM_InsertEraseCycle(benchmark::State& state) {
  const std::size_t load_keys = static_cast<std::size_t>(state.range(0));
  deterministic_table<int_entry<>> t(3 * load_keys);
  for (std::size_t i = 0; i < load_keys; ++i) t.insert(i + 1);
  std::uint64_t q = 0;
  for (auto _ : state) {
    const std::uint64_t k = (1ULL << 40) + (q++ & 1023);
    t.insert(k);
    t.erase(k);
  }
}
BENCHMARK(BM_InsertEraseCycle)->Arg(1 << 16);

void BM_WriteMin(benchmark::State& state) {
  std::uint64_t cell = ~0ULL;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(write_min(&cell, hash64(i++)));
  }
}
BENCHMARK(BM_WriteMin);

void BM_Cas16(benchmark::State& state) {
  kv64 cell{0, 0};
  for (auto _ : state) {
    const kv64 cur = atomic_load(&cell);
    benchmark::DoNotOptimize(cas(&cell, cur, kv64{cur.k + 1, cur.v + 1}));
  }
}
BENCHMARK(BM_Cas16);

// --- primitives -------------------------------------------------------------

void BM_ScanAdd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 8; });
    state.ResumeTiming();
    benchmark::DoNotOptimize(scan_add_inplace(v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScanAdd)->Arg(1 << 18);

void BM_Pack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack(
        n, [](std::size_t i) { return (hash64(i) & 3) == 0; },
        [](std::size_t i) { return i; }));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Pack)->Arg(1 << 18);

void BM_Elements(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  deterministic_table<int_entry<>> t(3 * n);
  for (std::size_t i = 0; i < n; ++i) t.insert(i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.elements());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Elements)->Arg(1 << 16);

}  // namespace
