// Figure 4(a,b): speedup of linearHash-D over serialHash-HI as thread count
// grows, for randomSeq-int (a) and trigramSeq-pairInt (b), for each of
// Insert / Find Random / Delete Random / Elements.
//
// On this machine the thread sweep covers 1 .. hardware threads (the paper
// swept 1 .. 80 hyper-threads on 40 cores); the expected shape is
// monotone-increasing speedup for all four operations. With only one
// hardware core the "speedup" stays near (or below) 1 — oversubscription
// measures overhead, not parallelism; see EXPERIMENTS.md.
#include <optional>

#include "bench_common.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

struct four {
  double insert, find_rand, del_rand, elements;
};

template <typename Table, bool Concurrent, typename V, typename KeyOf>
four run_ops(const std::vector<V>& ins, const std::vector<V>& rnd, std::size_t cap,
             KeyOf key_of) {
  std::optional<Table> t;
  auto fill = [&] {
    if constexpr (Concurrent) {
      parallel_for(0, ins.size(), [&](std::size_t i) { t->insert(ins[i]); });
    } else {
      for (const auto& v : ins) t->insert(v);
    }
  };
  four r{};
  r.insert = time_median([&] { t.emplace(cap); }, fill);
  std::vector<std::uint8_t> sink(rnd.size());
  r.find_rand = time_median([] {}, [&] {
    if constexpr (Concurrent) {
      parallel_for(0, rnd.size(),
                   [&](std::size_t i) { sink[i] = t->contains(key_of(rnd[i])); });
    } else {
      for (std::size_t i = 0; i < rnd.size(); ++i) sink[i] = t->contains(key_of(rnd[i]));
    }
  });
  r.elements = time_median([] {}, [&] { sink[0] = t->elements().size() & 1; });
  r.del_rand = time_median(
      [&] {
        t.emplace(cap);
        fill();
      },
      [&] {
        if constexpr (Concurrent) {
          parallel_for(0, rnd.size(), [&](std::size_t i) { t->erase(key_of(rnd[i])); });
        } else {
          for (const auto& v : rnd) t->erase(key_of(v));
        }
      });
  return r;
}

template <typename Traits, typename V, typename KeyOf>
void panel(const char* name, const std::vector<V>& ins, const std::vector<V>& rnd,
           KeyOf key_of) {
  const std::size_t cap = round_up_pow2(2 * ins.size() + 16);
  std::printf("\n--- Figure 4%s ---\n", name);
  const four serial =
      run_ops<serial_table_hi<Traits>, false>(ins, rnd, cap, key_of);
  std::printf("  serialHash-HI baseline: ins %.3fs findR %.3fs delR %.3fs elems %.3fs\n",
              serial.insert, serial.find_rand, serial.del_rand, serial.elements);
  std::printf("  %8s %10s %10s %10s %10s   (speedup vs serialHash-HI)\n", "threads",
              "insert", "findR", "delR", "elems");
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  const int max_p = std::max(original, 4);
  for (int p = 1; p <= max_p; p *= 2) {
    sched.set_num_workers(p);
    const four m = run_ops<deterministic_table<Traits>, true>(ins, rnd, cap, key_of);
    std::printf("  %8d %10.2f %10.2f %10.2f %10.2f\n", p, serial.insert / m.insert,
                serial.find_rand / m.find_rand, serial.del_rand / m.del_rand,
                serial.elements / m.elements);
  }
  sched.set_num_workers(original);
  std::printf("  paper (40 cores, 80 hyper-threads): insert ~23x, find ~35x, "
              "delete ~23x, elements ~19x on randomSeq-int; up to 52x overall\n");
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(1000000);
  std::printf("Figure 4: speedup of linearHash-D over serialHash-HI\n");
  std::printf("n = %zu (paper: 1e8, table 2^28)\n", n);
  {
    const auto ins = workloads::random_int_seq(n, 1);
    const auto rnd = workloads::random_int_seq(n, 2);
    panel<int_entry<>>("(a): randomSeq-int", ins, rnd, [](std::uint64_t v) { return v; });
  }
  {
    const auto ins = workloads::trigram_pair_seq(n, 1);
    const auto rnd = workloads::trigram_pair_seq(n, 2);
    panel<string_pair_entry>("(b): trigramSeq-pairInt", ins.entries, rnd.entries,
                             [](const string_kv* v) { return v->key; });
  }
  return 0;
}
