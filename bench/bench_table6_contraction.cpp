// Table 6: one round of edge contraction (relabeled-edge insertion with
// additive weight combining + ELEMENTS()) on 3D-grid, random, rMat graphs.
//
// Shape (paper, 40h): linearHash-D ~13-16% slower than linearHash-ND (the
// D table must double-word-CAS whole pairs where ND can xadd the weight in
// place); cuckoo ~1.7-2x and chained-CR ~3.5x slower than D.
#include "bench_common.h"
#include "phch/apps/edge_contraction.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"

using namespace phch;
using namespace phch::bench;

namespace {

void panel(const char* name, std::size_t n, const std::vector<graph::edge>& edges,
           const double paper[4]) {
  print_header(name, edges.size());
  const auto wedges = graph::with_random_weights(edges, 1000, 3);
  const auto labels = apps::matching_labels(n, edges);  // untimed, as in the paper
  // Paper: table size 4/3 * #edges rounded to a power of two.
  const std::size_t cap = round_up_pow2(edges.size() + edges.size() / 3);
  using add = pair_entry<combine_add>;
  const double d = time_median([] {}, [&] {
    apps::contract_edges<deterministic_table<add>>(wedges, labels, cap);
  });
  const double nd = time_median([] {}, [&] {
    apps::contract_edges<nd_linear_table<add>>(wedges, labels, cap);
  });
  const double ck = time_median([] {}, [&] {
    apps::contract_edges<cuckoo_table<add>>(wedges, labels, 2 * cap);
  });
  const double ch = time_median([] {}, [&] {
    apps::contract_edges<chained_table<add, true>>(wedges, labels, cap);
  });
  print_row_vs("linearHash-D", d, paper[0]);
  print_row_vs("linearHash-ND", nd, paper[1]);
  print_row_vs("cuckooHash", ck, paper[2]);
  print_row_vs("chainedHash-CR", ch, paper[3]);
  print_ratio("linearHash-D / linearHash-ND", d / nd, paper[0] / paper[1]);
  print_ratio("chainedHash-CR / linearHash-D", ch / d, paper[3] / paper[0]);
}

}  // namespace

int main() {
  std::printf("Table 6: edge contraction round (paper: 1e7-vertex graphs, 40h)\n");
  {
    std::size_t d = 1;
    while ((d + 1) * (d + 1) * (d + 1) <= scaled_size(150000)) ++d;
    const double paper[4] = {0.154, 0.136, 0.269, 0.550};
    panel("3D-grid", d * d * d, graph::grid3d_edges(d), paper);
  }
  {
    const std::size_t n = scaled_size(150000);
    const double paper[4] = {0.265, 0.229, 0.447, 0.907};
    panel("random", n, graph::random_k_edges(n, 5, 1), paper);
  }
  {
    std::size_t lg = 1;
    while ((std::size_t{1} << (lg + 1)) <= scaled_size(1 << 18)) ++lg;
    const double paper[4] = {0.272, 0.235, 0.455, 0.917};
    panel("rMat", std::size_t{1} << lg,
          graph::rmat_edges(lg, scaled_size(750000), 1), paper);
  }
  return 0;
}
