// Figure 3(a,b): the paper's headline bar charts — Insert, Find Random,
// Delete Random, Elements on 40 cores for randomSeq-int (a) and
// trigramSeq-pairInt (b), across all implementations.
//
// We reproduce the two panels and, for each, compare the *shape* against
// the paper's reported 40-core numbers: the ratio of every implementation
// to linearHash-D. Absolute times differ (different machine and scale);
// ratios are what the figure communicates.
#include <optional>

#include "bench_common.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;
using namespace phch::bench;

namespace {

struct fig3_ops {
  double insert = 0, find_rand = 0, del_rand = 0, elements = 0;
};

// Paper Table 1, (40h) columns, seconds.
struct paper_row {
  const char* impl;
  fig3_ops random_int;
  fig3_ops trigram_pair;
};
constexpr paper_row kPaper[] = {
    {"linearHash-D", {0.171, 0.114, 0.211, 0.0511}, {0.204, 0.219, 0.109, 0.056}},
    {"linearHash-ND", {0.170, 0.119, 0.213, 0.0504}, {0.174, 0.190, 0.109, 0.0554}},
    {"cuckooHash", {0.364, 0.210, 0.210, 0.0791}, {0.242, 0.240, 0.166, 0.0866}},
    {"chainedHash", {0.774, 0.356, 0.630, 0.159}, {18.4, 0.364, 2.70, 0.0789}},
    {"chainedHash-CR", {0.708, 0.359, 0.571, 0.165}, {0.438, 0.365, 0.137, 0.0785}},
    {"hopscotchHash", {0.349, 0.173, 0.302, 0.114}, {2.36, 0.236, 1.29, 0.275}},
    {"hopscotchHash-PC", {0.345, 0.151, 0.301, 0.112}, {2.45, 0.241, 1.34, 0.274}},
};

template <typename Table, typename V, typename KeyOf>
fig3_ops run_one(const std::vector<V>& ins, const std::vector<V>& rnd, std::size_t cap,
                 KeyOf key_of) {
  std::optional<Table> t;
  auto fill = [&] {
    parallel_for(0, ins.size(), [&](std::size_t i) { t->insert(ins[i]); });
  };
  fig3_ops r;
  r.insert = time_median([&] { t.emplace(cap); }, fill);
  std::vector<std::uint8_t> sink(rnd.size());
  r.find_rand = time_median([] {}, [&] {
    parallel_for(0, rnd.size(),
                 [&](std::size_t i) { sink[i] = t->contains(key_of(rnd[i])); });
  });
  r.elements = time_median([] {}, [&] { sink[0] = t->elements().size() & 1; });
  r.del_rand = time_median(
      [&] {
        t.emplace(cap);
        fill();
      },
      [&] {
        parallel_for(0, rnd.size(), [&](std::size_t i) { t->erase(key_of(rnd[i])); });
      });
  return r;
}

void report(const char* panel, const std::vector<fig3_ops>& measured,
            const fig3_ops paper_row::*panel_sel) {
  std::printf("\n--- Figure 3%s ---\n", panel);
  std::printf("  %-18s %8s %8s %8s %8s   (ratio to linearHash-D: measured | paper)\n",
              "impl", "insert", "findR", "delR", "elems");
  const fig3_ops& base = measured[0];
  const fig3_ops& pbase = kPaper[0].*panel_sel;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const fig3_ops& m = measured[i];
    const fig3_ops& p = kPaper[i].*panel_sel;
    std::printf("  %-18s %8.3f %8.3f %8.3f %8.3f   ins %4.2f|%4.2f  del %4.2f|%4.2f\n",
                kPaper[i].impl, m.insert, m.find_rand, m.del_rand, m.elements,
                m.insert / base.insert, p.insert / pbase.insert,
                m.del_rand / base.del_rand, p.del_rand / pbase.del_rand);
  }
}

}  // namespace

int main() {
  const std::size_t n = scaled_size(1000000);
  std::printf("Figure 3: hash table comparison panels (paper: 1e8 ops, 40h threads)\n");
  std::printf("n = %zu, threads = %d\n", n, num_workers());

  {
    const auto ins = workloads::random_int_seq(n, 1);
    const auto rnd = workloads::random_int_seq(n, 2);
    const std::size_t cap = round_up_pow2(2 * n + 16);
    auto kf = [](std::uint64_t v) { return v; };
    std::vector<fig3_ops> m;
    m.push_back(run_one<deterministic_table<int_entry<>>>(ins, rnd, cap, kf));
    m.push_back(run_one<nd_linear_table<int_entry<>>>(ins, rnd, cap, kf));
    m.push_back(run_one<cuckoo_table<int_entry<>>>(ins, rnd, cap, kf));
    m.push_back(run_one<chained_table<int_entry<>, false>>(ins, rnd, cap, kf));
    m.push_back(run_one<chained_table<int_entry<>, true>>(ins, rnd, cap, kf));
    m.push_back(run_one<hopscotch_table<int_entry<>, true>>(ins, rnd, cap, kf));
    m.push_back(run_one<hopscotch_table<int_entry<>, false>>(ins, rnd, cap, kf));
    report("(a): randomSeq-int", m, &paper_row::random_int);
  }
  {
    const auto ins = workloads::trigram_pair_seq(n, 1);
    const auto rnd = workloads::trigram_pair_seq(n, 2);
    const std::size_t cap = round_up_pow2(2 * n + 16);
    auto kf = [](const string_kv* v) { return v->key; };
    std::vector<fig3_ops> m;
    m.push_back(
        run_one<deterministic_table<string_pair_entry>>(ins.entries, rnd.entries, cap, kf));
    m.push_back(
        run_one<nd_linear_table<string_pair_entry>>(ins.entries, rnd.entries, cap, kf));
    m.push_back(
        run_one<cuckoo_table<string_pair_entry>>(ins.entries, rnd.entries, cap, kf));
    m.push_back(run_one<chained_table<string_pair_entry, false>>(ins.entries,
                                                                 rnd.entries, cap, kf));
    m.push_back(run_one<chained_table<string_pair_entry, true>>(ins.entries, rnd.entries,
                                                                cap, kf));
    m.push_back(run_one<hopscotch_table<string_pair_entry, true>>(ins.entries,
                                                                  rnd.entries, cap, kf));
    m.push_back(run_one<hopscotch_table<string_pair_entry, false>>(ins.entries,
                                                                   rnd.entries, cap, kf));
    report("(b): trigramSeq-pairInt", m, &paper_row::trigram_pair);
  }
  return 0;
}
