// Remove-duplicates tool over the paper's input distributions (§5/§6).
//
//   ./dedup_tool [n] [uniform|expt|trigram]
//
// Runs the remove-duplicates application with the deterministic table and
// the non-deterministic linear-probing baseline, reporting times and
// verifying that the deterministic output is reproducible. Inserts go
// through the software-pipelined batch engine (core/batch_ops.h); the
// number of in-flight probes per worker is tunable with PHCH_BATCH_WIDTH.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "phch/apps/remove_duplicates.h"
#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_common.h"
#include "phch/utils/timer.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;

// String keys are stored by pointer; equal contents at different addresses
// are the same key, so reproducibility is judged on contents.
static bool same_key(const char* a, const char* b) { return std::strcmp(a, b) == 0; }
static bool same_key(std::uint64_t a, std::uint64_t b) { return a == b; }

template <typename Table, typename Seq>
static void run(const char* label, const Seq& input, std::size_t cap) {
  timer t;
  const auto out = apps::remove_duplicates<Table>(input, cap);
  const double first = t.elapsed();
  t.reset();
  const auto again = apps::remove_duplicates<Table>(input, cap);
  const double second = t.elapsed();
  const bool stable =
      out.size() == again.size() &&
      std::equal(out.begin(), out.end(), again.begin(),
                 [](const auto& a, const auto& b) { return same_key(a, b); });
  std::printf("  %-16s %9zu unique   %.3fs / %.3fs   reproducible order: %s\n", label,
              out.size(), first, second, stable ? "yes" : "no");
}

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const char* dist = argc > 2 ? argv[2] : "uniform";
  const std::size_t cap = round_up_pow2(2 * n);
  std::printf("dedup_tool: n = %zu, distribution = %s, %d threads, "
              "batch width %zu\n",
              n, dist, num_workers(), batch_width());

  if (std::strcmp(dist, "trigram") == 0) {
    const auto words = workloads::trigram_string_seq(n, 1);
    run<deterministic_table<string_entry>>("linearHash-D", words.keys, cap);
    run<nd_linear_table<string_entry>>("linearHash-ND", words.keys, cap);
  } else if (std::strcmp(dist, "expt") == 0) {
    const auto seq = workloads::expt_int_seq(n, 1);
    run<deterministic_table<int_entry<>>>("linearHash-D", seq, cap);
    run<nd_linear_table<int_entry<>>>("linearHash-ND", seq, cap);
  } else {
    const auto seq = workloads::random_int_seq(n, 1);
    run<deterministic_table<int_entry<>>>("linearHash-D", seq, cap);
    run<nd_linear_table<int_entry<>>>("linearHash-ND", seq, cap);
  }
  std::printf("note: the ND table returns the right *set*, but its order can\n"
              "      change run to run; the deterministic table's cannot.\n");
  return 0;
}
