// Graph traversal demo (§5 BFS + spanning forest, Figure 2).
//
//   ./graph_search [n] [grid|random|rmat]
//
// Builds a graph, runs the serial, array-based, and hash-table-based BFS
// and spanning forest implementations, reports times, and checks that the
// deterministic variants agree exactly.
#include <cinttypes>
#include <set>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "phch/apps/bfs.h"
#include "phch/apps/connected_components.h"
#include "phch/apps/spanning_forest.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/utils/timer.h"
#include "phch/graph/generators.h"

using namespace phch;
using graph::csr_graph;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500000;
  const char* kind = argc > 2 ? argv[2] : "random";

  std::vector<graph::edge> edges;
  std::size_t nv = n;
  if (std::strcmp(kind, "grid") == 0) {
    std::size_t d = 1;
    while ((d + 1) * (d + 1) * (d + 1) <= n) ++d;
    nv = d * d * d;
    edges = graph::grid3d_edges(d);
  } else if (std::strcmp(kind, "rmat") == 0) {
    std::size_t lg = 1;
    while ((std::size_t{1} << (lg + 1)) <= n) ++lg;
    nv = std::size_t{1} << lg;
    edges = graph::rmat_edges(lg, 5 * n);
  } else {
    edges = graph::random_k_edges(n, 5);
  }
  timer t;
  const auto g = csr_graph::from_edges(nv, edges);
  std::printf("graph_search: %s graph, %zu vertices, %zu edges (built in %.2fs), %d threads\n",
              kind, g.num_vertices(), g.num_edges(), t.elapsed(), num_workers());

  // --- BFS -----------------------------------------------------------------
  t.reset();
  const auto serial = apps::serial_bfs(g, 0);
  std::printf("  BFS serial           %.3fs\n", t.elapsed());
  t.reset();
  const auto arr = apps::array_bfs(g, 0);
  std::printf("  BFS array            %.3fs\n", t.elapsed());
  t.reset();
  const auto hashed =
      apps::hash_bfs<deterministic_table<int_entry<std::uint32_t>>>(g, 0);
  std::printf("  BFS linearHash-D     %.3fs   (parents identical to array: %s)\n",
              t.elapsed(), arr == hashed ? "yes" : "NO");
  std::size_t reached = 0;
  for (const auto p : hashed) reached += p != apps::kNotReached;
  std::printf("  reached %zu vertices from the root\n", reached);

  // --- spanning forest -------------------------------------------------------
  t.reset();
  const auto fs = apps::serial_spanning_forest(g.num_vertices(), edges);
  std::printf("  SF  serial           %.3fs   (%zu edges)\n", t.elapsed(), fs.size());
  t.reset();
  const auto fa = apps::array_spanning_forest(g.num_vertices(), edges);
  std::printf("  SF  array            %.3fs\n", t.elapsed());
  t.reset();
  const auto fh = apps::hash_spanning_forest<
      deterministic_table<packed_pair_entry<combine_min>>>(g.num_vertices(), edges);
  std::printf("  SF  linearHash-D     %.3fs   (forest identical to array: %s)\n",
              t.elapsed(), fa == fh ? "yes" : "NO");

  // --- connected components by contraction --------------------------------
  t.reset();
  apps::cc_stats cc;
  const auto comp = apps::connected_components<
      deterministic_table<pair_entry<combine_add>>>(g.num_vertices(), edges, &cc);
  const auto ref = apps::serial_connected_components(g.num_vertices(), edges);
  std::set<std::uint32_t> dref(ref.begin(), ref.end());
  std::printf("  CC  contraction      %.3fs   (%zu components in %zu rounds, exact: %s)\n",
              t.elapsed(), cc.num_components, cc.rounds,
              cc.num_components == dref.size() ? "yes" : "NO");
  return 0;
}
