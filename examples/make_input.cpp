// Input generator tool: writes the paper's workloads in PBBS-compatible
// file formats, so the same data can be fed to this library's tools or to
// original PBBS binaries.
//
//   ./make_input -kind <kind> -n <n> -seed <s> -o <path>
//
// kinds: random-int, expt-int, pair-int, grid3d (n = side), random-graph,
//        rmat (n = lg vertices, -m edges), cube-points, kuzmin-points,
//        english-text, protein-text
#include <cstdio>
#include <string>

#include "phch/geometry/point_generators.h"
#include "phch/graph/generators.h"
#include "phch/io/pbbs_io.h"
#include "phch/utils/cmdline.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

using namespace phch;

int main(int argc, char** argv) {
  const cmdline cl(argc, argv);
  const std::string kind = cl.get_string("-kind", "random-int");
  const auto n = static_cast<std::size_t>(cl.get_long("-n", 1000000));
  const auto seed = static_cast<std::uint64_t>(cl.get_long("-seed", 1));
  const std::string out = cl.get_string("-o", "input.dat");

  if (kind == "random-int") {
    io::write_int_seq(out, workloads::random_int_seq(n, seed));
  } else if (kind == "expt-int") {
    io::write_int_seq(out, workloads::expt_int_seq(n, seed));
  } else if (kind == "pair-int") {
    io::write_pair_seq(out, workloads::random_pair_seq(n, seed));
  } else if (kind == "grid3d") {
    io::write_edges(out, graph::grid3d_edges(n));
  } else if (kind == "random-graph") {
    const auto k = static_cast<std::size_t>(cl.get_long("-k", 5));
    io::write_edges(out, graph::random_k_edges(n, k, seed));
  } else if (kind == "rmat") {
    const auto m = static_cast<std::size_t>(cl.get_long("-m", 5 * (1ULL << n)));
    io::write_edges(out, graph::rmat_edges(n, m, seed));
  } else if (kind == "weighted-rmat") {
    const auto m = static_cast<std::size_t>(cl.get_long("-m", 5 * (1ULL << n)));
    io::write_weighted_edges(
        out, graph::with_random_weights(graph::rmat_edges(n, m, seed), 1 << 20, seed));
  } else if (kind == "cube-points") {
    io::write_points(out, geometry::cube2d_points(n, seed));
  } else if (kind == "kuzmin-points") {
    io::write_points(out, geometry::kuzmin_points(n, seed));
  } else if (kind == "english-text") {
    io::write_text(out, workloads::trigram_text(n, seed));
  } else if (kind == "protein-text") {
    io::write_text(out, workloads::protein_text(n, seed));
  } else {
    std::fprintf(stderr,
                 "unknown -kind '%s'\nkinds: random-int expt-int pair-int grid3d "
                 "random-graph rmat weighted-rmat cube-points kuzmin-points "
                 "english-text protein-text\n",
                 kind.c_str());
    return 1;
  }
  std::printf("wrote %s (%s, n=%zu, seed=%llu)\n", out.c_str(), kind.c_str(), n,
              static_cast<unsigned long long>(seed));
  return 0;
}
