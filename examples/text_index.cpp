// Suffix-tree text index (§5): build the tree (child maps in the
// deterministic hash table), then answer substring queries.
//
//   ./text_index [text_chars] [num_queries] [english|protein]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "phch/core/deterministic_table.h"
#include "phch/strings/suffix_tree.h"
#include "phch/utils/rand.h"
#include "phch/utils/timer.h"
#include "phch/workloads/trigram.h"

using namespace phch;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const std::size_t q = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  const char* kind = argc > 3 ? argv[3] : "english";

  const std::string text = std::strcmp(kind, "protein") == 0
                               ? workloads::protein_text(n, 1)
                               : workloads::trigram_text(n, 1);
  std::printf("text_index: %zu chars of %s text, %d threads\n", n, kind, num_workers());

  timer t;
  auto skel = strings::suffix_tree_skeleton::build(text);
  std::printf("  skeleton (SA + LCP + tree): %.2fs, %zu nodes\n", t.elapsed(),
              skel.nodes.size());

  t.reset();
  strings::suffix_tree<deterministic_table<pair_entry<combine_min>>> st(std::move(skel));
  st.populate();
  std::printf("  edge inserts into table:    %.2fs (%zu edges)\n", t.elapsed(),
              st.skeleton().num_edges());

  // Queries: half true substrings, half random strings (mostly absent),
  // lengths uniform in [1, 50] — the paper's Table 5(b) setup.
  const rng r(7);
  std::atomic<std::size_t> hits{0};
  t.reset();
  parallel_for(0, q, [&](std::size_t i) {
    const std::size_t len = 1 + r.ith_rand(2 * i, 50);
    std::string pat;
    if (i % 2 == 0) {
      const std::size_t pos = r.ith_rand(2 * i + 1, text.size() - len);
      pat = text.substr(pos, len);
    } else {
      pat.resize(len);
      for (std::size_t c = 0; c < len; ++c)
        pat[c] = static_cast<char>('a' + r.ith_rand(i * 64 + c, 26));
    }
    if (st.search(pat)) hits.fetch_add(1);
  });
  std::printf("  %zu searches:               %.2fs, %zu matched\n", q, t.elapsed(),
              hits.load());
  return 0;
}
