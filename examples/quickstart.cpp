// Quickstart: the deterministic phase-concurrent hash table in four phases.
//
//   ./quickstart [n]
//
// Demonstrates the core API — phase-separated concurrent inserts, finds,
// elements() and deletes — and the headline guarantee: the packed contents
// are identical no matter how the inserts were interleaved.
#include <cstdio>
#include <cstdlib>

#include "phch/core/deterministic_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/utils/rand.h"
#include "phch/utils/timer.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  std::printf("phch quickstart: n = %zu keys, %d worker threads\n", n,
              phch::num_workers());

  // A table sized at ~1/3 load (power of two), as in the paper's benchmarks.
  phch::deterministic_table<phch::int_entry<>> table(3 * n);

  // --- insert phase: any number of threads, inserts only -----------------
  phch::timer t;
  phch::parallel_for(0, n, [&](std::size_t i) {
    table.insert(1 + phch::hash64(i) % n);  // duplicates are fine
  });
  std::printf("inserted %zu keys (%zu distinct) in %.3fs\n", n, table.count(),
              t.elapsed());

  // --- find phase ----------------------------------------------------------
  t.reset();
  std::atomic<std::size_t> found{0};
  phch::parallel_for(0, n, [&](std::size_t i) {
    if (table.contains(1 + phch::hash64(i) % n)) found.fetch_add(1);
  });
  std::printf("found   %zu / %zu lookups in %.3fs\n", found.load(), n, t.elapsed());

  // --- elements(): deterministic packed contents --------------------------
  t.reset();
  const auto contents = table.elements();
  std::printf("elements() returned %zu keys in %.3fs\n", contents.size(), t.elapsed());

  // Determinism check: a second table filled in reverse order has an
  // identical layout, so elements() returns the identical sequence.
  phch::deterministic_table<phch::int_entry<>> reversed(3 * n);
  phch::parallel_for(0, n, [&](std::size_t i) {
    reversed.insert(1 + phch::hash64(n - 1 - i) % n);
  });
  std::printf("reverse-order insert gives identical elements(): %s\n",
              contents == reversed.elements() ? "yes" : "NO (bug!)");

  // --- delete phase --------------------------------------------------------
  t.reset();
  phch::parallel_for(0, n / 2, [&](std::size_t i) {
    table.erase(1 + phch::hash64(i) % n);
  });
  std::printf("deleted half the keys in %.3fs; %zu remain\n", t.elapsed(),
              table.count());
  return 0;
}
