// Delaunay refinement demo (§5): triangulate a point set, refine until all
// (refinable) triangles have min angle >= alpha, report per-phase stats.
//
//   ./mesh_refine [n] [alpha_degrees] [cube|kuzmin]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "phch/apps/delaunay_refine.h"
#include "phch/core/deterministic_table.h"
#include "phch/geometry/point_generators.h"
#include "phch/utils/timer.h"

using namespace phch;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 25.0;
  const char* dist = argc > 3 ? argv[3] : "cube";

  const auto pts = std::strcmp(dist, "kuzmin") == 0 ? geometry::kuzmin_points(n, 1)
                                                    : geometry::cube2d_points(n, 1);
  timer t;
  auto m = geometry::mesh::delaunay(pts);
  std::printf("mesh_refine: %zu %s points triangulated in %.2fs (%zu triangles)\n", n,
              dist, t.elapsed(), m.triangles().size());
  if (!m.check_valid()) {
    std::printf("initial mesh INVALID\n");
    return 1;
  }

  timer wall;
  timer hash_clock;
  const auto stats = apps::refine<deterministic_table<int_entry<std::uint64_t>>>(
      m, alpha, 4 * n, [&] { return hash_clock.elapsed(); });
  std::printf("refined to min angle %.1f deg in %.2fs (%zu rounds)\n", alpha,
              wall.elapsed(), stats.rounds);
  std::printf("  Steiner points added : %zu\n", stats.points_added);
  std::printf("  unrefinable slivers  : %zu (circumcenter outside mesh)\n",
              stats.unrefinable);
  std::printf("  bad triangles left   : %zu\n", stats.final_bad);
  std::printf("  hash-table portion   : %.3fs (ELEMENTS + inserts; the part\n"
              "                         Table 4 of the paper measures)\n",
              stats.hash_seconds);
  std::printf("  final mesh valid     : %s\n", m.check_valid() ? "yes" : "NO");
  return 0;
}
