# Empty compiler generated dependencies file for dedup_tool.
# This may be replaced when dependencies are built.
