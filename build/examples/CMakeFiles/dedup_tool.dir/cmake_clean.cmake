file(REMOVE_RECURSE
  "CMakeFiles/dedup_tool.dir/dedup_tool.cpp.o"
  "CMakeFiles/dedup_tool.dir/dedup_tool.cpp.o.d"
  "dedup_tool"
  "dedup_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
