# Empty dependencies file for graph_search.
# This may be replaced when dependencies are built.
