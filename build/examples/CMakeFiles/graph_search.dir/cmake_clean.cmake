file(REMOVE_RECURSE
  "CMakeFiles/graph_search.dir/graph_search.cpp.o"
  "CMakeFiles/graph_search.dir/graph_search.cpp.o.d"
  "graph_search"
  "graph_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
