file(REMOVE_RECURSE
  "CMakeFiles/mesh_refine.dir/mesh_refine.cpp.o"
  "CMakeFiles/mesh_refine.dir/mesh_refine.cpp.o.d"
  "mesh_refine"
  "mesh_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
