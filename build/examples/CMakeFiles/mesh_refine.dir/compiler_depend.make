# Empty compiler generated dependencies file for mesh_refine.
# This may be replaced when dependencies are built.
