# Empty dependencies file for make_input.
# This may be replaced when dependencies are built.
