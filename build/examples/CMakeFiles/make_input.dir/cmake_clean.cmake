file(REMOVE_RECURSE
  "CMakeFiles/make_input.dir/make_input.cpp.o"
  "CMakeFiles/make_input.dir/make_input.cpp.o.d"
  "make_input"
  "make_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
