file(REMOVE_RECURSE
  "libphch.a"
)
