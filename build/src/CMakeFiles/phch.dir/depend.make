# Empty dependencies file for phch.
# This may be replaced when dependencies are built.
