
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phch/geometry/predicates.cpp" "src/CMakeFiles/phch.dir/phch/geometry/predicates.cpp.o" "gcc" "src/CMakeFiles/phch.dir/phch/geometry/predicates.cpp.o.d"
  "/root/repo/src/phch/io/pbbs_io.cpp" "src/CMakeFiles/phch.dir/phch/io/pbbs_io.cpp.o" "gcc" "src/CMakeFiles/phch.dir/phch/io/pbbs_io.cpp.o.d"
  "/root/repo/src/phch/parallel/scheduler.cpp" "src/CMakeFiles/phch.dir/phch/parallel/scheduler.cpp.o" "gcc" "src/CMakeFiles/phch.dir/phch/parallel/scheduler.cpp.o.d"
  "/root/repo/src/phch/strings/suffix_array.cpp" "src/CMakeFiles/phch.dir/phch/strings/suffix_array.cpp.o" "gcc" "src/CMakeFiles/phch.dir/phch/strings/suffix_array.cpp.o.d"
  "/root/repo/src/phch/workloads/trigram.cpp" "src/CMakeFiles/phch.dir/phch/workloads/trigram.cpp.o" "gcc" "src/CMakeFiles/phch.dir/phch/workloads/trigram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
