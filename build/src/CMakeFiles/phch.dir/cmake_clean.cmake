file(REMOVE_RECURSE
  "CMakeFiles/phch.dir/phch/geometry/predicates.cpp.o"
  "CMakeFiles/phch.dir/phch/geometry/predicates.cpp.o.d"
  "CMakeFiles/phch.dir/phch/io/pbbs_io.cpp.o"
  "CMakeFiles/phch.dir/phch/io/pbbs_io.cpp.o.d"
  "CMakeFiles/phch.dir/phch/parallel/scheduler.cpp.o"
  "CMakeFiles/phch.dir/phch/parallel/scheduler.cpp.o.d"
  "CMakeFiles/phch.dir/phch/strings/suffix_array.cpp.o"
  "CMakeFiles/phch.dir/phch/strings/suffix_array.cpp.o.d"
  "CMakeFiles/phch.dir/phch/workloads/trigram.cpp.o"
  "CMakeFiles/phch.dir/phch/workloads/trigram.cpp.o.d"
  "libphch.a"
  "libphch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
