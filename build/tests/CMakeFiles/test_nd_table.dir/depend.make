# Empty dependencies file for test_nd_table.
# This may be replaced when dependencies are built.
