file(REMOVE_RECURSE
  "CMakeFiles/test_nd_table.dir/test_nd_table.cpp.o"
  "CMakeFiles/test_nd_table.dir/test_nd_table.cpp.o.d"
  "test_nd_table"
  "test_nd_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nd_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
