file(REMOVE_RECURSE
  "CMakeFiles/test_delaunay_refine.dir/test_delaunay_refine.cpp.o"
  "CMakeFiles/test_delaunay_refine.dir/test_delaunay_refine.cpp.o.d"
  "test_delaunay_refine"
  "test_delaunay_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delaunay_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
