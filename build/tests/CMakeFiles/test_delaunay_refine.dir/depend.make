# Empty dependencies file for test_delaunay_refine.
# This may be replaced when dependencies are built.
