# Empty dependencies file for test_hopscotch_table.
# This may be replaced when dependencies are built.
