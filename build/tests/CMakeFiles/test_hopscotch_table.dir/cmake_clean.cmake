file(REMOVE_RECURSE
  "CMakeFiles/test_hopscotch_table.dir/test_hopscotch_table.cpp.o"
  "CMakeFiles/test_hopscotch_table.dir/test_hopscotch_table.cpp.o.d"
  "test_hopscotch_table"
  "test_hopscotch_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopscotch_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
