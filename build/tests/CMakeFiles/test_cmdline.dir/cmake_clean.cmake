file(REMOVE_RECURSE
  "CMakeFiles/test_cmdline.dir/test_cmdline.cpp.o"
  "CMakeFiles/test_cmdline.dir/test_cmdline.cpp.o.d"
  "test_cmdline"
  "test_cmdline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmdline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
