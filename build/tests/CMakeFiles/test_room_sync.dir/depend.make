# Empty dependencies file for test_room_sync.
# This may be replaced when dependencies are built.
