file(REMOVE_RECURSE
  "CMakeFiles/test_room_sync.dir/test_room_sync.cpp.o"
  "CMakeFiles/test_room_sync.dir/test_room_sync.cpp.o.d"
  "test_room_sync"
  "test_room_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_room_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
