# Empty dependencies file for test_suffix_tree.
# This may be replaced when dependencies are built.
