file(REMOVE_RECURSE
  "CMakeFiles/test_suffix_tree.dir/test_suffix_tree.cpp.o"
  "CMakeFiles/test_suffix_tree.dir/test_suffix_tree.cpp.o.d"
  "test_suffix_tree"
  "test_suffix_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suffix_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
