file(REMOVE_RECURSE
  "CMakeFiles/test_chained_table.dir/test_chained_table.cpp.o"
  "CMakeFiles/test_chained_table.dir/test_chained_table.cpp.o.d"
  "test_chained_table"
  "test_chained_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chained_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
