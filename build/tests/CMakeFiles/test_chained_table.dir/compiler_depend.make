# Empty compiler generated dependencies file for test_chained_table.
# This may be replaced when dependencies are built.
