# Empty compiler generated dependencies file for test_spanning_forest.
# This may be replaced when dependencies are built.
