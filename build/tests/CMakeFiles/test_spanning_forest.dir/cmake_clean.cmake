file(REMOVE_RECURSE
  "CMakeFiles/test_spanning_forest.dir/test_spanning_forest.cpp.o"
  "CMakeFiles/test_spanning_forest.dir/test_spanning_forest.cpp.o.d"
  "test_spanning_forest"
  "test_spanning_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spanning_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
