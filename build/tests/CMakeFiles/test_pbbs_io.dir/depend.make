# Empty dependencies file for test_pbbs_io.
# This may be replaced when dependencies are built.
