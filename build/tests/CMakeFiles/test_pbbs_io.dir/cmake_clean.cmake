file(REMOVE_RECURSE
  "CMakeFiles/test_pbbs_io.dir/test_pbbs_io.cpp.o"
  "CMakeFiles/test_pbbs_io.dir/test_pbbs_io.cpp.o.d"
  "test_pbbs_io"
  "test_pbbs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbbs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
