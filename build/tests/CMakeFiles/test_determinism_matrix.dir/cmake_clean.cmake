file(REMOVE_RECURSE
  "CMakeFiles/test_determinism_matrix.dir/test_determinism_matrix.cpp.o"
  "CMakeFiles/test_determinism_matrix.dir/test_determinism_matrix.cpp.o.d"
  "test_determinism_matrix"
  "test_determinism_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinism_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
