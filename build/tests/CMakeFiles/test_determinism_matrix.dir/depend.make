# Empty dependencies file for test_determinism_matrix.
# This may be replaced when dependencies are built.
