# Empty dependencies file for test_edge_contraction.
# This may be replaced when dependencies are built.
