file(REMOVE_RECURSE
  "CMakeFiles/test_edge_contraction.dir/test_edge_contraction.cpp.o"
  "CMakeFiles/test_edge_contraction.dir/test_edge_contraction.cpp.o.d"
  "test_edge_contraction"
  "test_edge_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
