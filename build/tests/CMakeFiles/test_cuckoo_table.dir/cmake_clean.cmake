file(REMOVE_RECURSE
  "CMakeFiles/test_cuckoo_table.dir/test_cuckoo_table.cpp.o"
  "CMakeFiles/test_cuckoo_table.dir/test_cuckoo_table.cpp.o.d"
  "test_cuckoo_table"
  "test_cuckoo_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuckoo_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
