# Empty compiler generated dependencies file for test_cuckoo_table.
# This may be replaced when dependencies are built.
