file(REMOVE_RECURSE
  "CMakeFiles/test_table_properties.dir/test_table_properties.cpp.o"
  "CMakeFiles/test_table_properties.dir/test_table_properties.cpp.o.d"
  "test_table_properties"
  "test_table_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
