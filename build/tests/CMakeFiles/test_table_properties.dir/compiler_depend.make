# Empty compiler generated dependencies file for test_table_properties.
# This may be replaced when dependencies are built.
