# Empty dependencies file for test_deterministic_delete.
# This may be replaced when dependencies are built.
