file(REMOVE_RECURSE
  "CMakeFiles/test_deterministic_delete.dir/test_deterministic_delete.cpp.o"
  "CMakeFiles/test_deterministic_delete.dir/test_deterministic_delete.cpp.o.d"
  "test_deterministic_delete"
  "test_deterministic_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deterministic_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
