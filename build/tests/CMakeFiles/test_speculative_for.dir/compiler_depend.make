# Empty compiler generated dependencies file for test_speculative_for.
# This may be replaced when dependencies are built.
