file(REMOVE_RECURSE
  "CMakeFiles/test_speculative_for.dir/test_speculative_for.cpp.o"
  "CMakeFiles/test_speculative_for.dir/test_speculative_for.cpp.o.d"
  "test_speculative_for"
  "test_speculative_for.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speculative_for.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
