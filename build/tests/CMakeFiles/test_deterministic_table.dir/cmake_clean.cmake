file(REMOVE_RECURSE
  "CMakeFiles/test_deterministic_table.dir/test_deterministic_table.cpp.o"
  "CMakeFiles/test_deterministic_table.dir/test_deterministic_table.cpp.o.d"
  "test_deterministic_table"
  "test_deterministic_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deterministic_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
