file(REMOVE_RECURSE
  "CMakeFiles/test_auto_phased_table.dir/test_auto_phased_table.cpp.o"
  "CMakeFiles/test_auto_phased_table.dir/test_auto_phased_table.cpp.o.d"
  "test_auto_phased_table"
  "test_auto_phased_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_phased_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
