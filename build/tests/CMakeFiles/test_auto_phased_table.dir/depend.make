# Empty dependencies file for test_auto_phased_table.
# This may be replaced when dependencies are built.
