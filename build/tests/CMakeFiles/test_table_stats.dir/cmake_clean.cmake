file(REMOVE_RECURSE
  "CMakeFiles/test_table_stats.dir/test_table_stats.cpp.o"
  "CMakeFiles/test_table_stats.dir/test_table_stats.cpp.o.d"
  "test_table_stats"
  "test_table_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
