# Empty dependencies file for test_table_stats.
# This may be replaced when dependencies are built.
