# Empty dependencies file for test_connected_components.
# This may be replaced when dependencies are built.
