file(REMOVE_RECURSE
  "CMakeFiles/test_remove_duplicates.dir/test_remove_duplicates.cpp.o"
  "CMakeFiles/test_remove_duplicates.dir/test_remove_duplicates.cpp.o.d"
  "test_remove_duplicates"
  "test_remove_duplicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remove_duplicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
