# Empty dependencies file for test_remove_duplicates.
# This may be replaced when dependencies are built.
