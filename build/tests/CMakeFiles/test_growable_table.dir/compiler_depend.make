# Empty compiler generated dependencies file for test_growable_table.
# This may be replaced when dependencies are built.
