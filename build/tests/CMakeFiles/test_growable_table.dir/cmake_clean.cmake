file(REMOVE_RECURSE
  "CMakeFiles/test_growable_table.dir/test_growable_table.cpp.o"
  "CMakeFiles/test_growable_table.dir/test_growable_table.cpp.o.d"
  "test_growable_table"
  "test_growable_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_growable_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
