file(REMOVE_RECURSE
  "CMakeFiles/test_sort.dir/test_sort.cpp.o"
  "CMakeFiles/test_sort.dir/test_sort.cpp.o.d"
  "test_sort"
  "test_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
