# Empty compiler generated dependencies file for test_tombstone_table.
# This may be replaced when dependencies are built.
