file(REMOVE_RECURSE
  "CMakeFiles/test_tombstone_table.dir/test_tombstone_table.cpp.o"
  "CMakeFiles/test_tombstone_table.dir/test_tombstone_table.cpp.o.d"
  "test_tombstone_table"
  "test_tombstone_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tombstone_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
