file(REMOVE_RECURSE
  "CMakeFiles/test_entry_traits.dir/test_entry_traits.cpp.o"
  "CMakeFiles/test_entry_traits.dir/test_entry_traits.cpp.o.d"
  "test_entry_traits"
  "test_entry_traits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entry_traits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
