# Empty dependencies file for test_entry_traits.
# This may be replaced when dependencies are built.
