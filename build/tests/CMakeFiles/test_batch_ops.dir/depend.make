# Empty dependencies file for test_batch_ops.
# This may be replaced when dependencies are built.
