file(REMOVE_RECURSE
  "CMakeFiles/test_batch_ops.dir/test_batch_ops.cpp.o"
  "CMakeFiles/test_batch_ops.dir/test_batch_ops.cpp.o.d"
  "test_batch_ops"
  "test_batch_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
