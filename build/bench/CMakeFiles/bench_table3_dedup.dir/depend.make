# Empty dependencies file for bench_table3_dedup.
# This may be replaced when dependencies are built.
