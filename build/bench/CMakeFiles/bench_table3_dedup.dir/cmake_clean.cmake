file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dedup.dir/bench_table3_dedup.cpp.o"
  "CMakeFiles/bench_table3_dedup.dir/bench_table3_dedup.cpp.o.d"
  "bench_table3_dedup"
  "bench_table3_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
