file(REMOVE_RECURSE
  "CMakeFiles/bench_highload_rate.dir/bench_highload_rate.cpp.o"
  "CMakeFiles/bench_highload_rate.dir/bench_highload_rate.cpp.o.d"
  "bench_highload_rate"
  "bench_highload_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_highload_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
