# Empty dependencies file for bench_highload_rate.
# This may be replaced when dependencies are built.
