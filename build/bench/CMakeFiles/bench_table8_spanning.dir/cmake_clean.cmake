file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_spanning.dir/bench_table8_spanning.cpp.o"
  "CMakeFiles/bench_table8_spanning.dir/bench_table8_spanning.cpp.o.d"
  "bench_table8_spanning"
  "bench_table8_spanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_spanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
