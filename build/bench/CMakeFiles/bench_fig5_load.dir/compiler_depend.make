# Empty compiler generated dependencies file for bench_fig5_load.
# This may be replaced when dependencies are built.
