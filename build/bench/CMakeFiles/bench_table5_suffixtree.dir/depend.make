# Empty dependencies file for bench_table5_suffixtree.
# This may be replaced when dependencies are built.
