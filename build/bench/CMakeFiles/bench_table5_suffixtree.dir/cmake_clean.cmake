file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_suffixtree.dir/bench_table5_suffixtree.cpp.o"
  "CMakeFiles/bench_table5_suffixtree.dir/bench_table5_suffixtree.cpp.o.d"
  "bench_table5_suffixtree"
  "bench_table5_suffixtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_suffixtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
