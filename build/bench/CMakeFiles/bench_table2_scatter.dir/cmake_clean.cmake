file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scatter.dir/bench_table2_scatter.cpp.o"
  "CMakeFiles/bench_table2_scatter.dir/bench_table2_scatter.cpp.o.d"
  "bench_table2_scatter"
  "bench_table2_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
