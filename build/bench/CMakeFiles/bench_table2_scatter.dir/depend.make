# Empty dependencies file for bench_table2_scatter.
# This may be replaced when dependencies are built.
