file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_contraction.dir/bench_table6_contraction.cpp.o"
  "CMakeFiles/bench_table6_contraction.dir/bench_table6_contraction.cpp.o.d"
  "bench_table6_contraction"
  "bench_table6_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
