# Empty dependencies file for bench_table6_contraction.
# This may be replaced when dependencies are built.
