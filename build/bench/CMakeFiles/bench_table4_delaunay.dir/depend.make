# Empty dependencies file for bench_table4_delaunay.
# This may be replaced when dependencies are built.
