file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_delaunay.dir/bench_table4_delaunay.cpp.o"
  "CMakeFiles/bench_table4_delaunay.dir/bench_table4_delaunay.cpp.o.d"
  "bench_table4_delaunay"
  "bench_table4_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
