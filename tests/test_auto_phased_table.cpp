// auto_phased_table: arbitrary concurrent mixing of operation types is
// safe; within-phase behaviour is unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "phch/core/auto_phased_table.h"
#include "phch/core/chained_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_concepts.h"
#include "table_test_util.h"

namespace phch {
namespace {

// The rooms enforce phase discipline, so this composes with the *checked*
// phase policy: if the rooms ever let classes overlap, the guard aborts.
using safe_table = auto_phased_table<deterministic_table<int_entry<>, checked_phases>>;

// The wrapper routes through the concepts layer: it accepts exactly the
// deletable open-addressing tables and rejects everything else at compile
// time (a constraint failure, not a member-lookup error deep inside).
template <typename T>
concept wrappable = requires { typename auto_phased_table<T>; };
static_assert(wrappable<deterministic_table<int_entry<>>>);
static_assert(wrappable<nd_linear_table<int_entry<>>>);
static_assert(!wrappable<std::vector<std::uint64_t>>);   // not a table at all
static_assert(!wrappable<chained_table<int_entry<>>>);   // no flat slot array
static_assert(!open_addressing_table<chained_table<int_entry<>>>);
static_assert(deletable_table<deterministic_table<int_entry<>>>);

TEST(AutoPhasedTable, SequentialApiWorks) {
  safe_table t(256);
  t.insert(3);
  t.insert(8);
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  t.erase(3);
  EXPECT_FALSE(t.contains(3));
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(t.elements().size(), 1u);
}

TEST(AutoPhasedTable, FullyMixedConcurrentOperations) {
  // Every iteration randomly inserts, deletes or searches — the pattern
  // that is ILLEGAL on the raw phase-concurrent table. The checked_phases
  // policy underneath proves the rooms kept the classes separated.
  safe_table t(1 << 14);
  constexpr std::size_t kOps = 60000;
  std::atomic<std::size_t> finds{0};
  parallel_for(0, kOps, [&](std::size_t i) {
    const std::uint64_t k = 1 + hash64(i) % 4000;
    switch (hash64(i ^ 0xf00d) % 3) {
      case 0:
        t.insert(k);
        break;
      case 1:
        t.erase(k);
        break;
      default:
        if (t.contains(k)) finds.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Sanity: table is consistent afterwards (every remaining key findable).
  for (const auto v : t.elements()) EXPECT_TRUE(t.contains(v));
}

TEST(AutoPhasedTable, MixedOpsPreserveSetInvariants) {
  // Inserts of set A concurrent with deletes of disjoint set B: final state
  // must be exactly A (B-deletes are no-ops or kill earlier B-inserts —
  // here there are none).
  safe_table t(1 << 13);
  const auto a = test::unique_keys(2000, 5);
  std::vector<std::uint64_t> b;
  {
    const std::set<std::uint64_t> in_a(a.begin(), a.end());
    for (std::uint64_t k = 1000000; b.size() < 2000; ++k) {
      if (!in_a.count(k)) b.push_back(k);
    }
  }
  parallel_for(0, 4000, [&](std::size_t i) {
    if (i % 2 == 0) {
      t.insert(a[i / 2]);
    } else {
      t.erase(b[i / 2]);
    }
  });
  EXPECT_EQ(t.count(), a.size());
  for (const auto k : a) ASSERT_TRUE(t.contains(k));
}

TEST(AutoPhasedTable, PhaseSeparatedUseIsStillDeterministic) {
  const auto keys = test::dup_keys(8000, 5000, 9);
  auto run = [&] {
    safe_table t(1 << 14);
    parallel_for(0, keys.size(), [&](std::size_t i) { t.insert(keys[i]); });
    return t.elements();
  };
  EXPECT_EQ(run(), run());
}

TEST(AutoPhasedTable, WorksOverNdTableToo) {
  auto_phased_table<nd_linear_table<int_entry<>>> t(1 << 12);
  parallel_for(0, 10000, [&](std::size_t i) {
    const std::uint64_t k = 1 + hash64(i) % 1000;
    if (i % 3 == 0) {
      t.erase(k);
    } else {
      t.insert(k);
    }
  });
  for (const auto v : t.elements()) EXPECT_TRUE(t.contains(v));
}

}  // namespace
}  // namespace phch
