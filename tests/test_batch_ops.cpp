// Batched operations with prefetching: identical semantics to per-op calls.
#include <gtest/gtest.h>

#include <set>

#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

TEST(BatchOps, InsertBatchEqualsPerOpLayout) {
  const auto keys = test::dup_keys(20000, 12000, 3);
  deterministic_table<int_entry<>> a(1 << 16);
  deterministic_table<int_entry<>> b(1 << 16);
  insert_batch(a, keys);
  test::parallel_insert(b, keys);
  for (std::size_t s = 0; s < a.capacity(); ++s) {
    ASSERT_EQ(a.raw_slots()[s], b.raw_slots()[s]);
  }
}

TEST(BatchOps, FindBatchMatchesPerOpFinds) {
  const auto keys = test::unique_keys(5000, 5);
  deterministic_table<int_entry<>> t(1 << 14);
  insert_batch(t, keys);
  std::vector<std::uint64_t> queries = keys;
  queries.push_back(999999999ULL);  // absent
  queries.push_back(888888888ULL);
  const auto out = find_batch(t, queries);
  ASSERT_EQ(out.size(), queries.size());
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  EXPECT_TRUE(int_entry<>::is_empty(out[keys.size()]));
  EXPECT_TRUE(int_entry<>::is_empty(out[keys.size() + 1]));
}

TEST(BatchOps, EraseBatchRemovesExactlyTheBatch) {
  const auto keys = test::unique_keys(6000, 7);
  deterministic_table<int_entry<>> t(1 << 14);
  insert_batch(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 2500);
  erase_batch(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  for (std::size_t i = 2500; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(BatchOps, WorksOnNdTable) {
  const auto keys = test::unique_keys(4000, 9);
  nd_linear_table<int_entry<>> t(1 << 13);
  insert_batch(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  const auto out = find_batch(t, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  erase_batch(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

TEST(BatchOps, PairEntriesWithCombining) {
  deterministic_table<pair_entry<combine_add>> t(1 << 12);
  const auto batch = tabulate(10000, [](std::size_t i) {
    return kv64{1 + (i % 5), 1};
  });
  insert_batch(t, batch);
  const std::vector<std::uint64_t> qs{1, 2, 3, 4, 5};
  const auto out = find_batch(t, qs);
  std::uint64_t total = 0;
  for (const auto& e : out) total += e.v;
  EXPECT_EQ(total, 10000u);
}

TEST(BatchOps, TinyBatches) {
  deterministic_table<int_entry<>> t(64);
  insert_batch(t, std::vector<std::uint64_t>{});
  insert_batch(t, std::vector<std::uint64_t>{7});
  EXPECT_TRUE(t.contains(7));
  EXPECT_TRUE(find_batch(t, std::vector<std::uint64_t>{}).empty());
}

}  // namespace
}  // namespace phch
