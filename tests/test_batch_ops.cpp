// Batched operations with software-pipelined (AMAC-style) probing:
// identical semantics — and for deterministic tables identical *layouts* —
// to per-op scalar calls, on every workload distribution and pipeline
// width.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_concepts.h"
#include "phch/core/tombstone_table.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"
#include "table_test_util.h"

namespace phch {
namespace {

template <typename Table>
void expect_same_layout(const Table& a, const Table& b) {
  ASSERT_EQ(a.capacity(), b.capacity());
  for (std::size_t s = 0; s < a.capacity(); ++s) {
    ASSERT_TRUE(bits_equal(a.raw_slots()[s], b.raw_slots()[s])) << "slot " << s;
  }
}

TEST(BatchOps, InsertBatchEqualsPerOpLayout) {
  const auto keys = test::dup_keys(20000, 12000, 3);
  deterministic_table<int_entry<>> a(1 << 16);
  deterministic_table<int_entry<>> b(1 << 16);
  insert_batch(a, keys);
  test::parallel_insert(b, keys);
  expect_same_layout(a, b);
}

TEST(BatchOps, FindBatchMatchesPerOpFinds) {
  const auto keys = test::unique_keys(5000, 5);
  deterministic_table<int_entry<>> t(1 << 14);
  insert_batch(t, keys);
  std::vector<std::uint64_t> queries = keys;
  queries.push_back(999999999ULL);  // absent
  queries.push_back(888888888ULL);
  const auto out = find_batch(t, queries);
  ASSERT_EQ(out.size(), queries.size());
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  EXPECT_TRUE(int_entry<>::is_empty(out[keys.size()]));
  EXPECT_TRUE(int_entry<>::is_empty(out[keys.size() + 1]));
}

TEST(BatchOps, EraseBatchRemovesExactlyTheBatch) {
  const auto keys = test::unique_keys(6000, 7);
  deterministic_table<int_entry<>> t(1 << 14);
  insert_batch(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 2500);
  erase_batch(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  for (std::size_t i = 2500; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(BatchOps, WorksOnNdTable) {
  const auto keys = test::unique_keys(4000, 9);
  nd_linear_table<int_entry<>> t(1 << 13);
  insert_batch(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  const auto out = find_batch(t, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  erase_batch(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

TEST(BatchOps, PairEntriesWithCombining) {
  deterministic_table<pair_entry<combine_add>> t(1 << 12);
  const auto batch = tabulate(10000, [](std::size_t i) {
    return kv64{1 + (i % 5), 1};
  });
  insert_batch(t, batch);
  const std::vector<std::uint64_t> qs{1, 2, 3, 4, 5};
  const auto out = find_batch(t, qs);
  std::uint64_t total = 0;
  for (const auto& e : out) total += e.v;
  EXPECT_EQ(total, 10000u);
}

TEST(BatchOps, TinyBatches) {
  deterministic_table<int_entry<>> t(64);
  insert_batch(t, std::vector<std::uint64_t>{});
  insert_batch(t, std::vector<std::uint64_t>{7});
  EXPECT_TRUE(t.contains(7));
  EXPECT_TRUE(find_batch(t, std::vector<std::uint64_t>{}).empty());
}

// --- pipelined engine vs scalar, all six paper distributions ---------------
//
// The deterministic table's layout after insert_batch must be bit-identical
// to the layout after a scalar parallel insert loop (Theorem 1 makes that
// the uniquely determined layout), and pipelined finds/erases must agree
// with scalar ones element for element.

template <typename Traits, typename Seq, typename Keys>
void check_pipelined_vs_scalar(const Seq& input, const Keys& queries,
                               std::size_t capacity) {
  deterministic_table<Traits> piped(capacity);
  deterministic_table<Traits> scalar(capacity);
  insert_batch(piped, input);
  insert_batch_scalar(scalar, input);
  expect_same_layout(piped, scalar);
  EXPECT_TRUE((test::ordering_invariant_holds<Traits>(piped.raw_slots(),
                                                      piped.capacity())));

  const auto via_pipe = find_batch(piped, queries);
  const auto via_scalar = find_batch_scalar(scalar, queries);
  ASSERT_EQ(via_pipe.size(), via_scalar.size());
  for (std::size_t i = 0; i < via_pipe.size(); ++i) {
    ASSERT_TRUE(bits_equal(via_pipe[i], via_scalar[i])) << "query " << i;
  }

  // Erase every other query key through both paths; layouts must stay equal.
  Keys dels;
  for (std::size_t i = 0; i < queries.size(); i += 2) dels.push_back(queries[i]);
  erase_batch(piped, dels);
  erase_batch_scalar(scalar, dels);
  expect_same_layout(piped, scalar);
}

TEST(BatchOpsDistributions, RandomInt) {
  const auto seq = workloads::random_int_seq(20000, 11);
  std::vector<std::uint64_t> qs(seq.begin(), seq.begin() + 4000);
  qs.push_back(1ULL << 50);  // absent
  check_pipelined_vs_scalar<int_entry<>>(seq, qs, 1 << 16);
}

TEST(BatchOpsDistributions, ExptInt) {
  const auto seq = workloads::expt_int_seq(20000, 12);
  std::vector<std::uint64_t> qs(seq.begin(), seq.begin() + 4000);
  qs.push_back(1ULL << 50);
  check_pipelined_vs_scalar<int_entry<>>(seq, qs, 1 << 16);
}

TEST(BatchOpsDistributions, RandomPairInt) {
  const auto seq = workloads::random_pair_seq(16000, 13);
  std::vector<std::uint64_t> qs;
  for (std::size_t i = 0; i < 3000; ++i) qs.push_back(seq[i].k);
  check_pipelined_vs_scalar<pair_entry<combine_min>>(seq, qs, 1 << 16);
}

TEST(BatchOpsDistributions, ExptPairInt) {
  const auto seq = workloads::expt_pair_seq(16000, 14);
  std::vector<std::uint64_t> qs;
  for (std::size_t i = 0; i < 3000; ++i) qs.push_back(seq[i].k);
  check_pipelined_vs_scalar<pair_entry<combine_add>>(seq, qs, 1 << 16);
}

// String keys are stored by pointer and trigram sequences repeat contents at
// distinct addresses; without a combine function the surviving *pointer* is
// arrival-order-dependent even though the surviving key contents are not, so
// the string distributions are compared by contents rather than raw bits.
TEST(BatchOpsDistributions, TrigramString) {
  const auto words = workloads::trigram_string_seq(8000, 15);
  deterministic_table<string_entry> piped(1 << 15);
  deterministic_table<string_entry> scalar(1 << 15);
  insert_batch(piped, words.keys);
  insert_batch_scalar(scalar, words.keys);
  EXPECT_TRUE((test::ordering_invariant_holds<string_entry>(piped.raw_slots(),
                                                            piped.capacity())));
  const auto ep = piped.elements();
  const auto es = scalar.elements();
  ASSERT_EQ(ep.size(), es.size());
  for (std::size_t i = 0; i < ep.size(); ++i) {
    ASSERT_EQ(std::strcmp(ep[i], es[i]), 0) << i;
  }
  std::vector<const char*> qs(words.keys.begin(), words.keys.begin() + 2000);
  const auto fp = find_batch(piped, qs);
  const auto fs = find_batch_scalar(scalar, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(std::strcmp(fp[i], fs[i]), 0) << i;
  }
  erase_batch(piped, qs);
  erase_batch_scalar(scalar, qs);
  EXPECT_EQ(piped.count(), scalar.count());
}

// trigramSeq-pairInt stores record *pointers* whose combine function breaks
// value ties by keeping the stored record, so the surviving pointer can
// differ run to run even though the surviving (key, value) cannot; compare
// contents instead of raw slots for this distribution.
TEST(BatchOpsDistributions, TrigramPairInt) {
  const auto words = workloads::trigram_pair_seq(8000, 16);
  deterministic_table<string_pair_entry> piped(1 << 15);
  deterministic_table<string_pair_entry> scalar(1 << 15);
  insert_batch(piped, words.entries);
  insert_batch_scalar(scalar, words.entries);
  const auto ep = piped.elements();
  const auto es = scalar.elements();
  ASSERT_EQ(ep.size(), es.size());
  for (std::size_t i = 0; i < ep.size(); ++i) {
    ASSERT_EQ(std::strcmp(ep[i]->key, es[i]->key), 0) << i;
    ASSERT_EQ(ep[i]->value, es[i]->value) << i;
  }
  std::vector<const char*> qs;
  for (std::size_t i = 0; i < 2000; ++i) qs.push_back(words.entries[i]->key);
  const auto fp = find_batch(piped, qs);
  const auto fs = find_batch_scalar(scalar, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(fp[i]->value, fs[i]->value) << i;
  }
}

// --- combining traits over the 16-byte-CAS path ----------------------------

TEST(BatchOps, InsertBatchCombining16ByteCasMatchesScalarLayout) {
  // Heavy duplication so most pipelined inserts hand off into the combine
  // (double-word CAS) branch rather than a fresh claim.
  const auto batch = tabulate(30000, [](std::size_t i) {
    return kv64{1 + hash64(i) % 500, 1 + (i % 7)};
  });
  deterministic_table<pair_entry<combine_add>> piped(1 << 13);
  deterministic_table<pair_entry<combine_add>> scalar(1 << 13);
  insert_batch(piped, batch);
  insert_batch_scalar(scalar, batch);
  expect_same_layout(piped, scalar);
}

// --- insert / erase batches alternating across phase boundaries ------------

TEST(BatchOps, EraseBatchInterleavedWithInsertBatchAcrossPhases) {
  deterministic_table<int_entry<>> piped(1 << 15);
  deterministic_table<int_entry<>> scalar(1 << 15);
  std::set<std::uint64_t> reference;
  for (std::uint64_t round = 0; round < 4; ++round) {
    // Insert phase: a fresh slab plus re-inserts of surviving older keys.
    auto ins = test::dup_keys(6000, 4000, 100 + round);
    insert_batch(piped, ins);
    insert_batch_scalar(scalar, ins);
    reference.insert(ins.begin(), ins.end());
    // Delete phase: every third key currently present.
    std::vector<std::uint64_t> dels;
    std::size_t i = 0;
    for (const auto k : reference) {
      if (i++ % 3 == 0) dels.push_back(k);
    }
    erase_batch(piped, dels);
    erase_batch_scalar(scalar, dels);
    for (const auto k : dels) reference.erase(k);
    // Phase boundary: layouts identical, contents equal to the reference.
    expect_same_layout(piped, scalar);
    ASSERT_EQ(piped.count(), reference.size());
    ASSERT_EQ(piped.approx_size(), reference.size());
  }
  const auto elems = piped.elements();
  const std::set<std::uint64_t> got(elems.begin(), elems.end());
  EXPECT_EQ(got, reference);
}

// --- explicit width sweep through the block engines ------------------------

TEST(BatchOps, EveryPipelineWidthMatchesScalar) {
  const auto keys = test::dup_keys(12000, 9000, 21);
  deterministic_table<int_entry<>> reference(1 << 14);
  insert_batch_scalar(reference, keys);
  const auto ref_finds = find_batch_scalar(reference, keys);

  for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    deterministic_table<int_entry<>> t(1 << 14);
    batch_detail::insert_block_pipelined(t, keys.data(), keys.size(), width);
    expect_same_layout(t, reference);

    std::vector<std::uint64_t> out(keys.size());
    batch_detail::find_block_pipelined(t, keys.data(), keys.size(), out.data(),
                                       width);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], ref_finds[i]) << "width " << width << " query " << i;
    }

    std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 5000);
    batch_detail::erase_block_pipelined(t, dels.data(), dels.size(), width);
    deterministic_table<int_entry<>> erased_ref(1 << 14);
    insert_batch_scalar(erased_ref, keys);
    erase_batch_scalar(erased_ref, dels);
    expect_same_layout(t, erased_ref);
  }
}

// --- tombstone table through the same engine -------------------------------
//
// The engine reaches the tombstone table through the shared classifiers
// (it models batchable_table like the back-shifting tables). Insert layout
// is arrival-order-dependent here, so bit-identical pipelined-vs-scalar
// layouts are only provable where the arrival order is fixed (width 1,
// single thread); erase layout equality holds at *every* width because a
// tombstone erase marks its key's exact slot regardless of processing
// order, and find equality always holds because finds are read-only.

static_assert(batchable_table<tombstone_table<int_entry<>>>);
static_assert(tombstone_table<int_entry<>>::bounded_probes);
static_assert(!deterministic_table<int_entry<>>::bounded_probes);

TEST(BatchOpsTombstone, BatchSetSemanticsMatchReference) {
  const auto keys = test::dup_keys(15000, 9000, 41);
  tombstone_table<int_entry<>> t(1 << 15);
  insert_batch(t, keys);
  const std::set<std::uint64_t> ref(keys.begin(), keys.end());
  ASSERT_EQ(t.count(), ref.size());
  ASSERT_EQ(t.approx_size(), ref.size());  // striped counter, live entries

  std::vector<std::uint64_t> qs(keys.begin(), keys.begin() + 4000);
  qs.push_back(1ULL << 50);  // absent
  const auto out = find_batch(t, qs);
  for (std::size_t i = 0; i + 1 < qs.size(); ++i) ASSERT_EQ(out[i], qs[i]);
  EXPECT_TRUE(int_entry<>::is_empty(out.back()));

  std::vector<std::uint64_t> dels;
  std::size_t i = 0;
  for (const auto k : ref) {
    if (i++ % 2 == 0) dels.push_back(k);
  }
  erase_batch(t, dels);
  ASSERT_EQ(t.count(), ref.size() - dels.size());
  ASSERT_EQ(t.approx_size(), ref.size() - dels.size());
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(BatchOpsTombstone, EraseBatchLayoutEqualsScalarAtEveryWidth) {
  const auto keys = test::unique_keys(6000, 43);
  for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                  std::size_t{16}, std::size_t{64}}) {
    tombstone_table<int_entry<>> piped(1 << 14);
    tombstone_table<int_entry<>> scalar(1 << 14);
    // Same serial arrival order into both tables: identical layouts.
    for (const auto k : keys) piped.insert(k);
    for (const auto k : keys) scalar.insert(k);
    expect_same_layout(piped, scalar);

    std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 2500);
    dels.push_back(1ULL << 51);  // absent key: both paths must no-op
    batch_detail::erase_block_pipelined(piped, dels.data(), dels.size(), width);
    for (const auto d : dels) scalar.erase(d);
    expect_same_layout(piped, scalar);  // tombstones land in the same slots
    ASSERT_EQ(piped.footprint(), scalar.footprint());
  }
}

TEST(BatchOpsTombstone, InsertWidthOneSingleThreadMatchesScalarLayout) {
  // At width 1 on one thread the pipelined engine performs exactly the
  // scalar probe sequence in exactly the scalar order, so even this
  // arrival-order-dependent layout must come out bit-identical.
  const auto keys = test::dup_keys(8000, 5000, 47);
  tombstone_table<int_entry<>> piped(1 << 14);
  tombstone_table<int_entry<>> scalar(1 << 14);
  batch_detail::insert_block_pipelined(piped, keys.data(), keys.size(), 1);
  for (const auto k : keys) scalar.insert(k);
  expect_same_layout(piped, scalar);
}

TEST(BatchOpsTombstone, BoundedProbesResolveMissesOnGarbageFullTable) {
  // Fill a 64-slot table completely with 32 live keys + 32 tombstones: no
  // empty slot remains, so an absent-key probe wraps the whole table. The
  // bounded-probe path must resolve that as a miss (scalar find semantics),
  // not a table_full_error, in both find and erase batches.
  tombstone_table<int_entry<>> t(64);
  const auto first = test::unique_keys(32, 53);
  const auto second = test::unique_keys(32, 59);
  for (const auto k : first) t.insert(k);
  for (const auto k : first) t.erase(k);
  for (const auto k : second) t.insert(k);
  ASSERT_EQ(t.footprint(), 64u);  // every slot live or tombstone

  std::vector<std::uint64_t> absent;
  for (std::uint64_t i = 0; i < 40; ++i) absent.push_back((1ULL << 40) + i);
  const auto out = find_batch(t, absent);  // must not throw
  for (const auto& v : out) ASSERT_TRUE(int_entry<>::is_empty(v));
  EXPECT_NO_THROW(erase_batch(t, absent));
  ASSERT_EQ(t.count(), second.size());
  for (const auto k : second) ASSERT_TRUE(t.contains(k));
}

// --- phase checking still observes pipelined traffic -----------------------

TEST(BatchOps, CheckedPhasesAcceptsLegalBatchSequence) {
  deterministic_table<int_entry<>, checked_phases> t(1 << 12);
  const auto keys = test::unique_keys(1500, 33);
  insert_batch(t, keys);
  const auto out = find_batch(t, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  erase_batch(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

}  // namespace
}  // namespace phch
