// Connected components via contraction: agreement with a serial union-find
// sweep (up to label naming), determinism, round counts.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "phch/apps/connected_components.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"
#include "phch/parallel/scheduler.h"

namespace phch::apps {
namespace {

using det = deterministic_table<pair_entry<combine_add>>;

// Two labelings are equivalent iff they induce the same partition.
bool same_partition(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<std::uint32_t, std::uint32_t> fwd;
  std::map<std::uint32_t, std::uint32_t> bwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [itf, newf] = fwd.emplace(a[i], b[i]);
    if (!newf && itf->second != b[i]) return false;
    auto [itb, newb] = bwd.emplace(b[i], a[i]);
    if (!newb && itb->second != a[i]) return false;
  }
  return true;
}

class CcOnGraphs : public ::testing::TestWithParam<int> {
 protected:
  std::pair<std::size_t, std::vector<graph::edge>> make() const {
    switch (GetParam()) {
      case 0:
        return {5 * 5 * 5, graph::grid3d_edges(5)};
      case 1:
        return {2000, graph::random_k_edges(2000, 2, 3)};  // sparse, many comps
      case 2:
        return {1 << 11, graph::rmat_edges(11, 3000, 7)};
      default: {
        std::vector<graph::edge> e;  // chain of 100 + isolated vertices
        for (std::uint32_t i = 0; i + 1 < 100; ++i) e.push_back({i, i + 1});
        return {200, e};
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Graphs, CcOnGraphs, ::testing::Values(0, 1, 2, 3));

TEST_P(CcOnGraphs, MatchesSerialPartition) {
  const auto [n, edges] = make();
  const auto serial = serial_connected_components(n, edges);
  cc_stats stats;
  const auto par = connected_components<det>(n, edges, &stats);
  EXPECT_TRUE(same_partition(serial, par));
  EXPECT_GT(stats.num_components, 0u);
}

TEST_P(CcOnGraphs, ComponentCountIsExact) {
  const auto [n, edges] = make();
  const auto serial = serial_connected_components(n, edges);
  std::set<std::uint32_t> distinct(serial.begin(), serial.end());
  cc_stats stats;
  connected_components<det>(n, edges, &stats);
  EXPECT_EQ(stats.num_components, distinct.size());
}

TEST_P(CcOnGraphs, DeterministicAcrossThreadCounts) {
  const auto [n, edges] = make();
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  sched.set_num_workers(1);
  const auto c1 = connected_components<det>(n, edges);
  sched.set_num_workers(5);
  const auto c5 = connected_components<det>(n, edges);
  sched.set_num_workers(original);
  EXPECT_EQ(c1, c5);  // exact label equality, not just same partition
}

TEST(ConnectedComponents, NdTableStillGivesCorrectPartition) {
  const std::size_t n = 1500;
  const auto edges = graph::random_k_edges(n, 2, 9);
  const auto serial = serial_connected_components(n, edges);
  const auto par =
      connected_components<nd_linear_table<pair_entry<combine_add>>>(n, edges);
  EXPECT_TRUE(same_partition(serial, par));
}

TEST(ConnectedComponents, EdgelessGraphIsAllSingletons) {
  cc_stats stats;
  const auto c = connected_components<det>(50, {}, &stats);
  EXPECT_EQ(stats.num_components, 50u);
  EXPECT_EQ(stats.rounds, 0u);
  for (std::uint32_t v = 0; v < 50; ++v) EXPECT_EQ(c[v], v);
}

TEST(ConnectedComponents, SelfLoopsIgnored) {
  const std::vector<graph::edge> edges = {{0, 0}, {1, 1}, {0, 1}};
  cc_stats stats;
  connected_components<det>(3, edges, &stats);
  EXPECT_EQ(stats.num_components, 2u);
}

TEST(ConnectedComponents, RoundsAreLogarithmicOnAChain) {
  // A 512-vertex path contracts by at least half per round.
  std::vector<graph::edge> e;
  for (std::uint32_t i = 0; i + 1 < 512; ++i) e.push_back({i, i + 1});
  cc_stats stats;
  connected_components<det>(512, e, &stats);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_LE(stats.rounds, 16u);
}

}  // namespace
}  // namespace phch::apps
