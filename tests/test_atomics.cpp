// cas / write_min / write_max / fetch_add, including the 16-byte CAS the
// deterministic table relies on for key-value combining.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"

namespace phch {
namespace {

TEST(Cas, SucceedsWhenValueMatches) {
  std::uint64_t x = 42;
  EXPECT_TRUE(cas(&x, std::uint64_t{42}, std::uint64_t{7}));
  EXPECT_EQ(x, 7u);
}

TEST(Cas, FailsWhenValueDiffers) {
  std::uint64_t x = 42;
  EXPECT_FALSE(cas(&x, std::uint64_t{41}, std::uint64_t{7}));
  EXPECT_EQ(x, 42u);
}

TEST(Cas, WorksOnPointers) {
  int a = 0;
  int b = 0;
  int* p = &a;
  EXPECT_TRUE(cas(&p, &a, &b));
  EXPECT_EQ(p, &b);
}

TEST(Cas, WorksOn32And16And8Bit) {
  std::uint32_t w = 5;
  EXPECT_TRUE(cas(&w, std::uint32_t{5}, std::uint32_t{6}));
  EXPECT_EQ(w, 6u);
  std::uint16_t h = 5;
  EXPECT_TRUE(cas(&h, std::uint16_t{5}, std::uint16_t{6}));
  EXPECT_EQ(h, 6u);
  std::uint8_t b = 5;
  EXPECT_TRUE(cas(&b, std::uint8_t{5}, std::uint8_t{6}));
  EXPECT_EQ(b, 6u);
}

TEST(Cas, SixteenByteDoubleWord) {
  kv64 x{1, 2};
  EXPECT_TRUE(cas(&x, kv64{1, 2}, kv64{3, 4}));
  EXPECT_EQ(x.k, 3u);
  EXPECT_EQ(x.v, 4u);
  EXPECT_FALSE(cas(&x, kv64{1, 2}, kv64{9, 9}));
  EXPECT_EQ(x.k, 3u);
}

TEST(Cas, SixteenByteConcurrentIncrementsLoseNoUpdates) {
  kv64 x{0, 0};
  constexpr std::size_t n = 20000;
  parallel_for(0, n, [&](std::size_t) {
    for (;;) {
      const kv64 cur = atomic_load(&x);
      if (cas(&x, cur, kv64{cur.k + 1, cur.v + 2})) return;
    }
  });
  EXPECT_EQ(x.k, n);
  EXPECT_EQ(x.v, 2 * n);
}

TEST(WriteMin, KeepsMinimumUnderContention) {
  std::uint64_t m = std::numeric_limits<std::uint64_t>::max();
  constexpr std::size_t n = 100000;
  parallel_for(0, n, [&](std::size_t i) {
    write_min(&m, hash64(i) % 1000000);
  });
  std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < n; ++i) expected = std::min(expected, hash64(i) % 1000000);
  EXPECT_EQ(m, expected);
}

TEST(WriteMin, ReturnsTrueOnlyWhenItUpdates) {
  std::uint64_t m = 10;
  EXPECT_FALSE(write_min(&m, std::uint64_t{10}));
  EXPECT_FALSE(write_min(&m, std::uint64_t{15}));
  EXPECT_TRUE(write_min(&m, std::uint64_t{5}));
  EXPECT_EQ(m, 5u);
}

TEST(WriteMin, CustomComparator) {
  // Max-heap semantics via inverted comparator.
  int m = 0;
  EXPECT_TRUE(write_min(&m, 9, [](int a, int b) { return a > b; }));
  EXPECT_EQ(m, 9);
}

TEST(WriteMax, KeepsMaximum) {
  std::int64_t m = -1;
  constexpr std::size_t n = 50000;
  parallel_for(0, n, [&](std::size_t i) {
    write_max(&m, static_cast<std::int64_t>(hash64(i) % 999983));
  });
  std::int64_t expected = -1;
  for (std::size_t i = 0; i < n; ++i)
    expected = std::max(expected, static_cast<std::int64_t>(hash64(i) % 999983));
  EXPECT_EQ(m, expected);
}

TEST(FetchAdd, SumsUnderContention) {
  std::uint64_t sum = 0;
  constexpr std::size_t n = 100000;
  parallel_for(0, n, [&](std::size_t i) { fetch_add(&sum, i); });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(AtomicLoadStore, RoundTrips16Bytes) {
  kv64 x{0, 0};
  atomic_store(&x, kv64{11, 22});
  const kv64 y = atomic_load(&x);
  EXPECT_EQ(y.k, 11u);
  EXPECT_EQ(y.v, 22u);
}

}  // namespace
}  // namespace phch
