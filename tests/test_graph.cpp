// CSR graph construction and the three generators (3D-grid, random-k, rMat).
#include <gtest/gtest.h>

#include <set>

#include "phch/graph/generators.h"
#include "phch/graph/graph.h"

namespace phch::graph {
namespace {

TEST(CsrGraph, SymmetrizesAndDropsSelfLoops) {
  const std::vector<edge> edges = {{0, 1}, {1, 2}, {2, 2}, {3, 0}};
  const auto g = csr_graph::from_edges(4, edges);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // self-loop dropped
  EXPECT_EQ(g.degree(0), 2u);    // neighbors 1 and 3
  EXPECT_EQ(g.degree(2), 1u);
  bool found = false;
  g.for_each_neighbor(3, [&](vertex_id w) { found |= (w == 0); });
  EXPECT_TRUE(found);
}

TEST(CsrGraph, RemovesParallelEdges) {
  const std::vector<edge> edges = {{0, 1}, {1, 0}, {0, 1}, {0, 1}};
  const auto g = csr_graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(CsrGraph, AdjacencyIsSorted) {
  const auto g = csr_graph::from_edges(100, random_k_edges(100, 5, 3));
  for (vertex_id v = 0; v < 100; ++v) {
    const vertex_id* nbr = g.neighbors(v);
    for (std::size_t i = 1; i < g.degree(v); ++i) ASSERT_LT(nbr[i - 1], nbr[i]);
  }
}

TEST(CsrGraph, IsolatedVerticesHaveZeroDegree) {
  const std::vector<edge> edges = {{0, 1}};
  const auto g = csr_graph::from_edges(5, edges);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Grid3d, TorusHasDegreeSix) {
  const std::size_t d = 8;
  const auto g = csr_graph::from_edges(d * d * d, grid3d_edges(d));
  for (vertex_id v = 0; v < d * d * d; ++v) ASSERT_EQ(g.degree(v), 6u) << v;
  EXPECT_EQ(g.num_edges(), 3 * d * d * d);
}

TEST(Grid3d, SmallTorusDegenerates) {
  // d = 2 wraps onto itself: successor == predecessor, degree 3.
  const auto g = csr_graph::from_edges(8, grid3d_edges(2));
  for (vertex_id v = 0; v < 8; ++v) ASSERT_EQ(g.degree(v), 3u);
}

TEST(RandomK, EveryVertexHasAtLeastKOutEdgesWorthOfNeighbors) {
  const auto edges = random_k_edges(1000, 5, 7);
  EXPECT_EQ(edges.size(), 5000u);
  for (const auto& e : edges) {
    ASSERT_LT(e.u, 1000u);
    ASSERT_LT(e.v, 1000u);
  }
  EXPECT_EQ(edges, random_k_edges(1000, 5, 7));  // deterministic
}

TEST(Rmat, PowerLawDegreeSkew) {
  const std::size_t lg_n = 12;
  const std::size_t n = std::size_t{1} << lg_n;
  const auto edges = rmat_edges(lg_n, 40000, 5);
  // Raw incidence counts (before dedup) expose the power law directly.
  auto raw_degree = [n](const std::vector<edge>& es) {
    std::vector<std::size_t> deg(n, 0);
    for (const auto& e : es) {
      deg[e.u]++;
      deg[e.v]++;
    }
    return *std::max_element(deg.begin(), deg.end());
  };
  const std::size_t rmat_max = raw_degree(edges);
  const std::size_t uniform_max =
      raw_degree(random_k_edges(n, 40000 / n + 1, 5));
  // rMat(0.5, 0.1, 0.1, 0.3) concentrates edges on low-id hub vertices: the
  // hub degree dwarfs a uniform random graph of the same size, and many
  // vertices are untouched entirely.
  EXPECT_GT(rmat_max, 3 * uniform_max);
  const auto g = csr_graph::from_edges(n, edges);
  std::size_t nonzero = 0;
  for (vertex_id v = 0; v < g.num_vertices(); ++v) nonzero += g.degree(v) > 0;
  EXPECT_LT(nonzero, g.num_vertices());
  EXPECT_EQ(edges, rmat_edges(lg_n, 40000, 5));  // deterministic
}

TEST(Weights, AttachedDeterministically) {
  const auto e = random_k_edges(100, 3, 1);
  const auto w1 = with_random_weights(e, 1000, 2);
  const auto w2 = with_random_weights(e, 1000, 2);
  ASSERT_EQ(w1.size(), e.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    ASSERT_EQ(w1[i].w, w2[i].w);
    ASSERT_GE(w1[i].w, 1u);
    ASSERT_LE(w1[i].w, 1000u);
  }
}

}  // namespace
}  // namespace phch::graph
