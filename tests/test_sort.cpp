// parallel_sort / counting sort / radix sort against std::sort references.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "phch/parallel/sort.h"
#include "phch/utils/rand.h"

namespace phch {
namespace {

class SortSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097, 50000, 300000));

TEST_P(SortSweep, MatchesStdSort) {
  const std::size_t n = GetParam();
  auto v = tabulate(n, [](std::size_t i) { return hash64(i); });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  parallel_sort(v);
  EXPECT_EQ(v, expected);
}

TEST_P(SortSweep, CustomComparator) {
  const std::size_t n = GetParam();
  auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 1000; });
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel_sort(v, std::greater<>{});
  EXPECT_EQ(v, expected);
}

TEST(Sort, AlreadySortedAndReversed) {
  auto inc = iota(100000);
  auto v = inc;
  parallel_sort(v);
  EXPECT_EQ(v, inc);
  std::vector<std::size_t> rev(inc.rbegin(), inc.rend());
  parallel_sort(rev);
  EXPECT_EQ(rev, inc);
}

TEST(Sort, AllEqualKeys) {
  std::vector<int> v(50000, 7);
  parallel_sort(v);
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](int x) { return x == 7; }));
}

TEST(CountingSort, StableAndCorrect) {
  struct item {
    std::uint32_t key;
    std::uint32_t seq;
    bool operator==(const item&) const = default;
  };
  const std::size_t n = 100000;
  auto v = tabulate(n, [](std::size_t i) {
    return item{static_cast<std::uint32_t>(hash64(i) % 64),
                static_cast<std::uint32_t>(i)};
  });
  const auto out = stable_counting_sort(v, 64, [](const item& x) {
    return static_cast<std::size_t>(x.key);
  });
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const item& a, const item& b) { return a.key < b.key; });
  EXPECT_EQ(out, expected);
}

TEST(RadixSort, FullWidth64BitKeys) {
  auto v = tabulate(200000, [](std::size_t i) { return hash64(i); });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  radix_sort(v, 64, [](std::uint64_t x) { return x; });
  EXPECT_EQ(v, expected);
}

TEST(RadixSort, PartialWidthSortsByLowBits) {
  struct rec {
    std::uint32_t key;
    std::uint32_t payload;
    bool operator==(const rec&) const = default;
  };
  auto v = tabulate(50000, [](std::size_t i) {
    return rec{static_cast<std::uint32_t>(hash64(i)), static_cast<std::uint32_t>(i)};
  });
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const rec& a, const rec& b) { return a.key < b.key; });
  radix_sort(v, 32, [](const rec& x) { return x.key; });
  EXPECT_EQ(v, expected);
}

TEST(Sort, SortedHelperReturnsSortedCopy) {
  const auto v = tabulate(10000, [](std::size_t i) { return hash64(i) % 500; });
  const auto s = sorted(v);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(s.size(), v.size());
}

}  // namespace
}  // namespace phch
