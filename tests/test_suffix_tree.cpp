// Suffix tree over hash-table child maps: structure, exact substring
// search, agreement with std::string::find, all table backends.
#include <gtest/gtest.h>

#include <string>

#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/strings/suffix_tree.h"
#include "phch/utils/rand.h"
#include "phch/workloads/trigram.h"

namespace phch::strings {
namespace {

using det_tree = suffix_tree<deterministic_table<pair_entry<combine_min>>>;

TEST(SuffixTreeSkeleton, NodeCountIsLinear) {
  const auto sk = suffix_tree_skeleton::build("banana");
  // n+1 leaves (with sentinel) + at most n internal nodes + root.
  EXPECT_GE(sk.nodes.size(), 8u);
  EXPECT_LE(sk.nodes.size(), 2 * 7 + 1);
}

TEST(SuffixTreeSkeleton, ParentsHaveSmallerDepth) {
  const auto sk = suffix_tree_skeleton::build(workloads::trigram_text(2000, 3));
  for (std::size_t v = 1; v < sk.nodes.size(); ++v) {
    ASSERT_LT(sk.nodes[sk.nodes[v].parent].depth, sk.nodes[v].depth);
  }
  EXPECT_EQ(sk.nodes[0].depth, 0u);
}

TEST(SuffixTreeSkeleton, EdgeKeysAreUnique) {
  const auto sk = suffix_tree_skeleton::build(workloads::trigram_text(3000, 5));
  std::set<std::uint64_t> keys;
  for (std::uint32_t v = 1; v < sk.nodes.size(); ++v) {
    ASSERT_TRUE(keys.insert(sk.edge_key_of(v)).second)
        << "two children of one node share a first character";
  }
}

TEST(SuffixTree, FindsEverySubstring) {
  const std::string text = "the theta thesis on synthesis and theses";
  det_tree st(text);
  for (std::size_t i = 0; i < text.size(); i += 3) {
    for (std::size_t len = 1; len <= 8 && i + len <= text.size(); ++len) {
      ASSERT_TRUE(st.search(text.substr(i, len))) << text.substr(i, len);
    }
  }
}

TEST(SuffixTree, RejectsNonSubstrings) {
  const std::string text = "abcabcabcxyz";
  det_tree st(text);
  EXPECT_FALSE(st.search("abd"));
  EXPECT_FALSE(st.search("xyzz"));
  EXPECT_FALSE(st.search("q"));
  EXPECT_FALSE(st.search("cabz"));
  EXPECT_TRUE(st.search("cabcx"));
}

TEST(SuffixTree, EmptyPatternAlwaysMatches) {
  det_tree st(std::string("hello"));
  EXPECT_TRUE(st.search(""));
}

TEST(SuffixTree, PatternLongerThanText) {
  det_tree st(std::string("ab"));
  EXPECT_FALSE(st.search("abc"));
}

TEST(SuffixTree, AgreesWithStdFindOnRandomQueries) {
  const std::string text = workloads::trigram_text(20000, 7);
  det_tree st(text);
  const rng r(99);
  for (std::size_t q = 0; q < 500; ++q) {
    const std::size_t len = 1 + r.ith_rand(2 * q, 12);
    std::string pat;
    if (q % 2 == 0) {
      const std::size_t pos = r.ith_rand(2 * q + 1, text.size() - len);
      pat = text.substr(pos, len);
    } else {
      for (std::size_t c = 0; c < len; ++c)
        pat += static_cast<char>('a' + r.ith_rand(1000 * q + c, 26));
    }
    const bool expected = text.find(pat) != std::string::npos;
    ASSERT_EQ(st.search(pat), expected) << pat;
  }
}

TEST(SuffixTree, OccurrenceCountsMatchBruteForce) {
  const std::string text = "abracadabra abracadabra arcade";
  det_tree st(text);
  auto brute = [&](const std::string& pat) {
    std::size_t c = 0;
    for (std::size_t pos = text.find(pat); pos != std::string::npos;
         pos = text.find(pat, pos + 1))
      ++c;
    return c;
  };
  for (const std::string pat : {"abra", "a", "cad", "abracadabra", "arc", "zzz", "ra "}) {
    EXPECT_EQ(st.occurrences(pat), brute(pat)) << pat;
  }
}

TEST(SuffixTree, OccurrenceCountsOnGeneratedText) {
  const std::string text = workloads::trigram_text(8000, 21);
  det_tree st(text);
  auto brute = [&](const std::string& pat) {
    std::size_t c = 0;
    for (std::size_t pos = text.find(pat); pos != std::string::npos;
         pos = text.find(pat, pos + 1))
      ++c;
    return c;
  };
  const rng r(5);
  for (std::size_t q = 0; q < 60; ++q) {
    const std::size_t len = 1 + r.ith_rand(q, 6);
    const std::size_t pos = r.ith_rand(q + 1000, text.size() - len);
    const std::string pat = text.substr(pos, len);
    ASSERT_EQ(st.occurrences(pat), brute(pat)) << pat;
  }
}

TEST(SuffixTree, EmptyPatternCountsAllSuffixes) {
  det_tree st(std::string("abc"));
  EXPECT_EQ(st.occurrences(""), 4u);  // "abc" + sentinel
}

TEST(SuffixTree, WorksOnProteinText) {
  const std::string text = workloads::protein_text(10000, 9);
  det_tree st(text);
  EXPECT_TRUE(st.search(text.substr(777, 15)));
  EXPECT_TRUE(st.search(text.substr(0, 30)));
}

template <typename Table>
void backend_check() {
  const std::string text = workloads::trigram_text(5000, 11);
  suffix_tree<Table> st(text);
  EXPECT_TRUE(st.search(text.substr(100, 10)));
  EXPECT_TRUE(st.search(text.substr(4000, 25)));
  EXPECT_FALSE(st.search("qqqqqqqq"));
}

TEST(SuffixTree, NdBackend) { backend_check<nd_linear_table<pair_entry<combine_min>>>(); }
TEST(SuffixTree, CuckooBackend) { backend_check<cuckoo_table<pair_entry<combine_min>>>(); }
TEST(SuffixTree, ChainedBackend) {
  backend_check<chained_table<pair_entry<combine_min>, true>>();
}

TEST(SuffixTree, DeterministicTableContentsStable) {
  const std::string text = workloads::trigram_text(3000, 13);
  det_tree a(text);
  det_tree b(text);
  EXPECT_EQ(a.table().elements().size(), b.table().elements().size());
  const auto ea = a.table().elements();
  const auto eb = b.table().elements();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].k, eb[i].k);
    ASSERT_EQ(ea[i].v, eb[i].v);
  }
}

}  // namespace
}  // namespace phch::strings
