// Hopscotch hashing re-implementation, concurrent and phase-concurrent
// (-PC) variants: hop-range invariant, displacement, timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/hopscotch_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

template <typename T>
class HopscotchVariants : public ::testing::Test {};

using Variants = ::testing::Types<hopscotch_table<int_entry<>, true>,
                                  hopscotch_table<int_entry<>, false>>;
TYPED_TEST_SUITE(HopscotchVariants, Variants);

TYPED_TEST(HopscotchVariants, InsertFindErase) {
  TypeParam t(256);
  t.insert(4);
  t.insert(44);
  EXPECT_TRUE(t.contains(4));
  EXPECT_TRUE(t.contains(44));
  EXPECT_FALSE(t.contains(5));
  t.erase(4);
  EXPECT_FALSE(t.contains(4));
  EXPECT_EQ(t.count(), 1u);
}

TYPED_TEST(HopscotchVariants, SetSemanticsUnderConcurrency) {
  TypeParam t(1 << 13);
  const auto keys = test::dup_keys(9000, 5000, 3);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
  for (const auto k : expected) ASSERT_TRUE(t.contains(k));
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), expected.begin(), expected.end()));
}

TYPED_TEST(HopscotchVariants, EveryKeyReachableThroughHopBitmap) {
  // find() only consults the home bucket's hop bitmap (fast path), so this
  // verifies every element is registered within kHopRange of its home — the
  // property that makes finds touch at most a couple of cache lines.
  TypeParam t(1 << 12);
  const auto keys = test::unique_keys((1 << 12) / 2, 7);  // 50% load
  test::parallel_insert(t, keys);
  for (const auto k : keys) ASSERT_EQ(t.find(k), k);
}

TYPED_TEST(HopscotchVariants, DisplacementUnderHighLoad) {
  TypeParam t(1 << 10);
  const auto keys = test::unique_keys((1 << 10) * 80 / 100, 11);  // 80% load
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k)) << k;
}

TYPED_TEST(HopscotchVariants, DeletesFreeSlotsForReuse) {
  TypeParam t(1 << 10);
  for (int round = 0; round < 8; ++round) {
    const auto keys = test::unique_keys(600, 100 + round);
    test::parallel_insert(t, keys);
    ASSERT_EQ(t.count(), keys.size());
    test::parallel_erase(t, keys);
    ASSERT_EQ(t.count(), 0u);
  }
}

TYPED_TEST(HopscotchVariants, CombinesDuplicatePairs) {
  hopscotch_table<pair_entry<combine_add>, true> t(1 << 10);
  parallel_for(0, 10000, [&](std::size_t i) { t.insert(kv64{1 + (i % 4), 1}); });
  std::uint64_t total = 0;
  for (std::uint64_t k = 1; k <= 4; ++k) total += t.find(k).v;
  EXPECT_EQ(total, 10000u);
}

TEST(Hopscotch, ConcurrentVariantSupportsMixedFindInsert) {
  // The fully-concurrent (timestamped) variant tolerates finds racing with
  // inserts; sanity-check that a found key is never falsely reported absent
  // after its insert completed.
  hopscotch_table<int_entry<>, true> t(1 << 12);
  const auto keys = test::unique_keys(1000, 17);
  test::parallel_insert(t, keys);
  std::atomic<std::size_t> found{0};
  parallel_for(0, keys.size(), [&](std::size_t i) {
    if (t.contains(keys[i])) found.fetch_add(1);
    t.insert(keys[i] + (1ULL << 40));  // disjoint key range
  });
  EXPECT_EQ(found.load(), keys.size());
  EXPECT_EQ(t.count(), 2 * keys.size());
}

TEST(Hopscotch, ThrowsWhenDisplacementImpossible) {
  hopscotch_table<int_entry<>, true> t(4);  // rounds up to 4 * kHopRange
  EXPECT_THROW(
      {
        for (std::uint64_t k = 1; k < 4 * hopscotch_table<int_entry<>>::kHopRange + 8; ++k)
          t.insert(k);
      },
      table_full_error);
}

}  // namespace
}  // namespace phch
