// The headline property as a parameterized matrix: for every combination of
// (thread count, table size, duplication rate, operation mix), the
// deterministic table's elements() — and the full slot layout — equal the
// single-threaded reference execution.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/parallel/scheduler.h"
#include "table_test_util.h"

namespace phch {
namespace {

// (threads, log2 capacity, distinct-key divisor, delete fraction %)
using matrix_param = std::tuple<int, int, int, int>;

class DeterminismMatrix : public ::testing::TestWithParam<matrix_param> {
 protected:
  static std::vector<std::uint64_t> reference_run(const std::vector<std::uint64_t>& ins,
                                                  const std::vector<std::uint64_t>& del,
                                                  std::size_t cap) {
    scheduler& sched = scheduler::get();
    const int original = sched.num_workers();
    sched.set_num_workers(1);
    deterministic_table<int_entry<>> t(cap);
    test::parallel_insert(t, ins);
    test::parallel_erase(t, del);
    auto out = t.elements();
    sched.set_num_workers(original);
    return out;
  }
};

TEST_P(DeterminismMatrix, ParallelRunEqualsSingleThreadReference) {
  const auto [threads, lg_cap, dup_div, del_pct] = GetParam();
  const std::size_t cap = std::size_t{1} << lg_cap;
  const std::size_t n = cap / 2;  // 50% nominal load
  const auto ins = test::dup_keys(n, n / static_cast<std::size_t>(dup_div) + 1, 77);
  const std::vector<std::uint64_t> del(
      ins.begin(), ins.begin() + static_cast<std::ptrdiff_t>(n * static_cast<std::size_t>(del_pct) / 100));
  const auto expected = reference_run(ins, del, cap);

  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  sched.set_num_workers(threads);
  deterministic_table<int_entry<>> t(cap);
  test::parallel_insert(t, test::shuffled(ins, static_cast<std::uint64_t>(threads)));
  test::parallel_erase(t, test::shuffled(del, static_cast<std::uint64_t>(threads) + 50));
  const auto got = t.elements();
  sched.set_num_workers(original);

  ASSERT_EQ(got, expected) << "threads=" << threads << " cap=2^" << lg_cap
                           << " dup=1/" << dup_div << " del=" << del_pct << "%";
}

std::string matrix_name(const ::testing::TestParamInfo<matrix_param>& info) {
  return "t" + std::to_string(std::get<0>(info.param)) + "_cap" +
         std::to_string(std::get<1>(info.param)) + "_dup" +
         std::to_string(std::get<2>(info.param)) + "_del" +
         std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismMatrix,
    ::testing::Combine(::testing::Values(2, 4, 8),          // threads
                       ::testing::Values(8, 12, 14),        // log2 capacity
                       ::testing::Values(1, 4, 64),         // duplication divisor
                       ::testing::Values(0, 40, 100)),      // delete fraction %
    matrix_name);

}  // namespace
}  // namespace phch
