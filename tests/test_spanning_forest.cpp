// Spanning forest (Table 8): forest validity (size, acyclicity, spanning),
// agreement between array and deterministic-hash variants, determinism
// across thread counts.
#include <gtest/gtest.h>

#include <numeric>

#include "phch/apps/spanning_forest.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"
#include "phch/parallel/scheduler.h"

namespace phch::apps {
namespace {

using det_res = deterministic_table<packed_pair_entry<combine_min>>;

// Number of connected components via a simple serial DSU.
std::size_t num_components(std::size_t n, const std::vector<graph::edge>& edges) {
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::uint32_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  std::size_t comps = n;
  for (const auto& e : edges) {
    const auto a = find(e.u);
    const auto b = find(e.v);
    if (a != b) {
      parent[a] = b;
      --comps;
    }
  }
  return comps;
}

// A valid spanning forest has exactly n - #components edges and is acyclic.
void expect_valid_forest(std::size_t n, const std::vector<graph::edge>& edges,
                         const std::vector<std::size_t>& forest) {
  EXPECT_EQ(forest.size(), n - num_components(n, edges));
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::uint32_t v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  for (const auto idx : forest) {
    ASSERT_LT(idx, edges.size());
    const auto a = find(edges[idx].u);
    const auto b = find(edges[idx].v);
    ASSERT_NE(a, b) << "cycle edge " << idx;
    parent[a] = b;
  }
}

class SfOnGraphs : public ::testing::TestWithParam<int> {
 protected:
  std::pair<std::size_t, std::vector<graph::edge>> make() const {
    switch (GetParam()) {
      case 0:
        return {6 * 6 * 6, graph::grid3d_edges(6)};
      case 1:
        return {3000, graph::random_k_edges(3000, 5, 3)};
      case 2:
        return {1 << 11, graph::rmat_edges(11, 12000, 7)};
      default: {
        // Disconnected: two cliques.
        std::vector<graph::edge> e;
        for (std::uint32_t i = 0; i < 10; ++i)
          for (std::uint32_t j = i + 1; j < 10; ++j) {
            e.push_back({i, j});
            e.push_back({i + 20, j + 20});
          }
        return {40, e};
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Graphs, SfOnGraphs, ::testing::Values(0, 1, 2, 3));

TEST_P(SfOnGraphs, SerialForestIsValid) {
  const auto [n, edges] = make();
  expect_valid_forest(n, edges, serial_spanning_forest(n, edges));
}

TEST_P(SfOnGraphs, ArrayForestIsValid) {
  const auto [n, edges] = make();
  expect_valid_forest(n, edges, array_spanning_forest(n, edges));
}

TEST_P(SfOnGraphs, HashForestIsValid) {
  const auto [n, edges] = make();
  expect_valid_forest(n, edges, hash_spanning_forest<det_res>(n, edges));
}

TEST_P(SfOnGraphs, ArrayAndHashVariantsAgreeExactly) {
  const auto [n, edges] = make();
  EXPECT_EQ(array_spanning_forest(n, edges), hash_spanning_forest<det_res>(n, edges));
}

TEST_P(SfOnGraphs, DeterministicAcrossThreadCounts) {
  const auto [n, edges] = make();
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  sched.set_num_workers(1);
  const auto f1 = hash_spanning_forest<det_res>(n, edges);
  sched.set_num_workers(6);
  const auto f6 = hash_spanning_forest<det_res>(n, edges);
  sched.set_num_workers(original);
  EXPECT_EQ(f1, f6);
}

TEST(SpanningForest, OtherTablesStillProduceValidForests) {
  const std::size_t n = 2000;
  const auto edges = graph::random_k_edges(n, 5, 11);
  expect_valid_forest(
      n, edges,
      hash_spanning_forest<nd_linear_table<packed_pair_entry<combine_min>>>(n, edges));
  expect_valid_forest(
      n, edges,
      hash_spanning_forest<cuckoo_table<packed_pair_entry<combine_min>>>(n, edges));
  expect_valid_forest(
      n, edges,
      (hash_spanning_forest<chained_table<packed_pair_entry<combine_min>, true>>(n,
                                                                                 edges)));
}

TEST(SpanningForest, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(serial_spanning_forest(10, {}).empty());
  EXPECT_TRUE(array_spanning_forest(10, {}).empty());
  EXPECT_TRUE(hash_spanning_forest<det_res>(10, {}).empty());
}

TEST(SpanningForest, SingleEdge) {
  const std::vector<graph::edge> edges = {{0, 1}};
  EXPECT_EQ(hash_spanning_forest<det_res>(2, edges), std::vector<std::size_t>{0});
}

}  // namespace
}  // namespace phch::apps
