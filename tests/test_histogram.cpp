// Histogram plane (src/phch/obs/histogram.h): log-linear bucket math,
// snapshot merge/quantile behavior, the per-table live-list + graveyard
// ledger, the registry, and the compiled-out contract. The concurrent
// record-while-drain hammer runs under the TSan CI job.
//
// This file compiles and passes in both build modes: the bucket math is
// constexpr and mode-independent; the recording tests skip when the layer
// is compiled out, where they instead assert it really is compiled out.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/table_common.h"
#include "phch/obs/histogram.h"
#include "phch/obs/registry.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/scheduler.h"

namespace phch {
namespace {

using obs::hist_bucket;
using obs::hist_bucket_lower;
using obs::hist_bucket_upper;
using obs::kHistBuckets;

// ---------------------------------------------------------------------------
// Bucket math (both modes; everything here is constexpr-evaluable).

TEST(HistBuckets, SmallValuesAreExact) {
  // Values below the first log-linear octave land in their own bucket, so
  // small probe depths (the common case) lose no resolution at all.
  for (std::uint64_t v = 0; v < 8; ++v) {
    SCOPED_TRACE(v);
    EXPECT_EQ(hist_bucket_lower(hist_bucket(v)), v);
    EXPECT_EQ(hist_bucket_upper(hist_bucket(v)), v);
  }
}

TEST(HistBuckets, EveryValueFallsInItsBucketBounds) {
  // Exhaustive near the small end, then power-of-two neighborhoods.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int e = 12; e < 64; ++e) {
    const std::uint64_t p = 1ULL << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + (p >> 1));  // mid-octave
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  std::size_t prev_bucket = 0;
  std::uint64_t prev_v = 0;
  for (const std::uint64_t v : probes) {
    SCOPED_TRACE(v);
    const std::size_t b = hist_bucket(v);
    ASSERT_LT(b, kHistBuckets);
    EXPECT_LE(hist_bucket_lower(b), v);
    EXPECT_GE(hist_bucket_upper(b), v);
    // Monotone: a larger value never lands in a smaller bucket.
    if (v >= prev_v) {
      EXPECT_GE(b, prev_bucket);
    }
    prev_bucket = b;
    prev_v = v;
  }
}

TEST(HistBuckets, BucketsTileTheRange) {
  // Bounds are contiguous: each bucket begins one past the previous end,
  // and the inverse maps every bucket's bounds back to itself.
  EXPECT_EQ(hist_bucket_lower(0), 0u);
  for (std::size_t b = 0; b + 1 < kHistBuckets; ++b) {
    SCOPED_TRACE(b);
    EXPECT_EQ(hist_bucket_lower(b + 1), hist_bucket_upper(b) + 1);
    EXPECT_EQ(hist_bucket(hist_bucket_lower(b)), b);
    EXPECT_EQ(hist_bucket(hist_bucket_upper(b)), b);
  }
  EXPECT_EQ(hist_bucket(std::numeric_limits<std::uint64_t>::max()),
            kHistBuckets - 1);
  EXPECT_EQ(hist_bucket_upper(kHistBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistBuckets, RelativeErrorIsBounded) {
  // Log-linear with 4 sub-buckets per octave: bucket width <= 1/4 of the
  // bucket's lower bound, i.e. <= 25% relative error for any estimate read
  // back from a bucket.
  for (std::size_t b = 4; b + 1 < kHistBuckets; ++b) {
    SCOPED_TRACE(b);
    const std::uint64_t lo = hist_bucket_lower(b);
    const std::uint64_t hi = hist_bucket_upper(b);
    EXPECT_LE(hi - lo, lo / 4 + 1);
  }
}

// ---------------------------------------------------------------------------
// Snapshot arithmetic (both modes: hist_snapshot is a plain struct).

TEST(HistSnapshot, MergeAndQuantile) {
  obs::hist_snapshot a{};
  for (std::uint64_t v = 1; v <= 100; ++v) {
    const std::size_t b = hist_bucket(v);
    a.buckets[b] += 1;
    a.count += 1;
    a.sum += v;
    if (v > a.max) a.max = v;
  }
  EXPECT_EQ(a.count, 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 50.5);
  // Small quantiles are exact (unit buckets at the low end)...
  EXPECT_DOUBLE_EQ(a.quantile(0.001), 1.0);
  // ...larger ones interpolate within the true value's bucket.
  const double p50 = a.quantile(0.50);
  EXPECT_GE(p50, static_cast<double>(hist_bucket_lower(hist_bucket(50))));
  EXPECT_LE(p50, static_cast<double>(hist_bucket_upper(hist_bucket(50))));
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);  // clamped by the exact max

  obs::hist_snapshot b2{};
  b2.buckets[hist_bucket(7)] = 3;
  b2.count = 3;
  b2.sum = 21;
  b2.max = 7;
  a.merge(b2);
  EXPECT_EQ(a.count, 103u);
  EXPECT_EQ(a.sum, 5050u + 21u);
  EXPECT_EQ(a.max, 100u);
}

TEST(HistSnapshot, EmptyQuantileIsZero) {
  const obs::hist_snapshot empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.max, 0u);
}

// ---------------------------------------------------------------------------
// Compiled-out contract.

TEST(HistogramOff, LayerIsCompiledOut) {
  if (obs::compiled) GTEST_SKIP() << "telemetry compiled in";
  // The per-table block must vanish entirely behind [[no_unique_address]].
  EXPECT_TRUE(std::is_empty_v<obs::table_hists>);
  obs::hist_record(obs::global_hist::room_wait_ns, 42);
  obs::hist_accum a;
  a.note(3);
  EXPECT_TRUE(a.empty());  // the accumulator is a no-op too
  EXPECT_EQ(obs::hist_totals(obs::global_hist::room_wait_ns).count, 0u);
  EXPECT_EQ(obs::table_hist_totals(obs::table_hist::probe_depth).count, 0u);
  EXPECT_EQ(obs::now_if_enabled(), 0u);
  // Registry is inert too.
  deterministic_table<> t(64);
  [[maybe_unused]] const obs::scoped_registration reg("off", t);
  EXPECT_TRUE(obs::snapshot_tables().empty());
}

// ---------------------------------------------------------------------------
// Recording (telemetry builds only).

class HistogramOn : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled) GTEST_SKIP() << "telemetry compiled out";
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    if (obs::compiled) {
      obs::set_enabled(false);
      scheduler::get().set_num_workers(4);
    }
  }
};

TEST_F(HistogramOn, TableHistsLedgerSurvivesDestruction) {
  const obs::hist_snapshot before =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  {
    obs::table_hists h;
    for (std::uint64_t v = 1; v <= 50; ++v)
      h.record(obs::table_hist::probe_depth, v);
    const obs::hist_snapshot live =
        obs::table_hist_totals(obs::table_hist::probe_depth);
    EXPECT_EQ(live.count - before.count, 50u);
  }  // h dies: its samples must fold into the graveyard, not vanish
  const obs::hist_snapshot after =
      obs::table_hist_totals(obs::table_hist::probe_depth);
  EXPECT_EQ(after.count - before.count, 50u);
  EXPECT_GE(after.max, 50u);
}

TEST_F(HistogramOn, ProbeDepthLedgerMatchesOpCounters) {
  // The defining invariant: one probe-depth sample per operation, exactly.
  deterministic_table<> t(1024);
  for (std::uint64_t v = 1; v <= 300; ++v) t.insert(v);
  for (std::uint64_t v = 1; v <= 300; ++v) (void)t.find(v);
  for (std::uint64_t v = 1; v <= 100; ++v) t.erase(v);
  const obs::hist_snapshot d = t.hists().snapshot(obs::table_hist::probe_depth);
  const std::uint64_t ops = obs::total(obs::counter::find_ops) +
                            obs::total(obs::counter::insert_ops) +
                            obs::total(obs::counter::erase_ops);
  EXPECT_EQ(d.count, ops);
  EXPECT_GE(d.sum, d.count);  // every op probes at least one slot
  EXPECT_GE(d.max, 1u);
}

TEST_F(HistogramOn, BlockFlushMatchesPerSampleRecords) {
  // The pipelined engines' block accumulator must be indistinguishable
  // from per-sample record() calls once flushed.
  obs::hist_accum a;
  EXPECT_TRUE(a.empty());
  for (std::uint64_t v = 0; v <= 100; ++v) a.note(v);
  EXPECT_FALSE(a.empty());
  obs::table_hists h;
  h.record_block(obs::table_hist::probe_depth, a);
  obs::table_hists ref;
  for (std::uint64_t v = 0; v <= 100; ++v)
    ref.record(obs::table_hist::probe_depth, v);
  const obs::hist_snapshot s = h.snapshot(obs::table_hist::probe_depth);
  const obs::hist_snapshot r = ref.snapshot(obs::table_hist::probe_depth);
  EXPECT_EQ(s.buckets, r.buckets);
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.max, 100u);
}

// Same hammer as above, through the block-flush path the pipelined
// engines use: workers accumulate locally and flush whole blocks while
// the drainer merges snapshots.
TEST_F(HistogramOn, ConcurrentBlockFlushWhileDrainIsRaceFree) {
  obs::table_hists h;
  constexpr std::size_t kBlocks = 200;
  constexpr std::size_t kPerBlock = 100;
  const std::size_t workers = static_cast<std::size_t>(num_workers());
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::hist_snapshot s =
          h.snapshot(obs::table_hist::probe_depth);
      EXPECT_GE(s.count, last);
      last = s.count;
    }
  });
  parallel_for(0, workers * kBlocks, [&](std::size_t i) {
    obs::hist_accum a;
    for (std::uint64_t v = 1; v <= kPerBlock; ++v) a.note((i + v) % 61 + 1);
    h.record_block(obs::table_hist::probe_depth, a);
  });
  stop.store(true, std::memory_order_release);
  drainer.join();
  const obs::hist_snapshot s = h.snapshot(obs::table_hist::probe_depth);
  EXPECT_EQ(s.count, workers * kBlocks * kPerBlock);
  std::uint64_t bucket_total = 0;
  for (const auto c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(s.max, 61u);  // kPerBlock > 61, so every block sees the max
}

TEST_F(HistogramOn, DisabledRecordsNothing) {
  obs::set_enabled(false);
  obs::table_hists h;
  h.record(obs::table_hist::probe_depth, 7);
  obs::hist_accum a;
  a.note(7);  // local accumulation is unconditional...
  h.record_block(obs::table_hist::probe_depth, a);  // ...the flush is gated
  obs::hist_record(obs::global_hist::room_wait_ns, 7);
  EXPECT_EQ(h.snapshot(obs::table_hist::probe_depth).count, 0u);
  EXPECT_EQ(obs::hist_totals(obs::global_hist::room_wait_ns).count, 0u);
  obs::set_enabled(true);
}

TEST_F(HistogramOn, RegistrySnapshotsRegisteredTables) {
  deterministic_table<> t(256);
  for (std::uint64_t v = 1; v <= 10; ++v) t.insert(v);
  {
    const obs::scoped_registration reg("reg-test", t);
    const auto tables = obs::snapshot_tables();
    ASSERT_EQ(tables.size(), 1u);
    EXPECT_EQ(tables[0].name, "reg-test");
    EXPECT_EQ(tables[0].capacity, 256u);
    EXPECT_TRUE(tables[0].has_size);
    EXPECT_EQ(tables[0].size, 10u);
    EXPECT_TRUE(tables[0].has_hists);
    EXPECT_EQ(tables[0].probe_depth.count, 10u);
  }  // scoped_registration unregisters
  EXPECT_TRUE(obs::snapshot_tables().empty());
}

// The TSan-job hammer: all workers record into one striped histogram while
// a drainer thread repeatedly merges snapshots. Mid-drain sums may be
// partial (stripes are read one by one) but must never fault or trip TSan,
// and the post-join snapshot is exact.
TEST_F(HistogramOn, ConcurrentRecordWhileDrainIsRaceFree) {
  obs::table_hists h;
  constexpr std::size_t kPerWorker = 20000;
  const std::size_t workers = static_cast<std::size_t>(num_workers());
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::hist_snapshot s =
          h.snapshot(obs::table_hist::probe_depth);
      // Counts only grow while recording is in flight.
      EXPECT_GE(s.count, last);
      last = s.count;
    }
  });
  parallel_for(0, workers * kPerWorker, [&](std::size_t i) {
    h.record(obs::table_hist::probe_depth, (i % 61) + 1);
  });
  stop.store(true, std::memory_order_release);
  drainer.join();
  const obs::hist_snapshot s = h.snapshot(obs::table_hist::probe_depth);
  EXPECT_EQ(s.count, workers * kPerWorker);
  std::uint64_t bucket_total = 0;
  for (const auto c : s.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(s.max, 61u);
}

}  // namespace
}  // namespace phch
