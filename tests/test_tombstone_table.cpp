// Tombstone-deletion baseline (Gao et al. style): correct set semantics,
// monotone footprint growth under churn (the failure mode that motivates
// back-shift deletion), and compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/nd_linear_table.h"
#include "phch/core/tombstone_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

using ttable = tombstone_table<int_entry<>>;

TEST(TombstoneTable, InsertFindErase) {
  ttable t(64);
  t.insert(5);
  t.insert(6);
  EXPECT_TRUE(t.contains(5));
  t.erase(5);
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.contains(6));
  EXPECT_EQ(t.count(), 1u);
}

TEST(TombstoneTable, DeletedSlotBecomesTombstoneNotEmpty) {
  ttable t(64);
  t.insert(5);
  t.erase(5);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.footprint(), 1u);  // the tombstone lingers
}

TEST(TombstoneTable, FindsSkipTombstonesOnProbePath) {
  // Force two keys into one cluster, delete the first, second stays
  // reachable through the tombstone.
  ttable t(1 << 10);
  const auto keys = test::unique_keys(400, 3);
  test::parallel_insert(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 200);
  test::parallel_erase(t, dels);
  for (std::size_t i = 200; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(TombstoneTable, SetSemanticsUnderConcurrency) {
  ttable t(1 << 14);
  const auto keys = test::dup_keys(8000, 5000, 7);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> ref(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), ref.size());
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), ref.begin(), ref.end()));
}

TEST(TombstoneTable, FootprintGrowsMonotonicallyUnderChurn) {
  // The headline defect: churn with a bounded live set keeps growing the
  // footprint, while the back-shifting tables stay at the live size.
  ttable tomb(1 << 12);
  nd_linear_table<int_entry<>> shift(1 << 12);
  std::size_t last_footprint = 0;
  for (int round = 0; round < 6; ++round) {
    const auto keys = test::unique_keys(300, 50 + round);
    test::parallel_insert(tomb, keys);
    test::parallel_insert(shift, keys);
    test::parallel_erase(tomb, keys);
    test::parallel_erase(shift, keys);
    EXPECT_EQ(tomb.count(), 0u);
    EXPECT_EQ(shift.count(), 0u);
    EXPECT_GE(tomb.footprint(), last_footprint);
    last_footprint = tomb.footprint();
  }
  EXPECT_GT(last_footprint, 1000u);  // ~6 rounds x 300 keys of garbage
  // The back-shift table carries no garbage at all.
  for (std::size_t s = 0; s < shift.capacity(); ++s) {
    ASSERT_TRUE(int_entry<>::is_empty(shift.raw_slots()[s]));
  }
}

TEST(TombstoneTable, ChurnEventuallyOverflowsWithoutCompaction) {
  ttable t(1 << 8);  // 256 slots
  EXPECT_THROW(
      {
        for (int round = 0; round < 100; ++round) {
          const auto keys = test::unique_keys(100, 500 + round);
          for (const auto k : keys) t.insert(k);
          for (const auto k : keys) t.erase(k);
        }
      },
      table_full_error);
}

TEST(TombstoneTable, CompactReclaimsTombstones) {
  ttable t(1 << 10);
  const auto keys = test::unique_keys(300, 11);
  test::parallel_insert(t, keys);
  test::parallel_erase(
      t, std::vector<std::uint64_t>(keys.begin(), keys.begin() + 250));
  EXPECT_GT(t.footprint(), t.count());
  t.compact();
  EXPECT_EQ(t.footprint(), t.count());
  EXPECT_EQ(t.count(), 50u);
  for (std::size_t i = 250; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
}

TEST(TombstoneTable, CombiningStillWorks) {
  tombstone_table<pair_entry<combine_add>> t(1 << 10);
  parallel_for(0, 10000, [&](std::size_t i) { t.insert(kv64{1 + (i % 4), 1}); });
  std::uint64_t total = 0;
  for (std::uint64_t k = 1; k <= 4; ++k) total += t.find(k).v;
  EXPECT_EQ(total, 10000u);
}

}  // namespace
}  // namespace phch
