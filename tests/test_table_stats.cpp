// Probe/cluster analysis of open-addressing layouts.
#include <gtest/gtest.h>

#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/table_stats.h"
#include "table_test_util.h"

namespace phch {
namespace {

TEST(TableStats, EmptyTable) {
  deterministic_table<int_entry<>> t(64);
  const auto st = analyze(t);
  EXPECT_EQ(st.occupied, 0u);
  EXPECT_EQ(st.clusters, 0u);
  EXPECT_EQ(st.mean_probe, 0.0);
}

TEST(TableStats, EmptyTableStatsAreAllZero) {
  // Regression: every field, not just the three above — an empty table must
  // never produce NaNs or leftovers from the cluster scan.
  deterministic_table<int_entry<>> t(128);
  const auto st = analyze(t);
  EXPECT_EQ(st.occupied, 0u);
  EXPECT_EQ(st.clusters, 0u);
  EXPECT_EQ(st.max_probe, 0u);
  EXPECT_EQ(st.max_cluster, 0u);
  EXPECT_EQ(st.mean_probe, 0.0);
  EXPECT_EQ(st.mean_cluster, 0.0);
}

TEST(TableStats, ZeroCapacityIsGuarded) {
  // Regression: analyze_slots(ptr, 0) used to compute mask = SIZE_MAX and
  // walk a zero-length array; it must instead return zeroed stats without
  // touching the pointer.
  const auto st = analyze_slots<int_entry<>>(nullptr, 0);
  EXPECT_EQ(st.occupied, 0u);
  EXPECT_EQ(st.clusters, 0u);
  EXPECT_EQ(st.max_probe, 0u);
  EXPECT_EQ(st.max_cluster, 0u);
  EXPECT_EQ(st.mean_probe, 0.0);
  EXPECT_EQ(st.mean_cluster, 0.0);
}

TEST(TableStats, SingleElement) {
  deterministic_table<int_entry<>> t(64);
  t.insert(42);
  const auto st = analyze(t);
  EXPECT_EQ(st.occupied, 1u);
  EXPECT_EQ(st.clusters, 1u);
  EXPECT_EQ(st.max_cluster, 1u);
  EXPECT_EQ(st.mean_probe, 1.0);  // at its home slot
}

TEST(TableStats, ProbeLengthsAreAtLeastOne) {
  deterministic_table<int_entry<>> t(1 << 12);
  test::parallel_insert(t, test::unique_keys(2000, 3));
  const auto st = analyze(t);
  EXPECT_EQ(st.occupied, 2000u);
  EXPECT_GE(st.mean_probe, 1.0);
  EXPECT_GE(st.max_probe, 1u);
  EXPECT_GE(st.max_cluster, 1u);
  EXPECT_GT(st.clusters, 0u);
  EXPECT_NEAR(st.mean_cluster * static_cast<double>(st.clusters), 2000.0, 0.5);
}

TEST(TableStats, ProbesGrowWithLoad) {
  const std::size_t cap = 1 << 12;
  double last = 0;
  for (const int pct : {20, 50, 80}) {
    deterministic_table<int_entry<>> t(cap);
    test::parallel_insert(t, test::unique_keys(cap * static_cast<std::size_t>(pct) / 100,
                                               static_cast<std::uint64_t>(pct)));
    const auto st = analyze(t);
    EXPECT_GT(st.mean_probe, last);
    last = st.mean_probe;
  }
  EXPECT_GT(last, 2.0);  // 80% load: mean probe well above 2
}

TEST(TableStats, DeterministicAndNdLayoutsHaveEqualOccupancy) {
  // Same keys, same capacity: the deterministic table permutes elements
  // within clusters but cluster structure (which slots are full) matches
  // standard linear probing exactly.
  const auto keys = test::unique_keys(1500, 7);
  deterministic_table<int_entry<>> d(1 << 12);
  nd_linear_table<int_entry<>> nd(1 << 12);
  test::parallel_insert(d, keys);
  test::parallel_insert(nd, keys);
  const auto sd = analyze(d);
  const auto snd = analyze(nd);
  EXPECT_EQ(sd.occupied, snd.occupied);
  EXPECT_EQ(sd.clusters, snd.clusters);
  EXPECT_EQ(sd.max_cluster, snd.max_cluster);
  // The paper: prioritized insertion probes exactly as standard probing.
  EXPECT_NEAR(sd.mean_probe, snd.mean_probe, 1e-9);
}

TEST(TableStats, WraparoundClusterCountedOnce) {
  // Force occupancy around the array boundary by filling nearly full.
  deterministic_table<int_entry<>> t(64);
  test::parallel_insert(t, test::unique_keys(60, 9));
  const auto st = analyze(t);
  EXPECT_EQ(st.occupied, 60u);
  std::size_t sum = 0;
  // Cluster lengths must sum to occupancy.
  EXPECT_NEAR(st.mean_cluster * static_cast<double>(st.clusters), 60.0, 0.5);
  (void)sum;
}

}  // namespace
}  // namespace phch
