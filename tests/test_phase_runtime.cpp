// phase_runtime (core/phase_runtime.h): the single per-table phase-state
// word. Epoch monotonicity, the exactly-once transition edge under
// concurrency (worker counts 1/4/8), checked/unchecked policy equivalence
// (both are views over the same state machine), batch scopes sharing the
// scalar epoch, room transitions advancing it, and violation-handler
// interception surviving the refactor unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "phch/core/auto_phased_table.h"
#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/phase_guard.h"
#include "phch/core/phase_runtime.h"
#include "phch/core/table_concepts.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/scheduler.h"
#include "table_test_util.h"

namespace phch {
namespace {

TEST(PhaseRuntime, EpochAdvancesOncePerClassChange) {
  phase_runtime r;
  EXPECT_EQ(r.epoch(), 0u);
  EXPECT_EQ(r.current_class(), phase_runtime::kIdle);

  EXPECT_TRUE(r.on_op(op_kind::insert));  // idle -> insert is a transition
  EXPECT_EQ(r.epoch(), 1u);
  EXPECT_FALSE(r.on_op(op_kind::insert));  // same class: no edge
  EXPECT_FALSE(r.on_op(op_kind::insert));
  EXPECT_EQ(r.epoch(), 1u);
  EXPECT_EQ(r.current_class(), static_cast<std::uint64_t>(op_kind::insert));

  EXPECT_TRUE(r.on_op(op_kind::query));
  EXPECT_EQ(r.epoch(), 2u);
  EXPECT_TRUE(r.on_op(op_kind::erase));
  EXPECT_FALSE(r.on_op(op_kind::erase));
  EXPECT_EQ(r.epoch(), 3u);
  EXPECT_TRUE(r.on_op(op_kind::query));
  EXPECT_EQ(r.epoch(), 4u);
}

// The transition edge is exactly-once by construction: when many threads
// announce the same class concurrently, exactly one wins the CAS, for every
// worker count.
TEST(PhaseRuntime, ExactlyOnceTransitionEdgeAcrossWorkerCounts) {
  const int original = num_workers();
  const op_kind seq[] = {op_kind::insert, op_kind::query, op_kind::erase,
                         op_kind::query, op_kind::insert};
  for (const int p : {1, 4, 8}) {
    scheduler::get().set_num_workers(p);
    phase_runtime r;
    std::uint64_t expected_epoch = 0;
    for (const op_kind cls : seq) {
      std::atomic<std::uint64_t> winners{0};
      parallel_for(0, 1024, [&](std::size_t) {
        if (r.on_op(cls)) winners.fetch_add(1, std::memory_order_relaxed);
      });
      ++expected_epoch;
      EXPECT_EQ(winners.load(), 1u) << "p=" << p;
      EXPECT_EQ(r.epoch(), expected_epoch) << "p=" << p;
    }
  }
  scheduler::get().set_num_workers(original);
}

// Both phase policies are views over the same state machine: the same
// operation sequence produces the same epoch trajectory, and every
// first-party table exposes the word through phase_rt().
TEST(PhaseRuntime, CheckedAndUncheckedPoliciesDriveTheSameEpoch) {
  using unchecked_t = deterministic_table<int_entry<>>;
  using checked_t = deterministic_table<int_entry<>, checked_phases>;
  static_assert(phase_epoch_table<unchecked_t>);
  static_assert(phase_epoch_table<checked_t>);

  unchecked_t u(1 << 10);
  checked_t c(1 << 10);
  const auto run = [](auto& t) {
    t.insert(1);        // idle -> insert
    t.insert(2);        // same class
    (void)t.find(1);    // -> query
    (void)t.contains(2);
    (void)t.elements(); // elements shares the query class
    t.erase(1);         // -> erase
    (void)t.find(2);    // -> query
  };
  run(u);
  run(c);
  EXPECT_EQ(u.phase_rt().epoch(), 4u);
  EXPECT_EQ(c.phase_rt().epoch(), u.phase_rt().epoch());
}

// Batch scopes are routed through the same word as scalar operations: a
// whole batch is one phase announcement, and mixing batch and scalar
// operations of one class costs one transition, not two.
TEST(PhaseRuntime, BatchScopesShareTheScalarEpoch) {
  deterministic_table<int_entry<>> t(1 << 12);
  const auto keys = test::unique_keys(2000, 7);
  insert_batch(t, keys);  // idle -> insert (one edge for the whole batch)
  EXPECT_EQ(t.phase_rt().epoch(), 1u);
  t.insert(keys.front() + 1000000);  // scalar insert, same class: no edge
  EXPECT_EQ(t.phase_rt().epoch(), 1u);
  (void)find_batch(t, keys);  // -> query
  EXPECT_EQ(t.phase_rt().epoch(), 2u);
  (void)t.contains(keys.front());  // scalar query: no edge
  EXPECT_EQ(t.phase_rt().epoch(), 2u);
  erase_batch(t, keys);  // -> erase
  EXPECT_EQ(t.phase_rt().epoch(), 3u);
}

// Room transitions in auto_phased_table advance the same epoch, including
// for elements()/count(), whose raw-slot scans never enter an operation
// scope on the wrapped table.
TEST(PhaseRuntime, RoomTransitionsAdvanceTheWrappedTablesEpoch) {
  auto_phased_table<deterministic_table<int_entry<>>> t(1 << 10);
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 0u);
  t.insert(1);
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 1u);
  t.insert(2);  // same room, same class
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 1u);
  EXPECT_TRUE(t.contains(1));  // -> query room
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 2u);
  t.erase(1);  // -> erase room
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 3u);
  EXPECT_EQ(t.count(), 1u);  // count is a query; raw scan still announces
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 4u);
  EXPECT_EQ(t.elements().size(), 1u);  // same class: no edge
  EXPECT_EQ(t.underlying().phase_rt().epoch(), 4u);
}

// The pluggable violation handler still intercepts structured reports, and
// the runtime keeps tracking epochs across a (handled) violation.
namespace capture {
phase_violation last;
std::atomic<int> calls{0};
void handler(const phase_violation& v) {
  last = v;
  calls.fetch_add(1);
}
}  // namespace capture

TEST(PhaseRuntime, ViolationHandlerInterceptionUnchanged) {
  capture::calls = 0;
  phase_violation_handler prev = set_phase_violation_handler(&capture::handler);
  EXPECT_EQ(prev, &abort_on_phase_violation);
  checked_phases g;
  g.set_name("runtime-report-test");
  {
    checked_phases::scope query(g, op_kind::query);
    checked_phases::scope insert(g, op_kind::insert);  // illegal overlap
  }
  set_phase_violation_handler(nullptr);  // restore the aborting default
  ASSERT_EQ(capture::calls.load(), 1);
  EXPECT_EQ(capture::last.table_name, std::string("runtime-report-test"));
  EXPECT_EQ(capture::last.attempted, op_kind::insert);
  EXPECT_EQ(capture::last.in_flight[static_cast<int>(op_kind::query)], 1u);
  // Both scopes announced their class; the overlap is two transitions.
  EXPECT_EQ(g.runtime().epoch(), 2u);
}

}  // namespace
}  // namespace phch
