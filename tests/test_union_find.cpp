// Phase-concurrent union-find: find/compress correctness under concurrent
// finds, link correctness under reservation-style exclusive links.
#include <gtest/gtest.h>

#include "phch/graph/union_find.h"
#include "phch/parallel/parallel_for.h"
#include "phch/utils/rand.h"

namespace phch::graph {
namespace {

TEST(UnionFind, SingletonsInitially) {
  union_find uf(100);
  for (std::uint32_t v = 0; v < 100; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(UnionFind, LinkMergesComponents) {
  union_find uf(10);
  uf.link(5, 2);
  uf.link(7, 5);
  EXPECT_EQ(uf.find(7), 2u);
  EXPECT_EQ(uf.find(5), 2u);
  EXPECT_EQ(uf.find(2), 2u);
  EXPECT_EQ(uf.find(3), 3u);
}

TEST(UnionFind, ChainCompressionTerminates) {
  const std::size_t n = 100000;
  union_find uf(n);
  // Build one long chain: i -> i-1.
  for (std::uint32_t i = 1; i < n; ++i) uf.link(i, i - 1);
  EXPECT_EQ(uf.find(static_cast<std::uint32_t>(n - 1)), 0u);
  // After compression the second find is direct.
  EXPECT_EQ(uf.find(static_cast<std::uint32_t>(n - 1)), 0u);
}

TEST(UnionFind, ConcurrentFindsWithCompressionAgree) {
  const std::size_t n = 50000;
  union_find uf(n);
  for (std::uint32_t i = 1; i < n; ++i) uf.link(i, i / 2);  // tree to root 0
  std::atomic<std::size_t> wrong{0};
  parallel_for(0, n, [&](std::size_t v) {
    if (uf.find(static_cast<std::uint32_t>(v)) != 0) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0u);
}

TEST(UnionFind, PartitionedComponents) {
  const std::size_t n = 1000;
  union_find uf(n);
  // 10 components by residue mod 10: link each v to v-10.
  for (std::uint32_t v = 10; v < n; ++v) uf.link(v, v - 10);
  parallel_for(0, n, [&](std::size_t v) {
    ASSERT_EQ(uf.find(static_cast<std::uint32_t>(v)), v % 10);
  });
}

}  // namespace
}  // namespace phch::graph
