// linearHash-D: semantics, the ordering invariant (Definition 2), and the
// headline property — the slot layout is a deterministic function of the
// key set, independent of insertion order, interleaving and thread count
// (Theorem 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/scheduler.h"
#include "table_test_util.h"

namespace phch {
namespace {

using test::ordering_invariant_holds;
using itable = deterministic_table<int_entry<>>;

TEST(DeterministicTable, InsertThenFind) {
  itable t(64);
  t.insert(5);
  t.insert(9);
  t.insert(123);
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.contains(9));
  EXPECT_TRUE(t.contains(123));
  EXPECT_FALSE(t.contains(6));
  EXPECT_EQ(t.count(), 3u);
}

TEST(DeterministicTable, DuplicateInsertsAreIdempotent) {
  itable t(64);
  for (int r = 0; r < 10; ++r) t.insert(17);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_TRUE(t.contains(17));
}

TEST(DeterministicTable, FindReturnsStoredValue) {
  itable t(64);
  t.insert(100);
  EXPECT_EQ(t.find(100), 100u);
  EXPECT_EQ(t.find(101), int_entry<>::empty());
}

TEST(DeterministicTable, CapacityRoundsToPowerOfTwo) {
  itable t(1000);
  EXPECT_EQ(t.capacity(), 1024u);
  itable t2(1024);
  EXPECT_EQ(t2.capacity(), 1024u);
}

TEST(DeterministicTable, CountAndLoadFactor) {
  itable t(256);
  const auto keys = test::unique_keys(100);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), 100u);
  EXPECT_NEAR(t.load_factor(), 100.0 / 256.0, 1e-9);
}

TEST(DeterministicTable, ThrowsWhenFull) {
  itable t(16);  // capacity 16
  EXPECT_THROW(
      {
        for (std::uint64_t k = 1; k <= 64; ++k) t.insert(k);
      },
      table_full_error);
}

TEST(DeterministicTable, MatchesStdSetSemantics) {
  itable t(1 << 14);
  const auto keys = test::dup_keys(10000, 3000, 42);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), expected.begin(), expected.end()));
  for (const auto k : expected) ASSERT_TRUE(t.contains(k));
}

TEST(DeterministicTable, OrderingInvariantAfterConcurrentInserts) {
  itable t(1 << 14);
  test::parallel_insert(t, test::dup_keys(12000, 9000, 7));
  EXPECT_TRUE(ordering_invariant_holds<int_entry<>>(t.raw_slots(), t.capacity()));
}

TEST(DeterministicTable, LayoutMatchesSerialHistoryIndependent) {
  const auto keys = test::dup_keys(20000, 15000, 11);
  itable par(1 << 15);
  test::parallel_insert(par, keys);
  serial_table_hi<int_entry<>> ser(1 << 15);
  for (const auto k : keys) ser.insert(k);
  ASSERT_EQ(par.capacity(), ser.capacity());
  for (std::size_t s = 0; s < par.capacity(); ++s) {
    ASSERT_EQ(par.raw_slots()[s], ser.raw_slots()[s]) << "slot " << s;
  }
}

TEST(DeterministicTable, LayoutIndependentOfInsertionOrder) {
  const auto keys = test::unique_keys(5000, 3);
  itable a(1 << 13);
  itable b(1 << 13);
  test::parallel_insert(a, keys);
  test::parallel_insert(b, test::shuffled(keys, 99));
  for (std::size_t s = 0; s < a.capacity(); ++s) {
    ASSERT_EQ(a.raw_slots()[s], b.raw_slots()[s]);
  }
}

TEST(DeterministicTable, ElementsIdenticalAcrossThreadCounts) {
  const auto keys = test::dup_keys(30000, 20000, 5);
  std::vector<std::vector<std::uint64_t>> results;
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  for (const int p : {1, 2, 4, 8}) {
    sched.set_num_workers(p);
    itable t(1 << 16);
    test::parallel_insert(t, keys);
    results.push_back(t.elements());
  }
  sched.set_num_workers(original);
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0], results[i]) << "thread count run " << i;
  }
}

TEST(DeterministicTable, ElementsIsSlotOrderPack) {
  itable t(1 << 10);
  const auto keys = test::unique_keys(300, 8);
  test::parallel_insert(t, keys);
  const auto elems = t.elements();
  ASSERT_EQ(elems.size(), 300u);
  // Must equal the occupied slots read in index order.
  std::vector<std::uint64_t> expected;
  for (std::size_t s = 0; s < t.capacity(); ++s) {
    if (!int_entry<>::is_empty(t.raw_slots()[s])) expected.push_back(t.raw_slots()[s]);
  }
  EXPECT_EQ(elems, expected);
}

TEST(DeterministicTable, ForEachVisitsEachElementOnce) {
  itable t(1 << 12);
  const auto keys = test::unique_keys(1000, 12);
  test::parallel_insert(t, keys);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::size_t> cnt{0};
  t.for_each([&](std::uint64_t v) {
    sum.fetch_add(v);
    cnt.fetch_add(1);
  });
  EXPECT_EQ(cnt.load(), keys.size());
  std::uint64_t expected = 0;
  for (const auto k : keys) expected += k;
  EXPECT_EQ(sum.load(), expected);
}

TEST(DeterministicTable, ClearEmptiesTheTable) {
  itable t(1 << 10);
  test::parallel_insert(t, test::unique_keys(200, 2));
  t.clear();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_TRUE(t.elements().empty());
  EXPECT_EQ(t.approx_size(), 0u);
  t.insert(4);
  EXPECT_TRUE(t.contains(4));
}

TEST(DeterministicTable, ApproxSizeTracksOccupancyAtPhaseBoundaries) {
  itable t(1 << 12);
  const auto keys = test::dup_keys(3000, 1000, 21);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.approx_size(), t.count());
  const auto elems = t.elements();
  test::parallel_erase(t, elems);
  EXPECT_EQ(t.approx_size(), 0u);
  EXPECT_EQ(t.count(), 0u);
}

// --- key-value combining ---------------------------------------------------

TEST(DeterministicTable, CombineMinKeepsMinimumValue) {
  deterministic_table<pair_entry<combine_min>> t(1 << 12);
  constexpr std::size_t n = 5000;
  parallel_for(0, n, [&](std::size_t i) {
    t.insert(kv64{1 + (i % 10), hash64(i) % 100000});
  });
  EXPECT_EQ(t.count(), 10u);
  for (std::uint64_t k = 1; k <= 10; ++k) {
    std::uint64_t expected = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
      if (1 + (i % 10) == k) expected = std::min(expected, hash64(i) % 100000);
    }
    EXPECT_EQ(t.find(k).v, expected) << k;
  }
}

TEST(DeterministicTable, CombineAddSumsValues) {
  deterministic_table<pair_entry<combine_add>> t(1 << 10);
  constexpr std::size_t n = 20000;
  parallel_for(0, n, [&](std::size_t i) { t.insert(kv64{1 + (i % 7), 1}); });
  std::uint64_t total = 0;
  for (std::uint64_t k = 1; k <= 7; ++k) total += t.find(k).v;
  EXPECT_EQ(total, n);
}

TEST(DeterministicTable, PairLayoutDeterministicUnderCombining) {
  const auto mk = [] {
    deterministic_table<pair_entry<combine_min>> t(1 << 12);
    parallel_for(0, 8000, [&](std::size_t i) {
      t.insert(kv64{1 + hash64(i) % 1000, hash64(i ^ 0xabc) % 50});
    });
    return t.elements();
  };
  EXPECT_EQ(mk(), mk());
}

// --- string keys -------------------------------------------------------------

TEST(DeterministicTable, StringKeyLayoutIndependentOfPointerValues) {
  // Two copies of the same strings at different addresses must produce the
  // same key sequence from elements() (priority is content-based).
  const std::vector<std::string> words = {"delta", "alpha", "omega", "beta",
                                          "kappa", "sigma", "zeta",  "eta"};
  auto run = [&](std::size_t pad) {
    std::vector<std::string> storage;
    storage.reserve(words.size() + pad);
    for (std::size_t i = 0; i < pad; ++i) storage.push_back("padpadpad");
    for (const auto& w : words) storage.push_back(w);
    deterministic_table<string_entry> t(64);
    for (std::size_t i = pad; i < storage.size(); ++i) t.insert(storage[i].c_str());
    std::vector<std::string> out;
    for (const char* p : t.elements()) out.emplace_back(p);
    return out;
  };
  EXPECT_EQ(run(0), run(5));
}

TEST(DeterministicTable, StringKeysDedupByContent) {
  const char a1[] = "same";
  const char a2[] = "same";  // distinct address, equal content
  deterministic_table<string_entry> t(16);
  t.insert(a1);
  t.insert(a2);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_TRUE(t.contains("same"));
}

// --- phase-capability region markers (utils/phase_caps.h) --------------------

TEST(DeterministicTable, PhaseRegionMarkersAdmitSameClassOperations) {
  // The markers are compile-time contracts (under clang -Wthread-safety a
  // different-class call inside a marked region is a build error — the CI
  // static-analysis job proves that); at runtime they must be free and
  // inert. This exercises every marker against its own class so the
  // annotated overloads are instantiated in at least one marked region.
  deterministic_table<> t(128);
  {
    insert_phase region(t);
    t.insert(1);
    t.insert(2);
  }
  {
    query_phase region(t);
    EXPECT_TRUE(t.contains(1));
    EXPECT_EQ(t.elements().size(), 2u);
  }
  {
    erase_phase region(t);
    t.erase(1);
  }
  {
    query_phase region(t);
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
  }
}

}  // namespace
}  // namespace phch
