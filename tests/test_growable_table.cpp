// Resizing extension (§4 "Resizing"): growth triggers, migration
// correctness, determinism of the final layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/growable_table.h"
#include "phch/core/table_concepts.h"
#include "table_test_util.h"

namespace phch {
namespace {

using gtable = growable_table<int_entry<>>;

TEST(GrowableTable, GrowsFromTinyCapacity) {
  gtable t(16);
  const auto keys = test::unique_keys(10000, 3);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  EXPECT_GT(t.growth_count(), 0u);
  EXPECT_GE(t.capacity(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k)) << k;
}

TEST(GrowableTable, NoGrowthWhenPreSized) {
  gtable t(1 << 14);
  test::parallel_insert(t, test::unique_keys(1000, 5));
  EXPECT_EQ(t.growth_count(), 0u);
  EXPECT_EQ(t.capacity(), 1u << 14);
}

TEST(GrowableTable, MigratedLayoutEqualsFreshTable) {
  // Growing must preserve history-independence: the layout after migration
  // equals inserting the same set into a fixed table of the final capacity.
  gtable grown(32);
  const auto keys = test::unique_keys(3000, 7);
  test::parallel_insert(grown, keys);
  deterministic_table<int_entry<>> fixed(grown.capacity());
  test::parallel_insert(fixed, keys);
  EXPECT_EQ(grown.elements(), fixed.elements());
}

TEST(GrowableTable, FindAndEraseAfterGrowth) {
  gtable t(16);
  const auto keys = test::unique_keys(2000, 9);
  test::parallel_insert(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 1200);
  test::parallel_erase(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  for (std::size_t i = 1200; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(GrowableTable, DuplicateHeavyInsertLoad) {
  gtable t(16);
  const auto keys = test::dup_keys(40000, 6000, 13);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
}

TEST(GrowableTable, DeterministicAcrossGrowthPaths) {
  // Different initial capacities take different growth schedules but end in
  // the same final capacity must give identical contents (element order may
  // legitimately differ only if final capacities differ).
  const auto keys = test::unique_keys(5000, 15);
  gtable a(16);
  gtable b(1024);
  test::parallel_insert(a, keys);
  test::parallel_insert(b, keys);
  ASSERT_EQ(a.capacity(), b.capacity());
  EXPECT_EQ(a.elements(), b.elements());
}

// The wrapper implements whole-batch members the free batch functions
// forward to, and its inner table must satisfy the growable_source contract.
static_assert(batch_forwarding_table<gtable>);
static_assert(growable_source<gtable::inner_table>);
static_assert(phase_table<gtable>);

TEST(GrowableTable, BatchInsertForcesMultipleGrowthsMidBatch) {
  gtable t(64);
  const auto keys = test::unique_keys(20000, 19);
  insert_batch(t, keys);  // forwards to the wrapper's chunked member
  const std::set<std::uint64_t> ref(keys.begin(), keys.end());
  // 64 -> >= 32768 to hold 20000 keys under the 3/4 ceiling: many growths,
  // all triggered between chunks of this one batch.
  EXPECT_GE(t.growth_count(), 2u);
  EXPECT_GE(t.capacity() - t.capacity() / 4, ref.size());
  ASSERT_EQ(t.count(), ref.size());
  EXPECT_EQ(t.approx_size(), ref.size());  // striped counter survives migration
  const auto elems = t.elements();
  const std::set<std::uint64_t> got(elems.begin(), elems.end());
  EXPECT_EQ(got, ref);
}

TEST(GrowableTable, BatchInsertLayoutEqualsFreshTableOfFinalCapacity) {
  // Batched migration must preserve history independence exactly like the
  // scalar path: the grown table's layout equals a one-shot build.
  gtable grown(32);
  const auto keys = test::dup_keys(9000, 6000, 23);
  insert_batch(grown, keys);
  ASSERT_GE(grown.growth_count(), 2u);
  deterministic_table<int_entry<>> fixed(grown.capacity());
  insert_batch(fixed, keys);
  EXPECT_EQ(grown.elements(), fixed.elements());
}

TEST(GrowableTable, FindAndEraseBatchesForwardThroughWrapper) {
  gtable t(128);
  const auto keys = test::unique_keys(5000, 29);
  insert_batch(t, keys);
  const auto out = find_batch(t, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[i], keys[i]);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 2000);
  erase_batch(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  EXPECT_EQ(t.approx_size(), keys.size() - dels.size());
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TEST(GrowableTable, StressManyConcurrentGrowers) {
  // Small initial size + many threads maximizes the chance of concurrent
  // growth attempts racing in enter()/grow().
  for (int rep = 0; rep < 5; ++rep) {
    gtable t(16);
    const auto keys = test::unique_keys(8000, 100 + rep);
    test::parallel_insert(t, keys);
    ASSERT_EQ(t.count(), keys.size());
  }
}

}  // namespace
}  // namespace phch
