// BFS (Figure 2 / Table 7): all implementations agree on levels; the
// deterministic variants agree on exact parent arrays across runs and
// thread counts; the BFS tree is valid.
#include <gtest/gtest.h>

#include <queue>

#include "phch/apps/bfs.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"
#include "phch/parallel/scheduler.h"

namespace phch::apps {
namespace {

using traits32 = int_entry<std::uint32_t>;

std::vector<std::int64_t> levels_of(const graph::csr_graph& g,
                                    const std::vector<std::int64_t>& parents,
                                    graph::vertex_id root) {
  // Recompute levels from the parent array by BFS over parent pointers.
  std::vector<std::int64_t> level(g.num_vertices(), -1);
  level[root] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 0; v < g.num_vertices(); ++v) {
      if (level[v] >= 0 || parents[v] == kNotReached) continue;
      const auto p = static_cast<std::size_t>(decode_parent(parents[v]));
      if (level[p] >= 0) {
        level[v] = level[p] + 1;
        changed = true;
      }
    }
  }
  return level;
}

std::vector<std::int64_t> reference_distances(const graph::csr_graph& g,
                                              graph::vertex_id root) {
  std::vector<std::int64_t> dist(g.num_vertices(), -1);
  std::queue<graph::vertex_id> q;
  dist[root] = 0;
  q.push(root);
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    g.for_each_neighbor(v, [&](graph::vertex_id w) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    });
  }
  return dist;
}

class BfsOnGraphs : public ::testing::TestWithParam<int> {
 protected:
  graph::csr_graph make_graph() const {
    switch (GetParam()) {
      case 0:
        return graph::csr_graph::from_edges(8 * 8 * 8, graph::grid3d_edges(8));
      case 1:
        return graph::csr_graph::from_edges(4000, graph::random_k_edges(4000, 5, 3));
      default:
        return graph::csr_graph::from_edges(1 << 12, graph::rmat_edges(12, 20000, 7));
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Graphs, BfsOnGraphs, ::testing::Values(0, 1, 2));

TEST_P(BfsOnGraphs, AllVariantsAgreeOnDistances) {
  const auto g = make_graph();
  const auto ref = reference_distances(g, 0);
  const auto serial = levels_of(g, serial_bfs(g, 0), 0);
  const auto arr = levels_of(g, array_bfs(g, 0), 0);
  const auto hash = levels_of(g, hash_bfs<deterministic_table<traits32>>(g, 0), 0);
  const auto hashnd = levels_of(g, hash_bfs<nd_linear_table<traits32>>(g, 0), 0);
  EXPECT_EQ(serial, ref);
  EXPECT_EQ(arr, ref);
  EXPECT_EQ(hash, ref);
  EXPECT_EQ(hashnd, ref);
}

TEST_P(BfsOnGraphs, DeterministicVariantsProduceIdenticalParents) {
  const auto g = make_graph();
  const auto a = array_bfs(g, 0);
  const auto h = hash_bfs<deterministic_table<traits32>>(g, 0);
  EXPECT_EQ(a, h);
  // And repeatable.
  EXPECT_EQ(h, hash_bfs<deterministic_table<traits32>>(g, 0));
}

TEST_P(BfsOnGraphs, ParentsFormAValidTree) {
  const auto g = make_graph();
  const auto parents = hash_bfs<deterministic_table<traits32>>(g, 0);
  const auto ref = reference_distances(g, 0);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (ref[v] < 0) {
      EXPECT_EQ(parents[v], kNotReached);
      continue;
    }
    ASSERT_LT(parents[v], 0) << "reached vertex not marked visited";
    if (v == 0) continue;
    const auto p = static_cast<graph::vertex_id>(decode_parent(parents[v]));
    // Parent must be a true neighbor one level up.
    bool is_nbr = false;
    g.for_each_neighbor(static_cast<graph::vertex_id>(v),
                        [&](graph::vertex_id w) { is_nbr |= w == p; });
    EXPECT_TRUE(is_nbr);
    EXPECT_EQ(ref[p] + 1, ref[v]);
  }
}

TEST_P(BfsOnGraphs, HashBfsIdenticalAcrossThreadCounts) {
  const auto g = make_graph();
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  sched.set_num_workers(1);
  const auto p1 = hash_bfs<deterministic_table<traits32>>(g, 0);
  sched.set_num_workers(7);
  const auto p7 = hash_bfs<deterministic_table<traits32>>(g, 0);
  sched.set_num_workers(original);
  EXPECT_EQ(p1, p7);
}

TEST(Bfs, OtherTableTypesProduceValidTrees) {
  const auto g = graph::csr_graph::from_edges(2000, graph::random_k_edges(2000, 5, 9));
  const auto ref = reference_distances(g, 0);
  EXPECT_EQ(levels_of(g, hash_bfs<cuckoo_table<traits32>>(g, 0, 2.0), 0), ref);
  EXPECT_EQ(levels_of(g, (hash_bfs<chained_table<traits32, true>>(g, 0)), 0), ref);
}

TEST(Bfs, DisconnectedGraphLeavesUnreached) {
  const std::vector<graph::edge> edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto g = graph::csr_graph::from_edges(5, edges);
  const auto p = hash_bfs<deterministic_table<traits32>>(g, 0);
  EXPECT_LT(p[0], 0);
  EXPECT_LT(p[2], 0);
  EXPECT_EQ(p[3], kNotReached);
  EXPECT_EQ(p[4], kNotReached);
}

TEST(Bfs, SingleVertexGraph) {
  const auto g = graph::csr_graph::from_edges(1, {});
  const auto p = serial_bfs(g, 0);
  EXPECT_EQ(decode_parent(p[0]), 0);
}

}  // namespace
}  // namespace phch::apps
