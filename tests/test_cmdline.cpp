// Command-line parsing helper used by the example tools.
#include <gtest/gtest.h>

#include "phch/utils/cmdline.h"

namespace phch {
namespace {

TEST(Cmdline, FlagsAndValues) {
  const char* argv[] = {"prog", "-n", "42", "-dist", "expt", "-verify"};
  const cmdline cl(6, const_cast<char**>(argv));
  EXPECT_EQ(cl.get_long("-n", 0), 42);
  EXPECT_EQ(cl.get_string("-dist", "x"), "expt");
  EXPECT_TRUE(cl.has("-verify"));
  EXPECT_FALSE(cl.has("-missing"));
}

TEST(Cmdline, Defaults) {
  const char* argv[] = {"prog"};
  const cmdline cl(1, const_cast<char**>(argv));
  EXPECT_EQ(cl.get_long("-n", 7), 7);
  EXPECT_EQ(cl.get_string("-o", "out"), "out");
  EXPECT_DOUBLE_EQ(cl.get_double("-alpha", 2.5), 2.5);
}

TEST(Cmdline, DoubleParsing) {
  const char* argv[] = {"prog", "-alpha", "26.5"};
  const cmdline cl(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cl.get_double("-alpha", 0), 26.5);
}

TEST(Cmdline, Positionals) {
  const char* argv[] = {"prog", "input.txt", "-n", "5", "output.txt"};
  const cmdline cl(5, const_cast<char**>(argv));
  EXPECT_EQ(cl.positional(0), "input.txt");
  EXPECT_EQ(cl.positional(1), "output.txt");
  EXPECT_EQ(cl.positional(2, "none"), "none");
}

TEST(Cmdline, FlagAtEndWithoutValue) {
  const char* argv[] = {"prog", "-n"};
  const cmdline cl(2, const_cast<char**>(argv));
  EXPECT_EQ(cl.get_long("-n", 3), 3);  // no value available -> fallback
  EXPECT_TRUE(cl.has("-n"));
}

}  // namespace
}  // namespace phch
