// Phase-concurrent cuckoo baseline: two-location placement, eviction
// chains, lock ordering, combining.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/cuckoo_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

using ctable = cuckoo_table<int_entry<>>;

TEST(CuckooTable, InsertFindErase) {
  ctable t(128);
  t.insert(7);
  t.insert(8);
  EXPECT_TRUE(t.contains(7));
  EXPECT_TRUE(t.contains(8));
  EXPECT_FALSE(t.contains(9));
  t.erase(7);
  EXPECT_FALSE(t.contains(7));
  EXPECT_EQ(t.count(), 1u);
}

TEST(CuckooTable, ElementsAreWithinTwoCandidateSlots) {
  // Structural invariant of cuckoo hashing: every element sits in one of
  // its two hash locations, so finds are O(1).
  ctable t(1 << 12);
  const auto keys = test::unique_keys(1200, 3);
  test::parallel_insert(t, keys);
  for (const auto k : keys) ASSERT_TRUE(t.contains(k)) << k;
}

TEST(CuckooTable, SetSemanticsUnderConcurrency) {
  ctable t(1 << 14);
  const auto keys = test::dup_keys(10000, 6000, 5);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), expected.begin(), expected.end()));
}

TEST(CuckooTable, EvictionChainsResolve) {
  // Load to 45%: eviction chains happen but must all terminate.
  ctable t(1 << 12);
  const auto keys = test::unique_keys((1 << 12) * 45 / 100, 7);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k));
}

TEST(CuckooTable, CombinesDuplicatePairValues) {
  cuckoo_table<pair_entry<combine_min>> t(1 << 10);
  parallel_for(0, 4000, [&](std::size_t i) {
    t.insert(kv64{1 + (i % 8), hash64(i) % 10000});
  });
  EXPECT_EQ(t.count(), 8u);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    std::uint64_t expected = ~0ULL;
    for (std::size_t i = 0; i < 4000; ++i) {
      if (1 + (i % 8) == k) expected = std::min(expected, hash64(i) % 10000);
    }
    EXPECT_EQ(t.find(k).v, expected);
  }
}

TEST(CuckooTable, ConcurrentDeletes) {
  ctable t(1 << 13);
  const auto keys = test::unique_keys(2500, 11);
  test::parallel_insert(t, keys);
  test::parallel_erase(t, std::vector<std::uint64_t>(keys.begin(), keys.begin() + 1500));
  EXPECT_EQ(t.count(), 1000u);
  for (std::size_t i = 1500; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
}

TEST(CuckooTable, ThrowsWhenEffectivelyFull) {
  ctable t(16);
  EXPECT_THROW(
      {
        for (std::uint64_t k = 1; k <= 64; ++k) t.insert(k);
      },
      table_full_error);
}

}  // namespace
}  // namespace phch
