// speculative_for + reservation cells: protocol correctness, priority
// semantics (result equals the sequential greedy execution), progress.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "phch/parallel/speculative_for.h"
#include "phch/parallel/scheduler.h"
#include "phch/utils/rand.h"

namespace phch {
namespace {

TEST(Reservation, ReserveKeepsMinimum) {
  reservation r;
  EXPECT_FALSE(r.reserved());
  r.reserve(7);
  r.reserve(3);
  r.reserve(9);
  EXPECT_TRUE(r.check(3));
  EXPECT_FALSE(r.check(7));
  EXPECT_TRUE(r.reserved());
}

TEST(Reservation, CheckResetReleasesOnlyHolder) {
  reservation r;
  r.reserve(5);
  EXPECT_FALSE(r.check_reset(6));
  EXPECT_TRUE(r.reserved());
  EXPECT_TRUE(r.check_reset(5));
  EXPECT_FALSE(r.reserved());
}

// Greedy sequential "select non-adjacent slots": iterate i claims cells
// i%K and (i*7)%K if both are free in priority order. speculative_for must
// produce exactly the sequential result.
struct claim_step {
  std::size_t k;
  std::vector<reservation>& cells;
  std::vector<std::uint8_t>& taken;
  std::vector<std::uint8_t>& selected;

  std::size_t a(std::size_t i) const { return i % k; }
  std::size_t b(std::size_t i) const { return (i * 7 + 3) % k; }

  bool reserve(std::size_t i) {
    if (a(i) == b(i) || taken[a(i)] || taken[b(i)]) return false;
    cells[a(i)].reserve(i);
    cells[b(i)].reserve(i);
    return true;
  }
  bool commit(std::size_t i) {
    if (cells[b(i)].check(i)) {
      cells[b(i)].reset();
      if (cells[a(i)].check_reset(i)) {
        taken[a(i)] = 1;
        taken[b(i)] = 1;
        selected[i] = 1;
        return true;
      }
    } else {
      cells[a(i)].check_reset(i);
    }
    return false;
  }
};

std::vector<std::uint8_t> sequential_claims(std::size_t n, std::size_t k) {
  std::vector<std::uint8_t> taken(k, 0);
  std::vector<std::uint8_t> selected(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = i % k;
    const std::size_t b = (i * 7 + 3) % k;
    if (a != b && !taken[a] && !taken[b]) {
      taken[a] = 1;
      taken[b] = 1;
      selected[i] = 1;
    }
  }
  return selected;
}

TEST(SpeculativeFor, MatchesSequentialGreedyExecution) {
  const std::size_t n = 5000;
  const std::size_t k = 400;
  std::vector<reservation> cells(k);
  std::vector<std::uint8_t> taken(k, 0);
  std::vector<std::uint8_t> selected(n, 0);
  claim_step step{k, cells, taken, selected};
  speculative_for(step, 0, n);
  EXPECT_EQ(selected, sequential_claims(n, k));
  for (const auto& c : cells) EXPECT_FALSE(c.reserved());  // all released
}

TEST(SpeculativeFor, GranularityLimitsRoundPrefixButNotResult) {
  const std::size_t n = 5000;
  const std::size_t k = 400;
  std::vector<reservation> cells(k);
  std::vector<std::uint8_t> taken(k, 0);
  std::vector<std::uint8_t> selected(n, 0);
  claim_step step{k, cells, taken, selected};
  speculative_for(step, 0, n, 128);
  EXPECT_EQ(selected, sequential_claims(n, k));
}

TEST(SpeculativeFor, DeterministicAcrossThreadCounts) {
  const std::size_t n = 8000;
  const std::size_t k = 700;
  auto run = [&] {
    std::vector<reservation> cells(k);
    std::vector<std::uint8_t> taken(k, 0);
    std::vector<std::uint8_t> selected(n, 0);
    claim_step step{k, cells, taken, selected};
    speculative_for(step, 0, n);
    return selected;
  };
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  sched.set_num_workers(1);
  const auto s1 = run();
  sched.set_num_workers(6);
  const auto s6 = run();
  sched.set_num_workers(original);
  EXPECT_EQ(s1, s6);
}

TEST(SpeculativeFor, EmptyRangeRunsZeroRounds) {
  std::vector<reservation> cells(4);
  std::vector<std::uint8_t> taken(4, 0);
  std::vector<std::uint8_t> selected;
  claim_step step{4, cells, taken, selected};
  EXPECT_EQ(speculative_for(step, 3, 3), 0u);
}

TEST(SpeculativeFor, ReturnsRoundCount) {
  // All n iterates contend for one cell pair: exactly one commits per
  // round until each is either selected or dropped; at least 2 rounds.
  struct single_cell_step {
    std::vector<reservation>& cells;
    std::atomic<int>& committed;
    bool reserve(std::size_t i) {
      if (committed.load() >= 3) return false;  // stop after 3 wins
      cells[0].reserve(i);
      return true;
    }
    bool commit(std::size_t i) {
      if (cells[0].check_reset(i)) {
        committed.fetch_add(1);
        return true;
      }
      return false;
    }
  };
  std::vector<reservation> cells(1);
  std::atomic<int> committed{0};
  single_cell_step step{cells, committed};
  const std::size_t rounds = speculative_for(step, 0, 100);
  EXPECT_GE(rounds, 3u);
  EXPECT_EQ(committed.load(), 3);
}

}  // namespace
}  // namespace phch
