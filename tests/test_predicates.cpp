// Geometric predicates: signs, symmetry, near-degenerate stability.
#include <gtest/gtest.h>

#include <cmath>

#include "phch/geometry/predicates.h"
#include "phch/utils/rand.h"

namespace phch::geometry {
namespace {

TEST(Orient2d, BasicSigns) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0);  // CCW
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0);  // CW
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(Orient2d, CyclicPermutationPreservesSign) {
  const point2d a{0.1, 0.7};
  const point2d b{2.3, -0.4};
  const point2d c{1.1, 5.2};
  EXPECT_GT(orient2d(a, b, c) * orient2d(b, c, a), 0);
  EXPECT_GT(orient2d(b, c, a) * orient2d(c, a, b), 0);
}

TEST(Orient2d, SwapFlipsSign) {
  const point2d a{0.3, 0.9};
  const point2d b{1.7, 0.2};
  const point2d c{0.5, 2.2};
  EXPECT_LT(orient2d(a, b, c) * orient2d(b, a, c), 0);
}

TEST(Orient2d, NearlyCollinearIsConsistent) {
  // Points almost on a line: the filtered predicate must give the same sign
  // as extended-precision evaluation, and be antisymmetric.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const double t = static_cast<double>(hash64(i) % 1000) / 1000.0;
    const point2d a{0, 0};
    const point2d b{1, 1};
    const point2d c{t, t + 1e-15 * (static_cast<double>(hash64(i ^ 7) % 3) - 1.0)};
    const double s1 = orient2d(a, b, c);
    const double s2 = orient2d(b, a, c);
    ASSERT_LE(s1 * s2, 0.0) << i;  // opposite or both zero
  }
}

TEST(InCircle, BasicSigns) {
  // Unit circle through (1,0), (0,1), (-1,0); center (0,0).
  const point2d a{1, 0};
  const point2d b{0, 1};
  const point2d c{-1, 0};
  EXPECT_GT(in_circle(a, b, c, {0, 0}), 0);          // center is inside
  EXPECT_LT(in_circle(a, b, c, {2, 2}), 0);          // far point outside
  EXPECT_EQ(in_circle(a, b, c, {0, -1}), 0);         // on the circle
}

TEST(InCircle, SymmetricUnderCyclicRotation) {
  const point2d a{0.2, 0.1};
  const point2d b{1.9, 0.3};
  const point2d c{1.0, 2.0};
  const point2d d{1.0, 0.8};
  const double s = in_circle(a, b, c, d);
  EXPECT_GT(s * in_circle(b, c, a, d), 0);
  EXPECT_GT(s * in_circle(c, a, b, d), 0);
}

TEST(Circumcenter, EquidistantFromVertices) {
  const rng r(5);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const point2d a{r.ith_double(3 * i), r.ith_double(3 * i + 1)};
    const point2d b{a.x + 0.1 + r.ith_double(7 * i), r.ith_double(7 * i + 2)};
    const point2d c{r.ith_double(11 * i + 1), b.y + 0.2 + r.ith_double(11 * i + 2)};
    if (std::fabs(orient2d(a, b, c)) < 1e-6) continue;
    const point2d cc = circumcenter(a, b, c);
    const double ra = dist(cc, a);
    ASSERT_NEAR(dist(cc, b), ra, 1e-7 * (1 + ra));
    ASSERT_NEAR(dist(cc, c), ra, 1e-7 * (1 + ra));
  }
}

TEST(MinAngle, EquilateralIsSixtyDegrees) {
  const point2d a{0, 0};
  const point2d b{1, 0};
  const point2d c{0.5, std::sqrt(3.0) / 2};
  EXPECT_NEAR(min_angle(a, b, c), M_PI / 3, 1e-9);
}

TEST(MinAngle, RightIsoscelesIsFortyFive) {
  EXPECT_NEAR(min_angle({0, 0}, {1, 0}, {0, 1}), M_PI / 4, 1e-9);
}

TEST(RadiusEdgeRatio, EquilateralIsOptimal) {
  const point2d a{0, 0};
  const point2d b{1, 0};
  const point2d c{0.5, std::sqrt(3.0) / 2};
  // For the equilateral triangle, R/l = 1/sqrt(3).
  EXPECT_NEAR(radius_edge_ratio(a, b, c), 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(RadiusEdgeRatio, SkinnyTrianglesScoreHigh) {
  EXPECT_GT(radius_edge_ratio({0, 0}, {1, 0}, {0.5, 0.01}), 5.0);
  EXPECT_TRUE(std::isinf(radius_edge_ratio({0, 0}, {1, 1}, {2, 2})));
}

TEST(RadiusEdgeRatio, MatchesRuppertBoundAtThreshold) {
  // A triangle with min angle exactly alpha has ratio 1/(2 sin alpha).
  const double alpha = 25.0 * M_PI / 180.0;
  // Construct an isosceles triangle with apex angle alpha at origin... use
  // circle geometry: inscribe a chord subtending 2*alpha.
  const point2d a{std::cos(0.0), std::sin(0.0)};
  const point2d b{std::cos(2 * alpha), std::sin(2 * alpha)};
  const point2d c{std::cos(M_PI), std::sin(M_PI)};
  // Angle at c subtending chord ab is alpha (inscribed angle theorem); this
  // is the minimum angle here, and R = 1.
  EXPECT_NEAR(min_angle(a, b, c), alpha, 1e-9);
  const double shortest = std::min({dist(a, b), dist(b, c), dist(a, c)});
  EXPECT_NEAR(radius_edge_ratio(a, b, c), 1.0 / shortest, 1e-9);
  EXPECT_NEAR(radius_edge_ratio(a, b, c), 1.0 / (2 * std::sin(alpha)), 1e-9);
}

}  // namespace
}  // namespace phch::geometry
