// Room synchronizations: mutual exclusion between rooms, concurrency within
// a room, progress under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/room_sync.h"
#include "phch/utils/rand.h"

namespace phch {
namespace {

TEST(RoomSync, SingleThreadEnterExit) {
  room_sync rooms(3);
  for (int r = 0; r < 3; ++r) {
    rooms.enter(r);
    rooms.exit();
  }
  SUCCEED();
}

TEST(RoomSync, GuardIsRaii) {
  room_sync rooms(2);
  {
    room_sync::guard g(rooms, 1);
  }
  {
    room_sync::guard g(rooms, 0);  // would deadlock if 1 was still occupied
  }
  SUCCEED();
}

TEST(RoomSync, RoomsNeverOverlap) {
  // Each room has an occupancy counter; an occupant must never observe
  // another room's counter nonzero.
  room_sync rooms(3);
  std::atomic<int> occupancy[3] = {{0}, {0}, {0}};
  std::atomic<int> violations{0};
  constexpr std::size_t kOps = 30000;
  parallel_for(0, kOps, [&](std::size_t i) {
    const int r = static_cast<int>(hash64(i) % 3);
    room_sync::guard g(rooms, r);
    occupancy[r].fetch_add(1, std::memory_order_acq_rel);
    for (int other = 0; other < 3; ++other) {
      if (other != r && occupancy[other].load(std::memory_order_acquire) != 0) {
        violations.fetch_add(1);
      }
    }
    occupancy[r].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_EQ(violations.load(), 0);
}

TEST(RoomSync, ThreadsRendezvousInsideOneRoom) {
  // Two threads must be able to occupy the same room *simultaneously*: both
  // enter room 0 and wait for each other inside it. If the room admitted
  // only one occupant, this rendezvous could never complete.
  room_sync rooms(2);
  std::atomic<int> arrived{0};
  std::atomic<bool> both_inside{false};
  auto body = [&] {
    room_sync::guard g(rooms, 0);
    arrived.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (arrived.load(std::memory_order_acquire) < 2) {
      if (std::chrono::steady_clock::now() > deadline) return;  // fail below
      std::this_thread::yield();
    }
    both_inside.store(true, std::memory_order_release);
  };
  std::thread a(body);
  std::thread b(body);
  a.join();
  b.join();
  EXPECT_TRUE(both_inside.load());
}

TEST(RoomSync, AllWaitersEventuallyEnter) {
  // Progress check: threads demanding different rooms all complete.
  room_sync rooms(4);
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        room_sync::guard g(rooms, (t + i) % 4);
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 8u * 400u);
}

TEST(RoomSync, SingleRoomDegeneratesToSharedAccess) {
  room_sync rooms(1);
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 10000, [&](std::size_t i) {
    room_sync::guard g(rooms, 0);
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000u * 9999 / 2);
}

}  // namespace
}  // namespace phch
