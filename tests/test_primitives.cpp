// Sequence primitives: tabulate/map/reduce/scan/pack/filter determinism and
// correctness against sequential references, across a size sweep.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

namespace phch {
namespace {

class PrimitivesSweep : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitivesSweep,
                         ::testing::Values(0, 1, 2, 7, 100, 1023, 4096, 100001));

TEST_P(PrimitivesSweep, TabulateMatchesFormula) {
  const std::size_t n = GetParam();
  const auto v = tabulate(n, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], 3 * i + 1);
}

TEST_P(PrimitivesSweep, ReduceAddMatchesAccumulate) {
  const std::size_t n = GetParam();
  const auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 1000; });
  const auto expected = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  EXPECT_EQ(reduce_add(v), expected);
}

TEST_P(PrimitivesSweep, ExclusiveScanMatchesSequential) {
  const std::size_t n = GetParam();
  auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 100; });
  std::vector<std::uint64_t> expected(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = acc;
    acc += v[i];
  }
  const std::uint64_t total = scan_add_inplace(v);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(v, expected);
}

TEST_P(PrimitivesSweep, PackKeepsOrderAndSelection) {
  const std::size_t n = GetParam();
  const auto keep = [](std::size_t i) { return hash64(i) % 3 == 0; };
  const auto out = pack(n, keep, [](std::size_t i) { return i; });
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < n; ++i)
    if (keep(i)) expected.push_back(i);
  EXPECT_EQ(out, expected);
}

TEST_P(PrimitivesSweep, FilterMatchesStdCopyIf) {
  const std::size_t n = GetParam();
  const auto v = tabulate(n, [](std::size_t i) { return hash64(i) % 1000; });
  const auto out = filter(v, [](std::uint64_t x) { return x % 2 == 0; });
  std::vector<std::uint64_t> expected;
  std::copy_if(v.begin(), v.end(), std::back_inserter(expected),
               [](std::uint64_t x) { return x % 2 == 0; });
  EXPECT_EQ(out, expected);
}

TEST(Primitives, ScanWithCustomMonoid) {
  auto v = tabulate(1000, [](std::size_t i) { return hash64(i) % 97 + 1; });
  const auto expected_total =
      std::accumulate(v.begin(), v.end(), std::uint64_t{1},
                      [](std::uint64_t a, std::uint64_t b) { return a * b % 1000003; });
  const auto total = scan_inplace(
      v, [](std::uint64_t a, std::uint64_t b) { return a * b % 1000003; },
      std::uint64_t{1});
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(v[0], 1u);  // exclusive scan starts with the identity
}

TEST(Primitives, PackIndexReturnsSortedMatchingIndices) {
  const auto idx = pack_index(1000, [](std::size_t i) { return i % 7 == 0; });
  ASSERT_FALSE(idx.empty());
  for (std::size_t j = 0; j < idx.size(); ++j) EXPECT_EQ(idx[j], 7 * j);
}

TEST(Primitives, MapAppliesFunction) {
  const auto v = iota(100);
  const auto sq = map(v, [](std::size_t x) { return x * x; });
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(sq[i], i * i);
}

TEST(Primitives, ReduceWithMaxMonoid) {
  const auto m = reduce(std::size_t{0}, std::size_t{100000}, std::uint64_t{0},
                        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); },
                        [](std::size_t i) { return hash64(i) % 1234567; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < 100000; ++i) expected = std::max(expected, hash64(i) % 1234567);
  EXPECT_EQ(m, expected);
}

TEST(Primitives, DeterministicAcrossRepeats) {
  // Two runs of the same parallel pack produce identical results: the block
  // decomposition is a function of (n, workers), not timing.
  const std::size_t n = 250000;
  const auto a = pack(n, [](std::size_t i) { return hash64(i) & 1; },
                      [](std::size_t i) { return hash64(i); });
  const auto b = pack(n, [](std::size_t i) { return hash64(i) & 1; },
                      [](std::size_t i) { return hash64(i); });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace phch
