// Remove duplicates (Table 3): exact set output, deterministic order with
// linearHash-D, works across all table types and key kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "phch/apps/remove_duplicates.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

namespace phch::apps {
namespace {

TEST(RemoveDuplicates, ExactSetOnUniformKeys) {
  const auto seq = workloads::random_int_seq(50000, 3);
  auto out = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 17);
  const std::set<std::uint64_t> ref(seq.begin(), seq.end());
  ASSERT_EQ(out.size(), ref.size());
  std::sort(out.begin(), out.end());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), ref.begin(), ref.end()));
}

TEST(RemoveDuplicates, ExactSetOnExponentialKeys) {
  const auto seq = workloads::expt_int_seq(50000, 5);
  const auto out = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 17);
  EXPECT_EQ(out.size(), std::set<std::uint64_t>(seq.begin(), seq.end()).size());
}

TEST(RemoveDuplicates, DeterministicOutputOrder) {
  const auto seq = workloads::expt_int_seq(30000, 7);
  const auto a = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 16);
  const auto b = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 16);
  EXPECT_EQ(a, b);
}

TEST(RemoveDuplicates, OutputOrderIndependentOfInputOrder) {
  // The hallmark of history-independence: permuting the input leaves the
  // output sequence unchanged.
  auto seq = workloads::random_int_seq(20000, 9);
  const auto a = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 16);
  std::reverse(seq.begin(), seq.end());
  const auto b = remove_duplicates<deterministic_table<int_entry<>>>(seq, 1 << 16);
  EXPECT_EQ(a, b);
}

TEST(RemoveDuplicates, NonDeterministicTablesStillGetTheSetRight) {
  const auto seq = workloads::expt_int_seq(30000, 11);
  const std::size_t expected = std::set<std::uint64_t>(seq.begin(), seq.end()).size();
  EXPECT_EQ((remove_duplicates<nd_linear_table<int_entry<>>>(seq, 1 << 16)).size(),
            expected);
  EXPECT_EQ((remove_duplicates<cuckoo_table<int_entry<>>>(seq, 1 << 16)).size(),
            expected);
  EXPECT_EQ((remove_duplicates<chained_table<int_entry<>, true>>(seq, 1 << 16)).size(),
            expected);
}

TEST(RemoveDuplicates, StringKeysDedupByContent) {
  const auto words = workloads::trigram_string_seq(20000, 13);
  const auto out =
      remove_duplicates<deterministic_table<string_entry>>(words.keys, 1 << 16);
  std::set<std::string> ref;
  for (const char* w : words.keys) ref.insert(w);
  EXPECT_EQ(out.size(), ref.size());
  for (const char* w : out) EXPECT_TRUE(ref.count(w));
}

TEST(RemoveDuplicates, EmptyInput) {
  const std::vector<std::uint64_t> empty;
  EXPECT_TRUE((remove_duplicates<deterministic_table<int_entry<>>>(empty, 16)).empty());
}

TEST(RemoveDuplicates, AllIdenticalElements) {
  const std::vector<std::uint64_t> same(10000, 42);
  const auto out = remove_duplicates<deterministic_table<int_entry<>>>(same, 1 << 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

}  // namespace
}  // namespace phch::apps
