// The SIMD fingerprint sidecar: backend equality (every compiled group-scan
// backend returns the exact masks of a byte-wise reference), tag/slot
// consistency after mixed phased workloads on all four ordering x delete
// policy pairs and the six paper distributions, layout/result equivalence
// between tagged and untagged probing under the runtime-override knob, and
// the small-table / garbage-full edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/growable_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/simd_scan.h"
#include "phch/core/tag_array.h"
#include "phch/core/tombstone_table.h"
#include "phch/utils/rand.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"
#include "table_test_util.h"

namespace phch {
namespace {

// The fourth policy pair has no named alias; instantiate the engine.
template <typename Traits>
using prio_tombstone_table =
    probe_engine<Traits, unchecked_phases, prioritized_order, tombstone_delete>;

// Every backend this build can execute (off excluded).
std::vector<simd::backend> compiled_backends() {
  std::vector<simd::backend> v{simd::backend::swar};
  for (const simd::backend b :
       {simd::backend::sse2, simd::backend::neon, simd::backend::avx2}) {
    if (simd::available(b)) v.push_back(b);
  }
  return v;
}

// Restores the process-wide backend a test overrode.
struct backend_guard {
  simd::backend prev = simd::active();
  ~backend_guard() { simd::set_backend(prev); }
};

// Byte-wise reference the vector backends must match exactly.
simd::group_masks reference_scan(const std::uint8_t* g, std::size_t w,
                                 std::uint8_t match_tag, std::uint8_t empty_tag) {
  simd::group_masks r;
  for (std::size_t i = 0; i < w; ++i) {
    if (g[i] == match_tag) r.match |= 1u << i;
    if (g[i] == empty_tag) r.empty |= 1u << i;
  }
  return r;
}

// --- simd_scan backend equality -------------------------------------------

TEST(SimdScan, BackendsMatchReferenceOnRandomBlocks) {
  alignas(64) std::uint8_t block[64];
  const auto backends = compiled_backends();
  for (std::uint64_t trial = 0; trial < 512; ++trial) {
    for (std::size_t i = 0; i < 64; ++i) {
      // Mix fingerprints with both sentinels so the masks exercise every
      // byte class; bias toward repeats so groups have multiple matches.
      const std::uint64_t r = hash64(trial * 64 + i);
      const std::uint8_t fp = static_cast<std::uint8_t>(r % 8);  // 0..7
      block[i] = (r % 5 == 0)   ? tag_array::kEmpty
                 : (r % 7 == 0) ? tag_array::kTombstone
                                : fp;
    }
    const std::uint8_t probe = static_cast<std::uint8_t>(hash64(trial) % 8);
    for (const simd::backend b : backends) {
      const std::size_t w = simd::group_width(b);
      for (std::size_t g = 0; g + w <= 64; g += w) {
        const simd::group_masks got =
            simd::scan_group(block + g, probe, tag_array::kEmpty, b);
        const simd::group_masks want =
            reference_scan(block + g, w, probe, tag_array::kEmpty);
        ASSERT_EQ(got.match, want.match)
            << simd::backend_name(b) << " trial " << trial << " group " << g;
        ASSERT_EQ(got.empty, want.empty)
            << simd::backend_name(b) << " trial " << trial << " group " << g;
      }
    }
  }
}

// The SWAR zero-byte detector must be exact: the classic haszero trick
// reports spurious matches in bytes above the lowest true match, which
// would desynchronize SWAR from the vector backends' movemask.
TEST(SimdScan, SwarIsExactAboveTheLowestMatch) {
  alignas(64) std::uint8_t g[8] = {0x11, 0x22, 0x11, 0x33, 0x11, 0x44, 0x55, 0x11};
  const simd::group_masks m =
      simd::scan_group(g, 0x11, tag_array::kEmpty, simd::backend::swar);
  EXPECT_EQ(m.match, 0b10010101u);
  EXPECT_EQ(m.empty, 0u);
}

TEST(SimdScan, WidthsAndNames) {
  EXPECT_EQ(simd::group_width(simd::backend::swar), 8u);
  EXPECT_EQ(simd::group_width(simd::backend::sse2), 16u);
  EXPECT_EQ(simd::group_width(simd::backend::neon), 16u);
  EXPECT_EQ(simd::group_width(simd::backend::avx2), 32u);
  EXPECT_EQ(simd::group_width(simd::backend::off), 0u);
  EXPECT_STREQ(simd::backend_name(simd::backend::swar), "swar");
  EXPECT_LE(simd::group_width(simd::best()), simd::kMaxGroupWidth);
}

TEST(SimdScan, RuntimeOverrideKnob) {
  backend_guard guard;
  EXPECT_EQ(simd::set_backend(simd::backend::swar), simd::backend::swar);
  EXPECT_EQ(simd::active(), simd::backend::swar);
  EXPECT_EQ(simd::set_backend(simd::backend::off), simd::backend::off);
  EXPECT_FALSE(simd::usable(simd::backend::off, 1 << 20));
  // Unavailable requests clamp to the widest available backend.
  for (const simd::backend b :
       {simd::backend::sse2, simd::backend::neon, simd::backend::avx2}) {
    if (!simd::available(b)) {
      EXPECT_EQ(simd::set_backend(b), simd::best());
    }
  }
  // A backend never drives a table smaller than its group.
  EXPECT_FALSE(simd::usable(simd::backend::swar, 4));
  EXPECT_TRUE(simd::usable(simd::backend::swar, 8));
}

// --- tag/slot consistency --------------------------------------------------

template <typename Table>
void expect_tags_consistent(const Table& t) {
  using Traits = typename Table::traits;
  const auto* slots = t.raw_slots();
  const std::uint8_t* tags = t.raw_tags();
  for (std::size_t i = 0; i < t.capacity(); ++i) {
    const auto c = slots[i];
    if (Traits::is_empty(c)) {
      ASSERT_EQ(tags[i], tag_array::kEmpty) << "slot " << i;
    } else if (!Table::is_present(c)) {
      ASSERT_EQ(tags[i], tag_array::kTombstone) << "slot " << i;
    } else {
      ASSERT_EQ(tags[i], tag_array::fingerprint(Traits::hash(Traits::key(c))))
          << "slot " << i;
    }
  }
}

// Mixed phased workload: insert two waves, erase a slice, look everything
// up, then check every tag byte against its slot. Runs under each compiled
// backend via the runtime knob (scalar per-op phases + batched phases).
template <typename Table, typename Seq, typename KeyOf>
void run_consistency_fuzz(std::size_t capacity, const Seq& seq, KeyOf key_of) {
  for (const simd::backend b : compiled_backends()) {
    backend_guard guard;
    simd::set_backend(b);
    Table t(capacity);
    const std::size_t half = seq.size() / 2;
    test::parallel_insert(t, Seq(seq.begin(), seq.begin() + half));
    std::vector<typename Table::key_type> dels;
    for (std::size_t i = 0; i < half; i += 3) dels.push_back(key_of(seq[i]));
    test::parallel_erase(t, dels);
    expect_tags_consistent(t);
    test::parallel_insert(t, Seq(seq.begin() + half, seq.end()));
    for (std::size_t i = 0; i < seq.size(); i += 7) {
      (void)t.find(key_of(seq[i]));
    }
    expect_tags_consistent(t);
    // Batched phases drive the tagged AMAC engines over the same sidecar.
    erase_batch(t, dels);
    insert_batch(t, std::vector<typename Table::value_type>(
                        seq.begin(), seq.begin() + half));
    expect_tags_consistent(t);
  }
}

TEST(TagConsistency, RandomIntAllFourPolicyPairs) {
  const auto seq = workloads::random_int_seq(20000, 21);
  const auto key = [](std::uint64_t k) { return k; };
  run_consistency_fuzz<deterministic_table<int_entry<>>>(1 << 16, seq, key);
  run_consistency_fuzz<nd_linear_table<int_entry<>>>(1 << 16, seq, key);
  run_consistency_fuzz<tombstone_table<int_entry<>>>(1 << 16, seq, key);
  run_consistency_fuzz<prio_tombstone_table<int_entry<>>>(1 << 16, seq, key);
}

TEST(TagConsistency, ExptInt) {
  const auto seq = workloads::expt_int_seq(20000, 22);
  const auto key = [](std::uint64_t k) { return k; };
  run_consistency_fuzz<deterministic_table<int_entry<>>>(1 << 16, seq, key);
  run_consistency_fuzz<tombstone_table<int_entry<>>>(1 << 16, seq, key);
}

TEST(TagConsistency, RandomPairInt) {
  const auto seq = workloads::random_pair_seq(16000, 23);
  const auto key = [](kv64 v) { return v.k; };
  run_consistency_fuzz<deterministic_table<pair_entry<combine_add>>>(1 << 15, seq,
                                                                     key);
  run_consistency_fuzz<nd_linear_table<pair_entry<combine_add>>>(1 << 15, seq,
                                                                 key);
}

TEST(TagConsistency, ExptPairInt) {
  const auto seq = workloads::expt_pair_seq(16000, 24);
  const auto key = [](kv64 v) { return v.k; };
  run_consistency_fuzz<deterministic_table<pair_entry<combine_add>>>(1 << 15, seq,
                                                                     key);
}

TEST(TagConsistency, TrigramString) {
  const auto words = workloads::trigram_string_seq(8000, 25);
  const auto key = [](const char* s) { return s; };
  run_consistency_fuzz<deterministic_table<string_entry>>(1 << 15, words.keys,
                                                          key);
}

TEST(TagConsistency, TrigramPairInt) {
  const auto words = workloads::trigram_pair_seq(8000, 26);
  const auto key = [](const string_kv* r) { return r->key; };
  run_consistency_fuzz<deterministic_table<string_pair_entry>>(1 << 15,
                                                               words.entries, key);
}

// --- tagged vs untagged equivalence ---------------------------------------

template <typename Table>
void expect_same_layout(const Table& a, const Table& b) {
  ASSERT_EQ(a.capacity(), b.capacity());
  for (std::size_t s = 0; s < a.capacity(); ++s) {
    ASSERT_TRUE(bits_equal(a.raw_slots()[s], b.raw_slots()[s])) << "slot " << s;
  }
}

// The tagged probe loops must leave layouts bit-identical to the untagged
// scalar loops and return the same find results, on every policy pair.
// Ops run serially so both tables see the identical op order: arrival-order
// layouts depend on thread interleaving, which would make a parallel-built
// comparison meaningless.  Parallel coverage lives in the TagConsistency
// fuzzers above.
template <typename Table>
void run_equivalence(std::size_t capacity) {
  const auto keys = test::dup_keys(12000, 9000, 31);
  std::vector<std::uint64_t> queries = test::unique_keys(2000, 32);
  queries.insert(queries.end(), keys.begin(), keys.begin() + 2000);
  std::vector<std::uint64_t> dels(keys.begin() + 100, keys.begin() + 3100);

  backend_guard guard;
  simd::set_backend(simd::backend::off);
  Table untagged(capacity);
  for (const auto& k : keys) untagged.insert(k);
  const auto want = find_batch_scalar(untagged, queries);
  for (const auto& k : dels) untagged.erase(k);

  for (const simd::backend b : compiled_backends()) {
    simd::set_backend(b);
    Table tagged(capacity);
    for (const auto& k : keys) tagged.insert(k);
    const auto got = find_batch_scalar(tagged, queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(bits_equal(got[i], want[i]))
          << simd::backend_name(b) << " query " << i;
    }
    for (const auto& k : dels) tagged.erase(k);
    expect_same_layout(tagged, untagged);
    expect_tags_consistent(tagged);
  }
}

TEST(TaggedEquivalence, Deterministic) {
  run_equivalence<deterministic_table<int_entry<>>>(1 << 15);
}
TEST(TaggedEquivalence, NdLinear) {
  run_equivalence<nd_linear_table<int_entry<>>>(1 << 15);
}
TEST(TaggedEquivalence, Tombstone) {
  run_equivalence<tombstone_table<int_entry<>>>(1 << 15);
}
TEST(TaggedEquivalence, PrioritizedTombstone) {
  run_equivalence<prio_tombstone_table<int_entry<>>>(1 << 15);
}

// Batched tagged engines against the batched untagged engines.
TEST(TaggedEquivalence, BatchedEnginesMatch) {
  const auto keys = test::dup_keys(20000, 12000, 41);
  std::vector<std::uint64_t> queries(keys.begin(), keys.begin() + 4000);
  queries.push_back(999999999ULL);  // absent
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 5000);

  backend_guard guard;
  simd::set_backend(simd::backend::off);
  deterministic_table<int_entry<>> base(1 << 16);
  insert_batch(base, keys);
  const auto want = find_batch(base, queries);
  erase_batch(base, dels);

  for (const simd::backend b : compiled_backends()) {
    simd::set_backend(b);
    deterministic_table<int_entry<>> t(1 << 16);
    insert_batch(t, keys);
    const auto got = find_batch(t, queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << simd::backend_name(b);
    }
    erase_batch(t, dels);
    expect_same_layout(t, base);
    expect_tags_consistent(t);
  }
}

// --- growth migration ------------------------------------------------------

TEST(TagConsistency, GrowableMigrationRederivesTags) {
  for (const simd::backend b : compiled_backends()) {
    backend_guard guard;
    simd::set_backend(b);
    growable_table<int_entry<>> g(1 << 8);
    const auto keys = test::unique_keys(20000, 51);
    insert_batch(g, keys);
    EXPECT_GT(g.capacity(), std::size_t{1} << 8);  // grew (and migrated)
    expect_tags_consistent(g.inner());
    for (const auto k : keys) ASSERT_TRUE(g.contains(k));
  }
}

// --- edge cases ------------------------------------------------------------

// Tables smaller than a group fall back to untagged probing but still
// maintain their tags.
TEST(TagEdge, TinyTableFallsBack) {
  backend_guard guard;
  simd::set_backend(simd::best());
  deterministic_table<int_entry<>> t(4);
  t.insert(1);
  t.insert(2);
  t.insert(3);
  EXPECT_TRUE(t.contains(2));
  EXPECT_FALSE(t.contains(9));
  t.erase(2);
  EXPECT_FALSE(t.contains(2));
  expect_tags_consistent(t);
}

// A tombstone table whose every slot is garbage: bounded probes must
// resolve finds and erases of absent keys as misses (full tag-group wrap)
// instead of spinning, and inserts must report the table full exactly like
// the untagged loop does (tombstones are never reused — the
// footprint-only-grows policy).
TEST(TagEdge, GarbageFullTombstoneTableStaysBounded) {
  for (const simd::backend b : compiled_backends()) {
    backend_guard guard;
    simd::set_backend(b);
    tombstone_table<int_entry<>> t(16);
    bool filled = false;
    for (std::uint64_t k = 1; !filled; ++k) {
      try {
        t.insert(k);
      } catch (const std::exception&) {
        filled = true;  // every slot is now a tombstone
        break;
      }
      t.erase(k);
    }
    EXPECT_TRUE(filled);
    EXPECT_EQ(t.count(), 0u);
    EXPECT_FALSE(t.contains(12345));  // must terminate, not throw
    t.erase(54321);                   // ditto
    expect_tags_consistent(t);
  }
}

// clear() resets the sidecar along with the slots.
TEST(TagEdge, ClearResetsTags) {
  deterministic_table<int_entry<>> t(1 << 10);
  test::parallel_insert(t, test::unique_keys(500, 61));
  t.clear();
  expect_tags_consistent(t);
  EXPECT_EQ(t.count(), 0u);
}

}  // namespace
}  // namespace phch
