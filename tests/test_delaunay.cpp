// Bowyer–Watson triangulation: structural validity (CCW orientation,
// neighbor symmetry, empty-circumcircle property), Euler count, point
// location, cavity structure.
#include <gtest/gtest.h>

#include "phch/geometry/delaunay.h"
#include "phch/geometry/point_generators.h"

namespace phch::geometry {
namespace {

class DelaunayOnPointSets : public ::testing::TestWithParam<int> {
 protected:
  std::vector<point2d> make(std::size_t n) const {
    return GetParam() == 0 ? cube2d_points(n, 7) : kuzmin_points(n, 7);
  }
};

INSTANTIATE_TEST_SUITE_P(Distributions, DelaunayOnPointSets, ::testing::Values(0, 1));

TEST_P(DelaunayOnPointSets, ValidAtSeveralSizes) {
  for (const std::size_t n : {1, 2, 3, 10, 100, 1500}) {
    const auto m = mesh::delaunay(make(n));
    ASSERT_TRUE(m.check_valid()) << "n=" << n;
  }
}

TEST_P(DelaunayOnPointSets, EulerTriangleCount) {
  // With all n + 3 points in general position and a triangular hull (the
  // super-triangle), live triangles = 2 * (n + 3) - 2 - 3 = 2n + 1.
  const std::size_t n = 800;
  const auto m = mesh::delaunay(make(n));
  std::size_t alive = 0;
  for (const auto& t : m.triangles()) alive += t.alive;
  EXPECT_EQ(alive, 2 * n + 1);
}

TEST_P(DelaunayOnPointSets, LocateFindsContainingTriangle) {
  const auto pts = make(500);
  const auto m = mesh::delaunay(pts);
  // Every input point must locate to a triangle having it as a vertex (it
  // lies on that triangle's boundary/corner).
  for (std::size_t i = 0; i < pts.size(); i += 7) {
    const auto t = m.locate(pts[i], 0);
    const auto& tr = m.triangles()[static_cast<std::size_t>(t)];
    // Containment check: not strictly outside any edge.
    for (int e = 0; e < 3; ++e) {
      ASSERT_GE(orient2d(m.pt(tr.v[(e + 1) % 3]), m.pt(tr.v[(e + 2) % 3]), pts[i]), 0);
    }
  }
}

TEST_P(DelaunayOnPointSets, CavityIsNonEmptyAndConnectedToSeed) {
  const auto pts = make(300);
  const auto m = mesh::delaunay(pts);
  const point2d q{0.5, 0.5};
  const auto t0 = m.locate(q, 0);
  const auto cavity = m.cavity_of(q, t0);
  ASSERT_FALSE(cavity.empty());
  EXPECT_EQ(cavity.front(), t0);
  // Every cavity triangle's circumcircle contains q.
  for (const auto t : cavity) {
    const auto& tr = m.triangles()[static_cast<std::size_t>(t)];
    EXPECT_GT(in_circle(m.pt(tr.v[0]), m.pt(tr.v[1]), m.pt(tr.v[2]), q), 0);
  }
}

TEST(Delaunay, EmptyPointSet) {
  const auto m = mesh::delaunay({});
  std::size_t alive = 0;
  for (const auto& t : m.triangles()) alive += t.alive;
  EXPECT_EQ(alive, 1u);  // just the super-triangle
  EXPECT_TRUE(m.check_valid());
}

TEST(Delaunay, DuplicateFreeGridPoints) {
  // A small regular grid has many cocircular quadruples — the worst case
  // for the incremental algorithm's predicates.
  std::vector<point2d> pts;
  for (int x = 0; x < 12; ++x)
    for (int y = 0; y < 12; ++y)
      pts.push_back(point2d{static_cast<double>(x), static_cast<double>(y)});
  const auto m = mesh::delaunay(pts);
  std::size_t alive = 0;
  for (const auto& t : m.triangles()) alive += t.alive;
  EXPECT_EQ(alive, 2 * pts.size() + 1);
  // Orientation and symmetry must hold even if cocircularity makes the
  // diagonal choice arbitrary.
  for (std::size_t t = 0; t < m.triangles().size(); ++t) {
    const auto& tr = m.triangles()[t];
    if (!tr.alive) continue;
    ASSERT_GT(orient2d(m.pt(tr.v[0]), m.pt(tr.v[1]), m.pt(tr.v[2])), 0);
  }
}

TEST(Delaunay, InsertableClassifiesPoints) {
  const auto m = mesh::delaunay(cube2d_points(50, 3));
  EXPECT_TRUE(m.insertable({0.5, 0.5}));
  EXPECT_FALSE(m.insertable({1e9, 1e9}));
}

TEST(Delaunay, DeterministicConstruction) {
  const auto pts = cube2d_points(400, 9);
  const auto a = mesh::delaunay(pts);
  const auto b = mesh::delaunay(pts);
  ASSERT_EQ(a.triangles().size(), b.triangles().size());
  for (std::size_t t = 0; t < a.triangles().size(); ++t) {
    ASSERT_EQ(a.triangles()[t].v, b.triangles()[t].v);
    ASSERT_EQ(a.triangles()[t].alive, b.triangles()[t].alive);
  }
}

}  // namespace
}  // namespace phch::geometry
