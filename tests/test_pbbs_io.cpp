// PBBS-format file I/O: round trips, header validation, malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "phch/geometry/point_generators.h"
#include "phch/graph/generators.h"
#include "phch/io/pbbs_io.h"
#include "phch/workloads/sequences.h"

namespace phch::io {
namespace {

class PbbsIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("phch_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PbbsIo, IntSeqRoundTrip) {
  const auto seq = workloads::random_int_seq(5000, 1);
  write_int_seq(path("a.seq"), seq);
  EXPECT_EQ(read_int_seq(path("a.seq")), seq);
}

TEST_F(PbbsIo, EmptyIntSeq) {
  write_int_seq(path("e.seq"), {});
  EXPECT_TRUE(read_int_seq(path("e.seq")).empty());
}

TEST_F(PbbsIo, PairSeqRoundTrip) {
  const auto seq = workloads::random_pair_seq(3000, 2);
  write_pair_seq(path("p.seq"), seq);
  const auto back = read_pair_seq(path("p.seq"));
  ASSERT_EQ(back.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(back[i].k, seq[i].k);
    ASSERT_EQ(back[i].v, seq[i].v);
  }
}

TEST_F(PbbsIo, EdgeRoundTrip) {
  const auto edges = graph::random_k_edges(1000, 3, 5);
  write_edges(path("g.edges"), edges);
  EXPECT_EQ(read_edges(path("g.edges")), edges);
}

TEST_F(PbbsIo, WeightedEdgeRoundTrip) {
  const auto edges = graph::with_random_weights(graph::random_k_edges(500, 3, 5), 100, 7);
  write_weighted_edges(path("g.wedges"), edges);
  const auto back = read_weighted_edges(path("g.wedges"));
  ASSERT_EQ(back.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(back[i].u, edges[i].u);
    ASSERT_EQ(back[i].v, edges[i].v);
    ASSERT_EQ(back[i].w, edges[i].w);
  }
}

TEST_F(PbbsIo, PointsRoundTripExactly) {
  // %.17g round-trips doubles bit-exactly.
  const auto pts = geometry::kuzmin_points(2000, 3);
  write_points(path("pts"), pts);
  const auto back = read_points(path("pts"));
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(back[i].x, pts[i].x);
    ASSERT_EQ(back[i].y, pts[i].y);
  }
}

TEST_F(PbbsIo, TextRoundTripIncludingBinary) {
  std::string text = "hello\nworld";
  text.push_back('\0');
  text += "\xff\x01 tail";
  write_text(path("t.txt"), text);
  EXPECT_EQ(read_text(path("t.txt")), text);
}

TEST_F(PbbsIo, MissingFileThrows) {
  EXPECT_THROW(read_int_seq(path("nonexistent")), std::runtime_error);
}

TEST_F(PbbsIo, WrongHeaderThrows) {
  {
    std::ofstream out(path("bad.seq"));
    out << "EdgeArray\n1 2\n";
  }
  EXPECT_THROW(read_int_seq(path("bad.seq")), std::runtime_error);
}

TEST_F(PbbsIo, TrailingGarbageThrows) {
  {
    std::ofstream out(path("garbage.seq"));
    out << "sequenceInt\n1\n2\nnot-a-number\n";
  }
  EXPECT_THROW(read_int_seq(path("garbage.seq")), std::runtime_error);
}

TEST_F(PbbsIo, EdgesWithTruncatedRecordThrow) {
  {
    std::ofstream out(path("trunc.edges"));
    out << "EdgeArray\n1 2\n3\n";  // dangling endpoint
  }
  EXPECT_THROW(read_edges(path("trunc.edges")), std::runtime_error);
}

}  // namespace
}  // namespace phch::io
