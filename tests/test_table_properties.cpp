// Cross-implementation property tests: every table in the repository obeys
// the same phase-concurrent set semantics. Typed over all six concurrent
// variants plus the two serial baselines (exercised through a single-thread
// shim), and parameterized over loads and duplication rates.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/serial_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

// Serial tables run the same suite through a sequential loop.
template <typename Inner>
class serial_shim {
 public:
  explicit serial_shim(std::size_t cap) : t_(cap) {}
  void insert(std::uint64_t v) { t_.insert(v); }
  void erase(std::uint64_t k) { t_.erase(k); }
  bool contains(std::uint64_t k) const { return t_.contains(k); }
  std::size_t count() const { return t_.count(); }
  auto elements() const { return t_.elements(); }
  static constexpr bool concurrent = false;
  Inner t_;
};

template <typename T>
struct is_serial : std::false_type {};
template <typename I>
struct is_serial<serial_shim<I>> : std::true_type {};

template <typename Table, typename Seq>
void do_inserts(Table& t, const Seq& keys) {
  if constexpr (is_serial<Table>::value) {
    for (const auto k : keys) t.insert(k);
  } else {
    test::parallel_insert(t, keys);
  }
}

template <typename Table, typename Seq>
void do_erases(Table& t, const Seq& keys) {
  if constexpr (is_serial<Table>::value) {
    for (const auto k : keys) t.erase(k);
  } else {
    test::parallel_erase(t, keys);
  }
}

template <typename T>
class AllTables : public ::testing::Test {};

using TableTypes = ::testing::Types<
    deterministic_table<int_entry<>>, nd_linear_table<int_entry<>>,
    cuckoo_table<int_entry<>>, chained_table<int_entry<>, false>,
    chained_table<int_entry<>, true>, hopscotch_table<int_entry<>, true>,
    hopscotch_table<int_entry<>, false>, serial_shim<serial_table_hi<int_entry<>>>,
    serial_shim<serial_table_hd<int_entry<>>>>;
TYPED_TEST_SUITE(AllTables, TableTypes);

TYPED_TEST(AllTables, InsertedSetMatchesReference) {
  TypeParam t(1 << 14);
  const auto keys = test::dup_keys(9000, 4000, 101);
  do_inserts(t, keys);
  const std::set<std::uint64_t> ref(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), ref.size());
  for (const auto k : ref) ASSERT_TRUE(t.contains(k)) << k;
}

TYPED_TEST(AllTables, AbsentKeysAreAbsent) {
  TypeParam t(1 << 13);
  const auto keys = test::unique_keys(2000, 103);
  do_inserts(t, keys);
  const std::set<std::uint64_t> present(keys.begin(), keys.end());
  for (std::uint64_t k = 1; k < 4000; ++k) {
    if (!present.count(k)) {
      ASSERT_FALSE(t.contains(k)) << k;
    }
  }
}

TYPED_TEST(AllTables, ElementsReturnsExactMultiset) {
  TypeParam t(1 << 13);
  const auto keys = test::dup_keys(5000, 2500, 107);
  do_inserts(t, keys);
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  const std::set<std::uint64_t> ref(keys.begin(), keys.end());
  ASSERT_EQ(elems.size(), ref.size());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), ref.begin(), ref.end()));
}

TYPED_TEST(AllTables, InsertEraseRoundTripLeavesEmpty) {
  TypeParam t(1 << 12);
  const auto keys = test::unique_keys(1500, 109);
  do_inserts(t, keys);
  do_erases(t, keys);
  EXPECT_EQ(t.count(), 0u);
  for (const auto k : keys) ASSERT_FALSE(t.contains(k));
}

TYPED_TEST(AllTables, PartialEraseKeepsComplement) {
  TypeParam t(1 << 12);
  const auto keys = test::unique_keys(2000, 113);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 800);
  do_inserts(t, keys);
  do_erases(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  for (std::size_t i = 800; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
}

TYPED_TEST(AllTables, EraseOfAbsentKeysIsNoOp) {
  TypeParam t(1 << 10);
  const auto keys = test::unique_keys(300, 127);
  do_inserts(t, keys);
  std::vector<std::uint64_t> absent;
  const std::set<std::uint64_t> present(keys.begin(), keys.end());
  for (std::uint64_t k = 100000; absent.size() < 300; ++k) {
    if (!present.count(k)) absent.push_back(k);
  }
  do_erases(t, absent);
  EXPECT_EQ(t.count(), keys.size());
}

TYPED_TEST(AllTables, RepeatedPhasesStayConsistent) {
  TypeParam t(1 << 13);
  std::set<std::uint64_t> ref;
  for (int round = 0; round < 6; ++round) {
    const auto ins = test::dup_keys(1200, 900, 1000 + round);
    do_inserts(t, ins);
    ref.insert(ins.begin(), ins.end());
    const auto del = test::dup_keys(900, 900, 2000 + round);
    do_erases(t, del);
    for (const auto d : del) ref.erase(d);
    ASSERT_EQ(t.count(), ref.size()) << "round " << round;
  }
}

// ---- load sweep on the deterministic table (property: correctness is
// preserved as the table approaches full) --------------------------------

class LoadSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep, ::testing::Values(10, 30, 50, 70, 85, 95));

TEST_P(LoadSweep, DeterministicTableCorrectAtLoad) {
  const int pct = GetParam();
  const std::size_t cap = 1 << 12;
  deterministic_table<int_entry<>> t(cap);
  const auto keys = test::unique_keys(cap * static_cast<std::size_t>(pct) / 100, 500 + pct);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k));
  EXPECT_TRUE((test::ordering_invariant_holds<int_entry<>>(t.raw_slots(), t.capacity())));
  test::parallel_erase(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

TEST_P(LoadSweep, NdTableCorrectAtLoad) {
  const int pct = GetParam();
  const std::size_t cap = 1 << 12;
  nd_linear_table<int_entry<>> t(cap);
  const auto keys = test::unique_keys(cap * static_cast<std::size_t>(pct) / 100, 600 + pct);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k));
  test::parallel_erase(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

// ---- duplication sweep: combining correctness at all duplication rates ----

class DupSweep : public ::testing::TestWithParam<std::size_t> {};
INSTANTIATE_TEST_SUITE_P(Distinct, DupSweep, ::testing::Values(1, 4, 64, 1024, 16384));

TEST_P(DupSweep, CombineAddExactAcrossDuplicationRates) {
  const std::size_t distinct = GetParam();
  deterministic_table<pair_entry<combine_add>> t(1 << 16);
  constexpr std::size_t n = 30000;
  parallel_for(0, n, [&](std::size_t i) {
    t.insert(kv64{1 + hash64(i) % distinct, 1});
  });
  std::uint64_t total = 0;
  for (const auto& e : t.elements()) total += e.v;
  EXPECT_EQ(total, n);
  EXPECT_LE(t.count(), distinct);
}

}  // namespace
}  // namespace phch
