// Delaunay refinement: quality postcondition, mesh validity, determinism
// across runs and thread counts, point budget, table backends.
#include <gtest/gtest.h>

#include "phch/apps/delaunay_refine.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/geometry/point_generators.h"
#include "phch/parallel/scheduler.h"

namespace phch::apps {
namespace {

using det_table = deterministic_table<int_entry<std::uint64_t>>;
constexpr auto no_clock = [] { return 0.0; };

TEST(Refine, EliminatesBadTrianglesOnUniformPoints) {
  auto m = geometry::mesh::delaunay(geometry::cube2d_points(1500, 3));
  const auto stats = refine<det_table>(m, 25.0, 1 << 20, no_clock);
  EXPECT_TRUE(m.check_valid());
  EXPECT_EQ(stats.final_bad, 0u);
  const double bound = 1.0 / (2.0 * std::sin(25.0 * M_PI / 180.0));
  // All refinable triangles meet the bound; only boundary slivers whose
  // circumcenters left the mesh may remain.
  std::size_t over = 0;
  for (std::size_t t = 0; t < m.triangles().size(); ++t) {
    if (!m.is_real(static_cast<geometry::tri_id>(t))) continue;
    const auto& tr = m.triangles()[t];
    if (geometry::radius_edge_ratio(m.pt(tr.v[0]), m.pt(tr.v[1]), m.pt(tr.v[2])) > bound)
      ++over;
  }
  EXPECT_LE(over, stats.unrefinable);
  EXPECT_GT(stats.points_added, 0u);
}

TEST(Refine, WorksOnKuzminClustering) {
  auto m = geometry::mesh::delaunay(geometry::kuzmin_points(1200, 5));
  const auto stats = refine<det_table>(m, 22.0, 1 << 20, no_clock);
  EXPECT_TRUE(m.check_valid());
  EXPECT_EQ(stats.final_bad, 0u);
}

TEST(Refine, RespectsPointBudget) {
  auto m = geometry::mesh::delaunay(geometry::cube2d_points(1500, 7));
  const auto stats = refine<det_table>(m, 27.0, 50, no_clock);
  EXPECT_TRUE(m.check_valid());
  // The cap stops refinement with work remaining (27 degrees needs far more
  // than 50 Steiner points on this input); overshoot is at most the final
  // round's winners.
  EXPECT_GE(stats.points_added, 1u);
  EXPECT_GT(stats.final_bad, 0u);
}

TEST(Refine, DeterministicAcrossRuns) {
  const auto pts = geometry::cube2d_points(800, 9);
  auto m1 = geometry::mesh::delaunay(pts);
  auto m2 = geometry::mesh::delaunay(pts);
  const auto s1 = refine<det_table>(m1, 25.0, 1 << 20, no_clock);
  const auto s2 = refine<det_table>(m2, 25.0, 1 << 20, no_clock);
  EXPECT_EQ(s1.points_added, s2.points_added);
  EXPECT_EQ(s1.rounds, s2.rounds);
  ASSERT_EQ(m1.triangles().size(), m2.triangles().size());
  for (std::size_t t = 0; t < m1.triangles().size(); ++t) {
    ASSERT_EQ(m1.triangles()[t].v, m2.triangles()[t].v);
    ASSERT_EQ(m1.triangles()[t].alive, m2.triangles()[t].alive);
  }
  ASSERT_EQ(m1.points().size(), m2.points().size());
  for (std::size_t i = 0; i < m1.points().size(); ++i) {
    ASSERT_EQ(m1.points()[i].x, m2.points()[i].x);
    ASSERT_EQ(m1.points()[i].y, m2.points()[i].y);
  }
}

TEST(Refine, DeterministicAcrossThreadCounts) {
  const auto pts = geometry::cube2d_points(600, 11);
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();

  sched.set_num_workers(1);
  auto m1 = geometry::mesh::delaunay(pts);
  refine<det_table>(m1, 25.0, 1 << 20, no_clock);

  sched.set_num_workers(6);
  auto m6 = geometry::mesh::delaunay(pts);
  refine<det_table>(m6, 25.0, 1 << 20, no_clock);
  sched.set_num_workers(original);

  ASSERT_EQ(m1.triangles().size(), m6.triangles().size());
  for (std::size_t t = 0; t < m1.triangles().size(); ++t) {
    ASSERT_EQ(m1.triangles()[t].v, m6.triangles()[t].v);
  }
}

TEST(Refine, NonDeterministicBackendsStillProduceValidMeshes) {
  const auto pts = geometry::cube2d_points(700, 13);
  {
    auto m = geometry::mesh::delaunay(pts);
    const auto s =
        refine<nd_linear_table<int_entry<std::uint64_t>>>(m, 25.0, 1 << 20, no_clock);
    EXPECT_TRUE(m.check_valid());
    EXPECT_EQ(s.final_bad, 0u);
  }
  {
    auto m = geometry::mesh::delaunay(pts);
    const auto s =
        refine<cuckoo_table<int_entry<std::uint64_t>>>(m, 25.0, 1 << 20, no_clock);
    EXPECT_TRUE(m.check_valid());
    EXPECT_EQ(s.final_bad, 0u);
  }
  {
    auto m = geometry::mesh::delaunay(pts);
    const auto s = refine<chained_table<int_entry<std::uint64_t>, true>>(m, 25.0, 1 << 20,
                                                                         no_clock);
    EXPECT_TRUE(m.check_valid());
    EXPECT_EQ(s.final_bad, 0u);
  }
}

TEST(Refine, AlreadyGoodMeshIsUntouched) {
  // A fine uniform mesh refined with a very lax bound: nothing to do.
  auto m = geometry::mesh::delaunay(geometry::cube2d_points(500, 15));
  const std::size_t tris_before = m.triangles().size();
  const auto stats = refine<det_table>(m, 0.1, 1 << 20, no_clock);
  EXPECT_EQ(stats.points_added, 0u);
  EXPECT_EQ(m.triangles().size(), tris_before);
}

}  // namespace
}  // namespace phch::apps
