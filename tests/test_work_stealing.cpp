// Work-stealing runtime regressions: the Chase–Lev deque itself, nested
// parallelism actually running on multiple workers, set_num_workers around
// live work, exception propagation through forks, and schedule-independence
// of results across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/scheduler.h"
#include "phch/parallel/sort.h"
#include "phch/parallel/work_stealing_deque.h"
#include "phch/utils/rand.h"

namespace phch {
namespace {

TEST(WorkStealingDeque, OwnerPopsLifoThiefStealsFifo) {
  detail::work_stealing_deque<int> d;
  int vals[3] = {10, 20, 30};
  d.push_bottom(&vals[0]);
  d.push_bottom(&vals[1]);
  d.push_bottom(&vals[2]);
  EXPECT_EQ(d.pop_bottom(), &vals[2]);  // owner end is LIFO
  EXPECT_EQ(d.steal(), &vals[0]);       // thief end is FIFO (oldest)
  EXPECT_EQ(d.pop_bottom(), &vals[1]);
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  detail::work_stealing_deque<int> d(8);
  std::vector<int> vals(1000);
  for (int i = 0; i < 1000; ++i) d.push_bottom(&vals[static_cast<std::size_t>(i)]);
  for (int i = 999; i >= 0; --i) {
    ASSERT_EQ(d.pop_bottom(), &vals[static_cast<std::size_t>(i)]) << i;
  }
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(WorkStealingDeque, ConcurrentOwnerAndThievesClaimEachTaskExactlyOnce) {
  constexpr int kN = 100000;
  detail::work_stealing_deque<int> d(64);
  std::vector<int> vals(kN);
  std::vector<std::atomic<int>> claimed(kN);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  std::atomic<int> total{0};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto claim = [&](int* p) {
    claimed[static_cast<std::size_t>(p - vals.data())].fetch_add(1);
    total.fetch_add(1);
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (total.load(std::memory_order_relaxed) < kN &&
             std::chrono::steady_clock::now() < deadline) {
        if (int* p = d.steal()) {
          claim(p);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int i = 0; i < kN; ++i) {
    d.push_bottom(&vals[static_cast<std::size_t>(i)]);
    if ((i & 7) == 0) {
      if (int* p = d.pop_bottom()) claim(p);
    }
  }
  for (;;) {
    int* p = d.pop_bottom();
    if (p == nullptr) break;
    claim(p);
  }
  for (auto& t : thieves) t.join();
  ASSERT_EQ(total.load(), kN);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(claimed[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

// The load-bearing regression for this refactor: a par_do issued from
// *inside* a parallel_for must be stealable by another worker. Branch `a`
// holds the forking thread busy until branch `b` has run, so `b` can only
// complete promptly if a different worker steals it (the 10 s timeout makes
// a broken scheduler fail rather than hang).
TEST(WorkStealing, NestedParDoRunsOnMultipleWorkers) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  s.set_num_workers(8);
  std::atomic<bool> saw_other_thread{false};
  parallel_for(
      0, 2,
      [&](std::size_t) {
        const auto forker = std::this_thread::get_id();
        std::atomic<bool> b_done{false};
        par_do(
            [&] {
              const auto deadline =
                  std::chrono::steady_clock::now() + std::chrono::seconds(10);
              while (!b_done.load(std::memory_order_acquire) &&
                     std::chrono::steady_clock::now() < deadline) {
                std::this_thread::yield();
              }
            },
            [&] {
              if (std::this_thread::get_id() != forker) {
                saw_other_thread.store(true, std::memory_order_relaxed);
              }
              b_done.store(true, std::memory_order_release);
            });
      },
      1);
  s.set_num_workers(original);
  EXPECT_TRUE(saw_other_thread.load());
}

TEST(WorkStealing, DeeplyNestedParallelForComputesCorrectSums) {
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  parallel_for(
      0, 8,
      [&](std::size_t i) {
        parallel_for(
            0, 8,
            [&](std::size_t j) {
              parallel_for(
                  0, 8,
                  [&](std::size_t k) {
                    sum.fetch_add(i + j + k);
                    count.fetch_add(1);
                  },
                  1);
            },
            1);
      },
      1);
  EXPECT_EQ(count.load(), 512u);
  EXPECT_EQ(sum.load(), 5376u);  // 3 * 64 * (0+1+...+7)
}

TEST(WorkStealing, NestedSortInsideParDoMatchesSerialSort) {
  auto mk = [](std::uint64_t salt) {
    return tabulate(100000, [salt](std::size_t i) { return hash64(i + salt); });
  };
  auto u = mk(1), v = mk(2);
  auto eu = u, ev = v;
  std::sort(eu.begin(), eu.end());
  std::sort(ev.begin(), ev.end());
  par_do([&] { parallel_sort(u); }, [&] { parallel_sort(v); });
  EXPECT_EQ(u, eu);
  EXPECT_EQ(v, ev);
}

TEST(WorkStealing, SetNumWorkersIsSafeAroundLiveWork) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  for (int p : {1, 3, 8, 2}) {
    s.set_num_workers(p);
    ASSERT_EQ(s.num_workers(), p);
    // Immediately drive nested work through the fresh pool.
    std::atomic<std::uint64_t> sum{0};
    parallel_for(
        0, 64,
        [&](std::size_t i) {
          par_do([&] { sum.fetch_add(i); }, [&] { sum.fetch_add(1000 + i); });
        },
        1);
    EXPECT_EQ(sum.load(), 68032u);  // sum(i) + sum(1000+i) over i < 64
    const auto ids = pack_index(100001, [](std::size_t i) { return i % 7 == 0; });
    EXPECT_EQ(ids.size(), 14286u);
    EXPECT_EQ(ids.back(), 99995u);
  }
  s.set_num_workers(original);
}

TEST(WorkStealing, SetNumWorkersInsideParallelRegionThrows) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  s.set_num_workers(4);
  parallel_for(
      0, 4,
      [&](std::size_t i) {
        if (i == 0) {
          EXPECT_THROW(s.set_num_workers(2), std::logic_error);
        }
      },
      1);
  s.set_num_workers(original);
}

TEST(WorkStealing, ExceptionFromNestedForkPropagates) {
  EXPECT_THROW(
      parallel_for(
          0, 64,
          [&](std::size_t i) {
            par_do([&] { if (i == 13) throw std::runtime_error("inner"); }, [] {});
          },
          1),
      std::runtime_error);
}

TEST(WorkStealing, WorkerIdsAreValidInsidePoolAndAbsentOutside) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  s.set_num_workers(4);
  EXPECT_EQ(scheduler::worker_id(), 0);  // the registered main thread
  std::mutex m;
  std::set<int> ids;
  parallel_for(
      0, 1024,
      [&](std::size_t) {
        const int id = scheduler::worker_id();
        ASSERT_GE(id, 0);
        ASSERT_LT(id, 4);
        std::lock_guard<std::mutex> lock(m);
        ids.insert(id);
      },
      1);
  EXPECT_GE(ids.size(), 1u);
  std::thread outsider([] { EXPECT_EQ(scheduler::worker_id(), -1); });
  outsider.join();
  s.set_num_workers(original);
}

// Results must be a function of the input only — never of the schedule or
// the worker count (the paper's determinism contract for the substrate).
TEST(WorkStealing, ResultsAreIdenticalAcrossWorkerCounts) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  std::vector<std::vector<std::uint64_t>> sorted_runs;
  std::vector<std::vector<std::size_t>> packed_runs;
  std::vector<std::uint64_t> scan_totals;
  for (int p : {1, 2, 4, 7}) {
    s.set_num_workers(p);
    auto v = tabulate(200000, [](std::size_t i) { return hash64(i) % 1000; });
    parallel_sort(v);
    sorted_runs.push_back(std::move(v));
    packed_runs.push_back(pack_index(100001, [](std::size_t i) { return i % 3 == 0; }));
    auto w = tabulate(50021, [](std::size_t i) { return hash64(i) & 0xff; });
    scan_totals.push_back(scan_add_inplace(w));
  }
  s.set_num_workers(original);
  for (std::size_t k = 1; k < sorted_runs.size(); ++k) {
    EXPECT_EQ(sorted_runs[0], sorted_runs[k]);
    EXPECT_EQ(packed_runs[0], packed_runs[k]);
    EXPECT_EQ(scan_totals[0], scan_totals[k]);
  }
}

}  // namespace
}  // namespace phch
