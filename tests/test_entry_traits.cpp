// Entry trait policies: sentinel handling, hashing determinism, priority
// total order, combine laws (commutativity/associativity).
#include <gtest/gtest.h>

#include <cstring>

#include "phch/core/entry_traits.h"

namespace phch {
namespace {

TEST(IntEntry, Sentinels) {
  EXPECT_TRUE(int_entry<>::is_empty(int_entry<>::empty()));
  EXPECT_FALSE(int_entry<>::is_empty(0));
  EXPECT_FALSE(int_entry<>::is_empty(int_entry<>::busy()));
  EXPECT_NE(int_entry<>::empty(), int_entry<>::busy());
}

TEST(IntEntry, PriorityIsStrictTotalOrder) {
  EXPECT_TRUE(int_entry<>::priority_less(1, 2));
  EXPECT_FALSE(int_entry<>::priority_less(2, 1));
  EXPECT_FALSE(int_entry<>::priority_less(2, 2));
}

TEST(IntEntry, HashIsDeterministicAndSpreads) {
  EXPECT_EQ(int_entry<>::hash(12345), int_entry<>::hash(12345));
  // Consecutive keys should scatter across the full 64-bit range.
  int high_bits_differ = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    if ((int_entry<>::hash(k) >> 32) != (int_entry<>::hash(k + 1) >> 32))
      ++high_bits_differ;
  }
  EXPECT_GE(high_bits_differ, 60);
}

TEST(IntEntry, Narrow32BitVariant) {
  using e32 = int_entry<std::uint32_t>;
  EXPECT_TRUE(e32::is_empty(e32::empty()));
  EXPECT_EQ(e32::key(77u), 77u);
}

TEST(PairEntry, SixteenBytesNoPadding) {
  static_assert(sizeof(kv64) == 16);
  static_assert(alignof(kv64) == 16);
  EXPECT_TRUE(pair_entry<>::is_empty(pair_entry<>::empty()));
  EXPECT_FALSE(pair_entry<>::is_empty(kv64{1, 2}));
}

TEST(PairEntry, EmptyDetectionIgnoresValueField) {
  // Only the key marks emptiness; a max-key slot is empty whatever its value
  // half holds mid-CAS.
  EXPECT_TRUE(pair_entry<>::is_empty(kv64{pair_entry<>::empty().k, 12345}));
}

TEST(PairEntry, CombineLaws) {
  using pe = pair_entry<combine_min>;
  const kv64 a{5, 10};
  const kv64 b{5, 3};
  const kv64 ab = pe::combine(a, b);
  const kv64 ba = pe::combine(b, a);
  EXPECT_EQ(ab.v, 3u);
  EXPECT_EQ(ab.v, ba.v);  // commutative
  EXPECT_EQ(ab.k, 5u);    // key preserved
  const kv64 c{5, 7};
  EXPECT_EQ(pe::combine(pe::combine(a, b), c).v, pe::combine(a, pe::combine(b, c)).v);
}

TEST(PairEntry, CombineAddAndMax) {
  EXPECT_EQ(pair_entry<combine_add>::combine(kv64{1, 4}, kv64{1, 6}).v, 10u);
  EXPECT_EQ(pair_entry<combine_max>::combine(kv64{1, 4}, kv64{1, 6}).v, 6u);
}

TEST(PairEntry, CombineInplaceAdd) {
  kv64 slot{9, 5};
  pair_entry<combine_add>::combine_inplace(&slot, kv64{9, 7});
  EXPECT_EQ(slot.v, 12u);
  EXPECT_EQ(slot.k, 9u);
}

TEST(PairEntry, CombineInplaceMin) {
  kv64 slot{9, 5};
  pair_entry<combine_min>::combine_inplace(&slot, kv64{9, 7});
  EXPECT_EQ(slot.v, 5u);
  pair_entry<combine_min>::combine_inplace(&slot, kv64{9, 2});
  EXPECT_EQ(slot.v, 2u);
}

TEST(StringEntry, HashAndEqualityAreContentBased) {
  const char a[] = "hello";
  const char b[] = "hello";
  ASSERT_NE(static_cast<const void*>(a), static_cast<const void*>(b));
  EXPECT_EQ(string_entry::hash(a), string_entry::hash(b));
  EXPECT_TRUE(string_entry::key_equal(a, b));
  EXPECT_FALSE(string_entry::key_equal(a, "hellp"));
}

TEST(StringEntry, PriorityIsLexicographic) {
  EXPECT_TRUE(string_entry::priority_less("abc", "abd"));
  EXPECT_TRUE(string_entry::priority_less("ab", "abc"));
  EXPECT_FALSE(string_entry::priority_less("b", "a"));
}

TEST(StringPairEntry, KeyThroughIndirection) {
  const string_kv rec{"word", 42};
  EXPECT_STREQ(string_pair_entry::key(&rec), "word");
  const string_kv lo{"word", 10};
  EXPECT_EQ(string_pair_entry::combine(&rec, &lo), &lo);
  EXPECT_EQ(string_pair_entry::combine(&lo, &rec), &lo);
}

TEST(PackedPairEntry, PackAndUnpack) {
  using pp = packed_pair_entry<combine_min>;
  const auto e = pp::make(0xdeadbeefu, 0x1234u);
  EXPECT_EQ(pp::key(e), 0xdeadbeefu);
  EXPECT_EQ(pp::value_of(e), 0x1234u);
  EXPECT_FALSE(pp::is_empty(e));
  EXPECT_TRUE(pp::is_empty(pp::empty()));
}

TEST(PackedPairEntry, CombineMinOnValueHalf) {
  using pp = packed_pair_entry<combine_min>;
  const auto merged = pp::combine(pp::make(7, 100), pp::make(7, 30));
  EXPECT_EQ(pp::key(merged), 7u);
  EXPECT_EQ(pp::value_of(merged), 30u);
}

}  // namespace
}  // namespace phch
