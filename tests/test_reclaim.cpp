// Quiescence-based reclamation (parallel/reclaim.h): grace-period
// discipline (nothing freed before G >= stamp+2, everything freed once every
// participant announces), op_guard pinning, offline threads not stalling
// advancement, and the two production consumers — growable_table slot
// arrays under a growth-heavy load (>= 100 growths) and work-stealing deque
// rings staying bounded while the deque lives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "phch/core/growable_table.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/reclaim.h"
#include "phch/parallel/scheduler.h"
#include "phch/parallel/work_stealing_deque.h"
#include "table_test_util.h"

namespace phch {
namespace {

std::atomic<int> g_probe_freed{0};

struct probe {};

void probe_deleter(void* p) {
  delete static_cast<probe*>(p);
  g_probe_freed.fetch_add(1);
}

// Announce quiescent points until all limbo everywhere has drained (idle
// scheduler workers announce on their own in the idle loop). Returns false
// on deadline, so a reclamation stall fails the test instead of hanging it.
bool drain_reclaim(std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (reclaim::pending_count() != 0) {
    reclaim::quiescent();
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// Single-worker pool makes the epoch accounting exact: the calling thread is
// the only online participant, so quiescent() advances G by exactly one.
TEST(Reclaim, NothingFreedBeforeItsGraceEpoch) {
  const int original = num_workers();
  scheduler::get().set_num_workers(1);
  ASSERT_TRUE(drain_reclaim());

  const int before = g_probe_freed.load();
  const std::uint64_t g0 = reclaim::global_epoch();
  reclaim::retire(new probe, &probe_deleter);
  EXPECT_EQ(g_probe_freed.load(), before);  // retire never frees in place

  reclaim::quiescent();  // G -> g0+1: one announcement is not a grace period
  EXPECT_EQ(reclaim::global_epoch(), g0 + 1);
  EXPECT_EQ(g_probe_freed.load(), before);

  reclaim::quiescent();  // G -> g0+2: stamp+2 reached, deleter runs
  EXPECT_EQ(reclaim::global_epoch(), g0 + 2);
  EXPECT_EQ(g_probe_freed.load(), before + 1);

  scheduler::get().set_num_workers(original);
}

// op_guard pins the thread: nested quiescent() calls are suppressed (the
// operation may hold a snapshot pointer into a protected structure), and
// exactly one announcement happens when the outermost guard closes.
//
// The body below is the *deliberate* misuse the annotations in reclaim.h
// reject statically (quiescent() and a nested guard inside an op_guard),
// exercised here for its defined runtime behavior — so the helper opts out
// of the thread-safety analysis.
static void pin_and_call_quiescent(std::uint64_t g0, int before) PHCH_NO_TSA {
  reclaim::op_guard outer;
  reclaim::retire(new probe, &probe_deleter);
  {
    reclaim::op_guard inner;  // nesting must not announce either
    reclaim::quiescent();
    reclaim::quiescent();
  }
  reclaim::quiescent();
  EXPECT_EQ(reclaim::global_epoch(), g0);  // pinned: no announcements
  EXPECT_EQ(g_probe_freed.load(), before);
}

TEST(Reclaim, OpGuardSuppressesNestedQuiescentPoints) {
  const int original = num_workers();
  scheduler::get().set_num_workers(1);
  ASSERT_TRUE(drain_reclaim());

  const int before = g_probe_freed.load();
  const std::uint64_t g0 = reclaim::global_epoch();
  pin_and_call_quiescent(g0, before);
  // The guard's close was announcement #1; one more completes the grace
  // period.
  EXPECT_EQ(reclaim::global_epoch(), g0 + 1);
  reclaim::quiescent();
  EXPECT_EQ(g_probe_freed.load(), before + 1);

  scheduler::get().set_num_workers(original);
}

// A registered thread that has gone offline() must not stall grace periods
// even though it never announces (the scheduler relies on this for the
// deep-idle sleep).
TEST(Reclaim, OfflineThreadsDoNotBlockAdvancement) {
  const int original = num_workers();
  scheduler::get().set_num_workers(1);
  ASSERT_TRUE(drain_reclaim());

  std::atomic<bool> parked{false};
  std::atomic<bool> stop{false};
  std::thread helper([&] {
    reclaim::online();
    reclaim::offline();
    parked.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  const int before = g_probe_freed.load();
  reclaim::retire(new probe, &probe_deleter);
  reclaim::quiescent();
  reclaim::quiescent();
  EXPECT_EQ(g_probe_freed.load(), before + 1);

  stop.store(true, std::memory_order_release);
  helper.join();
  scheduler::get().set_num_workers(original);
}

// The bench_ablation escape hatch: with deferral off, retire() frees in
// place (callers guarantee no concurrent readers).
TEST(Reclaim, SetDeferredFalseFreesImmediately) {
  const bool prev = reclaim::set_deferred(false);
  EXPECT_TRUE(prev);  // deferral is the default
  const int before = g_probe_freed.load();
  reclaim::retire(new probe, &probe_deleter);
  EXPECT_EQ(g_probe_freed.load(), before + 1);
  reclaim::set_deferred(prev);
}

// Retire-under-load stress: growth-heavy parallel inserts retire well over
// 100 slot arrays; none may be freed early (ASan would catch a
// use-after-free in the unexcluded readers), and all must be freed once the
// load quiesces.
TEST(Reclaim, GrowableTableRetiresAndFreesOldArraysUnderLoad) {
  ASSERT_TRUE(drain_reclaim());
  const auto before = reclaim::stats();
  std::size_t growths = 0;
  for (int rep = 0; rep < 12; ++rep) {
    growable_table<int_entry<>> t(16);
    const auto keys = test::unique_keys(20000, 100 + rep);
    test::parallel_insert(t, keys);
    parallel_for(0, keys.size(), [&](std::size_t i) {
      if (!t.contains(keys[i])) std::abort();  // lost insert across growths
    });
    growths += t.growth_count();
  }
  EXPECT_GE(growths, 100u);  // 16 -> 32768 is 11 doublings, x12 repetitions
  const auto after = reclaim::stats();
  EXPECT_GE(after.retired - before.retired, growths);
  ASSERT_TRUE(drain_reclaim());
  const auto settled = reclaim::stats();
  EXPECT_EQ(settled.pending, 0u);
  EXPECT_EQ(settled.freed, settled.retired);  // every retiree ever freed
}

// Regression for the old ring-hoarding scheme: superseded deque rings must
// be reclaimed while the deque is still alive, so repeated growth cycles
// keep the live ring count bounded instead of accumulating one ring per
// doubling for the deque's lifetime.
TEST(Reclaim, DequeRingsAreReclaimedWhileDequeLives) {
  ASSERT_TRUE(drain_reclaim());
  const auto before = reclaim::stats();
  detail::work_stealing_deque<int> d(8);
  std::vector<int> vals(1 << 14);
  for (int cycle = 0; cycle < 12; ++cycle) {
    const std::int64_t n = std::int64_t{8} << (cycle < 11 ? cycle : 11);
    for (std::int64_t i = 0; i < n; ++i) {
      d.push_bottom(&vals[static_cast<std::size_t>(i)]);
    }
    while (d.pop_bottom() != nullptr) {
    }
    // The deque is drained but alive; every ring retired so far must be
    // freeable right now.
    ASSERT_TRUE(drain_reclaim()) << "cycle " << cycle;
    EXPECT_EQ(reclaim::pending_count(), 0u) << "cycle " << cycle;
  }
  const auto after = reclaim::stats();
  EXPECT_GE(after.retired - before.retired, 10u);  // one growth per doubling
  EXPECT_EQ(after.freed - before.freed, after.retired - before.retired);
}

}  // namespace
}  // namespace phch
