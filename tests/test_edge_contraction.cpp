// Edge contraction (Table 6): matching validity, relabeling, weight
// conservation under additive combining, determinism of the output.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "phch/apps/edge_contraction.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/graph/generators.h"

namespace phch::apps {
namespace {

TEST(MatchingLabels, ProducesAValidMatching) {
  const std::size_t n = 2000;
  const auto edges = graph::random_k_edges(n, 5, 3);
  const auto labels = matching_labels(n, edges);
  ASSERT_EQ(labels.size(), n);
  // Each label is min(v, partner): labels form groups of size <= 2, and if
  // labels[v] == u != v then labels[u] == u (the partner agrees).
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto l = labels[v];
    ASSERT_LE(l, v);
    if (l != v) {
      ASSERT_EQ(labels[l], l) << "partner disagrees at " << v;
    }
  }
}

TEST(MatchingLabels, MatchingIsMaximal) {
  // No edge may connect two distinct unmatched vertices.
  const std::size_t n = 1000;
  const auto edges = graph::random_k_edges(n, 5, 5);
  const auto labels = matching_labels(n, edges);
  std::vector<bool> matched(n, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (labels[v] != v) {
      matched[v] = true;
      matched[labels[v]] = true;
    }
  }
  for (const auto& e : edges) {
    if (e.u != e.v) {
      EXPECT_TRUE(matched[e.u] || matched[e.v])
          << "edge (" << e.u << "," << e.v << ") joins two unmatched vertices";
    }
  }
}

TEST(EdgeKey, CanonicalizesOrientation) {
  EXPECT_EQ(edge_key(3, 9), edge_key(9, 3));
  EXPECT_NE(edge_key(3, 9), edge_key(3, 10));
}

std::map<std::uint64_t, std::uint64_t> reference_contraction(
    const std::vector<graph::weighted_edge>& edges,
    const std::vector<graph::vertex_id>& labels) {
  std::map<std::uint64_t, std::uint64_t> ref;
  for (const auto& e : edges) {
    const auto nu = labels[e.u];
    const auto nv = labels[e.v];
    if (nu != nv) ref[edge_key(nu, nv)] += e.w;
  }
  return ref;
}

class ContractionTables : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::size_t n = 1500;
    auto e = graph::random_k_edges(n, 5, 7);
    edges_ = graph::with_random_weights(e, 100, 9);
    labels_ = matching_labels(n, e);
    ref_ = reference_contraction(edges_, labels_);
  }
  std::vector<graph::weighted_edge> edges_;
  std::vector<graph::vertex_id> labels_;
  std::map<std::uint64_t, std::uint64_t> ref_;

  template <typename Table>
  void check() {
    const auto out = contract_edges<Table>(edges_, labels_, 1 << 15);
    ASSERT_EQ(out.size(), ref_.size());
    for (const auto& kv : out) {
      auto it = ref_.find(kv.k);
      ASSERT_NE(it, ref_.end()) << kv.k;
      EXPECT_EQ(kv.v, it->second) << "weight mismatch for key " << kv.k;
    }
  }
};

TEST_F(ContractionTables, DeterministicTableMatchesReference) {
  check<deterministic_table<pair_entry<combine_add>>>();
}
TEST_F(ContractionTables, NdTableMatchesReference) {
  check<nd_linear_table<pair_entry<combine_add>>>();
}
TEST_F(ContractionTables, CuckooMatchesReference) {
  check<cuckoo_table<pair_entry<combine_add>>>();
}
TEST_F(ContractionTables, ChainedCrMatchesReference) {
  check<chained_table<pair_entry<combine_add>, true>>();
}

TEST_F(ContractionTables, DeterministicOutputOrderIsStable) {
  using dt = deterministic_table<pair_entry<combine_add>>;
  const auto a = contract_edges<dt>(edges_, labels_, 1 << 15);
  const auto b = contract_edges<dt>(edges_, labels_, 1 << 15);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].k, b[i].k);
    ASSERT_EQ(a[i].v, b[i].v);
  }
}

TEST(EdgeContraction, SelfEdgesAfterRelabelAreDropped) {
  // A matched pair's internal edge must disappear.
  std::vector<graph::weighted_edge> edges = {{0, 1, 5}, {1, 2, 7}};
  std::vector<graph::vertex_id> labels = {0, 0, 2};  // 0 and 1 merged
  const auto out =
      contract_edges<deterministic_table<pair_entry<combine_add>>>(edges, labels, 64);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].k, edge_key(0, 2));
  EXPECT_EQ(out[0].v, 7u);
}

TEST(EdgeContraction, ParallelEdgesMergeWeights) {
  std::vector<graph::weighted_edge> edges = {{0, 2, 5}, {1, 2, 7}, {2, 0, 3}};
  std::vector<graph::vertex_id> labels = {0, 0, 2};
  const auto out =
      contract_edges<deterministic_table<pair_entry<combine_add>>>(edges, labels, 64);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].v, 15u);
}

}  // namespace
}  // namespace phch::apps
