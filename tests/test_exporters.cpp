// Exporter round-trips (src/phch/obs/export.h, prom.h): the metrics JSON,
// the chrome trace, and the Prometheus text exposition are re-parsed with
// strict parsers — not grepped — so escaping bugs (raw newlines or control
// characters inside string literals, broken label quoting) fail the test
// instead of producing files that only *look* parseable. Hostile span/mark
// labels containing quotes, backslashes, newlines and control bytes
// exercise the escaping paths directly.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/table_common.h"
#include "phch/obs/export.h"
#include "phch/obs/prom.h"
#include "phch/obs/registry.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"

namespace phch {
namespace {

// ---------------------------------------------------------------------------
// A deliberately strict recursive-descent JSON parser: no trailing commas,
// no unescaped control characters in strings, full escape validation. It
// only validates + decodes strings; the tests assert on well-formedness and
// on specific decoded keys.

class json_checker {
 public:
  explicit json_checker(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string_lit() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        strings_.push_back(out);
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            pos_ += 4;
            out += static_cast<char>(code < 0x80 ? code : '?');
            break;
          }
          default: return false;  // unknown escape
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::vector<std::string> strings_;
};

std::string slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool contains(const std::vector<std::string>& haystack, const std::string& s) {
  for (const auto& h : haystack) {
    if (h == s) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Strict-enough Prometheus text-exposition validator (format 0.0.4): every
// line is a comment or `name{labels} value`; label values must be properly
// quoted/escaped; per histogram, bucket counts are cumulative and the +Inf
// bucket equals _count. Returns an empty string on success, else the error.

struct prom_sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
};

bool valid_metric_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':')
    return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

std::string parse_prometheus(const std::string& text,
                             std::vector<prom_sample>* out) {
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::string where = "line " + std::to_string(lineno) + ": " + line;
    if (line.empty()) return "empty line not allowed: " + where;
    if (line[0] == '#') continue;  // HELP/TYPE/comment
    std::size_t i = 0;
    prom_sample s;
    while (i < line.size() && valid_metric_char(line[i], i == 0)) {
      s.name += line[i++];
    }
    if (s.name.empty()) return "no metric name: " + where;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::string lname;
        while (i < line.size() && valid_metric_char(line[i], lname.empty())) {
          lname += line[i++];
        }
        if (lname.empty() || i >= line.size() || line[i] != '=')
          return "bad label name: " + where;
        ++i;
        if (i >= line.size() || line[i] != '"')
          return "label value not quoted: " + where;
        ++i;
        std::string lval;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) return "dangling escape: " + where;
            const char e = line[i + 1];
            if (e == '\\') lval += '\\';
            else if (e == '"') lval += '"';
            else if (e == 'n') lval += '\n';
            else return "unknown label escape: " + where;
            i += 2;
            continue;
          }
          lval += line[i++];
        }
        if (i >= line.size()) return "unterminated label value: " + where;
        ++i;  // closing quote
        s.labels.emplace_back(lname, lval);
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') return "unterminated labels: " + where;
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') return "no value separator: " + where;
    ++i;
    const std::string num = line.substr(i);
    if (num == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      s.value = std::strtod(num.c_str(), &end);
      if (end == num.c_str() || *end != '\0') return "bad value: " + where;
    }
    out->push_back(s);
  }
  return "";
}

const std::string* label_of(const prom_sample& s, const std::string& k) {
  for (const auto& [name, value] : s.labels) {
    if (name == k) return &value;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------

TEST(ExportersOff, WritersRefuseWhenCompiledOut) {
  if (obs::compiled) GTEST_SKIP() << "telemetry compiled in";
  EXPECT_FALSE(obs::write_metrics_json("/tmp/phch_exp_off.json"));
  EXPECT_FALSE(obs::write_chrome_trace("/tmp/phch_exp_off_trace.json"));
  // The exposition writer still returns a parseable (comment-only) page.
  std::vector<prom_sample> samples;
  EXPECT_EQ(parse_prometheus(obs::render_prometheus(), &samples), "");
  EXPECT_TRUE(samples.empty());
}

class ExportersOn : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled) GTEST_SKIP() << "telemetry compiled out";
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    if (obs::compiled) {
      obs::set_enabled(false);
      scheduler::get().set_num_workers(4);
    }
  }
};

// Labels chosen to break naive writers: quotes, backslashes, newline, tab,
// and a raw control byte.
constexpr const char kHostile[] = "ho\"st\\ile\nlab\tel\x01!";

TEST_F(ExportersOn, MetricsJsonRoundTripsHostileLabels) {
  {
    obs::span sp(kHostile);
    deterministic_table<> t(128);
    t.insert(7);
  }
  obs::mark(kHostile);
  const char* path = "/tmp/phch_exp_metrics.json";
  ASSERT_TRUE(obs::write_metrics_json(path));
  const std::string text = slurp(path);
  json_checker jc(text);
  ASSERT_TRUE(jc.parse()) << text;
  // The hostile mark label must survive the escape/unescape round trip
  // bit-for-bit (control byte included).
  EXPECT_TRUE(contains(jc.strings(), kHostile));
  EXPECT_TRUE(contains(jc.strings(), "insert_commits"));
  EXPECT_TRUE(contains(jc.strings(), "histograms"));
  EXPECT_TRUE(contains(jc.strings(), "probe_depth"));
}

TEST_F(ExportersOn, ChromeTraceRoundTripsHostileLabels) {
  {
    obs::span sp(kHostile);
    deterministic_table<> t(128);
    t.insert(7);
    (void)t.find(7);
  }
  obs::mark(kHostile);
  const char* path = "/tmp/phch_exp_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  const std::string text = slurp(path);
  json_checker jc(text);
  ASSERT_TRUE(jc.parse()) << text;
  EXPECT_TRUE(contains(jc.strings(), kHostile));
  // The probe-depth counter track rides along with every mark.
  EXPECT_TRUE(contains(jc.strings(), "probe_depth"));
}

TEST_F(ExportersOn, PrometheusExpositionIsWellFormed) {
  deterministic_table<> t(1024);
  [[maybe_unused]] const obs::scoped_registration reg(kHostile, t);
  for (std::uint64_t v = 1; v <= 200; ++v) t.insert(v);
  for (std::uint64_t v = 1; v <= 200; ++v) (void)t.find(v);

  std::vector<prom_sample> samples;
  const std::string err = parse_prometheus(obs::render_prometheus(), &samples);
  ASSERT_EQ(err, "");
  ASSERT_FALSE(samples.empty());

  double insert_ops = -1, find_ops = -1, erase_ops = -1;
  double bucket_inf = -1, hist_count = -1, prev_bucket = 0;
  bool saw_hostile_table = false;
  for (const auto& s : samples) {
    if (s.name == "phch_insert_ops_total") insert_ops = s.value;
    if (s.name == "phch_find_ops_total") find_ops = s.value;
    if (s.name == "phch_erase_ops_total") erase_ops = s.value;
    if (s.name == "phch_probe_depth_bucket") {
      // Cumulative within one histogram: each bucket >= the previous.
      EXPECT_GE(s.value, prev_bucket);
      prev_bucket = s.value;
      const std::string* le = label_of(s, "le");
      ASSERT_NE(le, nullptr);
      if (*le == "+Inf") bucket_inf = s.value;
    }
    if (s.name == "phch_probe_depth_count") hist_count = s.value;
    if (const std::string* tl = label_of(s, "table")) {
      // The hostile registry name must round-trip through label escaping.
      if (*tl == kHostile) saw_hostile_table = true;
    }
  }
  ASSERT_GE(insert_ops, 0);
  ASSERT_GE(find_ops, 0);
  ASSERT_GE(erase_ops, 0);
  // Histogram completeness: +Inf bucket present and equal to _count.
  EXPECT_GE(bucket_inf, 0);
  EXPECT_EQ(bucket_inf, hist_count);
  // The probe-depth ledger, as scraped.
  EXPECT_EQ(hist_count, insert_ops + find_ops + erase_ops);
  EXPECT_TRUE(saw_hostile_table);
}

TEST_F(ExportersOn, TypeLinesAreUniquePerMetric) {
  deterministic_table<> a(128), b(128);
  [[maybe_unused]] const obs::scoped_registration ra("a", a);
  [[maybe_unused]] const obs::scoped_registration rb("b", b);
  a.insert(1);
  b.insert(2);
  const std::string text = obs::render_prometheus();
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> seen;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    EXPECT_FALSE(contains(seen, line)) << "duplicate: " << line;
    seen.push_back(line);
  }
  EXPECT_FALSE(seen.empty());
}

}  // namespace
}  // namespace phch
