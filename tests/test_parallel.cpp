// Scheduler and parallel_for behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/scheduler.h"

namespace phch {
namespace {

TEST(Scheduler, ReportsAtLeastOneWorker) {
  EXPECT_GE(num_workers(), 1);
}

TEST(Scheduler, ExecuteRunsEveryWorkerExactlyOnce) {
  const int p = num_workers();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(p));
  scheduler::get().execute([&](int id) {
    hits[static_cast<std::size_t>(id)].fetch_add(1);
  });
  for (int i = 0; i < p; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Scheduler, InParallelFlagIsSetInsideJobsOnly) {
  EXPECT_FALSE(scheduler::in_parallel());
  std::atomic<bool> seen{true};
  scheduler::get().execute([&](int) {
    if (!scheduler::in_parallel()) seen = false;
  });
  EXPECT_TRUE(seen.load());
  EXPECT_FALSE(scheduler::in_parallel());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, RespectsNonZeroLowerBound) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + 11 + ... + 19
}

TEST(ParallelFor, NestedInvocationsRunInline) {
  constexpr std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n * n);
  parallel_for(0, n, [&](std::size_t i) {
    parallel_for(0, n, [&](std::size_t j) { hits[i * n + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < n * n; ++k) ASSERT_EQ(hits[k].load(), 1);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  EXPECT_THROW(
      parallel_for(0, 10000,
                   [&](std::size_t i) {
                     if (i == 4321) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExplicitGrainStillCoversRange) {
  constexpr std::size_t n = 12345;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, 7);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(BlockedFor, BlocksAreContiguousAndCoverRange) {
  constexpr std::size_t n = 10007;
  constexpr std::size_t bsize = 97;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<std::size_t> blocks{0};
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    EXPECT_EQ(s, b * bsize);
    EXPECT_LE(e, n);
    EXPECT_LE(e - s, bsize);
    for (std::size_t i = s; i < e; ++i) hits[i].fetch_add(1);
    blocks.fetch_add(1);
  });
  EXPECT_EQ(blocks.load(), (n + bsize - 1) / bsize);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParDo, RunsBothThunks) {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(ParDo, PropagatesException) {
  EXPECT_THROW(par_do([] { throw std::logic_error("left"); }, [] {}), std::logic_error);
}

TEST(Scheduler, SetNumWorkersChangesParallelism) {
  scheduler& s = scheduler::get();
  const int original = s.num_workers();
  s.set_num_workers(2);
  EXPECT_EQ(s.num_workers(), 2);
  std::atomic<int> hits{0};
  s.execute([&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 2);
  s.set_num_workers(original);
  EXPECT_EQ(s.num_workers(), original);
}

TEST(Scheduler, RejectsZeroWorkers) {
  EXPECT_THROW(scheduler::get().set_num_workers(0), std::invalid_argument);
}

}  // namespace
}  // namespace phch
