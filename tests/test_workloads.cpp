// Workload generators: determinism, ranges, and distribution shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"

namespace phch::workloads {
namespace {

TEST(RandomIntSeq, DeterministicAndInRange) {
  const auto a = random_int_seq(50000, 42);
  const auto b = random_int_seq(50000, 42);
  EXPECT_EQ(a, b);
  for (const auto k : a) {
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 50000u);
  }
}

TEST(RandomIntSeq, DifferentSeedsDiffer) {
  EXPECT_NE(random_int_seq(1000, 1), random_int_seq(1000, 2));
}

TEST(RandomIntSeq, RoughlyUniform) {
  const std::size_t n = 200000;
  const auto a = random_int_seq(n, 7);
  // Mean of uniform [1, n] is ~n/2.
  double sum = 0;
  for (const auto k : a) sum += static_cast<double>(k);
  EXPECT_NEAR(sum / static_cast<double>(n), static_cast<double>(n) / 2,
              static_cast<double>(n) * 0.01);
  // Distinct fraction for n draws from n values is ~1 - 1/e ≈ 0.632.
  const std::set<std::uint64_t> distinct(a.begin(), a.end());
  EXPECT_NEAR(static_cast<double>(distinct.size()) / static_cast<double>(n), 0.632, 0.01);
}

TEST(RandomPairSeq, KeysAndValuesIndependentStreams) {
  const auto p = random_pair_seq(10000, 3);
  const auto k = random_int_seq(10000, 3);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_GE(p[i].k, 1u);
    ASSERT_GE(p[i].v, 1u);
  }
  (void)k;
}

TEST(ExptSeq, HeavyDuplication) {
  const std::size_t n = 100000;
  const auto a = expt_int_seq(n, 5);
  ASSERT_EQ(a.size(), n);
  const std::set<std::uint64_t> distinct(a.begin(), a.end());
  // The exponential profile concentrates mass near small keys: far fewer
  // distinct keys than uniform.
  EXPECT_LT(distinct.size(), n / 10);
  for (const auto k : a) {
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
  }
}

TEST(ExptSeq, DeterministicPairs) {
  EXPECT_EQ(expt_pair_seq(5000, 9).size(), 5000u);
  const auto a = expt_pair_seq(5000, 9);
  const auto b = expt_pair_seq(5000, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].k, b[i].k);
    ASSERT_EQ(a[i].v, b[i].v);
  }
}

TEST(TrigramSeq, WordsAreLowercaseNonEmpty) {
  const auto s = trigram_string_seq(20000, 11);
  ASSERT_EQ(s.keys.size(), 20000u);
  for (const char* w : s.keys) {
    ASSERT_GE(std::strlen(w), 1u);
    ASSERT_LE(std::strlen(w), 24u);
    for (const char* p = w; *p; ++p) ASSERT_TRUE(*p >= 'a' && *p <= 'z');
  }
}

TEST(TrigramSeq, ManyDuplicatesFewDistinct) {
  const auto s = trigram_string_seq(50000, 13);
  std::set<std::string> distinct;
  for (const char* w : s.keys) distinct.insert(w);
  // English-like trigram text reuses short words constantly.
  EXPECT_LT(distinct.size(), s.keys.size() / 2);
  EXPECT_GT(distinct.size(), 100u);
}

TEST(TrigramSeq, DeterministicContent) {
  const auto a = trigram_string_seq(5000, 17);
  const auto b = trigram_string_seq(5000, 17);
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    ASSERT_STREQ(a.keys[i], b.keys[i]);
  }
}

TEST(TrigramPairSeq, RecordsPointIntoOwnArena) {
  const auto s = trigram_pair_seq(3000, 19);
  ASSERT_EQ(s.entries.size(), 3000u);
  for (const auto* r : s.entries) {
    ASSERT_GE(r->value, 1u);
    ASSERT_GE(r->key, s.arena.data());
    ASSERT_LT(r->key, s.arena.data() + s.arena.size());
  }
}

TEST(TrigramText, ExactLengthAndAlphabet) {
  const auto t = trigram_text(100000, 21);
  ASSERT_EQ(t.size(), 100000u);
  for (const char c : t) ASSERT_TRUE(c == ' ' || (c >= 'a' && c <= 'z'));
  // Should contain many spaces (word boundaries).
  EXPECT_GT(std::count(t.begin(), t.end(), ' '), 5000);
}

TEST(ProteinText, TwentyLetterAlphabetSkewed) {
  const auto t = protein_text(200000, 23);
  ASSERT_EQ(t.size(), 200000u);
  std::array<std::size_t, 256> freq{};
  for (const char c : t) freq[static_cast<unsigned char>(c)]++;
  // L is the most common amino acid, W the rarest.
  EXPECT_GT(freq['L'], freq['W'] * 4);
  std::size_t letters = 0;
  for (const char c : "LAGVESIKRDTPNQFYMHCW") {
    if (c) letters += freq[static_cast<unsigned char>(c)] > 0;
  }
  EXPECT_EQ(letters, 20u);
}

}  // namespace
}  // namespace phch::workloads
