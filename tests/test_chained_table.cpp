// Lea-style chained table and the contention-reducing (-CR) variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/chained_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

template <typename T>
class ChainedVariants : public ::testing::Test {};

using Variants = ::testing::Types<chained_table<int_entry<>, false>,
                                  chained_table<int_entry<>, true>>;
TYPED_TEST_SUITE(ChainedVariants, Variants);

TYPED_TEST(ChainedVariants, InsertFindErase) {
  TypeParam t(64);
  t.insert(1);
  t.insert(65);  // same bucket as 1 only if hashes collide; either way works
  t.insert(999);
  EXPECT_TRUE(t.contains(1));
  EXPECT_TRUE(t.contains(65));
  EXPECT_TRUE(t.contains(999));
  t.erase(65);
  EXPECT_FALSE(t.contains(65));
  EXPECT_EQ(t.count(), 2u);
}

TYPED_TEST(ChainedVariants, SetSemanticsUnderConcurrency) {
  TypeParam t(1 << 13);
  const auto keys = test::dup_keys(10000, 4000, 3);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), expected.begin(), expected.end()));
}

TYPED_TEST(ChainedVariants, HighDuplicationContention) {
  // The paper's pathological case for the non-CR table: almost every insert
  // targets the same few keys.
  TypeParam t(1 << 10);
  const auto keys = test::dup_keys(30000, 8, 7);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), std::set<std::uint64_t>(keys.begin(), keys.end()).size());
}

TYPED_TEST(ChainedVariants, DeleteUnderConcurrency) {
  TypeParam t(1 << 12);
  const auto keys = test::unique_keys(4000, 5);
  test::parallel_insert(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 2500);
  test::parallel_erase(t, dels);
  EXPECT_EQ(t.count(), keys.size() - dels.size());
  for (std::size_t i = 2500; i < keys.size(); ++i) ASSERT_TRUE(t.contains(keys[i]));
  for (const auto d : dels) ASSERT_FALSE(t.contains(d));
}

TYPED_TEST(ChainedVariants, NodeRecyclingSurvivesChurn) {
  // Repeated insert/delete phases exercise the pooled free list.
  TypeParam t(1 << 10);
  for (int round = 0; round < 10; ++round) {
    const auto keys = test::unique_keys(800, 100 + round);
    test::parallel_insert(t, keys);
    ASSERT_EQ(t.count(), keys.size());
    test::parallel_erase(t, keys);
    ASSERT_EQ(t.count(), 0u);
  }
}

TYPED_TEST(ChainedVariants, ElementsMatchesPaperScheme) {
  TypeParam t(1 << 8);
  const auto keys = test::unique_keys(300, 9);
  test::parallel_insert(t, keys);
  auto elems = t.elements();
  EXPECT_EQ(elems.size(), keys.size());
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), keys.begin(), keys.end()));
}

TEST(ChainedTable, CombineAddAcrossVariants) {
  chained_table<pair_entry<combine_add>, true> t(1 << 8);
  parallel_for(0, 20000, [&](std::size_t i) { t.insert(kv64{1 + (i % 3), 1}); });
  EXPECT_EQ(t.find(1).v + t.find(2).v + t.find(3).v, 20000u);
}

TEST(ChainedTable, ManyMoreKeysThanBuckets) {
  // Chains grow long; count/elements must still be exact.
  chained_table<int_entry<>, true> t(64);
  const auto keys = test::unique_keys(5000, 21);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  for (const auto k : keys) ASSERT_TRUE(t.contains(k));
}

}  // namespace
}  // namespace phch
