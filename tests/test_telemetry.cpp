// Telemetry layer (src/phch/obs/): zero-overhead-when-off contract, counter
// exactness at phase boundaries, marks, trace rings, and exporters.
//
// This file compiles and passes in both build modes. With PHCH_TELEMETRY
// off (the default) it asserts that the layer really is compiled out —
// instrumented classes carry no extra state and every entry point is a
// no-op. With -DPHCH_TELEMETRY=ON it checks the layer's defining property:
// counter sums read at a quiescent point equal the reference operation
// counts *exactly*, for every worker count, on both the scalar and the
// software-pipelined batch paths. The hammer tests run the counter and
// ring paths from every worker concurrently and are part of the TSan CI
// job.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/obs/export.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/scheduler.h"
#include "phch/utils/rand.h"
#include "phch/workloads/sequences.h"

namespace phch {
namespace {

using obs::counter;

// ---------------------------------------------------------------------------
// Compiled-out contract (runs only in the default build).

TEST(TelemetryOff, LayerIsCompiledOut) {
  if (obs::compiled) GTEST_SKIP() << "telemetry compiled in";
  // The phase policies carry no telemetry state: unchecked_phases is
  // exactly the one phase_runtime cache line. That word is functional (it
  // drives reclamation grace periods and phase tracking), not telemetry —
  // compiling obs in must not widen it.
  EXPECT_EQ(sizeof(unchecked_phases), sizeof(phase_runtime));
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);  // no-op when compiled out
  EXPECT_FALSE(obs::enabled());
  obs::count(counter::probe_slots, 123);
  EXPECT_EQ(obs::total(counter::probe_slots), 0u);
  const obs::metrics_snapshot m = obs::snapshot();
  for (const auto v : m.totals) EXPECT_EQ(v, 0u);
  obs::mark("off");
  EXPECT_TRUE(obs::marks().empty());
  EXPECT_TRUE(obs::drain_trace().events.empty());
  EXPECT_FALSE(obs::write_metrics_json("/tmp/phch_off_metrics.json"));
  EXPECT_FALSE(obs::write_chrome_trace("/tmp/phch_off_trace.json"));
}

TEST(TelemetryOff, ProbeTallyIsInert) {
  if (obs::compiled) GTEST_SKIP() << "telemetry compiled in";
  {
    obs::probe_tally t;
    t.slots = 7;
    t.cas = 3;
    t.cas_failed = 1;
  }  // destructor must not publish anything
  EXPECT_EQ(obs::total(counter::probe_slots), 0u);
  EXPECT_EQ(obs::total(counter::cas_attempts), 0u);
}

// ---------------------------------------------------------------------------
// Compiled-in behavior. Each test enables recording explicitly (the CI job
// does not rely on the PHCH_TELEMETRY environment variable).

class TelemetryOn : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::compiled) GTEST_SKIP() << "telemetry compiled out";
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    if (obs::compiled) {
      obs::reset();
      obs::set_enabled(false);
      scheduler::get().set_num_workers(4);  // the suite's PHCH_THREADS value
    }
  }
};

struct op_refs {
  std::uint64_t n = 0;       // inserts issued
  std::uint64_t unique = 0;  // distinct keys (= expected commits)
};

// Inserts `n` keys (with duplicates), finds them all, erases the unique
// set, and checks every counter delta against its closed-form reference.
template <bool kBatch>
void check_exactness(int workers) {
  scheduler::get().set_num_workers(workers);
  const std::size_t n = 40000;
  const auto seq = workloads::random_int_seq(n, 21);
  const std::set<std::uint64_t> ref(seq.begin(), seq.end());
  const std::vector<std::uint64_t> uniq(ref.begin(), ref.end());

  obs::reset();
  deterministic_table<int_entry<>> t(1 << 17);
  const obs::metrics_snapshot t0 = obs::snapshot();
  if constexpr (kBatch) {
    insert_batch(t, seq);
  } else {
    insert_batch_scalar(t, seq);
  }
  const obs::metrics_snapshot after_insert = obs::snapshot();
  const auto found = kBatch ? find_batch(t, seq) : find_batch_scalar(t, seq);
  const obs::metrics_snapshot after_find = obs::snapshot();
  if constexpr (kBatch) {
    erase_batch(t, uniq);
  } else {
    erase_batch_scalar(t, uniq);
  }
  const obs::metrics_snapshot after_erase = obs::snapshot();

  // Insert phase: one op per input element, one commit per distinct key,
  // the rest are duplicate resolutions. Exact at any worker count.
  const obs::metrics_snapshot di = after_insert - t0;
  EXPECT_EQ(di[counter::insert_ops], n) << "workers=" << workers;
  EXPECT_EQ(di[counter::insert_commits], ref.size());
  EXPECT_EQ(di[counter::insert_dups], n - ref.size());
  EXPECT_EQ(di[counter::insert_aborts], 0u);
  EXPECT_EQ(di[counter::find_ops], 0u);
  EXPECT_EQ(di[counter::erase_ops], 0u);

  // Find phase: every key is present.
  const obs::metrics_snapshot df = after_find - after_insert;
  ASSERT_EQ(found.size(), n);
  EXPECT_EQ(df[counter::find_ops], n);
  EXPECT_EQ(df[counter::find_hits], n);
  EXPECT_EQ(df[counter::insert_ops], 0u);

  // Erase phase: each distinct key removed exactly once.
  const obs::metrics_snapshot de = after_erase - after_find;
  EXPECT_EQ(de[counter::erase_ops], uniq.size());
  EXPECT_EQ(de[counter::erase_hits], uniq.size());
  EXPECT_EQ(t.approx_size(), 0u);

  if (workers == 1) {
    // A single worker can never lose a CAS.
    EXPECT_EQ((after_erase - t0)[counter::cas_failures], 0u);
  }
}

TEST_F(TelemetryOn, CounterExactnessScalarPath) {
  for (const int p : {1, 4, 8}) check_exactness<false>(p);
}

TEST_F(TelemetryOn, CounterExactnessBatchPath) {
  for (const int p : {1, 4, 8}) check_exactness<true>(p);
}

TEST_F(TelemetryOn, RuntimeFlagGatesRecording) {
  obs::set_enabled(false);
  obs::count(counter::probe_slots, 5);
  EXPECT_EQ(obs::total(counter::probe_slots), 0u);
  obs::set_enabled(true);
  obs::count(counter::probe_slots, 5);
  EXPECT_EQ(obs::total(counter::probe_slots), 5u);
}

TEST_F(TelemetryOn, MarksCaptureQuiescentDeltas) {
  obs::mark("t0");
  obs::count(counter::steals, 3);
  obs::mark("t1");
  obs::count(counter::steals, 4);
  obs::mark("t2");
  const auto ms = obs::marks();
  ASSERT_EQ(ms.size(), 3u);
  EXPECT_EQ(ms[0].label, "t0");
  EXPECT_EQ((ms[1].counters - ms[0].counters)[counter::steals], 3u);
  EXPECT_EQ((ms[2].counters - ms[1].counters)[counter::steals], 4u);
  EXPECT_LE(ms[0].ts_ns, ms[1].ts_ns);
}

TEST_F(TelemetryOn, PhaseTransitionsRecordedOncePerBoundary) {
  deterministic_table<int_entry<>> t(1 << 10);
  insert_batch_scalar(t, std::vector<std::uint64_t>{1, 2, 3});
  (void)t.find(1);  // insert -> query boundary
  t.erase(2);       // query -> erase boundary
  (void)t.find(3);  // erase -> query boundary
  // 4 transitions: first-op, plus the three class changes.
  EXPECT_EQ(obs::total(counter::phase_transitions), 4u);
  const auto tr = obs::drain_trace();
  std::vector<std::string> phases;
  for (const auto& e : tr.events) {
    if (e.kind == obs::event_kind::phase_begin) phases.emplace_back(e.name);
  }
  const std::vector<std::string> want{"phase:insert", "phase:query", "phase:erase",
                                      "phase:query"};
  EXPECT_EQ(phases, want);
}

TEST_F(TelemetryOn, SpansAndSchedulerEventsAppearInTrace) {
  {
    obs::span sp("test:span");
    sp.a = 7;
    sp.b = 99;
    std::vector<int> v(10000);
    parallel_for(0, v.size(), [&](std::size_t i) { v[i] = static_cast<int>(i); });
  }
  const auto tr = obs::drain_trace();
  bool saw_test_span = false, saw_root_loop = false;
  for (const auto& e : tr.events) {
    if (e.kind != obs::event_kind::span) continue;
    if (std::string(e.name) == "test:span") {
      saw_test_span = true;
      EXPECT_EQ(e.a, 7u);
      EXPECT_EQ(e.b, 99u);
    }
    if (std::string(e.name) == "parallel_for") saw_root_loop = true;
  }
  EXPECT_TRUE(saw_test_span);
  EXPECT_TRUE(saw_root_loop);
}

TEST_F(TelemetryOn, ExportersWriteParsableFiles) {
  deterministic_table<int_entry<>> t(1 << 12);
  obs::mark("export/start");
  insert_batch(t, workloads::random_int_seq(5000, 3));
  obs::mark("export/inserted");
  const std::string mpath = ::testing::TempDir() + "phch_metrics.json";
  const std::string tpath = ::testing::TempDir() + "phch_trace.json";
  ASSERT_TRUE(obs::write_metrics_json(mpath.c_str()));
  ASSERT_TRUE(obs::write_chrome_trace(tpath.c_str()));
  for (const std::string& p : {mpath, tpath}) {
    std::FILE* f = std::fopen(p.c_str(), "r");
    ASSERT_NE(f, nullptr) << p;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 16L) << p;
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fgetc(f), '{') << p;
    std::fclose(f);
  }
  // The metrics file must contain the marks and a counter we know ticked.
  std::FILE* f = std::fopen(mpath.c_str(), "r");
  std::string body;
  for (int c; (c = std::fgetc(f)) != EOF;) body.push_back(static_cast<char>(c));
  std::fclose(f);
  EXPECT_NE(body.find("\"export/inserted\""), std::string::npos);
  EXPECT_NE(body.find("\"insert_commits\""), std::string::npos);
}

// Run the counter and ring hot paths from every worker at once; with
// PHCH_SANITIZE=thread this is the data-race check for the whole layer.
TEST_F(TelemetryOn, ConcurrentCountersAndRingsAreRaceFree) {
  const std::size_t n = 100000;
  parallel_for(0, n, [&](std::size_t i) {
    obs::count(counter::probe_slots);
    if (i % 64 == 0) {
      obs::record_event(obs::event_kind::span, "hammer", static_cast<std::uint32_t>(i),
                        i, obs::now_ns(), 1);
    }
  });
  EXPECT_EQ(obs::total(counter::probe_slots), n);
  const auto tr = obs::drain_trace();
  // Rings keep the newest kRingCapacity events per stripe; everything else
  // is accounted as dropped, never lost silently. The run records exactly
  // ceil(n/64) hammer events plus the loop's own root span.
  EXPECT_EQ(tr.events.size() + tr.dropped, (n + 63) / 64 + 1);
}

}  // namespace
}  // namespace phch
