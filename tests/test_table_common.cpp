// Shared table helpers: round_up_pow2 overflow behavior, aligned slot
// storage, and the serial short-circuit in slot_array::clear().
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "phch/core/entry_traits.h"
#include "phch/core/table_common.h"

namespace phch {
namespace {

TEST(RoundUpPow2, SmallValues) {
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(4), 4u);
  EXPECT_EQ(round_up_pow2(5), 8u);
  EXPECT_EQ(round_up_pow2(1000), 1024u);
  EXPECT_EQ(round_up_pow2(1 << 20), std::size_t{1} << 20);
  EXPECT_EQ(round_up_pow2((1 << 20) + 1), std::size_t{1} << 21);
}

TEST(RoundUpPow2, LargestRepresentablePowerOfTwoIsAccepted) {
  constexpr std::size_t max_pow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(round_up_pow2(max_pow2), max_pow2);
  EXPECT_EQ(round_up_pow2(max_pow2 - 1), max_pow2);
}

TEST(RoundUpPow2, OverflowingRequestsThrowInsteadOfLoopingForever) {
  constexpr std::size_t max_pow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_THROW(round_up_pow2(max_pow2 + 1), std::length_error);
  EXPECT_THROW(round_up_pow2(std::numeric_limits<std::size_t>::max()),
               std::length_error);
}

TEST(SlotArray, StorageIsCacheLineAligned) {
  slot_array<int_entry<>> small(2);
  slot_array<int_entry<>> big(1 << 15);
  slot_array<pair_entry<>> pairs(1 << 10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pairs.data()) % 64, 0u);
}

TEST(SlotArray, ClearResetsEverySlotAtBothSidesOfTheSerialThreshold) {
  // Below the threshold clear() runs serially, above it in parallel; both
  // must leave every slot empty.
  for (const std::size_t cap : {std::size_t{64}, kSerialClearThreshold,
                                2 * kSerialClearThreshold}) {
    slot_array<int_entry<>> a(cap);
    for (std::size_t i = 0; i < a.capacity(); ++i) a[i] = i + 1;
    EXPECT_EQ(a.count(), a.capacity());
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    for (std::size_t i = 0; i < a.capacity(); ++i) {
      ASSERT_TRUE(int_entry<>::is_empty(a[i]));
    }
  }
}

}  // namespace
}  // namespace phch
