// Phase-discipline enforcement (Definition 1): the checked policy accepts
// same-phase concurrency and find+elements mixing, and aborts the process
// when operations of different classes overlap in time.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "phch/core/deterministic_table.h"
#include "phch/core/phase_guard.h"
#include "table_test_util.h"

namespace phch {
namespace {

using checked = deterministic_table<int_entry<>, checked_phases>;

TEST(PhaseGuard, SequentialPhasesAreAccepted) {
  checked t(1 << 12);
  const auto keys = test::unique_keys(1000, 3);
  test::parallel_insert(t, keys);   // insert phase
  for (const auto k : keys) ASSERT_TRUE(t.contains(k));  // find phase
  (void)t.elements();               // elements shares the find phase
  test::parallel_erase(t, keys);    // delete phase
  EXPECT_EQ(t.count(), 0u);
}

TEST(PhaseGuard, ConcurrentSameClassOpsAreAccepted) {
  checked t(1 << 16);
  test::parallel_insert(t, test::unique_keys(20000, 5));  // concurrent inserts
  std::atomic<std::size_t> hits{0};
  parallel_for(0, 20000, [&](std::size_t i) {
    if (t.contains(1 + i)) hits.fetch_add(1);  // concurrent finds
  });
  SUCCEED();
}

TEST(PhaseGuard, FindAndElementsShareAPhase) {
  checked t(256);
  t.insert(1);
  std::thread reader([&] {
    for (int i = 0; i < 100; ++i) (void)t.elements();
  });
  for (int i = 0; i < 1000; ++i) (void)t.contains(1);
  reader.join();
  SUCCEED();
}

using PhaseGuardDeath = ::testing::Test;

TEST(PhaseGuardDeath, InsertWhileQueryInFlightAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        checked_phases g;
        checked_phases::scope query(g, op_kind::query);
        checked_phases::scope insert(g, op_kind::insert);  // illegal overlap
      },
      "phase-concurrency violation");
}

TEST(PhaseGuardDeath, DeleteWhileInsertInFlightAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        checked_phases g;
        checked_phases::scope insert(g, op_kind::insert);
        checked_phases::scope erase(g, op_kind::erase);  // illegal overlap
      },
      "phase-concurrency violation");
}

TEST(PhaseGuard, ScopesOfOneClassNest) {
  checked_phases g;
  checked_phases::scope a(g, op_kind::insert);
  checked_phases::scope b(g, op_kind::insert);
  checked_phases::scope c(g, op_kind::insert);
  SUCCEED();
}

TEST(PhaseGuard, PhaseBoundaryResetsState) {
  checked_phases g;
  { checked_phases::scope a(g, op_kind::insert); }
  { checked_phases::scope b(g, op_kind::erase); }
  { checked_phases::scope c(g, op_kind::query); }
  SUCCEED();
}

// A test-installed handler intercepts the structured report in-process; the
// offending operation then proceeds (useful for counting violations in
// fuzz-style tests without dying on the first one).
namespace violation_capture {
phase_violation last;
int calls = 0;
void capture(const phase_violation& v) {
  last = v;
  ++calls;
}
}  // namespace violation_capture

TEST(PhaseGuard, PluggableHandlerReceivesStructuredReport) {
  violation_capture::calls = 0;
  phase_violation_handler prev = set_phase_violation_handler(&violation_capture::capture);
  EXPECT_EQ(prev, &abort_on_phase_violation);
  {
    checked_phases g;
    g.set_name("report-test");
    checked_phases::scope query(g, op_kind::query);
    checked_phases::scope insert(g, op_kind::insert);  // illegal overlap
  }
  set_phase_violation_handler(nullptr);  // restore the aborting default
  ASSERT_EQ(violation_capture::calls, 1);
  const phase_violation& v = violation_capture::last;
  EXPECT_EQ(v.table_name, std::string("report-test"));
  EXPECT_NE(v.table, nullptr);
  EXPECT_EQ(v.attempted, op_kind::insert);
  EXPECT_EQ(v.in_flight[static_cast<int>(op_kind::query)], 1u);
  EXPECT_EQ(v.in_flight[static_cast<int>(op_kind::insert)], 0u);
  EXPECT_EQ(v.in_flight[static_cast<int>(op_kind::erase)], 0u);
  // Whatever this thread's scheduler identity is, the report carries it.
  EXPECT_EQ(v.worker, scheduler::worker_id());
}

TEST(PhaseGuard, RestoringDefaultHandlerReturnsInstalledOne) {
  phase_violation_handler prev = set_phase_violation_handler(&violation_capture::capture);
  EXPECT_EQ(set_phase_violation_handler(nullptr), &violation_capture::capture);
  (void)prev;
}

TEST(PhaseGuard, PoliciesCarryExactlyOnePhaseStateWord) {
  // Both policies are views over a single phase_runtime cache line — the
  // table's sole phase-state word (it drives the obs tracer and reclamation
  // grace periods, so it is functional state, not instrumentation). The
  // default policy adds nothing beyond it; checked adds only the in-flight
  // counters and the debug name. Compile-time property, asserted via size.
  static_assert(sizeof(unchecked_phases) == sizeof(phase_runtime));
  static_assert(sizeof(deterministic_table<int_entry<>>) < sizeof(checked));
  SUCCEED();
}

}  // namespace
}  // namespace phch
