// The sparse-table family (chained, cuckoo, hopscotch) on the unified
// concepts/batch/telemetry stack: every table models phase_table /
// deletable_table and forwards its own batch members, so the free batch
// functions dispatch to the prefetch-structured walks — never the scalar
// fallback — with set semantics identical to per-op calls across all six
// paper key distributions. None of the three has a deterministic layout
// (eviction interleavings, displacement order, and chain order are all
// history-dependent), so equality is of element *sets*, not slot arrays.
// The striped occupancy counter (approx_size) must agree with the O(n)
// count() reference at every phase boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/chained_table.h"
#include "phch/core/cuckoo_table.h"
#include "phch/core/hopscotch_table.h"
#include "phch/core/table_concepts.h"
#include "phch/workloads/sequences.h"
#include "phch/workloads/trigram.h"
#include "table_test_util.h"

namespace phch {
namespace {

// One test-family per sparse table; `table<Traits>` fixes the non-traits
// template arguments to the variant the paper benchmarks (chainedHash-CR,
// hopscotchHash with timestamps).
struct chained_family {
  template <typename Tr>
  using table = chained_table<Tr, true>;
  template <typename Tr>
  using checked = chained_table<Tr, true, checked_phases>;
};
struct cuckoo_family {
  template <typename Tr>
  using table = cuckoo_table<Tr>;
  template <typename Tr>
  using checked = cuckoo_table<Tr, checked_phases>;
};
struct hopscotch_family {
  template <typename Tr>
  using table = hopscotch_table<Tr, true>;
  template <typename Tr>
  using checked = hopscotch_table<Tr, true, checked_phases>;
};

template <typename Family>
class SparseBatch : public ::testing::Test {};
using Families = ::testing::Types<chained_family, cuckoo_family, hopscotch_family>;
TYPED_TEST_SUITE(SparseBatch, Families);

// --- the concepts each table claims ----------------------------------------
// batch_forwarding_table is what makes the free insert_batch/find_batch
// dispatch to the tables' own members (that branch is checked before the
// pipelined engine and the scalar fallback); erase_forwarding_table does the
// same for erase_batch. None of the three exposes a raw slot array, so the
// open-addressing stats/layout machinery and the flat-slot pipelined engine
// stay off.
template <typename T>
constexpr void assert_sparse_concepts() {
  static_assert(phase_table<T>);
  static_assert(deletable_table<T>);
  static_assert(batch_forwarding_table<T>);
  static_assert(erase_forwarding_table<T>);
  static_assert(!open_addressing_table<T>);
  static_assert(!batchable_table<T>);
  static_assert(!growable_source<T>);
}

TYPED_TEST(SparseBatch, ModelsClaimedConcepts) {
  assert_sparse_concepts<typename TypeParam::template table<int_entry<>>>();
  assert_sparse_concepts<typename TypeParam::template table<pair_entry<combine_min>>>();
  assert_sparse_concepts<typename TypeParam::template table<string_entry>>();
  assert_sparse_concepts<typename TypeParam::template checked<int_entry<>>>();
}

// --- batch vs scalar: set-semantics equality --------------------------------

template <typename V, typename Less>
std::vector<V> sorted(std::vector<V> v, Less less) {
  std::sort(v.begin(), v.end(), less);
  return v;
}

constexpr auto less_u64 = [](std::uint64_t a, std::uint64_t b) { return a < b; };
constexpr auto less_kv = [](const kv64& a, const kv64& b) {
  return a.k != b.k ? a.k < b.k : a.v < b.v;
};

// Inserts `input` through the forwarding batch path into one table and the
// plain per-op loop into another, then requires equal contents, equal finds
// for `queries`, equal contents again after erasing half the queries, and a
// counter that is exact at each boundary.
template <typename Table, typename Seq, typename Keys, typename Less>
void check_batch_vs_scalar(const Seq& input, const Keys& queries,
                           std::size_t capacity, Less less) {
  Table batched(capacity);
  Table scalar(capacity);
  insert_batch(batched, input);  // free fn -> member forwarding
  insert_batch_scalar(scalar, input);

  ASSERT_EQ(batched.count(), scalar.count());
  ASSERT_EQ(batched.approx_size(), batched.count());
  {
    const auto eb = sorted(batched.elements(), less);
    const auto es = sorted(scalar.elements(), less);
    ASSERT_EQ(eb.size(), es.size());
    for (std::size_t i = 0; i < eb.size(); ++i) {
      ASSERT_TRUE(bits_equal(eb[i], es[i])) << "element " << i;
    }
  }

  const auto fb = find_batch(batched, queries);
  const auto fs = find_batch_scalar(scalar, queries);
  ASSERT_EQ(fb.size(), fs.size());
  for (std::size_t i = 0; i < fb.size(); ++i) {
    ASSERT_TRUE(bits_equal(fb[i], fs[i])) << "query " << i;
  }

  Keys dels;
  for (std::size_t i = 0; i < queries.size(); i += 2) dels.push_back(queries[i]);
  erase_batch(batched, dels);  // free fn -> member forwarding
  erase_batch_scalar(scalar, dels);
  ASSERT_EQ(batched.count(), scalar.count());
  ASSERT_EQ(batched.approx_size(), batched.count());
  const auto eb = sorted(batched.elements(), less);
  const auto es = sorted(scalar.elements(), less);
  ASSERT_EQ(eb.size(), es.size());
  for (std::size_t i = 0; i < eb.size(); ++i) {
    ASSERT_TRUE(bits_equal(eb[i], es[i])) << "element " << i;
  }
}

TYPED_TEST(SparseBatch, RandomInt) {
  using Table = typename TypeParam::template table<int_entry<>>;
  const auto seq = workloads::random_int_seq(20000, 11);
  std::vector<std::uint64_t> qs(seq.begin(), seq.begin() + 4000);
  qs.push_back(1ULL << 50);  // absent
  check_batch_vs_scalar<Table>(seq, qs, 1 << 16, less_u64);
}

TYPED_TEST(SparseBatch, ExptInt) {
  using Table = typename TypeParam::template table<int_entry<>>;
  const auto seq = workloads::expt_int_seq(20000, 12);
  std::vector<std::uint64_t> qs(seq.begin(), seq.begin() + 4000);
  qs.push_back(1ULL << 50);
  check_batch_vs_scalar<Table>(seq, qs, 1 << 16, less_u64);
}

TYPED_TEST(SparseBatch, RandomPairInt) {
  using Table = typename TypeParam::template table<pair_entry<combine_min>>;
  const auto seq = workloads::random_pair_seq(16000, 13);
  std::vector<std::uint64_t> qs;
  for (std::size_t i = 0; i < 3000; ++i) qs.push_back(seq[i].k);
  check_batch_vs_scalar<Table>(seq, qs, 1 << 16, less_kv);
}

TYPED_TEST(SparseBatch, ExptPairInt) {
  using Table = typename TypeParam::template table<pair_entry<combine_add>>;
  const auto seq = workloads::expt_pair_seq(16000, 14);
  std::vector<std::uint64_t> qs;
  for (std::size_t i = 0; i < 3000; ++i) qs.push_back(seq[i].k);
  check_batch_vs_scalar<Table>(seq, qs, 1 << 16, less_kv);
}

// String keys are stored by pointer and trigram sequences repeat contents
// at distinct addresses; without a combine function the surviving *pointer*
// is arrival-order-dependent even though the surviving key contents are
// not, so the string distributions are compared by contents.
TYPED_TEST(SparseBatch, TrigramString) {
  using Table = typename TypeParam::template table<string_entry>;
  const auto words = workloads::trigram_string_seq(8000, 15);
  Table batched(1 << 15);
  Table scalar(1 << 15);
  insert_batch(batched, words.keys);
  insert_batch_scalar(scalar, words.keys);
  ASSERT_EQ(batched.count(), scalar.count());
  ASSERT_EQ(batched.approx_size(), batched.count());
  const auto by_contents = [](const char* a, const char* b) {
    return std::strcmp(a, b) < 0;
  };
  const auto eb = sorted(batched.elements(), by_contents);
  const auto es = sorted(scalar.elements(), by_contents);
  ASSERT_EQ(eb.size(), es.size());
  for (std::size_t i = 0; i < eb.size(); ++i) {
    ASSERT_EQ(std::strcmp(eb[i], es[i]), 0) << i;
  }
  std::vector<const char*> qs(words.keys.begin(), words.keys.begin() + 2000);
  const auto fb = find_batch(batched, qs);
  const auto fs = find_batch_scalar(scalar, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(std::strcmp(fb[i], fs[i]), 0) << i;
  }
  erase_batch(batched, qs);
  erase_batch_scalar(scalar, qs);
  ASSERT_EQ(batched.count(), scalar.count());
  ASSERT_EQ(batched.approx_size(), batched.count());
}

// trigramSeq-pairInt stores record pointers whose combine keeps the stored
// record on value ties, so the surviving pointer can differ run to run even
// though the surviving (key, value) cannot.
TYPED_TEST(SparseBatch, TrigramPairInt) {
  using Table = typename TypeParam::template table<string_pair_entry>;
  const auto words = workloads::trigram_pair_seq(8000, 16);
  Table batched(1 << 15);
  Table scalar(1 << 15);
  insert_batch(batched, words.entries);
  insert_batch_scalar(scalar, words.entries);
  ASSERT_EQ(batched.count(), scalar.count());
  ASSERT_EQ(batched.approx_size(), batched.count());
  const auto by_contents = [](const string_pair_entry::value_type a,
                              const string_pair_entry::value_type b) {
    const int c = std::strcmp(a->key, b->key);
    return c != 0 ? c < 0 : a->value < b->value;
  };
  const auto eb = sorted(batched.elements(), by_contents);
  const auto es = sorted(scalar.elements(), by_contents);
  ASSERT_EQ(eb.size(), es.size());
  for (std::size_t i = 0; i < eb.size(); ++i) {
    ASSERT_EQ(std::strcmp(eb[i]->key, es[i]->key), 0) << i;
    ASSERT_EQ(eb[i]->value, es[i]->value) << i;
  }
  std::vector<const char*> qs;
  for (std::size_t i = 0; i < 2000; ++i) qs.push_back(words.entries[i]->key);
  const auto fb = find_batch(batched, qs);
  const auto fs = find_batch_scalar(scalar, qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(fb[i]->value, fs[i]->value) << i;
  }
}

// --- approx_size exactness across repeated phase boundaries -----------------

TYPED_TEST(SparseBatch, ApproxSizeExactAtEveryPhaseBoundary) {
  using Table = typename TypeParam::template table<int_entry<>>;
  Table t(1 << 15);
  std::set<std::uint64_t> reference;
  for (std::uint64_t round = 0; round < 4; ++round) {
    auto ins = test::dup_keys(6000, 4000, 100 + round);
    insert_batch(t, ins);
    reference.insert(ins.begin(), ins.end());
    ASSERT_EQ(t.count(), reference.size());
    ASSERT_EQ(t.approx_size(), reference.size());
    std::vector<std::uint64_t> dels;
    std::size_t i = 0;
    for (const auto k : reference) {
      if (i++ % 3 == 0) dels.push_back(k);
    }
    erase_batch(t, dels);
    for (const auto k : dels) reference.erase(k);
    ASSERT_EQ(t.count(), reference.size());
    ASSERT_EQ(t.approx_size(), reference.size());
  }
  const auto elems = t.elements();
  const std::set<std::uint64_t> got(elems.begin(), elems.end());
  EXPECT_EQ(got, reference);
}

// --- explicit width sweep through the public block engines ------------------

TYPED_TEST(SparseBatch, BlockEnginesMatchScalarAtEveryWidth) {
  using Table = typename TypeParam::template table<int_entry<>>;
  const auto keys = test::unique_keys(3000, 21);
  std::vector<std::uint64_t> queries = keys;
  queries.push_back(1ULL << 49);  // absent
  for (const std::size_t width : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                                  std::size_t{12}, std::size_t{64}}) {
    Table t(1 << 13);
    t.insert_batch_block(keys.data(), keys.size(), width);
    ASSERT_EQ(t.count(), keys.size());
    std::vector<std::uint64_t> out(queries.size());
    t.find_batch_block(queries.data(), queries.size(), out.data(), width);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], keys[i]) << "width " << width << " query " << i;
    }
    ASSERT_TRUE(int_entry<>::is_empty(out[keys.size()]));
    t.erase_batch_block(queries.data(), queries.size(), width);
    ASSERT_EQ(t.count(), 0u);
    ASSERT_EQ(t.approx_size(), 0u);
  }
}

// --- checked_phases over whole batches --------------------------------------
// A batch opens one phase scope for its entire span; a legal
// insert->find->erase batch sequence must pass the checker silently, and an
// operation of a conflicting class started *inside* a batch scope must be
// routed to the structured violation handler.

struct violation_capture {
  static inline int calls = 0;
  static inline op_kind attempted = op_kind::insert;
  static void capture(const phase_violation& v) {
    ++calls;
    attempted = v.attempted;
  }
};

TYPED_TEST(SparseBatch, CheckedPhasesAcceptsBatchSequences) {
  using Table = typename TypeParam::template checked<int_entry<>>;
  const auto keys = test::unique_keys(2000, 31);
  Table t(1 << 13);
  insert_batch(t, keys);
  const auto found = find_batch(t, keys);
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(found[i], keys[i]);
  erase_batch(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

TYPED_TEST(SparseBatch, CheckedPhasesReportsConflictInsideBatchScope) {
  using Table = typename TypeParam::template checked<int_entry<>>;
  Table t(1 << 12);
  t.insert(7);
  violation_capture::calls = 0;
  phase_violation_handler prev =
      set_phase_violation_handler(&violation_capture::capture);
  {
    auto scope = t.batch_insert_scope();  // an insert batch is in flight...
    (void)t.find(7);                      // ...and a query starts against it
  }
  set_phase_violation_handler(prev);
  EXPECT_EQ(violation_capture::calls, 1);
  EXPECT_EQ(violation_capture::attempted, op_kind::query);
}

}  // namespace
}  // namespace phch
