// linearHash-D deletion (Theorem 2): set-difference semantics, the ordering
// invariant after concurrent deletes, history-independence of the resulting
// layout, and stress across repeated insert/delete phases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/serial_table.h"
#include "phch/parallel/scheduler.h"
#include "table_test_util.h"

namespace phch {
namespace {

using itable = deterministic_table<int_entry<>>;
using test::ordering_invariant_holds;

TEST(DeterministicDelete, RemovesOnlyTheRequestedKey) {
  itable t(64);
  t.insert(3);
  t.insert(17);
  t.insert(90);
  t.erase(17);
  EXPECT_FALSE(t.contains(17));
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(90));
  EXPECT_EQ(t.count(), 2u);
}

TEST(DeterministicDelete, EraseAbsentKeyIsNoOp) {
  itable t(64);
  t.insert(5);
  t.erase(6);
  t.erase(int_entry<>::empty() - 2);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_TRUE(t.contains(5));
}

TEST(DeterministicDelete, EraseFromEmptyTable) {
  itable t(64);
  t.erase(123);
  EXPECT_EQ(t.count(), 0u);
}

TEST(DeterministicDelete, SetDifferenceSemantics) {
  const auto keys = test::unique_keys(8000, 17);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 5000);
  itable t(1 << 14);
  test::parallel_insert(t, keys);
  test::parallel_erase(t, dels);
  std::set<std::uint64_t> expected(keys.begin(), keys.end());
  for (const auto d : dels) expected.erase(d);
  EXPECT_EQ(t.count(), expected.size());
  for (const auto k : expected) ASSERT_TRUE(t.contains(k)) << k;
  for (const auto d : dels) ASSERT_FALSE(t.contains(d)) << d;
}

TEST(DeterministicDelete, ConcurrentDuplicateDeletesOfSameKey) {
  itable t(1 << 10);
  const auto keys = test::unique_keys(200, 23);
  test::parallel_insert(t, keys);
  // Every key deleted 8 times concurrently.
  parallel_for(0, keys.size() * 8, [&](std::size_t i) { t.erase(keys[i % keys.size()]); });
  EXPECT_EQ(t.count(), 0u);
}

TEST(DeterministicDelete, OrderingInvariantAfterConcurrentDeletes) {
  const auto keys = test::unique_keys(12000, 31);
  itable t(1 << 15);
  test::parallel_insert(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 7000);
  test::parallel_erase(t, dels);
  EXPECT_TRUE(ordering_invariant_holds<int_entry<>>(t.raw_slots(), t.capacity()));
}

TEST(DeterministicDelete, LayoutMatchesSerialAfterDeletes) {
  const auto keys = test::unique_keys(10000, 37);
  const std::vector<std::uint64_t> dels(keys.begin() + 2000, keys.begin() + 9000);
  itable par(1 << 14);
  serial_table_hi<int_entry<>> ser(1 << 14);
  test::parallel_insert(par, keys);
  for (const auto k : keys) ser.insert(k);
  test::parallel_erase(par, test::shuffled(dels, 5));
  for (const auto d : dels) ser.erase(d);
  for (std::size_t s = 0; s < par.capacity(); ++s) {
    ASSERT_EQ(par.raw_slots()[s], ser.raw_slots()[s]) << "slot " << s;
  }
}

TEST(DeterministicDelete, LayoutHistoryIndependentOfWhatWasDeleted) {
  // Insert A ∪ B then delete B, versus insert A alone: identical layouts.
  const auto all = test::unique_keys(6000, 41);
  const std::vector<std::uint64_t> keep(all.begin(), all.begin() + 3000);
  const std::vector<std::uint64_t> gone(all.begin() + 3000, all.end());
  itable a(1 << 13);
  test::parallel_insert(a, all);
  test::parallel_erase(a, gone);
  itable b(1 << 13);
  test::parallel_insert(b, keep);
  for (std::size_t s = 0; s < a.capacity(); ++s) {
    ASSERT_EQ(a.raw_slots()[s], b.raw_slots()[s]) << "slot " << s;
  }
}

TEST(DeterministicDelete, DeleteResultIdenticalAcrossThreadCounts) {
  const auto keys = test::unique_keys(20000, 43);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 12000);
  std::vector<std::vector<std::uint64_t>> results;
  scheduler& sched = scheduler::get();
  const int original = sched.num_workers();
  for (const int p : {1, 3, 8}) {
    sched.set_num_workers(p);
    itable t(1 << 15);
    test::parallel_insert(t, keys);
    test::parallel_erase(t, test::shuffled(dels, static_cast<std::uint64_t>(p)));
    results.push_back(t.elements());
  }
  sched.set_num_workers(original);
  ASSERT_EQ(results[0], results[1]);
  ASSERT_EQ(results[0], results[2]);
}

TEST(DeterministicDelete, InterleavedPhasesStress) {
  // Alternate insert and delete phases, checking against a std::set after
  // every phase. Uses overlapping key ranges to force clustering.
  itable t(1 << 13);
  std::set<std::uint64_t> ref;
  std::uint64_t round_seed = 1;
  for (int round = 0; round < 12; ++round) {
    const auto ins = test::dup_keys(2000, 1500, round_seed++);
    test::parallel_insert(t, ins);
    ref.insert(ins.begin(), ins.end());
    ASSERT_EQ(t.count(), ref.size()) << "round " << round;

    const auto del = test::dup_keys(1500, 1500, round_seed++);
    test::parallel_erase(t, del);
    for (const auto d : del) ref.erase(d);
    ASSERT_EQ(t.count(), ref.size()) << "round " << round;
    ASSERT_TRUE(ordering_invariant_holds<int_entry<>>(t.raw_slots(), t.capacity()));
    auto elems = t.elements();
    std::sort(elems.begin(), elems.end());
    ASSERT_TRUE(std::equal(elems.begin(), elems.end(), ref.begin(), ref.end()));
  }
}

TEST(DeterministicDelete, PairEntriesDeleteByKey) {
  deterministic_table<pair_entry<combine_min>> t(1 << 10);
  parallel_for(0, 500, [&](std::size_t i) { t.insert(kv64{i + 1, i * 10}); });
  parallel_for(0, 250, [&](std::size_t i) { t.erase(i + 1); });
  EXPECT_EQ(t.count(), 250u);
  EXPECT_FALSE(t.contains(100));
  EXPECT_TRUE(t.contains(300));
  EXPECT_EQ(t.find(300).v, 2990u);
}

TEST(DeterministicDelete, ClusterHeavyDeletePattern) {
  // Exponential-style duplicates hammer a few clusters; delete everything.
  itable t(1 << 12);
  const auto keys = test::dup_keys(6000, 50, 71);
  test::parallel_insert(t, keys);
  test::parallel_erase(t, keys);  // duplicate deletes of every key
  EXPECT_EQ(t.count(), 0u);
  for (std::size_t s = 0; s < t.capacity(); ++s) {
    ASSERT_TRUE(int_entry<>::is_empty(t.raw_slots()[s]));
  }
}

}  // namespace
}  // namespace phch
