// Adversarial scenarios for the linear-probing tables: degenerate hash
// functions (everything in one cluster), minimal capacities, keys adjacent
// to the sentinel values, and wraparound-heavy layouts. These target the
// unwrapped-index arithmetic and the cluster-relative comparisons of the
// paper's Figure 1 pseudocode.
#include <gtest/gtest.h>

#include <set>

#include "phch/core/deterministic_table.h"
#include "phch/core/nd_linear_table.h"
#include "phch/core/serial_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

// All keys hash to slot 0: one giant cluster, maximal displacement, every
// probe comparison exercised.
struct one_home_entry : int_entry<> {
  static std::uint64_t hash(std::uint64_t) noexcept { return 0; }
};

// All keys hash to the LAST slot: every probe path wraps around the array.
struct last_home_entry : int_entry<> {
  static std::uint64_t hash(std::uint64_t) noexcept {
    return ~std::uint64_t{0};  // masked to capacity-1 by the table
  }
};

template <typename T>
class DegenerateHash : public ::testing::Test {};

using DegenerateTraits = ::testing::Types<one_home_entry, last_home_entry>;
TYPED_TEST_SUITE(DegenerateHash, DegenerateTraits);

TYPED_TEST(DegenerateHash, SingleClusterInsertFindDelete) {
  deterministic_table<TypeParam> t(256);
  for (std::uint64_t k = 1; k <= 128; ++k) t.insert(k);
  EXPECT_EQ(t.count(), 128u);
  for (std::uint64_t k = 1; k <= 128; ++k) ASSERT_TRUE(t.contains(k));
  ASSERT_FALSE(t.contains(999));
  for (std::uint64_t k = 1; k <= 128; k += 2) t.erase(k);
  EXPECT_EQ(t.count(), 64u);
  for (std::uint64_t k = 2; k <= 128; k += 2) ASSERT_TRUE(t.contains(k));
  for (std::uint64_t k = 1; k <= 128; k += 2) ASSERT_FALSE(t.contains(k));
}

TYPED_TEST(DegenerateHash, SingleClusterIsSortedByPriority) {
  // With one home slot, the ordering invariant forces a descending-priority
  // run starting at the home position.
  deterministic_table<TypeParam> t(64);
  for (std::uint64_t k = 1; k <= 20; ++k) t.insert(k);
  const std::size_t home = TypeParam::hash(1) & (t.capacity() - 1);
  for (std::size_t d = 0; d + 1 < 20; ++d) {
    const auto a = t.raw_slots()[(home + d) & (t.capacity() - 1)];
    const auto b = t.raw_slots()[(home + d + 1) & (t.capacity() - 1)];
    ASSERT_TRUE(TypeParam::priority_less(b, a)) << d;
  }
}

TYPED_TEST(DegenerateHash, ConcurrentSingleClusterMatchesSerial) {
  const auto keys = test::unique_keys(100, 3);
  deterministic_table<TypeParam> par(512);
  serial_table_hi<TypeParam> ser(512);
  test::parallel_insert(par, keys);
  for (const auto k : keys) ser.insert(k);
  for (std::size_t s = 0; s < par.capacity(); ++s) {
    ASSERT_EQ(par.raw_slots()[s], ser.raw_slots()[s]);
  }
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 60);
  test::parallel_erase(par, dels);
  for (const auto d : dels) ser.erase(d);
  for (std::size_t s = 0; s < par.capacity(); ++s) {
    ASSERT_EQ(par.raw_slots()[s], ser.raw_slots()[s]);
  }
}

TYPED_TEST(DegenerateHash, NdTableSurvivesSingleCluster) {
  nd_linear_table<TypeParam> t(256);
  const auto keys = test::unique_keys(100, 5);
  test::parallel_insert(t, keys);
  EXPECT_EQ(t.count(), keys.size());
  test::parallel_erase(t, keys);
  EXPECT_EQ(t.count(), 0u);
}

TEST(Adversarial, MinimumCapacityTable) {
  deterministic_table<int_entry<>> t(2);
  t.insert(7);
  EXPECT_TRUE(t.contains(7));
  t.erase(7);
  EXPECT_FALSE(t.contains(7));
  t.insert(9);
  EXPECT_THROW(
      {
        t.insert(10);
        t.insert(11);  // would fill the 2-slot table
      },
      table_full_error);
}

TEST(Adversarial, KeysAdjacentToSentinels) {
  // max is empty, max-1 is the hopscotch BUSY marker; max-2 must be a
  // perfectly ordinary key for the linear tables.
  const std::uint64_t k = int_entry<>::empty() - 2;
  deterministic_table<int_entry<>> t(64);
  t.insert(k);
  t.insert(1);
  EXPECT_TRUE(t.contains(k));
  t.erase(k);
  EXPECT_FALSE(t.contains(k));
  EXPECT_TRUE(t.contains(1));
}

TEST(Adversarial, DeleteEverythingFromWrappedCluster) {
  // Nearly fill a tiny table so the single cluster wraps; then delete in
  // shuffled order and confirm perfect cleanup.
  deterministic_table<last_home_entry> t(32);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; k <= 24; ++k) keys.push_back(k);
  test::parallel_insert(t, keys);
  test::parallel_erase(t, test::shuffled(keys, 9));
  for (std::size_t s = 0; s < t.capacity(); ++s) {
    ASSERT_TRUE(last_home_entry::is_empty(t.raw_slots()[s]));
  }
}

TEST(Adversarial, AlternatingHomesInterleaveClusters) {
  // Keys map to two homes half a table apart; clusters grow toward each
  // other. Tests that cluster-boundary logic doesn't leak between them.
  struct two_home_entry : int_entry<> {
    static std::uint64_t hash(std::uint64_t k) noexcept { return (k & 1) ? 32 : 0; }
  };
  deterministic_table<two_home_entry> t(64);
  for (std::uint64_t k = 1; k <= 50; ++k) t.insert(k);
  EXPECT_EQ(t.count(), 50u);
  for (std::uint64_t k = 1; k <= 50; ++k) ASSERT_TRUE(t.contains(k));
  for (std::uint64_t k = 1; k <= 50; k += 3) t.erase(k);
  for (std::uint64_t k = 1; k <= 50; ++k) {
    ASSERT_EQ(t.contains(k), k % 3 != 1) << k;
  }
}

TEST(Adversarial, EraseDuringEraseOfNeighborKeysStress) {
  // Dense cluster, concurrent deletes of interleaved subsets, repeated.
  for (int rep = 0; rep < 20; ++rep) {
    deterministic_table<one_home_entry> t(128);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= 90; ++k) keys.push_back(k);
    test::parallel_insert(t, keys);
    // Two overlapping delete sets issued concurrently (duplicates included).
    std::vector<std::uint64_t> dels;
    for (std::uint64_t k = 1; k <= 90; ++k) {
      dels.push_back(k);
      if (k % 2 == 0) dels.push_back(k);
    }
    test::parallel_erase(t, test::shuffled(dels, static_cast<std::uint64_t>(rep)));
    ASSERT_EQ(t.count(), 0u) << "rep " << rep;
  }
}

TEST(Adversarial, SerialTablesAgreeOnDegenerateHash) {
  serial_table_hi<one_home_entry> hi(128);
  serial_table_hd<one_home_entry> hd(128);
  for (std::uint64_t k = 1; k <= 60; ++k) {
    hi.insert(k);
    hd.insert(k);
  }
  for (std::uint64_t k = 1; k <= 60; k += 2) {
    hi.erase(k);
    hd.erase(k);
  }
  const auto ea = hi.elements();
  const auto eb = hd.elements();
  const std::set<std::uint64_t> a(ea.begin(), ea.end());
  const std::set<std::uint64_t> b(eb.begin(), eb.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace phch
