// linearHash-ND: correct set semantics (though history-dependent layout),
// back-shift deletion, in-place combining.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "phch/core/nd_linear_table.h"
#include "table_test_util.h"

namespace phch {
namespace {

using ndtable = nd_linear_table<int_entry<>>;

TEST(NdTable, InsertFindEraseBasics) {
  ndtable t(64);
  t.insert(10);
  t.insert(20);
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  EXPECT_FALSE(t.contains(30));
  t.erase(10);
  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
}

TEST(NdTable, SetSemanticsUnderConcurrency) {
  ndtable t(1 << 14);
  const auto keys = test::dup_keys(12000, 8000, 3);
  test::parallel_insert(t, keys);
  const std::set<std::uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(t.count(), expected.size());
  for (const auto k : expected) ASSERT_TRUE(t.contains(k));
  auto elems = t.elements();
  std::sort(elems.begin(), elems.end());
  EXPECT_TRUE(std::equal(elems.begin(), elems.end(), expected.begin(), expected.end()));
}

TEST(NdTable, BackShiftDeletionLeavesNoTombstones) {
  // After deleting everything, the table must be entirely empty slots (no
  // markers), so a full re-insert behaves like a fresh table.
  ndtable t(1 << 10);
  const auto keys = test::unique_keys(400, 9);
  test::parallel_insert(t, keys);
  test::parallel_erase(t, keys);
  for (std::size_t s = 0; s < t.capacity(); ++s) {
    ASSERT_TRUE(int_entry<>::is_empty(t.raw_slots()[s]));
  }
}

TEST(NdTable, DeleteKeepsOthersFindable) {
  ndtable t(1 << 12);
  const auto keys = test::unique_keys(3000, 13);
  test::parallel_insert(t, keys);
  const std::vector<std::uint64_t> dels(keys.begin(), keys.begin() + 1500);
  test::parallel_erase(t, dels);
  for (std::size_t i = 1500; i < keys.size(); ++i) {
    ASSERT_TRUE(t.contains(keys[i])) << keys[i];
  }
  for (std::size_t i = 0; i < 1500; ++i) ASSERT_FALSE(t.contains(keys[i]));
}

TEST(NdTable, NoProbePathHoles) {
  // Reachability invariant of linear probing with back-shift deletes: the
  // probe path from an element's home to its slot has no empty cells.
  ndtable t(1 << 12);
  const auto keys = test::unique_keys(2500, 19);
  test::parallel_insert(t, keys);
  test::parallel_erase(
      t, std::vector<std::uint64_t>(keys.begin(), keys.begin() + 1200));
  const auto* slots = t.raw_slots();
  const std::size_t mask = t.capacity() - 1;
  for (std::size_t j = 0; j < t.capacity(); ++j) {
    if (int_entry<>::is_empty(slots[j])) continue;
    const std::size_t hv = int_entry<>::hash(slots[j]) & mask;
    for (std::size_t k = hv; k != j; k = (k + 1) & mask) {
      ASSERT_FALSE(int_entry<>::is_empty(slots[k])) << "hole before " << slots[j];
    }
  }
}

TEST(NdTable, DuplicateKeysNotReplaced) {
  nd_linear_table<pair_entry<combine_min>> t(64);
  t.insert(kv64{5, 100});
  t.insert(kv64{5, 50});  // combine_min keeps 50
  EXPECT_EQ(t.find(5).v, 50u);
}

TEST(NdTable, CombineAddUsesInPlaceXadd) {
  nd_linear_table<pair_entry<combine_add>> t(1 << 10);
  parallel_for(0, 30000, [&](std::size_t i) { t.insert(kv64{1 + (i % 5), 1}); });
  std::uint64_t total = 0;
  for (std::uint64_t k = 1; k <= 5; ++k) total += t.find(k).v;
  EXPECT_EQ(total, 30000u);
}

TEST(NdTable, StressInsertDeletePhases) {
  ndtable t(1 << 13);
  std::set<std::uint64_t> ref;
  for (int round = 0; round < 10; ++round) {
    const auto ins = test::dup_keys(1500, 1000, 100 + round);
    test::parallel_insert(t, ins);
    ref.insert(ins.begin(), ins.end());
    const auto del = test::dup_keys(1200, 1000, 200 + round);
    test::parallel_erase(t, del);
    for (const auto d : del) ref.erase(d);
    ASSERT_EQ(t.count(), ref.size()) << round;
    auto elems = t.elements();
    std::sort(elems.begin(), elems.end());
    ASSERT_TRUE(std::equal(elems.begin(), elems.end(), ref.begin(), ref.end()));
  }
}

TEST(NdTable, ThrowsWhenFull) {
  ndtable t(16);
  EXPECT_THROW(
      {
        for (std::uint64_t k = 1; k <= 64; ++k) t.insert(k);
      },
      table_full_error);
}

}  // namespace
}  // namespace phch
