// Shared helpers for the hash table test suites.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/table_concepts.h"
#include "phch/parallel/parallel_for.h"
#include "phch/utils/rand.h"

namespace phch::test {

// Verifies the paper's ordering invariant (Definition 2) on a raw slot
// array: for every occupied slot j holding v, every slot on the probe path
// from home(v) to j holds a key of priority >= v.
template <typename Traits>
bool ordering_invariant_holds(const typename Traits::value_type* slots,
                              std::size_t capacity) {
  const std::size_t mask = capacity - 1;
  for (std::size_t j = 0; j < capacity; ++j) {
    const auto v = slots[j];
    if (Traits::is_empty(v)) continue;
    const std::size_t hv = Traits::hash(Traits::key(v)) & mask;
    for (std::size_t k = hv; k != j; k = (k + 1) & mask) {
      const auto c = slots[k];
      if (Traits::is_empty(c)) return false;  // a hole inside the probe path
      if (Traits::priority_less(Traits::key(c), Traits::key(v))) return false;
    }
  }
  return true;
}

// Distinct keys in [1, limit), deterministic.
inline std::vector<std::uint64_t> unique_keys(std::size_t n, std::uint64_t seed = 1) {
  std::set<std::uint64_t> s;
  std::uint64_t i = 0;
  while (s.size() < n) s.insert(1 + phch::hash64(seed * 1000003 + i++) % (8 * n + 16));
  return {s.begin(), s.end()};
}

// Keys with duplicates, deterministic.
inline std::vector<std::uint64_t> dup_keys(std::size_t n, std::size_t distinct,
                                           std::uint64_t seed = 1) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 1 + phch::hash64(seed ^ i) % (distinct ? distinct : 1);
  return v;
}

// Deterministic permutation.
template <typename T>
std::vector<T> shuffled(std::vector<T> v, std::uint64_t seed) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[phch::hash64(seed ^ i) % i]);
  }
  return v;
}

// Inserts keys into the table from a parallel loop (one insert phase).
template <phch::phase_table Table, typename Seq>
void parallel_insert(Table& t, const Seq& keys) {
  phch::parallel_for(0, keys.size(), [&](std::size_t i) { t.insert(keys[i]); });
}

// One erase phase.
template <phch::deletable_table Table, typename Seq>
void parallel_erase(Table& t, const Seq& keys) {
  phch::parallel_for(0, keys.size(), [&](std::size_t i) { t.erase(keys[i]); });
}

}  // namespace phch::test
