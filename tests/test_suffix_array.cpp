// DC3 suffix array and Kasai LCP against brute-force references.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "phch/strings/suffix_array.h"
#include "phch/workloads/trigram.h"
#include "phch/utils/rand.h"

namespace phch::strings {
namespace {

std::vector<std::uint32_t> naive_sa(const std::string& s) {
  std::vector<std::uint32_t> sa(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) sa[i] = static_cast<std::uint32_t>(i);
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return s.compare(a, std::string::npos, s, b, std::string::npos) < 0;
  });
  return sa;
}

std::vector<std::uint32_t> naive_lcp(const std::string& s,
                                     const std::vector<std::uint32_t>& sa) {
  std::vector<std::uint32_t> lcp(s.size(), 0);
  for (std::size_t i = 1; i < sa.size(); ++i) {
    std::uint32_t h = 0;
    while (sa[i - 1] + h < s.size() && sa[i] + h < s.size() &&
           s[sa[i - 1] + h] == s[sa[i] + h])
      ++h;
    lcp[i] = h;
  }
  return lcp;
}

TEST(SuffixArray, ClassicExamples) {
  EXPECT_EQ(suffix_array("banana"), naive_sa("banana"));
  EXPECT_EQ(suffix_array("mississippi"), naive_sa("mississippi"));
  EXPECT_EQ(suffix_array("abracadabra"), naive_sa("abracadabra"));
}

TEST(SuffixArray, EdgeCases) {
  EXPECT_TRUE(suffix_array("").empty());
  EXPECT_EQ(suffix_array("a"), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(suffix_array("aa"), naive_sa("aa"));
  EXPECT_EQ(suffix_array("ab"), naive_sa("ab"));
  EXPECT_EQ(suffix_array("ba"), naive_sa("ba"));
  EXPECT_EQ(suffix_array("aaa"), naive_sa("aaa"));
}

TEST(SuffixArray, AllEqualCharacters) {
  const std::string s(500, 'x');
  EXPECT_EQ(suffix_array(s), naive_sa(s));
}

TEST(SuffixArray, PeriodicStrings) {
  std::string s;
  for (int i = 0; i < 100; ++i) s += "abcab";
  EXPECT_EQ(suffix_array(s), naive_sa(s));
}

TEST(SuffixArray, BinaryAlphabetRandom) {
  std::string s;
  for (std::size_t i = 0; i < 2000; ++i) s += (hash64(i) & 1) ? 'a' : 'b';
  EXPECT_EQ(suffix_array(s), naive_sa(s));
}

TEST(SuffixArray, FullByteAlphabetIncludingNul) {
  std::string s;
  for (std::size_t i = 0; i < 1000; ++i)
    s += static_cast<char>(hash64(i) % 256);
  EXPECT_EQ(suffix_array(s), naive_sa(s));
}

TEST(SuffixArray, EnglishLikeText) {
  const auto s = workloads::trigram_text(5000, 3);
  const auto sa = suffix_array(s);
  // Verify the permutation property and sortedness by sampling.
  std::vector<bool> seen(s.size(), false);
  for (const auto i : sa) {
    ASSERT_LT(i, s.size());
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (std::size_t i = 1; i < sa.size(); i += 17) {
    ASSERT_LT(s.compare(sa[i - 1], std::string::npos, s, sa[i], std::string::npos), 0);
  }
}

TEST(LcpArray, MatchesNaive) {
  for (const std::string& s :
       {std::string("banana"), std::string("mississippi"),
        workloads::trigram_text(3000, 5), std::string(200, 'z')}) {
    const auto sa = suffix_array(s);
    EXPECT_EQ(lcp_array(s, sa), naive_lcp(s, sa)) << s.substr(0, 20);
  }
}

TEST(LcpArray, FirstEntryIsZero) {
  const auto s = workloads::trigram_text(1000, 7);
  const auto sa = suffix_array(s);
  EXPECT_EQ(lcp_array(s, sa)[0], 0u);
}

}  // namespace
}  // namespace phch::strings
