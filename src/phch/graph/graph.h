// Graph substrate: compressed-sparse-row (CSR) undirected graphs and the
// edge-list representation used by the graph applications (§5/§6 of the
// paper: edge contraction, BFS, spanning forest).
#pragma once

#include <cstdint>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/sort.h"

namespace phch::graph {

using vertex_id = std::uint32_t;

struct edge {
  vertex_id u;
  vertex_id v;
  friend bool operator==(const edge&, const edge&) = default;
};

struct weighted_edge {
  vertex_id u;
  vertex_id v;
  std::uint32_t w;
};

// Symmetric CSR graph. `neighbors[offsets[v] .. offsets[v+1])` are v's
// neighbors; every undirected edge appears in both endpoint lists.
class csr_graph {
 public:
  csr_graph() = default;

  // Builds a symmetric CSR graph from a directed edge list (each input edge
  // contributes both directions). Self-loops and parallel edges are
  // removed, so adjacency lists are sorted duplicate-free.
  static csr_graph from_edges(std::size_t n, const std::vector<edge>& edges) {
    std::vector<edge> sym(edges.size() * 2);
    parallel_for(0, edges.size(), [&](std::size_t i) {
      sym[2 * i] = edges[i];
      sym[2 * i + 1] = edge{edges[i].v, edges[i].u};
    });
    sym = filter(sym, [](const edge& e) { return e.u != e.v; });
    radix_sort(sym, 64, [](const edge& e) {
      return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
    });
    {
      const std::vector<edge>& s = sym;
      sym = pack(
          s.size(), [&](std::size_t i) { return i == 0 || !(s[i] == s[i - 1]); },
          [&](std::size_t i) { return s[i]; });
    }

    csr_graph g;
    g.offsets_.assign(n + 1, 0);
    std::vector<std::size_t> degree(n, 0);
    parallel_for(0, sym.size(), [&](std::size_t i) {
      if (i == 0 || sym[i].u != sym[i - 1].u) {
        std::size_t j = i;
        while (j < sym.size() && sym[j].u == sym[i].u) ++j;
        degree[sym[i].u] = j - i;
      }
    });
    std::vector<std::size_t> off(degree.begin(), degree.end());
    scan_add_inplace(off);
    parallel_for(0, n, [&](std::size_t v) {
      g.offsets_[v] = static_cast<std::uint64_t>(off[v]);
    });
    g.offsets_[n] = sym.size();
    g.neighbors_.resize(sym.size());
    parallel_for(0, sym.size(),
                 [&](std::size_t i) { g.neighbors_[i] = sym[i].v; });
    g.num_vertices_ = n;
    g.num_edges_ = sym.size() / 2;
    return g;
  }

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return num_edges_; }

  std::size_t degree(vertex_id v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }
  const vertex_id* neighbors(vertex_id v) const noexcept {
    return &neighbors_[offsets_[v]];
  }

  template <typename F>
  void for_each_neighbor(vertex_id v, F&& f) const {
    for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) f(neighbors_[i]);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<vertex_id> neighbors_;
  std::size_t num_vertices_ = 0;
  std::size_t num_edges_ = 0;
};

}  // namespace phch::graph
