// Union-find over vertex ids, used by spanning forest and edge contraction.
//
// The applications use it phase-concurrently, mirroring the hash table's
// discipline: a *find phase* (concurrent finds with path compression — races
// only ever shortcut pointers toward the root, so they are benign) and a
// *link phase* where deterministic reservations guarantee each root is
// re-parented by at most one winner and links always point from the larger
// root id to the smaller, keeping the forest acyclic.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "phch/parallel/parallel_for.h"

namespace phch::graph {

class union_find {
 public:
  explicit union_find(std::size_t n) : parent_(n) {
    parallel_for(0, n, [&](std::size_t i) {
      parent_[i].store(static_cast<std::uint32_t>(i), std::memory_order_relaxed);
    });
  }

  // Root of v's component, with path compression. Safe to run concurrently
  // with other finds: compression writes only replace a parent pointer with
  // one of its ancestors.
  std::uint32_t find(std::uint32_t v) noexcept {
    std::uint32_t root = v;
    while (true) {
      const std::uint32_t p = parent_[root].load(std::memory_order_relaxed);
      if (p == root) break;
      root = p;
    }
    while (v != root) {
      const std::uint32_t p = parent_[v].load(std::memory_order_relaxed);
      parent_[v].store(root, std::memory_order_relaxed);
      v = p;
    }
    return root;
  }

  // Re-parents root `child` under root `new_parent`. Caller must guarantee
  // (via reservations) that each child root is linked by exactly one thread
  // per phase and that links cannot form a cycle.
  void link(std::uint32_t child, std::uint32_t new_parent) noexcept {
    parent_[child].store(new_parent, std::memory_order_release);
  }

  std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::atomic<std::uint32_t>> parent_;
};

}  // namespace phch::graph
