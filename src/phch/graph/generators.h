// Graph generators matching the paper's inputs (§6):
//   3D-grid   vertices on a d×d×d torus, 6 neighbors each (2 per dimension)
//   random    every vertex draws k random neighbors (paper uses k = 5)
//   rMat      recursive-matrix power-law graph (Chakrabarti et al. 2004)
//             with the PBBS parameters a=.5, b=.1, c=.1, d=.3
//
// All generators are deterministic functions of their parameters and seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "phch/graph/graph.h"
#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

namespace phch::graph {

// d*d*d-vertex torus grid: vertex (x,y,z) connects to its successor in each
// dimension (symmetrization adds the predecessors, giving degree 6).
inline std::vector<edge> grid3d_edges(std::size_t d) {
  const std::size_t n = d * d * d;
  std::vector<edge> edges(3 * n);
  parallel_for(0, n, [&](std::size_t v) {
    const std::size_t x = v % d;
    const std::size_t y = (v / d) % d;
    const std::size_t z = v / (d * d);
    auto id = [&](std::size_t a, std::size_t b, std::size_t c) {
      return static_cast<vertex_id>(a + b * d + c * d * d);
    };
    edges[3 * v + 0] = edge{static_cast<vertex_id>(v), id((x + 1) % d, y, z)};
    edges[3 * v + 1] = edge{static_cast<vertex_id>(v), id(x, (y + 1) % d, z)};
    edges[3 * v + 2] = edge{static_cast<vertex_id>(v), id(x, y, (z + 1) % d)};
  });
  return edges;
}

// Every vertex draws k uniformly random neighbors.
inline std::vector<edge> random_k_edges(std::size_t n, std::size_t k = 5,
                                        std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0x9a4fULL));
  std::vector<edge> edges(n * k);
  parallel_for(0, n * k, [&](std::size_t i) {
    edges[i] = edge{static_cast<vertex_id>(i / k),
                    static_cast<vertex_id>(r.ith_rand(i, n))};
  });
  return edges;
}

// rMat power-law graph over 2^lg_n vertices with m edges.
inline std::vector<edge> rmat_edges(std::size_t lg_n, std::size_t m,
                                    std::uint64_t seed = 0, double a = 0.5,
                                    double b = 0.1, double c = 0.1) {
  const rng r(hash64(seed ^ 0x47a3ULL));
  std::vector<edge> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    const rng re = r.fork(i);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::size_t bit = 0; bit < lg_n; ++bit) {
      const double p = re.ith_double(bit);
      if (p < a) {
        // upper-left quadrant: both bits 0
      } else if (p < a + b) {
        v |= std::uint64_t{1} << bit;
      } else if (p < a + b + c) {
        u |= std::uint64_t{1} << bit;
      } else {
        u |= std::uint64_t{1} << bit;
        v |= std::uint64_t{1} << bit;
      }
    }
    edges[i] = edge{static_cast<vertex_id>(u), static_cast<vertex_id>(v)};
  });
  return edges;
}

// Uniformly random edge weights in [1, max_w] for a given edge list.
inline std::vector<weighted_edge> with_random_weights(const std::vector<edge>& edges,
                                                      std::uint32_t max_w = 1 << 20,
                                                      std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0x3e1caULL));
  return tabulate(edges.size(), [&](std::size_t i) {
    return weighted_edge{edges[i].u, edges[i].v,
                         static_cast<std::uint32_t>(1 + r.ith_rand(i, max_w))};
  });
}

}  // namespace phch::graph
