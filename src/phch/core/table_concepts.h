// Formal table concepts: the interfaces the wrappers, batch engine, stats,
// applications, and tests program against, replacing per-consumer duck
// typing. The layering is
//
//   probe_engine (policy-parameterized probing core)
//     └─ policies: prioritized/arrival order × backshift/tombstone delete
//          └─ wrappers: growable_table, auto_phased_table
//               └─ batch engine (core/batch_ops.h), table_stats
//                    └─ apps / benches / tests
//
// and each upward edge is one of the concepts below. A new table joins the
// ecosystem by modeling the concepts it can support: `phase_table` makes the
// apps and test harness work, `open_addressing_table` adds stats and layout
// checks, `batchable_table` turns on software-pipelined batching, and
// `growable_source` lets the resizing wrapper drive it.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "phch/core/phase_runtime.h"
#include "phch/core/table_common.h"

namespace phch {

// The baseline phase-concurrent table contract: typed entries plus the
// paper's operation set { insert } / { find, contains, elements } (erase is
// split out into deletable_table because a delete phase is optional —
// e.g. serial or frozen reference tables need not support one).
// Callers owe the phase discipline of Definition 1.
template <typename T>
concept phase_table =
    requires {
      typename T::traits;
      typename T::value_type;
      typename T::key_type;
    } &&
    requires(T& t, const T& ct, typename T::value_type v, typename T::key_type k) {
      t.insert(v);
      { ct.find(k) } -> std::convertible_to<typename T::value_type>;
      { ct.contains(k) } -> std::convertible_to<bool>;
      { ct.capacity() } -> std::convertible_to<std::size_t>;
      { ct.count() } -> std::convertible_to<std::size_t>;
      { ct.elements() } -> std::convertible_to<std::vector<typename T::value_type>>;
    };

// A phase table whose delete phase exists.
template <typename T>
concept deletable_table = phase_table<T> && requires(T& t, typename T::key_type k) {
  t.erase(k);
};

// A table that exposes its phase_runtime (core/phase_runtime.h): the single
// per-table phase-state word (current operation class + monotone epoch).
// Every first-party table models this via its phase policy; wrappers like
// auto_phased_table use it to advance the epoch at room transitions, and
// tools validate the exactly-once transition ledger through it.
template <typename T>
concept phase_epoch_table = requires(const T& ct) {
  { ct.phase_rt() } -> std::same_as<phase_runtime&>;
};

// A phase table backed by one flat slot array — what table_stats, the
// layout-equality tests, and the room-synchronized wrapper scan.
template <typename T>
concept open_addressing_table = phase_table<T> && requires(const T& ct) {
  { ct.raw_slots() } -> std::convertible_to<const typename T::value_type*>;
};

// A table the software-pipelined batch engine can drive: raw slot access
// for probing, the three policy classifiers, scalar continuations that
// resume mid-probe, per-batch phase scopes, and the ordered/bounded probe
// tags. probe_engine models this for every policy combination, so all
// open-addressing linear tables batch through one engine.
template <typename T>
concept batchable_table =
    open_addressing_table<T> &&
    requires(T& t, const T& ct, typename T::value_type v, typename T::key_type k,
             std::size_t i) {
      { T::ordered_probes } -> std::convertible_to<bool>;
      { T::bounded_probes } -> std::convertible_to<bool>;
      { T::classify_find(v, k) } -> std::same_as<probe_verdict>;
      { T::insert_scan_stop(v, v) } -> std::convertible_to<bool>;
      { T::erase_scan_stop(v, k) } -> std::convertible_to<bool>;
      t.insert_from(v, i, i);
      t.erase_from(k, i);
      ct.batch_query_scope();
      t.batch_insert_scope();
      t.batch_erase_scope();
    };

// A batchable table that also carries the 1-byte fingerprint sidecar
// (core/tag_array.h): raw tag access lets the batch engine scan probe
// groups with core/simd_scan.h instead of loading full slots.
template <typename T>
concept tagged_probe_table =
    batchable_table<T> &&
    requires(const T& ct, typename T::value_type v) {
      { ct.raw_tags() } -> std::convertible_to<const std::uint8_t*>;
      { T::is_present(v) } -> std::convertible_to<bool>;
    };

// A table that implements its own whole-batch operations (the growable
// wrapper, which must interleave growth checks with the batch, and the
// sparse family — chained/cuckoo/hopscotch — whose prefetch-structured
// batch walks do not fit the flat-slot-array pipelined engine). The free
// batch functions forward to these members before considering the pipelined
// or scalar engines.
template <typename T>
concept batch_forwarding_table =
    requires(T& t, const T& ct, const std::vector<typename T::value_type>& vs,
             const std::vector<typename T::key_type>& ks) {
      t.insert_batch(vs);
      { ct.find_batch(ks) } -> std::convertible_to<std::vector<typename T::value_type>>;
    };

// The erase-side counterpart of batch_forwarding_table: a table with its
// own whole-batch erase. Split out because erase support is itself optional
// (see deletable_table), so a table may forward insert/find batches while
// having no erase at all.
template <typename T>
concept erase_forwarding_table =
    requires(T& t, const std::vector<typename T::key_type>& ks) {
      t.erase_batch(ks);
    };

// What growable_table requires of the table it grows: deletable, with the
// probe-length-bounded insert for the overfull trigger and the striped
// occupancy counter for the load trigger.
template <typename T>
concept growable_source =
    deletable_table<T> && open_addressing_table<T> &&
    requires(T& t, const T& ct, typename T::value_type v, std::size_t n) {
      typename T::insert_result;
      { t.insert_bounded(v, n) } -> std::same_as<typename T::insert_result>;
      { ct.approx_size() } -> std::convertible_to<std::size_t>;
    };

}  // namespace phch
