// chainedHash / chainedHash-CR: a concurrent closed-addressing (separate
// chaining) table in the style of Lea's java.util.concurrent
// ConcurrentHashMap, the paper's closed-addressing baseline.
//
//  - Buckets are singly-linked lists; a striped spinlock array guards
//    updates (finds are lock-free chain walks, valid in a find-only phase).
//  - chainedHash locks at the *start* of every insert/erase.
//  - chainedHash-CR (ContentionReducing = true) is the paper's optimization:
//    insert locks only after an initial lock-free find misses, and erase
//    locks only after an initial find hits — which collapses the lock
//    traffic on inputs with many duplicate keys (trigram/exponential).
//  - Node storage is a chunked bump-pointer pool plus a tagged lock-free
//    free list (deleted nodes are recycled); this is the "memory management
//    to allocate and de-allocate the cells" cost the paper attributes to
//    closed addressing.
//  - elements() follows the paper: count each bucket's chain, prefix-sum
//    the counts, then copy chains into the output array bucket-parallel.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"

namespace phch {

template <typename Traits = int_entry<>, bool ContentionReducing = false,
          typename Phase = unchecked_phases>
class chained_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit chained_table(std::size_t min_capacity)
      : num_buckets_(round_up_pow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(num_buckets_ - 1),
        buckets_(num_buckets_, nullptr),
        locks_(std::min<std::size_t>(num_buckets_, kMaxLocks)),
        lock_mask_(locks_.size() - 1),
        pool_(num_buckets_) {}

  std::size_t capacity() const noexcept { return num_buckets_; }

  std::size_t count() const {
    return reduce(std::size_t{0}, num_buckets_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t b) {
                    std::size_t c = 0;
                    for (const node* n = load_head(b); n; n = n->next) ++c;
                    return c;
                  });
  }

  void insert(value_type v) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    const key_type k = Traits::key(v);
    const std::size_t b = bucket(k);
    if constexpr (ContentionReducing) {
      // Lock-free pre-pass: on a duplicate hit, combine (or drop) without
      // ever touching the lock.
      if (node* hit = find_node(b, k)) {
        combine_node(hit, v);
        return;
      }
    }
    std::lock_guard<spinlock> lg(locks_[b & lock_mask_]);
    if (node* hit = find_node(b, k)) {  // re-check under the lock
      combine_node(hit, v);
      return;
    }
    node* n = pool_.allocate();
    n->v = v;
    n->next = buckets_[b];
    atomic_store(&buckets_[b], n);
  }

  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::size_t b = bucket(kq);
    if constexpr (ContentionReducing) {
      if (find_node(b, kq) == nullptr) return;  // miss: no lock needed
    }
    std::lock_guard<spinlock> lg(locks_[b & lock_mask_]);
    node* prev = nullptr;
    for (node* n = buckets_[b]; n; prev = n, n = n->next) {
      if (Traits::key_equal(Traits::key(n->v), kq)) {
        if (prev)
          atomic_store(&prev->next, n->next);
        else
          atomic_store(&buckets_[b], n->next);
        pool_.release(n);
        return;
      }
    }
  }

  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    const node* n = find_node(bucket(kq), kq);
    return n ? n->v : Traits::empty();
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  // Paper's scheme: per-bucket chain counts, a prefix sum for offsets, then
  // parallel per-bucket copies.
  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    std::vector<std::size_t> offsets(num_buckets_);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      std::size_t c = 0;
      for (const node* n = load_head(b); n; n = n->next) ++c;
      offsets[b] = c;
    });
    const std::size_t total = scan_add_inplace(offsets);
    std::vector<value_type> out(total);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      std::size_t o = offsets[b];
      for (const node* n = load_head(b); n; n = n->next) out[o++] = n->v;
    });
    return out;
  }

  template <typename F>
  void for_each(F&& f) const {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      for (const node* n = load_head(b); n; n = n->next) f(n->v);
    });
  }

 private:
  static constexpr std::size_t kMaxLocks = 1 << 16;

  struct node {
    value_type v;
    node* next;
  };

  // Chunked bump allocator with a tagged (ABA-safe) lock-free free list.
  class node_pool {
   public:
    explicit node_pool(std::size_t hint) : chunk_size_(std::max<std::size_t>(hint / 4, 1024)) {}

    node* allocate() {
      // Recycled node?
      tagged head = free_head_.load();
      while (head.ptr != nullptr) {
        const tagged next{head.ptr->next, head.tag + 1};
        if (free_head_.compare_exchange_weak(head, next)) return head.ptr;
      }
      // Bump-allocate from the current chunk.
      for (;;) {
        chunk* c = current_.load(std::memory_order_acquire);
        if (c != nullptr) {
          const std::size_t i = c->used.fetch_add(1, std::memory_order_relaxed);
          if (i < chunk_size_) return &c->nodes[i];
        }
        std::lock_guard<spinlock> lg(grow_lock_);
        chunk* cur = current_.load(std::memory_order_acquire);
        if (cur == c) {  // nobody grew it while we waited
          auto fresh = std::make_unique<chunk>(chunk_size_);
          fresh->prev = std::move(owned_);
          chunk* raw = fresh.get();
          owned_ = std::move(fresh);
          current_.store(raw, std::memory_order_release);
        }
      }
    }

    void release(node* n) {
      tagged head = free_head_.load();
      for (;;) {
        n->next = head.ptr;
        const tagged next{n, head.tag + 1};
        if (free_head_.compare_exchange_weak(head, next)) return;
      }
    }

   private:
    struct chunk {
      explicit chunk(std::size_t n) : nodes(n) {}
      std::vector<node> nodes;
      std::atomic<std::size_t> used{0};
      std::unique_ptr<chunk> prev;
    };
    struct alignas(16) tagged {
      node* ptr = nullptr;
      std::uint64_t tag = 0;
    };

    std::size_t chunk_size_;
    std::atomic<tagged> free_head_{};
    std::atomic<chunk*> current_{nullptr};
    std::unique_ptr<chunk> owned_;
    spinlock grow_lock_;
  };

  std::size_t bucket(key_type k) const noexcept { return Traits::hash(k) & mask_; }

  const node* load_head(std::size_t b) const noexcept { return atomic_load(&buckets_[b]); }

  node* find_node(std::size_t b, key_type kq) const noexcept {
    for (node* n = atomic_load(&buckets_[b]); n != nullptr;
         n = atomic_load(&n->next)) {
      if (Traits::key_equal(Traits::key(n->v), kq)) return n;
    }
    return nullptr;
  }

  static void combine_node(node* n, value_type incoming) noexcept {
    if constexpr (Traits::has_combine) {
      if constexpr (requires { Traits::combine_inplace(&n->v, incoming); }) {
        Traits::combine_inplace(&n->v, incoming);
      } else {
        value_type cur = atomic_load(&n->v);
        for (;;) {
          const value_type merged = Traits::combine(cur, incoming);
          if (bits_equal(merged, cur) || cas(&n->v, cur, merged)) return;
          cur = atomic_load(&n->v);
        }
      }
    }
    (void)n;
    (void)incoming;
  }

  std::size_t num_buckets_;
  std::size_t mask_;
  std::vector<node*> buckets_;
  mutable std::vector<spinlock> locks_;
  std::size_t lock_mask_;
  mutable node_pool pool_;
  mutable Phase phase_;
};

}  // namespace phch
