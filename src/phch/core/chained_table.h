// chainedHash / chainedHash-CR: a concurrent closed-addressing (separate
// chaining) table in the style of Lea's java.util.concurrent
// ConcurrentHashMap, the paper's closed-addressing baseline.
//
//  - Buckets are singly-linked lists; a striped spinlock array guards
//    updates (finds are lock-free chain walks, valid in a find-only phase).
//  - chainedHash locks at the *start* of every insert/erase.
//  - chainedHash-CR (ContentionReducing = true) is the paper's optimization:
//    insert locks only after an initial lock-free find misses, and erase
//    locks only after an initial find hits — which collapses the lock
//    traffic on inputs with many duplicate keys (trigram/exponential).
//  - Node storage is a chunked bump-pointer pool plus a tagged lock-free
//    free list (deleted nodes are recycled); this is the "memory management
//    to allocate and de-allocate the cells" cost the paper attributes to
//    closed addressing.
//  - elements() follows the paper: count each bucket's chain, prefix-sum
//    the counts, then copy chains into the output array bucket-parallel.
//
// The table models phase_table / deletable_table and forwards its own batch
// members (batch_forwarding_table / erase_forwarding_table). A chained
// lookup is a pointer chase — bucket head, then node after node — so the
// batched find is a true AMAC walk: a ring of in-flight lookups each
// prefetches its next node (starting from the bucket-head line) and yields
// the lane, advancing one link per rotation on warm lines. Mutating batches
// prefetch the bucket head and lock line ahead of the scalar handoff.
// Occupancy is tracked by a striped counter (approx_size(), exact at phase
// boundaries); count() remains the O(buckets + nodes) verification scan.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"
#include "phch/parallel/striped_counter.h"
#include "phch/utils/phase_caps.h"

namespace phch {

template <typename Traits = int_entry<>, bool ContentionReducing = false,
          typename Phase = unchecked_phases>
class chained_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit chained_table(std::size_t min_capacity)
      : num_buckets_(round_up_pow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(num_buckets_ - 1),
        buckets_(num_buckets_, nullptr),
        locks_(std::min<std::size_t>(num_buckets_, kMaxLocks)),
        lock_mask_(locks_.size() - 1),
        pool_(num_buckets_) {}

  std::size_t capacity() const noexcept { return num_buckets_; }

  // Striped occupancy: exact at a phase boundary, approximate mid-phase.
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }

  // O(buckets + nodes) reference count, kept as the verification path for
  // approx_size().
  std::size_t count() const {
    return reduce(std::size_t{0}, num_buckets_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t b) {
                    std::size_t c = 0;
                    for (const node* n = load_head(b); n; n = n->next) ++c;
                    return c;
                  });
  }

  void insert(value_type v) PHCH_REQUIRES_PHASE(insert) {
    typename Phase::scope guard(phase_, op_kind::insert);
    insert_impl(v);
  }

  void erase(key_type kq) PHCH_REQUIRES_PHASE(erase) {
    typename Phase::scope guard(phase_, op_kind::erase);
    erase_impl(kq);
  }

  value_type find(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return find_impl(kq);
  }

  bool contains(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    return !Traits::is_empty(find(kq));
  }

  // Paper's scheme: per-bucket chain counts, a prefix sum for offsets, then
  // parallel per-bucket copies.
  std::vector<value_type> elements() const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    std::vector<std::size_t> offsets(num_buckets_);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      std::size_t c = 0;
      for (const node* n = load_head(b); n; n = n->next) ++c;
      offsets[b] = c;
    });
    const std::size_t total = scan_add_inplace(offsets);
    std::vector<value_type> out(total);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      std::size_t o = offsets[b];
      for (const node* n = load_head(b); n; n = n->next) out[o++] = n->v;
    });
    return out;
  }

  template <typename F>
  void for_each(F&& f) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, num_buckets_, [&](std::size_t b) {
      for (const node* n = load_head(b); n; n = n->next) f(n->v);
    });
  }

  // --- whole-batch members (batch_forwarding_table) ------------------------
  // One phase scope spans the batch; blocked_for supplies the cross-block
  // parallelism and the per-block engines below supply the memory-level
  // parallelism.

  template <typename V>
  void insert_batch(const std::vector<V>& values) PHCH_REQUIRES_PHASE(insert) {
    [[maybe_unused]] auto scope = batch_insert_scope();
    const std::size_t width = batch_width();
    blocked_for(0, values.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  insert_batch_block(values.data() + s, e - s, width);
                });
  }

  template <typename K>
  std::vector<value_type> find_batch(const std::vector<K>& keys) const
      PHCH_REQUIRES_PHASE(query) {
    std::vector<value_type> out(keys.size());
    [[maybe_unused]] auto scope = batch_query_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  find_batch_block(keys.data() + s, e - s, out.data() + s, width);
                });
    return out;
  }

  template <typename K>
  void erase_batch(const std::vector<K>& keys) PHCH_REQUIRES_PHASE(erase) {
    [[maybe_unused]] auto scope = batch_erase_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  erase_batch_block(keys.data() + s, e - s, width);
                });
  }

  // --- single-thread block engines -----------------------------------------
  // Serial within a block; public so benches can drive them directly with
  // explicit widths.

  // AMAC chain walk: each in-flight lookup is a tiny state machine — load
  // the bucket head (line prefetched at issue), then follow next pointers,
  // prefetching each node one rotation before inspecting it. Every miss of
  // the pointer chase overlaps with up to width-1 others.
  template <typename K>
  void find_batch_block(const K* keys, std::size_t n, value_type* out,
                        std::size_t width) const {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t idx;
      std::size_t b;
      const node* cur;  // nullptr while waiting on the bucket-head line
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_loads = 0, t_rot = 0, t_hits = 0, t_links = 0;

    auto start = [&](op& o) {
      const std::size_t idx = issued++;
      const key_type kq = keys[idx];
      o = op{idx, bucket(kq), nullptr, kq};
      detail::prefetch_ro(&buckets_[o.b]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      bool done = false;
      value_type result{};
      if (o.cur == nullptr) {
        const node* h = load_head(o.b);
        ++t_loads;
        if (h == nullptr) {
          done = true;
          result = Traits::empty();
        } else {
          o.cur = h;
          detail::prefetch_ro(h);
        }
      } else {
        ++t_loads;
        ++t_links;
        if (Traits::key_equal(Traits::key(o.cur->v), o.kq)) {
          done = true;
          result = o.cur->v;
          ++t_hits;
        } else {
          const node* nx = atomic_load(&o.cur->next);
          if (nx == nullptr) {
            done = true;
            result = Traits::empty();
          } else {
            o.cur = nx;
            detail::prefetch_ro(nx);
          }
        }
      }
      if (done) {
        out[o.idx] = result;
        if (issued < n) {
          start(o);
        } else {
          ring[r] = ring[--live];
          if (r == live) r = 0;
          continue;
        }
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::find_ops, n);
    obs::count(obs::counter::find_hits, t_hits);
    obs::count(obs::counter::chained_chain_links, t_links);
    obs::count(obs::counter::batch_probe_slots, t_loads);
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename V>
  void insert_batch_block(const V* values, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t b;
      value_type v;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const value_type v = values[issued++];
      o = op{bucket(Traits::key(v)), v};
      detail::prefetch_rw(&buckets_[o.b]);
      detail::prefetch_rw(&locks_[o.b & lock_mask_]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      insert_impl(o.v);  // scalar handoff: head and lock lines are warm
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename K>
  void erase_batch_block(const K* keys, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t b;
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const key_type kq = keys[issued++];
      o = op{bucket(kq), kq};
      detail::prefetch_rw(&buckets_[o.b]);
      detail::prefetch_rw(&locks_[o.b & lock_mask_]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      erase_impl(o.kq);
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  // Batch-engine phase hooks: one scope spanning a whole batch, so
  // checked_phases observes batched traffic it would otherwise miss.
  // phase_rt() is the table's single phase-state word (phase epoch +
  // current class, core/phase_runtime.h), shared by scalar and batch scopes.
  phase_runtime& phase_rt() const noexcept { return phase_.runtime(); }

  typename Phase::scope batch_query_scope() const PHCH_REQUIRES_PHASE(query) {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() PHCH_REQUIRES_PHASE(insert) {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() PHCH_REQUIRES_PHASE(erase) {
    return typename Phase::scope(phase_, op_kind::erase);
  }

 private:
  static constexpr std::size_t kMaxLocks = 1 << 16;

  struct node {
    value_type v;
    node* next;
  };

  // Chunked bump allocator with a tagged (ABA-safe) lock-free free list.
  class node_pool {
   public:
    explicit node_pool(std::size_t hint) : chunk_size_(std::max<std::size_t>(hint / 4, 1024)) {}

    node* allocate() {
      // Recycled node?
      tagged head = free_head_.load(std::memory_order_seq_cst);
      while (head.ptr != nullptr) {
        // Atomic: the current owner may be writing this next field right
        // now if it popped the node between our load and the CAS below —
        // the tag check then discards the value, but the read must still
        // be race-free.
        const tagged next{atomic_load(&head.ptr->next), head.tag + 1};
        if (free_head_.compare_exchange_weak(head, next,
                                             std::memory_order_seq_cst)) {
          return head.ptr;
        }
      }
      // Bump-allocate from the current chunk.
      for (;;) {
        chunk* c = current_.load(std::memory_order_acquire);
        if (c != nullptr) {
          const std::size_t i = c->used.fetch_add(1, std::memory_order_relaxed);
          if (i < chunk_size_) return &c->nodes[i];
        }
        std::lock_guard<spinlock> lg(grow_lock_);
        chunk* cur = current_.load(std::memory_order_acquire);
        if (cur == c) {  // nobody grew it while we waited
          auto fresh = std::make_unique<chunk>(chunk_size_);
          fresh->prev = std::move(owned_);
          chunk* raw = fresh.get();
          owned_ = std::move(fresh);
          current_.store(raw, std::memory_order_release);
        }
      }
    }

    void release(node* n) {
      tagged head = free_head_.load(std::memory_order_seq_cst);
      for (;;) {
        atomic_store(&n->next, head.ptr);
        const tagged next{n, head.tag + 1};
        if (free_head_.compare_exchange_weak(head, next,
                                             std::memory_order_seq_cst)) {
          return;
        }
      }
    }

   private:
    struct chunk {
      explicit chunk(std::size_t n) : nodes(n) {}
      std::vector<node> nodes;
      std::atomic<std::size_t> used{0};
      std::unique_ptr<chunk> prev;
    };
    struct alignas(16) tagged {
      node* ptr = nullptr;
      std::uint64_t tag = 0;
    };

    std::size_t chunk_size_;
    std::atomic<tagged> free_head_{};
    std::atomic<chunk*> current_{nullptr};
    std::unique_ptr<chunk> owned_;
    spinlock grow_lock_;
  };

  std::size_t bucket(key_type k) const noexcept { return Traits::hash(k) & mask_; }

  const node* load_head(std::size_t b) const noexcept { return atomic_load(&buckets_[b]); }

  // Lock-free chain walk; `links` accumulates nodes visited (flushed to the
  // chained_chain_links counter by the calling operation).
  node* find_node(std::size_t b, key_type kq, std::uint64_t& links) const noexcept {
    for (node* n = atomic_load(&buckets_[b]); n != nullptr;
         n = atomic_load(&n->next)) {
      ++links;
      // Atomic value read: during an insert phase a concurrent duplicate
      // may be combine-CASing this node's value while we compare keys.
      if (Traits::key_equal(Traits::key(atomic_load(&n->v)), kq)) return n;
    }
    return nullptr;
  }

  static void combine_node(node* n, value_type incoming) noexcept {
    if constexpr (Traits::has_combine) {
      if constexpr (requires { Traits::combine_inplace(&n->v, incoming); }) {
        Traits::combine_inplace(&n->v, incoming);
      } else {
        value_type cur = atomic_load(&n->v);
        for (;;) {
          const value_type merged = Traits::combine(cur, incoming);
          if (bits_equal(merged, cur) || cas(&n->v, cur, merged)) return;
          cur = atomic_load(&n->v);
        }
      }
    }
    (void)n;
    (void)incoming;
  }

  // Scalar insert, shared by insert() and the batch handoff. Exactly one of
  // insert_commits / insert_dups is recorded per call.
  void insert_impl(value_type v) {
    obs::count(obs::counter::insert_ops);
    assert(!Traits::is_empty(v));
    std::uint64_t links = 0;
    const key_type k = Traits::key(v);
    const std::size_t b = bucket(k);
    if constexpr (ContentionReducing) {
      // Lock-free pre-pass: on a duplicate hit, combine (or drop) without
      // ever touching the lock.
      if (node* hit = find_node(b, k, links)) {
        combine_node(hit, v);
        obs::count(obs::counter::insert_dups);
        obs::count(obs::counter::chained_chain_links, links);
        return;
      }
    }
    {
      std::lock_guard<spinlock> lg(locks_[b & lock_mask_]);
      if (node* hit = find_node(b, k, links)) {  // re-check under the lock
        combine_node(hit, v);
        obs::count(obs::counter::insert_dups);
        obs::count(obs::counter::chained_chain_links, links);
        return;
      }
      node* n = pool_.allocate();
      n->v = v;
      atomic_store(&n->next, buckets_[b]);
      atomic_store(&buckets_[b], n);
    }
    occupied_.increment();
    obs::count(obs::counter::insert_commits);
    obs::count(obs::counter::chained_chain_links, links);
  }

  void erase_impl(key_type kq) {
    obs::count(obs::counter::erase_ops);
    std::uint64_t links = 0;
    const std::size_t b = bucket(kq);
    if constexpr (ContentionReducing) {
      if (find_node(b, kq, links) == nullptr) {  // miss: no lock needed
        obs::count(obs::counter::chained_chain_links, links);
        return;
      }
    }
    bool hit = false;
    {
      std::lock_guard<spinlock> lg(locks_[b & lock_mask_]);
      node* prev = nullptr;
      for (node* n = buckets_[b]; n; prev = n, n = n->next) {
        ++links;
        if (Traits::key_equal(Traits::key(n->v), kq)) {
          if (prev)
            atomic_store(&prev->next, n->next);
          else
            atomic_store(&buckets_[b], n->next);
          pool_.release(n);
          hit = true;
          break;
        }
      }
    }
    if (hit) {
      occupied_.decrement();
      obs::count(obs::counter::erase_hits);
    }
    obs::count(obs::counter::chained_chain_links, links);
  }

  value_type find_impl(key_type kq) const {
    obs::count(obs::counter::find_ops);
    std::uint64_t links = 0;
    const node* n = find_node(bucket(kq), kq, links);
    obs::count(obs::counter::chained_chain_links, links);
    if (n == nullptr) return Traits::empty();
    obs::count(obs::counter::find_hits);
    return n->v;
  }

  std::size_t num_buckets_;
  std::size_t mask_;
  std::vector<node*> buckets_;
  mutable std::vector<spinlock> locks_;
  std::size_t lock_mask_;
  mutable node_pool pool_;
  striped_counter occupied_;
  mutable Phase phase_;

 public:
  // Phase-capability tokens (utils/phase_caps.h): the static half of the
  // phase contract the Phase policy enforces at runtime.
  PHCH_PHASE_CAPABILITIES();
};

}  // namespace phch
