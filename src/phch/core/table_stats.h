// Probe-structure analysis for open-addressing tables: probe-length
// distribution and cluster statistics over a raw slot array. Used by the
// load-factor benchmark (Figure 5's explanation: costs track probe lengths)
// and by tests to validate layout properties quantitatively.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "phch/core/table_concepts.h"
#include "phch/parallel/primitives.h"

namespace phch {

struct probe_stats {
  double mean_probe = 0;     // average #slots inspected to find a present key
  std::size_t max_probe = 0;
  double mean_cluster = 0;   // average run of occupied slots
  std::size_t max_cluster = 0;
  std::size_t occupied = 0;
  std::size_t clusters = 0;
};

// Computes probe/cluster statistics of a slot array (any table exposing
// raw_slots() + capacity() with linear probing semantics).
template <typename Traits>
probe_stats analyze_slots(const typename Traits::value_type* slots, std::size_t capacity) {
  probe_stats st;
  // A zero-capacity array has no slots to scan, and a fully-empty one has
  // no probe sequences or clusters: both are all-zero stats. The early
  // return also keeps the cluster scan below from reading past a
  // zero-length array (capacity - 1 underflows) or spinning looking for an
  // empty slot that the occupancy checks would otherwise rule out.
  if (capacity == 0) return st;
  const std::size_t mask = capacity - 1;

  // Probe length of each stored element: distance from home to slot + 1.
  std::vector<std::size_t> probes = pack(
      capacity,
      [&](std::size_t j) { return !Traits::is_empty(slots[j]); },
      [&](std::size_t j) {
        const std::size_t home = Traits::hash(Traits::key(slots[j])) & mask;
        return ((j - home) & mask) + 1;
      });
  st.occupied = probes.size();
  if (st.occupied == 0) return st;  // empty table: all statistics are zero
  {
    std::size_t total = 0;
    for (const std::size_t p : probes) {
      total += p;
      st.max_probe = std::max(st.max_probe, p);
    }
    st.mean_probe = static_cast<double>(total) / static_cast<double>(st.occupied);
  }

  // Cluster lengths: maximal runs of occupied slots (with wraparound).
  if (st.occupied == capacity) {
    st.clusters = 1;
    st.mean_cluster = static_cast<double>(capacity);
    st.max_cluster = capacity;
    return st;
  }
  // Start scanning from an empty slot so wraparound runs are counted once.
  std::size_t start = 0;
  while (!Traits::is_empty(slots[start])) ++start;
  std::size_t run = 0;
  std::size_t total_run = 0;
  for (std::size_t step = 0; step < capacity; ++step) {
    const std::size_t j = (start + step) & mask;
    if (!Traits::is_empty(slots[j])) {
      ++run;
    } else if (run > 0) {
      ++st.clusters;
      total_run += run;
      st.max_cluster = std::max(st.max_cluster, run);
      run = 0;
    }
  }
  if (run > 0) {  // final run (ends just before `start`, which is empty)
    ++st.clusters;
    total_run += run;
    st.max_cluster = std::max(st.max_cluster, run);
  }
  if (st.clusters > 0) {
    st.mean_cluster = static_cast<double>(total_run) / static_cast<double>(st.clusters);
  }
  return st;
}

template <open_addressing_table Table>
probe_stats analyze(const Table& t) {
  return analyze_slots<typename Table::traits>(t.raw_slots(), t.capacity());
}

}  // namespace phch
