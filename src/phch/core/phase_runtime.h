// phase_runtime: the one phase-state word every table carries.
//
// The paper's Definition 1 partitions operations into classes
//     S = { {insert}, {delete}, {find, elements} }
// and requires classes not to overlap in time; the boundaries between
// classes are the program-visible quiescent points everything else in this
// repo leans on. Historically that state was tracked in four independent
// places (phase_guard's in-flight counters, the obs tracer's per-table
// epoch atomic, room_sync's current-room word, and the batch scopes). This
// header collapses them onto a single per-table state machine:
//
//     state = (phase epoch << 2) | current operation class
//
// (The compile-time mirror of this word is the phase-capability surface in
// utils/phase_caps.h; see DESIGN.md §15 for how the two halves divide the
// contract. state_'s orderings are pinned in tools/atomics_contract.tsv.)
//
// packed into one cache line. Every operation — scalar, batched, checked or
// unchecked — announces its class through on_op(). Same-class operations
// see one relaxed load and a compare; the first operation of a *different*
// class wins a CAS that advances the epoch, and that CAS winner is the
// exactly-once transition edge: it ticks obs::counter::phase_transitions
// and records the phase_begin trace event directly, so the tracer is fed
// from the state machine instead of from a parallel atomic that could
// disagree with it.
//
// The epoch is not just observational: it increases monotonically by
// exactly one per class transition, so "the table changed phase" is a
// checkable predicate, and the quiescence-based reclamation layer
// (parallel/reclaim.h) can treat phase boundaries as grace-period edges.
//
// The phase policies in core/phase_guard.h are thin views over this class:
// unchecked_phases is the runtime alone, checked_phases adds the in-flight
// violation detector.
#pragma once

#include <atomic>
#include <cstdint>

#include "phch/obs/trace.h"

namespace phch {

// Operation classes of Definition 1. find/contains/elements share `query`.
enum class op_kind : std::uint8_t { insert = 0, erase = 1, query = 2 };

inline const char* op_kind_name(op_kind k) noexcept {
  switch (k) {
    case op_kind::insert: return "insert";
    case op_kind::erase: return "erase";
    case op_kind::query: return "query";
  }
  return "?";
}

class alignas(64) phase_runtime {
 public:
  // Class value meaning "no operation observed yet" (fresh table).
  static constexpr std::uint64_t kIdle = 3;

  phase_runtime() noexcept = default;
  phase_runtime(const phase_runtime&) = delete;
  phase_runtime& operator=(const phase_runtime&) = delete;

  // Announces the start of an operation of class `k`. Returns true iff this
  // call performed the class transition (advanced the epoch) — the
  // exactly-once edge. Concurrent same-class announcers all see the class
  // already set (either initially or after one of them won the CAS) and
  // return false having done one relaxed load.
  bool on_op(op_kind k) noexcept {
    const auto cls = static_cast<std::uint64_t>(k);
    std::uint64_t s = state_.load(std::memory_order_relaxed);
    for (;;) {
      if ((s & kClassMask) == cls) return false;  // same phase: no edge
      const std::uint64_t next = (((s >> kClassBits) + 1) << kClassBits) | cls;
      if (state_.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        on_transition(static_cast<std::uint8_t>(cls), next >> kClassBits);
        return true;
      }
      // `s` was reloaded by the failed CAS; if a racing operation already
      // advanced into our class, the loop exits through the equality check.
    }
  }

  // Monotonically increasing count of class transitions (0 on a fresh
  // table; +1 per insert<->erase<->query boundary, including the first
  // operation ever, which transitions from idle).
  std::uint64_t epoch() const noexcept {
    return state_.load(std::memory_order_relaxed) >> kClassBits;
  }

  // The class currently announced (kIdle before the first operation).
  std::uint64_t current_class() const noexcept {
    return state_.load(std::memory_order_relaxed) & kClassMask;
  }

 private:
  static constexpr std::uint64_t kClassBits = 2;
  static constexpr std::uint64_t kClassMask = (1ULL << kClassBits) - 1;

  void on_transition(std::uint8_t cls, std::uint64_t epoch) noexcept {
    obs::count(obs::counter::phase_transitions);
#if PHCH_TELEMETRY_ENABLED
    obs::note_phase_transition(table_id_, cls, epoch);
#else
    (void)cls;
    (void)epoch;
#endif
  }

  std::atomic<std::uint64_t> state_{kIdle};  // epoch 0, no op observed yet
#if PHCH_TELEMETRY_ENABLED
  std::uint32_t table_id_ = obs::next_table_id();
#endif
};

static_assert(sizeof(phase_runtime) == 64,
              "phase_runtime is one cache line by design");

}  // namespace phch
