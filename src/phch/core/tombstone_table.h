// tombstone_table: the deletion strategy of Gao, Groote & Hesselink's
// lock-free open-addressing table, as discussed in §2 of the paper — a
// deleted slot is marked with a special "deleted" value (a tombstone);
// inserts and finds skip over tombstones, and an insert is NOT allowed to
// reuse one (doing so lock-freely would race with concurrent finds of the
// same key further along the probe path). The only way to reclaim
// tombstones is to rebuild the whole table.
//
// This baseline exists to demonstrate *why* the paper's tables shift
// elements back instead: under churn (repeated insert/delete phases) the
// tombstone population grows monotonically, probe paths lengthen, and the
// table eventually "fills" with garbage — measured in bench_ablation and
// exercised in tests. Phase-concurrent like the others.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class tombstone_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit tombstone_table(std::size_t min_capacity) : slots_(min_capacity) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }

  std::size_t count() const {
    return reduce(std::size_t{0}, capacity(), std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) { return std::size_t{is_live(slots_[i])}; });
  }

  // Live entries plus tombstones: the footprint that governs probe lengths.
  std::size_t footprint() const {
    return reduce(std::size_t{0}, capacity(), std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return std::size_t{!Traits::is_empty(slots_[i])};
                  });
  }

  void insert(value_type v) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    std::size_t i = home(Traits::key(v));
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) {
        if (cas(&slots_[i], c, v)) return;
        continue;
      }
      // Tombstones are skipped, never reused.
      if (!is_tombstone(c) && Traits::key_equal(Traits::key(c), Traits::key(v))) {
        if constexpr (Traits::has_combine) {
          value_type cur = c;
          for (;;) {
            const value_type merged = Traits::combine(cur, v);
            if (bits_equal(merged, cur) || cas(&slots_[i], cur, merged)) return;
            cur = atomic_load(&slots_[i]);
            if (is_tombstone(cur)) break;  // deleted meanwhile; keep probing
          }
        } else {
          return;
        }
      }
      i = next(i);
      if (++advances > capacity()) throw table_full_error();
    }
  }

  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    std::size_t i = home(kq);
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) return;  // not present
      if (!is_tombstone(c) && Traits::key_equal(Traits::key(c), kq)) {
        // Replace with the tombstone; a failed CAS means a concurrent erase
        // got it first (same result).
        cas(&slots_[i], c, Traits::busy());
        return;
      }
      i = next(i);
      if (++advances > capacity()) return;
    }
  }

  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    std::size_t i = home(kq);
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) return Traits::empty();
      if (!is_tombstone(c) && Traits::key_equal(Traits::key(c), kq)) return c;
      i = next(i);
      if (++advances > capacity()) return Traits::empty();
    }
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    return pack(
        capacity(), [&](std::size_t i) { return is_live(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

  // Rebuilds the table, dropping tombstones — the "copy the whole hash
  // table" reclamation §2 describes. Quiescent-point operation.
  void compact() {
    std::vector<value_type> live = elements();
    slots_.clear();
    parallel_for(0, live.size(), [&](std::size_t i) { insert(live[i]); });
  }

  const value_type* raw_slots() const noexcept { return slots_.data(); }

 private:
  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }

  static bool is_tombstone(value_type c) noexcept { return bits_equal(c, Traits::busy()); }
  static bool is_live(value_type c) noexcept {
    return !Traits::is_empty(c) && !is_tombstone(c);
  }

  slot_array<Traits> slots_;
  mutable Phase phase_;
};

}  // namespace phch
