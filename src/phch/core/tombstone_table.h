// tombstone_table: the deletion strategy of Gao, Groote & Hesselink's
// lock-free open-addressing table, as discussed in §2 of the paper — a
// deleted slot is marked with a special "deleted" value (a tombstone);
// inserts and finds skip over tombstones, and an insert is NOT allowed to
// reuse one (doing so lock-freely would race with concurrent finds of the
// same key further along the probe path). The only way to reclaim
// tombstones is to rebuild the whole table (`compact()`).
//
// This baseline exists to demonstrate *why* the paper's tables shift
// elements back instead: under churn (repeated insert/delete phases) the
// tombstone population grows monotonically, probe paths lengthen, and the
// table eventually "fills" with garbage — measured in bench_ablation and
// exercised in tests. Phase-concurrent like the others.
//
// Implementation: arrival-order placement with tombstone deletion over the
// shared open-addressing core (core/probe_engine.h). Because the core
// distills the policy into the probe classifiers the batch engine consumes,
// this table gets the same software-pipelined insert_batch / find_batch /
// erase_batch as the back-shifting tables. Tombstone-specific surface
// (footprint(), compact()) is enabled on the engine by the delete policy.
#pragma once

#include "phch/core/probe_engine.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
using tombstone_table = probe_engine<Traits, Phase, arrival_order, tombstone_delete>;

}  // namespace phch
