// The 1-byte-per-slot fingerprint sidecar for the open-addressing core.
//
// Each slot of a probe_engine gets one metadata byte:
//
//   0x00..0x7f   fingerprint: the top 7 bits of the key's hash. The home
//                slot uses the hash's *low* bits, so fingerprint and
//                placement are independent and a fingerprint collision
//                between distinct co-resident keys has probability ~1/128.
//   0x80         kEmpty     — the slot holds Traits::empty()
//   0xfe         kTombstone — the slot holds Traits::busy() (tombstone
//                             tables only)
//
// Both sentinels have the high bit set, so they can never collide with a
// fingerprint; the probe loops in probe_engine.h / batch_ops.h scan groups
// of these bytes with core/simd_scan.h and touch only candidate slots.
//
// The sidecar is an acceleration structure, not a source of truth:
//
//  * Writes are relaxed byte stores issued *after* the owning slot CAS
//    commits. A reader may therefore see a stale byte; every conclusion a
//    scan draws is either confirmed against the slot array (fingerprint
//    match => load the slot and compare keys) or sound under the phase
//    discipline (see the tagged-probe notes in probe_engine.h).
//  * Tags are a pure function of the slot contents' key hash — no history.
//    Determinism (Theorem 1) concerns the slot layout, which is untouched;
//    the tags of equal layouts are equal by construction, and growth
//    migration re-derives them on re-insert.
//
// Storage is 64-byte aligned (one cache line covers 64 slots' metadata)
// and over-allocated to at least simd::kMaxGroupWidth bytes so a full
// group load on a tiny table stays in bounds (the probe loops additionally
// fall back to untagged scans when capacity < group width).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "phch/core/simd_scan.h"
#include "phch/parallel/parallel_for.h"

namespace phch {

class tag_array {
 public:
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::uint8_t kTombstone = 0xfe;

  // Top 7 bits of the hash. Table capacities stay far below 2^57 slots, so
  // these bits never feed the home-slot index.
  static constexpr std::uint8_t fingerprint(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(hash >> 57);
  }

  explicit tag_array(std::size_t capacity)
      : bytes_(capacity < kMinBytes ? kMinBytes : capacity),
        tags_(allocate(bytes_)) {
    clear();
  }

  const std::uint8_t* data() const noexcept { return tags_.get(); }

  std::uint8_t load(std::size_t i) const noexcept {
    return __atomic_load_n(&tags_[i], __ATOMIC_RELAXED);
  }

  // Relaxed publish; called only after the corresponding slot CAS commits.
  void store(std::size_t i, std::uint8_t tag) noexcept {
    __atomic_store_n(&tags_[i], tag, __ATOMIC_RELAXED);
  }

  void clear() {
    if (bytes_ <= kSerialClearBytes) {
      std::memset(tags_.get(), kEmpty, bytes_);
      return;
    }
    blocked_for(0, bytes_, kSerialClearBytes,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  std::memset(tags_.get() + s, kEmpty, e - s);
                });
  }

 private:
  static constexpr std::size_t kMinBytes =
      simd::kMaxGroupWidth < 64 ? 64 : simd::kMaxGroupWidth;
  // One byte per slot is 8-16x denser than the slots themselves; the
  // serial-clear threshold scales accordingly (cf. kSerialClearThreshold).
  static constexpr std::size_t kSerialClearBytes = std::size_t{1} << 16;
  static constexpr std::align_val_t kTagAlign{64};

  struct aligned_delete {
    void operator()(std::uint8_t* p) const noexcept {
      ::operator delete(static_cast<void*>(p), kTagAlign);
    }
  };

  static std::uint8_t* allocate(std::size_t n) {
    return static_cast<std::uint8_t*>(::operator new(n, kTagAlign));
  }

  std::size_t bytes_;
  std::unique_ptr<std::uint8_t[], aligned_delete> tags_;
};

}  // namespace phch
