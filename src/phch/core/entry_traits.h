// Entry trait policies for the hash tables.
//
// A table is parameterized by a Traits type describing what lives in a slot:
//
//   using value_type = ...;        // slot contents; 1/2/4/8/16 bytes, CAS-able
//   using key_type   = ...;
//   static value_type empty();                 // the ⊥ element
//   static bool is_empty(value_type);
//   static key_type key(value_type);
//   static std::uint64_t hash(key_type);       // full-width hash, table masks it
//   static bool priority_less(key_type, key_type);   // strict total order
//   static bool key_equal(key_type, key_type);
//   static constexpr bool has_combine;         // duplicate-key value merging
//   static value_type combine(value_type stored, value_type incoming);
//
// The paper's convention: ⊥ has lower priority than every key; tables handle
// ⊥ explicitly and never pass it to priority_less. For deterministic tables
// the combine function must be commutative and associative so duplicate
// key-value pairs merge to the same result in any order (paper §4
// "Combining": min or + in the experiments).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

#include "phch/parallel/atomics.h"
#include "phch/utils/rand.h"

namespace phch {

// ---------------------------------------------------------------------------
// Integer keys, no associated value (randomSeq-int / exptSeq-int workloads).
// ---------------------------------------------------------------------------
template <typename K = std::uint64_t>
struct int_entry {
  static_assert(std::is_unsigned_v<K>);
  using value_type = K;
  using key_type = K;

  static constexpr value_type empty() noexcept { return std::numeric_limits<K>::max(); }
  static bool is_empty(value_type v) noexcept { return v == empty(); }
  // Reserved transient marker used by hopscotch displacement; never a key.
  static constexpr value_type busy() noexcept { return std::numeric_limits<K>::max() - 1; }
  static key_type key(value_type v) noexcept { return v; }
  static std::uint64_t hash(key_type k) noexcept { return hash64(k); }
  static bool priority_less(key_type a, key_type b) noexcept { return a < b; }
  static bool key_equal(key_type a, key_type b) noexcept { return a == b; }

  static constexpr bool has_combine = false;
  static value_type combine(value_type stored, value_type) noexcept { return stored; }
};

// ---------------------------------------------------------------------------
// Key-value pairs of 64-bit integers in a 16-byte slot (double-word CAS),
// matching the paper's randomSeq-pairInt / exptSeq-pairInt workloads.
// Combine selects or merges the value deterministically on duplicate keys.
// ---------------------------------------------------------------------------
struct alignas(16) kv64 {
  std::uint64_t k;
  std::uint64_t v;
  friend bool operator==(const kv64& a, const kv64& b) noexcept {
    return a.k == b.k && a.v == b.v;
  }
};

struct combine_min {
  static std::uint64_t apply(std::uint64_t a, std::uint64_t b) noexcept {
    return a < b ? a : b;
  }
};
struct combine_max {
  static std::uint64_t apply(std::uint64_t a, std::uint64_t b) noexcept {
    return a < b ? b : a;
  }
};
struct combine_add {
  static std::uint64_t apply(std::uint64_t a, std::uint64_t b) noexcept { return a + b; }
};

template <typename Combine = combine_min>
struct pair_entry {
  using value_type = kv64;
  using key_type = std::uint64_t;

  static constexpr value_type empty() noexcept {
    return kv64{std::numeric_limits<std::uint64_t>::max(),
                std::numeric_limits<std::uint64_t>::max()};
  }
  static bool is_empty(value_type v) noexcept {
    return v.k == std::numeric_limits<std::uint64_t>::max();
  }
  static constexpr value_type busy() noexcept {
    return kv64{std::numeric_limits<std::uint64_t>::max() - 1, 0};
  }
  static key_type key(value_type v) noexcept { return v.k; }
  static std::uint64_t hash(key_type k) noexcept { return hash64(k); }
  static bool priority_less(key_type a, key_type b) noexcept { return a < b; }
  static bool key_equal(key_type a, key_type b) noexcept { return a == b; }

  static constexpr bool has_combine = true;
  static value_type combine(value_type stored, value_type incoming) noexcept {
    return kv64{stored.k, Combine::apply(stored.v, incoming.v)};
  }

  // In-place merge for non-deterministic tables, where a stored entry never
  // moves: only the value word is updated, with hardware xadd when the
  // combine function is +, exactly the optimization the paper describes for
  // linearHash-ND in edge contraction.
  static void combine_inplace(value_type* slot, value_type incoming) noexcept {
    if constexpr (std::is_same_v<Combine, combine_add>) {
      fetch_add(&slot->v, incoming.v);
    } else {
      std::uint64_t cur = atomic_load(&slot->v);
      for (;;) {
        const std::uint64_t merged = Combine::apply(cur, incoming.v);
        if (merged == cur || cas(&slot->v, cur, merged)) return;
        cur = atomic_load(&slot->v);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// C-string keys stored by pointer (trigramSeq workload). The table slot is a
// `const char*`; priority is lexicographic so the layout is a function of
// string *contents*, not pointer values (pointer order would not be
// deterministic across allocations).
// ---------------------------------------------------------------------------
struct string_entry {
  using value_type = const char*;
  using key_type = const char*;

  static constexpr value_type empty() noexcept { return nullptr; }
  static bool is_empty(value_type v) noexcept { return v == nullptr; }
  static value_type busy() noexcept { return reinterpret_cast<value_type>(std::uintptr_t{1}); }
  static key_type key(value_type v) noexcept { return v; }
  static std::uint64_t hash(key_type k) noexcept {
    // FNV-1a, then mixed; deterministic function of the characters.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char* p = k; *p; ++p) h = (h ^ static_cast<unsigned char>(*p)) * 1099511628211ULL;
    return hash64(h);
  }
  static bool priority_less(key_type a, key_type b) noexcept {
    return std::strcmp(a, b) < 0;
  }
  static bool key_equal(key_type a, key_type b) noexcept {
    return a == b || std::strcmp(a, b) == 0;
  }

  static constexpr bool has_combine = false;
  static value_type combine(value_type stored, value_type) noexcept { return stored; }
};

// ---------------------------------------------------------------------------
// Pointer-to-struct entries (trigramSeq-pairInt): the slot holds a pointer to
// a {string key, integer value} record, adding the level of indirection the
// paper describes. Duplicate keys keep the record whose value has the higher
// priority (deterministic), matching linearHash-D's behaviour for pairs.
// ---------------------------------------------------------------------------
struct string_kv {
  const char* key;
  std::uint64_t value;
};

struct string_pair_entry {
  using value_type = const string_kv*;
  using key_type = const char*;

  static constexpr value_type empty() noexcept { return nullptr; }
  static bool is_empty(value_type v) noexcept { return v == nullptr; }
  static value_type busy() noexcept { return reinterpret_cast<value_type>(std::uintptr_t{1}); }
  static key_type key(value_type v) noexcept { return v->key; }
  static std::uint64_t hash(key_type k) noexcept { return string_entry::hash(k); }
  static bool priority_less(key_type a, key_type b) noexcept {
    return std::strcmp(a, b) < 0;
  }
  static bool key_equal(key_type a, key_type b) noexcept {
    return a == b || std::strcmp(a, b) == 0;
  }

  static constexpr bool has_combine = true;
  static value_type combine(value_type stored, value_type incoming) noexcept {
    // Keep the record with the smaller value (ties by the pointer with the
    // smaller value field are impossible to break deterministically, so the
    // value itself must be a deterministic tiebreak; min works for the
    // workloads used here).
    return incoming->value < stored->value ? incoming : stored;
  }
};

// ---------------------------------------------------------------------------
// 32-bit key / 32-bit value packed into one 64-bit word: used by the graph
// applications (vertex ids / edge endpoints fit in 32 bits) to get
// single-word CAS on pairs.
// ---------------------------------------------------------------------------
template <typename Combine = combine_min>
struct packed_pair_entry {
  using value_type = std::uint64_t;  // (key << 32) | value
  using key_type = std::uint32_t;

  static value_type make(std::uint32_t k, std::uint32_t v) noexcept {
    return (static_cast<std::uint64_t>(k) << 32) | v;
  }
  static std::uint32_t value_of(value_type e) noexcept {
    return static_cast<std::uint32_t>(e);
  }

  static constexpr value_type empty() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }
  static bool is_empty(value_type v) noexcept { return v == empty(); }
  static constexpr value_type busy() noexcept {
    return std::numeric_limits<std::uint64_t>::max() - 1;
  }
  static key_type key(value_type v) noexcept { return static_cast<key_type>(v >> 32); }
  static std::uint64_t hash(key_type k) noexcept { return hash64(k); }
  static bool priority_less(key_type a, key_type b) noexcept { return a < b; }
  static bool key_equal(key_type a, key_type b) noexcept { return a == b; }

  static constexpr bool has_combine = true;
  static value_type combine(value_type stored, value_type incoming) noexcept {
    return make(key(stored),
                static_cast<std::uint32_t>(Combine::apply(value_of(stored), value_of(incoming))));
  }
};

}  // namespace phch
