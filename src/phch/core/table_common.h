// Shared helpers for the hash table implementations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"

namespace phch {

// Thrown when an operation cannot complete because the table has no room
// (the paper's algorithms require a non-full table to terminate).
struct table_full_error : std::runtime_error {
  table_full_error() : std::runtime_error("phch: hash table is full") {}
};

// Smallest power of two >= n, via the single-instruction std::bit_ceil.
// Requests above the largest representable power of two are rejected
// (bit_ceil on such values is undefined, and the pre-bit_ceil shift loop
// spun forever once `c <<= 1` overflowed to zero).
inline std::size_t round_up_pow2(std::size_t n) {
  constexpr std::size_t k_max_pow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  if (n > k_max_pow2) {
    throw std::length_error("phch: requested capacity exceeds the largest "
                            "representable power of two");
  }
  return std::bit_ceil(n);
}

// Bitwise equality for trivially-copyable slot values (kv64 and friends have
// no padding; pointers and integers trivially qualify).
template <typename T>
inline bool bits_equal(const T& a, const T& b) noexcept {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

// Outcome of inspecting one slot during a probe for a key: keep scanning,
// found the key, or proved it absent. The probe engine's classification
// hooks return this, and the batched engines (core/batch_ops.h) drive any
// table's probe loop through it — the ordering/delete policy decides the
// verdict, the scan machinery is shared.
enum class probe_verdict : unsigned char { advance, hit, miss };

// The paper's ELEMENTS() for any open-addressing slot array: pack the slots
// selected by `live` into a contiguous vector in slot order (prefix sum over
// per-block counts plus cache-block-friendly writes). The single shared
// implementation behind every open-addressing table's elements(); the
// predicate is what varies (non-empty, or non-empty-and-not-tombstone).
template <typename Traits, typename Live>
std::vector<typename Traits::value_type> packed_elements(
    const typename Traits::value_type* slots, std::size_t capacity, Live&& live) {
  return pack(
      capacity, [&](std::size_t i) { return live(slots[i]); },
      [&](std::size_t i) { return slots[i]; });
}

// Below this many slots a parallel clear costs more in fork-join overhead
// than the fill itself; run it serially.
inline constexpr std::size_t kSerialClearThreshold = 4096;

// A power-of-two-sized slot array initialized to the traits' empty value.
// All tables build on this. Storage is 64-byte aligned so a slot never
// straddles a cache line and the batch engine's per-slot prefetches map
// one-to-one onto lines.
template <typename Traits>
class slot_array {
 public:
  using value_type = typename Traits::value_type;
  static_assert(std::is_trivially_copyable_v<value_type> &&
                    std::is_trivially_destructible_v<value_type>,
                "slot values must be CAS-able raw words");

  explicit slot_array(std::size_t min_capacity)
      : capacity_(round_up_pow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(allocate(capacity_)) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t mask() const noexcept { return mask_; }

  value_type* data() noexcept { return slots_.get(); }
  const value_type* data() const noexcept { return slots_.get(); }

  value_type& operator[](std::size_t i) noexcept { return slots_[i]; }
  const value_type& operator[](std::size_t i) const noexcept { return slots_[i]; }

  void clear() {
    if (capacity_ <= kSerialClearThreshold) {
      for (std::size_t i = 0; i < capacity_; ++i) slots_[i] = Traits::empty();
      return;
    }
    parallel_for(0, capacity_, [&](std::size_t i) { slots_[i] = Traits::empty(); });
  }

  // Number of occupied slots (parallel count).
  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  // Packs the occupied slots into a contiguous array in slot order — the
  // paper's ELEMENTS(), via the shared pack-based implementation above.
  std::vector<value_type> elements() const {
    return packed_elements<Traits>(
        data(), capacity_, [](const value_type& c) { return !Traits::is_empty(c); });
  }

 private:
  static constexpr std::align_val_t kSlotAlign{64};

  struct aligned_delete {
    void operator()(value_type* p) const noexcept {
      ::operator delete(static_cast<void*>(p), kSlotAlign);
    }
  };

  static value_type* allocate(std::size_t n) {
    return static_cast<value_type*>(
        ::operator new(n * sizeof(value_type), kSlotAlign));
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<value_type[], aligned_delete> slots_;
};

}  // namespace phch
