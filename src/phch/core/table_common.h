// Shared helpers for the hash table implementations.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"

namespace phch {

// Thrown when an operation cannot complete because the table has no room
// (the paper's algorithms require a non-full table to terminate).
struct table_full_error : std::runtime_error {
  table_full_error() : std::runtime_error("phch: hash table is full") {}
};

inline std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

// Bitwise equality for trivially-copyable slot values (kv64 and friends have
// no padding; pointers and integers trivially qualify).
template <typename T>
inline bool bits_equal(const T& a, const T& b) noexcept {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

// A power-of-two-sized slot array initialized to the traits' empty value in
// parallel. All tables build on this.
template <typename Traits>
class slot_array {
 public:
  using value_type = typename Traits::value_type;

  explicit slot_array(std::size_t min_capacity)
      : capacity_(round_up_pow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t mask() const noexcept { return mask_; }

  value_type* data() noexcept { return slots_.data(); }
  const value_type* data() const noexcept { return slots_.data(); }

  value_type& operator[](std::size_t i) noexcept { return slots_[i]; }
  const value_type& operator[](std::size_t i) const noexcept { return slots_[i]; }

  void clear() {
    parallel_for(0, capacity_, [&](std::size_t i) { slots_[i] = Traits::empty(); });
  }

  // Number of occupied slots (parallel count).
  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  // Packs the occupied slots into a contiguous array in slot order — the
  // paper's ELEMENTS(): a prefix sum over per-block counts plus
  // cache-block-friendly writes.
  std::vector<value_type> elements() const {
    return pack(
        capacity_, [&](std::size_t i) { return !Traits::is_empty(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

 private:
  std::size_t capacity_;
  std::size_t mask_;
  std::vector<value_type> slots_;
};

}  // namespace phch
