// Phase-discipline checking (Definition 1 of the paper).
//
// A phase-concurrent table requires the caller to keep operations of
// different types from overlapping in time:
//     S = { {insert}, {delete}, {find, elements} }.
// Tables take a Phase policy parameter and hold one instance of it.
// `unchecked_phases` (the default) compiles to nothing, as in the paper's
// benchmarked code. `checked_phases` maintains per-table in-flight counters
// per operation class and aborts the process on an illegal overlap — used by
// the test suite to prove the applications obey the discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace phch {

enum class op_kind : std::uint8_t { insert = 0, erase = 1, query = 2 };

struct unchecked_phases {
  struct scope {
    scope(unchecked_phases&, op_kind) noexcept {}
  };
};

class checked_phases {
 public:
  class scope {
   public:
    scope(checked_phases& owner, op_kind kind) noexcept : owner_(owner), kind_(kind) {
      const std::uint64_t prev =
          owner_.in_flight_.fetch_add(delta(kind_), std::memory_order_acq_rel);
      // Each op class owns 21 bits of the counter; any other class having a
      // non-zero count means ops of different types overlapped in time.
      for (int k = 0; k < 3; ++k) {
        if (k != static_cast<int>(kind_) && ((prev >> (21 * k)) & mask21) != 0) {
          std::fprintf(stderr,
                       "phch: phase-concurrency violation: op class %d started while "
                       "class %d in flight\n",
                       static_cast<int>(kind_), k);
          std::abort();
        }
      }
    }
    ~scope() { owner_.in_flight_.fetch_sub(delta(kind_), std::memory_order_acq_rel); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    checked_phases& owner_;
    op_kind kind_;
  };

 private:
  static constexpr std::uint64_t mask21 = (1ULL << 21) - 1;
  static std::uint64_t delta(op_kind k) noexcept {
    return 1ULL << (21 * static_cast<int>(k));
  }
  std::atomic<std::uint64_t> in_flight_{0};
};

}  // namespace phch
