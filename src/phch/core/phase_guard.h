// Phase-discipline checking (Definition 1 of the paper).
//
// A phase-concurrent table requires the caller to keep operations of
// different types from overlapping in time:
//     S = { {insert}, {delete}, {find, elements} }.
// Tables take a Phase policy parameter and hold one instance of it.
// `unchecked_phases` (the default) compiles to nothing, as in the paper's
// benchmarked code — except under PHCH_TELEMETRY, where both policies also
// feed the obs phase-epoch tracer: the first operation of a class different
// from the table's last-seen class records one phase-transition event
// (obs/trace.h). `checked_phases` maintains per-table in-flight counters
// per operation class and, on an illegal overlap, routes a structured
// phase_violation report through a pluggable process-wide handler. The
// default handler prints the report and aborts (so the test suite can still
// death-test the discipline); tests install their own handler to intercept
// violations in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"

namespace phch {

enum class op_kind : std::uint8_t { insert = 0, erase = 1, query = 2 };

inline const char* op_kind_name(op_kind k) noexcept {
  switch (k) {
    case op_kind::insert: return "insert";
    case op_kind::erase: return "erase";
    case op_kind::query: return "query";
  }
  return "?";
}

// Everything known about a phase-discipline violation at detection time:
// which table (address, plus its debug name if one was set), what operation
// class tried to start, how many operations of each class were in flight,
// and which scheduler worker tripped it (-1 for non-pool threads).
struct phase_violation {
  const void* table = nullptr;
  const char* table_name = nullptr;  // may be null (unnamed table)
  op_kind attempted = op_kind::insert;
  std::uint64_t in_flight[3] = {0, 0, 0};  // indexed by op_kind
  int worker = -1;
};

using phase_violation_handler = void (*)(const phase_violation&);

// Default handler: structured report to stderr, then abort. The message
// keeps the "phase-concurrency violation" marker the death tests match.
inline void abort_on_phase_violation(const phase_violation& v) {
  std::fprintf(stderr,
               "phch: phase-concurrency violation: %s started on table %s(%p) "
               "with in-flight ops {insert: %llu, erase: %llu, query: %llu} "
               "(worker %d)\n",
               op_kind_name(v.attempted),
               v.table_name != nullptr ? v.table_name : "", v.table,
               static_cast<unsigned long long>(v.in_flight[0]),
               static_cast<unsigned long long>(v.in_flight[1]),
               static_cast<unsigned long long>(v.in_flight[2]), v.worker);
  std::abort();
}

namespace detail {
inline std::atomic<phase_violation_handler> g_phase_violation_handler{
    &abort_on_phase_violation};
}

// Installs `h` as the process-wide violation handler and returns the
// previous one. Pass nullptr to restore the aborting default. A handler
// that returns normally lets the offending operation proceed (the overlap
// has already been recorded); intercepting tests typically count or stash
// the report.
inline phase_violation_handler set_phase_violation_handler(
    phase_violation_handler h) noexcept {
  return detail::g_phase_violation_handler.exchange(
      h != nullptr ? h : &abort_on_phase_violation, std::memory_order_acq_rel);
}

struct unchecked_phases {
  struct scope {
#if PHCH_TELEMETRY_ENABLED
    scope(unchecked_phases& owner, op_kind kind) noexcept {
      obs::note_phase(owner.epoch_, static_cast<std::uint8_t>(kind));
    }
#else
    scope(unchecked_phases&, op_kind) noexcept {}
#endif
  };
#if PHCH_TELEMETRY_ENABLED
  obs::phase_epoch epoch_;
#endif
};

class checked_phases {
 public:
  class scope {
   public:
    scope(checked_phases& owner, op_kind kind) noexcept : owner_(owner), kind_(kind) {
#if PHCH_TELEMETRY_ENABLED
      obs::note_phase(owner_.epoch_, static_cast<std::uint8_t>(kind));
#endif
      const std::uint64_t prev =
          owner_.in_flight_.fetch_add(delta(kind_), std::memory_order_acq_rel);
      // Each op class owns 21 bits of the counter; any other class having a
      // non-zero count means ops of different types overlapped in time.
      for (int k = 0; k < 3; ++k) {
        if (k != static_cast<int>(kind_) && ((prev >> (21 * k)) & mask21) != 0) {
          owner_.report_violation(kind_, prev);
          break;
        }
      }
    }
    ~scope() { owner_.in_flight_.fetch_sub(delta(kind_), std::memory_order_acq_rel); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    checked_phases& owner_;
    op_kind kind_;
  };

  // Optional debug name included in violation reports. The pointed-to
  // string must outlive the table (string literals in practice).
  void set_name(const char* name) noexcept { name_ = name; }
  const char* name() const noexcept { return name_; }

 private:
  void report_violation(op_kind attempted, std::uint64_t prev) const {
    phase_violation v;
    v.table = this;
    v.table_name = name_;
    v.attempted = attempted;
    for (int k = 0; k < 3; ++k) v.in_flight[k] = (prev >> (21 * k)) & mask21;
    v.worker = scheduler::worker_id();
    detail::g_phase_violation_handler.load(std::memory_order_acquire)(v);
  }

  static constexpr std::uint64_t mask21 = (1ULL << 21) - 1;
  static std::uint64_t delta(op_kind k) noexcept {
    return 1ULL << (21 * static_cast<int>(k));
  }
  std::atomic<std::uint64_t> in_flight_{0};
  const char* name_ = nullptr;
#if PHCH_TELEMETRY_ENABLED
  obs::phase_epoch epoch_;
#endif
};

}  // namespace phch
