// Phase-discipline policies (Definition 1 of the paper), as views over the
// per-table phase state machine in core/phase_runtime.h.
//
// A phase-concurrent table requires the caller to keep operations of
// different types from overlapping in time:
//     S = { {insert}, {delete}, {find, elements} }.
// Tables take a Phase policy parameter and hold one instance of it. Both
// policies carry exactly one phase-state word — a phase_runtime — which is
// the table's sole source of phase truth: every operation (scalar or
// batched) announces its class through it, the class-transition edge feeds
// the obs tracer exactly once per boundary, and the monotone phase epoch is
// what quiescence-based reclamation (parallel/reclaim.h) keys its grace
// periods to.
//
// These policies are the *dynamic* half of the phase contract; the static
// half is the capability annotations of utils/phase_caps.h (DESIGN.md §15).
// The scope guards here carry no thread-safety attributes on purpose: the
// operation class is a runtime value (op_kind), while TSA capabilities are
// resolved at compile time — the per-class tokens live on the tables, where
// the class *is* static (one per annotated public operation).
//
// `unchecked_phases` (the default) is the runtime alone — the same-class
// fast path is one relaxed load and a compare, matching the paper's
// benchmarked code. `checked_phases` additionally maintains per-table
// in-flight counters per operation class and, on an illegal overlap, routes
// a structured phase_violation report through a pluggable process-wide
// handler. The default handler prints the report and aborts (so the test
// suite can still death-test the discipline); tests install their own
// handler to intercept violations in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "phch/core/phase_runtime.h"
#include "phch/parallel/scheduler.h"

namespace phch {

// Everything known about a phase-discipline violation at detection time:
// which table (address, plus its debug name if one was set), what operation
// class tried to start, how many operations of each class were in flight,
// and which scheduler worker tripped it (-1 for non-pool threads).
struct phase_violation {
  const void* table = nullptr;
  const char* table_name = nullptr;  // may be null (unnamed table)
  op_kind attempted = op_kind::insert;
  std::uint64_t in_flight[3] = {0, 0, 0};  // indexed by op_kind
  int worker = -1;
};

using phase_violation_handler = void (*)(const phase_violation&);

// Default handler: structured report to stderr, then abort. The message
// keeps the "phase-concurrency violation" marker the death tests match.
inline void abort_on_phase_violation(const phase_violation& v) {
  std::fprintf(stderr,
               "phch: phase-concurrency violation: %s started on table %s(%p) "
               "with in-flight ops {insert: %llu, erase: %llu, query: %llu} "
               "(worker %d)\n",
               op_kind_name(v.attempted),
               v.table_name != nullptr ? v.table_name : "", v.table,
               static_cast<unsigned long long>(v.in_flight[0]),
               static_cast<unsigned long long>(v.in_flight[1]),
               static_cast<unsigned long long>(v.in_flight[2]), v.worker);
  std::abort();
}

namespace detail {
inline std::atomic<phase_violation_handler> g_phase_violation_handler{
    &abort_on_phase_violation};
}

// Installs `h` as the process-wide violation handler and returns the
// previous one. Pass nullptr to restore the aborting default. A handler
// that returns normally lets the offending operation proceed (the overlap
// has already been recorded); intercepting tests typically count or stash
// the report.
inline phase_violation_handler set_phase_violation_handler(
    phase_violation_handler h) noexcept {
  return detail::g_phase_violation_handler.exchange(
      h != nullptr ? h : &abort_on_phase_violation, std::memory_order_acq_rel);
}

struct unchecked_phases {
  struct scope {
    scope(unchecked_phases& owner, op_kind kind) noexcept {
      owner.runtime_.on_op(kind);
    }
  };

  phase_runtime& runtime() noexcept { return runtime_; }
  const phase_runtime& runtime() const noexcept { return runtime_; }

  phase_runtime runtime_;
};

class checked_phases {
 public:
  class scope {
   public:
    scope(checked_phases& owner, op_kind kind) noexcept : owner_(owner), kind_(kind) {
      owner_.runtime_.on_op(kind);
      const std::uint64_t prev =
          owner_.in_flight_.fetch_add(delta(kind_), std::memory_order_acq_rel);
      // Each op class owns 21 bits of the counter; any other class having a
      // non-zero count means ops of different types overlapped in time.
      for (int k = 0; k < 3; ++k) {
        if (k != static_cast<int>(kind_) && ((prev >> (21 * k)) & mask21) != 0) {
          owner_.report_violation(kind_, prev);
          break;
        }
      }
    }
    ~scope() { owner_.in_flight_.fetch_sub(delta(kind_), std::memory_order_acq_rel); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    checked_phases& owner_;
    op_kind kind_;
  };

  phase_runtime& runtime() noexcept { return runtime_; }
  const phase_runtime& runtime() const noexcept { return runtime_; }

  // Optional debug name included in violation reports. The pointed-to
  // string must outlive the table (string literals in practice).
  void set_name(const char* name) noexcept { name_ = name; }
  const char* name() const noexcept { return name_; }

 private:
  void report_violation(op_kind attempted, std::uint64_t prev) const {
    phase_violation v;
    v.table = this;
    v.table_name = name_;
    v.attempted = attempted;
    for (int k = 0; k < 3; ++k) v.in_flight[k] = (prev >> (21 * k)) & mask21;
    v.worker = scheduler::worker_id();
    detail::g_phase_violation_handler.load(std::memory_order_acquire)(v);
  }

  static constexpr std::uint64_t mask21 = (1ULL << 21) - 1;
  static std::uint64_t delta(op_kind k) noexcept {
    return 1ULL << (21 * static_cast<int>(k));
  }
  phase_runtime runtime_;
  std::atomic<std::uint64_t> in_flight_{0};
  const char* name_ = nullptr;
};

}  // namespace phch
