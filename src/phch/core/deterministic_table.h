// linearHash-D: the paper's contribution. A deterministic phase-concurrent
// hash table using open addressing with prioritized linear probing,
// extending the Blelloch–Golovin history-independent table with CAS-based
// concurrent inserts, deletes and finds (Figure 1 of the paper).
//
// Guarantees (Theorems 1 and 2):
//  - after any collection of concurrent inserts (resp. deletes) completes,
//    the slot array is the unique layout satisfying the ordering invariant
//    for the resulting key set — i.e. the state is a function of the *set*
//    of operations, not their interleaving;
//  - operations are non-blocking and terminate provided the table never
//    becomes full.
//
// Phase discipline (caller's contract, checkable via the Phase parameter):
//    S = { {insert}, {erase}, {find, contains, elements, for_each} }.
//
// The implementation is one policy choice over the shared open-addressing
// core (core/probe_engine.h): prioritized ordering — inserts displace
// lower-priority occupants and probes stop early on the ordering
// invariant — with back-shift (FindReplacement) deletion. History
// independence is a property of exactly this ordering policy; see the
// engine header for the probe/CAS machinery, which is common to all the
// linear tables.
#pragma once

#include "phch/core/probe_engine.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
using deterministic_table =
    probe_engine<Traits, Phase, prioritized_order, backshift_delete>;

}  // namespace phch
