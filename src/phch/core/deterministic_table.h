// linearHash-D: the paper's contribution. A deterministic phase-concurrent
// hash table using open addressing with prioritized linear probing,
// extending the Blelloch–Golovin history-independent table with CAS-based
// concurrent inserts, deletes and finds (Figure 1 of the paper).
//
// Guarantees (Theorems 1 and 2):
//  - after any collection of concurrent inserts (resp. deletes) completes,
//    the slot array is the unique layout satisfying the ordering invariant
//    for the resulting key set — i.e. the state is a function of the *set*
//    of operations, not their interleaving;
//  - operations are non-blocking and terminate provided the table never
//    becomes full.
//
// Phase discipline (caller's contract, checkable via the Phase parameter):
//    S = { {insert}, {erase}, {find, contains, elements, for_each} }.
//
// Implementation notes.
//  * Slot positions during a delete are tracked as *unwrapped* indices: a
//    position is a non-decreasing integer whose low log2(capacity) bits
//    address the array. This realizes the paper's "higher position within a
//    cluster" comparisons (which must respect wraparound) without case
//    analysis: a probe path never exceeds capacity slots when the table is
//    non-full, so positions within one operation are comparable directly.
//  * `unwrapped_home(v, j)`: an element read at unwrapped position j must
//    have hashed within (j - capacity, j]; the congruent representative in
//    that window is j - ((j - h(v)) & mask).
//  * Duplicate keys: with Traits::has_combine, an insert meeting an equal
//    key merges values with the commutative combine function via CAS (the
//    paper's "Combining" paragraph; double-word CAS for 16-byte slots).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/striped_counter.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class deterministic_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  // Probes may stop early on the ordering invariant (batch engine tag).
  static constexpr bool ordered_probes = true;

  // Capacity is rounded up to a power of two. The caller must keep the
  // table from filling (paper precondition); `load_factor()` reports usage.
  explicit deterministic_table(std::size_t min_capacity) : slots_(min_capacity) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }
  std::size_t count() const { return slots_.count(); }

  // Occupied-slot count maintained by a cache-line-striped counter so the
  // insert/erase hot paths never fetch_add a shared line (exact at phase
  // boundaries, summed lazily; used by the growable wrapper's load trigger
  // without an O(capacity) scan).
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }
  double load_factor() const { return static_cast<double>(count()) / capacity(); }
  void clear() {
    slots_.clear();
    occupied_.reset();
  }

  // Outcome of insert_bounded, for the growable wrapper's resize trigger.
  enum class insert_result {
    ok,        // inserted within the probe limit
    lengthy,   // inserted, but the probe sequence exceeded the limit: the
               // table is overfull and should be grown (paper §4 Resizing)
    aborted,   // probe limit hit before the first CAS: nothing was modified;
               // grow and retry
  };

  // INSERT (Figure 1, lines 1-10). Safe to call concurrently with other
  // inserts only. No return value: commutativity is with respect to table
  // state, and "was it new?" is not well defined under concurrent merging.
  void insert(value_type v) {
    insert_impl(v, capacity() + 1, home(Traits::key(v)), 0);
  }

  // Batch-engine continuation (core/batch_ops.h): resume the Figure-1 loop
  // at slot i after the pipelined prefix has advanced past `advances` slots
  // of strictly higher priority. The slot at i is re-loaded here, so a stale
  // prefix read only costs a retry, never correctness.
  void insert_from(value_type v, std::size_t i, std::size_t advances) {
    insert_impl(v, capacity() + 1, i, advances);
  }

  // Insert that detects an overfull table for the growable wrapper via the
  // probe-length trigger. An over-limit probe aborts cleanly if the
  // operation has not yet modified the table; once committed (first
  // successful CAS), the displacement chain cannot be abandoned, so the
  // insert completes and merely reports `lengthy`.
  insert_result insert_bounded(value_type v, std::size_t probe_limit) {
    return insert_impl(v, probe_limit, home(Traits::key(v)), 0);
  }

 private:
  insert_result insert_impl(value_type v, std::size_t probe_limit, std::size_t i,
                            std::size_t advances) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    const std::size_t cap = capacity();
    bool committed = false;
    while (!Traits::is_empty(v)) {
      const value_type c = atomic_load(&slots_[i]);
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), Traits::key(v))) {
        if constexpr (Traits::has_combine) {
          const value_type merged = Traits::combine(c, v);
          if (bits_equal(merged, c)) return finish(advances, probe_limit);
          if (cas(&slots_[i], c, merged)) return finish(advances, probe_limit);
          continue;  // another insert changed the slot; retry this slot
        } else {
          return finish(advances, probe_limit);  // key already present
        }
      }
      if (higher_priority(c, v)) {
        i = next(i);
        if (++advances > cap) throw table_full_error();
        if (!committed && advances > probe_limit) return insert_result::aborted;
      } else if (cas(&slots_[i], c, v)) {
        // The displaced (strictly lower priority) element, possibly ⊥, is
        // now this operation's responsibility.
        committed = true;
        if (Traits::is_empty(c)) occupied_.increment();
        v = c;
        i = next(i);
        if (++advances > cap) throw table_full_error();
      }
      // CAS failure: re-read the same slot and try again.
    }
    return finish(advances, probe_limit);
  }

  static insert_result finish(std::size_t advances, std::size_t probe_limit) noexcept {
    return advances > probe_limit ? insert_result::lengthy : insert_result::ok;
  }

 public:

  // DELETE (Figure 1, lines 25-41). Safe to call concurrently with other
  // erases only. Removes the (single) entry whose key equals `kq`, filling
  // the hole history-independently via FindReplacement.
  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::size_t cap = capacity();
    // Unwrapped coordinates, offset by one capacity so they never underflow.
    const std::uint64_t i = cap + home(kq);
    std::uint64_t k = i;
    // Initial forward scan (lines 27-29): past every slot whose key has
    // strictly higher priority than kq.
    for (;;) {
      const value_type c = atomic_load(slot(k));
      if (Traits::is_empty(c) || !Traits::priority_less(kq, Traits::key(c))) break;
      ++k;
      if (k - i > cap) throw table_full_error();
    }
    erase_downward(kq, i, k);
  }

  // Batch-engine continuation (core/batch_ops.h): the pipelined engine has
  // already run the initial forward scan, stopping `fwd_advances` slots past
  // the key's home; run the downward scan from there.
  void erase_from(key_type kq, std::size_t fwd_advances) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::uint64_t i = capacity() + home(kq);
    erase_downward(kq, i, i + fwd_advances);
  }

 private:
  // Downward scan (lines 30-41), from unwrapped position k down to the
  // query key's unwrapped home i.
  void erase_downward(key_type kq, std::uint64_t i, std::uint64_t k) {
    while (k >= i) {
      const value_type c = atomic_load(slot(k));
      if (Traits::is_empty(c) || !Traits::key_equal(Traits::key(c), kq)) {
        --k;
        continue;
      }
      const auto [j, w] = find_replacement(k);
      if (cas(slot(k), c, w)) {
        if (!Traits::is_empty(w)) {
          // A second copy of w now exists; this operation becomes an
          // outstanding delete for w (lines 36-39).
          kq = Traits::key(w);
          k = j;
          i = unwrapped_home(w, j);
        } else {
          occupied_.decrement();
          return;
        }
      } else {
        --k;  // the copy we saw was deleted or moved down; keep scanning
      }
    }
  }

 public:

  // FIND (Figure 1, lines 42-46). Safe concurrently with finds/elements.
  // Returns the stored value for key kq, or Traits::empty() if absent. The
  // ordering invariant lets the probe stop at the first slot whose priority
  // is not higher than kq — absent keys can be cheaper than in standard
  // linear probing.
  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    const std::size_t cap = capacity();
    std::size_t i = home(kq);
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) return Traits::empty();
      if (!Traits::priority_less(kq, Traits::key(c))) {
        return Traits::key_equal(Traits::key(c), kq) ? c : Traits::empty();
      }
      i = next(i);
      if (++advances > cap) throw table_full_error();
    }
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  // ELEMENTS(): the occupied slots packed in slot order. Because the layout
  // is history-independent, the result is a deterministic function of the
  // table's contents. Same phase class as find.
  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    return slots_.elements();
  }

  // Applies f to each occupied slot (in parallel); query phase.
  template <typename F>
  void for_each(F&& f) const {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity(), [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

  // Raw slot view for tests (layout/ordering-invariant verification).
  const value_type* raw_slots() const noexcept { return slots_.data(); }

  // Address of the key's home slot, for software prefetching in batched
  // operations (see core/batch_ops.h).
  const void* home_address(key_type k) const noexcept { return &slots_[home(k)]; }

  // Batch-engine phase hooks: one scope spanning a whole pipelined block,
  // so checked_phases observes batched traffic it would otherwise miss.
  typename Phase::scope batch_query_scope() const {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() {
    return typename Phase::scope(phase_, op_kind::erase);
  }

 private:
  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }
  value_type* slot(std::uint64_t unwrapped) noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }
  const value_type* slot(std::uint64_t unwrapped) const noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }

  // True iff slot value c has strictly higher priority than v (⊥ is the
  // lowest priority; keys are compared with Traits::priority_less).
  static bool higher_priority(value_type c, value_type v) noexcept {
    if (Traits::is_empty(c)) return false;
    if (Traits::is_empty(v)) return true;
    return Traits::priority_less(Traits::key(v), Traits::key(c));
  }

  // Unwrapped home position of element v observed at unwrapped position j:
  // the representative of h(key(v)) in the window (j - capacity, j].
  std::uint64_t unwrapped_home(value_type v, std::uint64_t j) const noexcept {
    const std::uint64_t raw = home(Traits::key(v));
    return j - ((j - raw) & slots_.mask());
  }

  // FINDREPLACEMENT (Figure 1, lines 11-24): locate the element that must
  // fill the hole at unwrapped position k. Scans up to the first candidate
  // that is ⊥ or hashes at-or-before k, then re-scans down because
  // concurrent deletes only move elements toward lower positions.
  std::pair<std::uint64_t, value_type> find_replacement(std::uint64_t k) const {
    const std::size_t cap = capacity();
    std::uint64_t j = k;
    value_type w;
    do {
      ++j;
      if (j - k > cap) throw table_full_error();
      w = atomic_load(slot(j));
    } while (!Traits::is_empty(w) && unwrapped_home(w, j) > k);
    for (std::uint64_t m = j - 1; m > k; --m) {
      const value_type w2 = atomic_load(slot(m));
      if (Traits::is_empty(w2) || unwrapped_home(w2, m) <= k) {
        w = w2;
        j = m;
      }
    }
    return {j, w};
  }

  slot_array<Traits> slots_;
  striped_counter occupied_;
  mutable Phase phase_;
};

}  // namespace phch
