// hopscotchHash: re-implementation of Herlihy, Shavit & Tzafrir's hopscotch
// hashing (DISC 2008), the paper's fastest fully-concurrent open-addressing
// competitor, plus the paper's "-PC" variant.
//
// Every bucket b carries a 64-bit hop bitmap: bit d set means slot b+d
// (mod capacity) holds an element whose home bucket is b, so a find touches
// at most one extra cache line. Inserts lock the home bucket's *segment*,
// claim an empty slot with a CAS on a BUSY sentinel, and if the slot is
// further than H = 64 positions from home, repeatedly displace an element
// from the window just below the free slot to bring the hole closer.
//
// Concurrency control, as in the original:
//  - striped segment locks serialize updates to a bucket's hop bitmap;
//  - a per-segment timestamp lets fully-concurrent finds detect a racing
//    displacement and fall back to a linear scan of the hop window.
//
// The phase-concurrent variant (WithTimestamps = false) is the paper's
// hopscotchHash-PC: when finds never overlap updates the timestamp field is
// dead weight, so it is removed entirely.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"

namespace phch {

template <typename Traits = int_entry<>, bool WithTimestamps = true,
          typename Phase = unchecked_phases>
class hopscotch_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  static constexpr std::size_t kHopRange = 64;  // machine word, as the paper suggests

  explicit hopscotch_table(std::size_t min_capacity)
      : capacity_(round_up_pow2(std::max<std::size_t>(min_capacity, 4 * kHopRange))),
        mask_(capacity_ - 1),
        slots_(capacity_),
        hop_(capacity_, 0),
        locks_(capacity_ / kSegmentSize),
        timestamps_(WithTimestamps ? capacity_ / kSegmentSize : 1) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  void clear() {
    parallel_for(0, capacity_, [&](std::size_t i) {
      slots_[i] = Traits::empty();
      hop_[i] = 0;
    });
  }

  void insert(value_type v) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    const key_type k = Traits::key(v);
    const std::size_t b = home(k);
    std::lock_guard<spinlock> lg(locks_[segment(b)]);
    // Duplicate check through the hop bitmap (home segment is locked, so
    // bucket b's membership cannot change underneath us).
    if (std::uint64_t bits = hop_load(b)) {
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        value_type& s = slots_[(b + d) & mask_];
        const value_type c = atomic_load(&s);
        if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), k)) {
          if constexpr (Traits::has_combine) atomic_store(&s, Traits::combine(c, v));
          return;
        }
      }
    }
    // Claim the first empty slot at or after b with a CAS to BUSY (other
    // segments' inserters compete for the same empty slots).
    std::uint64_t free = b;  // unwrapped position
    for (;;) {
      const value_type c = atomic_load(slot(free));
      if (Traits::is_empty(c) && cas(slot(free), c, Traits::busy())) break;
      ++free;
      if (free - b >= capacity_) throw table_full_error();
    }
    // Hopscotch displacement: while the hole is out of range of b, move an
    // element from the window just below the hole into the hole.
    while (free - b >= kHopRange) {
      const std::uint64_t new_free = displace(free, segment(b));
      if (new_free == free) {
        // No movable candidate: the table needs resizing; undo the claim.
        atomic_store(slot(free), Traits::empty());
        throw table_full_error();
      }
      free = new_free;
    }
    atomic_store(slot(free), v);
    hop_store(b, hop_load(b) | (1ULL << (free - b)));
  }

  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::size_t b = home(kq);
    std::lock_guard<spinlock> lg(locks_[segment(b)]);
    std::uint64_t bits = hop_load(b);
    while (bits != 0) {
      const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      value_type& s = slots_[(b + d) & mask_];
      const value_type c = atomic_load(&s);
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) {
        bump_timestamp(segment(b));
        atomic_store(&s, Traits::empty());
        hop_store(b, hop_load(b) & ~(1ULL << d));
        bump_timestamp(segment(b));
        return;
      }
    }
  }

  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    const std::size_t b = home(kq);
    for (int attempt = 0; attempt < kFindRetries; ++attempt) {
      const std::uint32_t ts0 = read_timestamp(segment(b));
      std::uint64_t bits = hop_load(b);
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const value_type c = atomic_load(&slots_[(b + d) & mask_]);
        if (!Traits::is_empty(c) && !bits_equal(c, Traits::busy()) &&
            Traits::key_equal(Traits::key(c), kq)) {
          return c;
        }
      }
      if constexpr (!WithTimestamps) return Traits::empty();
      if (read_timestamp(segment(b)) == ts0) return Traits::empty();
      // A displacement raced with us; retry, then fall through to the slow
      // path that scans the whole hop window regardless of bitmaps.
    }
    for (std::size_t d = 0; d < kHopRange; ++d) {
      const value_type c = atomic_load(&slots_[(b + d) & mask_]);
      if (!Traits::is_empty(c) && !bits_equal(c, Traits::busy()) &&
          Traits::key_equal(Traits::key(c), kq)) {
        return c;
      }
    }
    return Traits::empty();
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    return pack(
        capacity_, [&](std::size_t i) { return !Traits::is_empty(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

  template <typename F>
  void for_each(F&& f) const {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity_, [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

 private:
  static constexpr std::size_t kSegmentSize = 256;  // buckets per lock stripe
  static constexpr int kFindRetries = 2;

  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & mask_; }
  std::size_t segment(std::uint64_t unwrapped) const noexcept {
    return (unwrapped & mask_) / kSegmentSize;
  }
  value_type* slot(std::uint64_t unwrapped) noexcept { return &slots_[unwrapped & mask_]; }
  const value_type* slot(std::uint64_t unwrapped) const noexcept {
    return &slots_[unwrapped & mask_];
  }

  std::uint64_t hop_load(std::size_t b) const noexcept {
    return __atomic_load_n(&hop_[b], __ATOMIC_ACQUIRE);
  }
  void hop_store(std::size_t b, std::uint64_t bits) noexcept {
    __atomic_store_n(&hop_[b], bits, __ATOMIC_RELEASE);
  }

  std::uint32_t read_timestamp(std::size_t seg) const noexcept {
    if constexpr (WithTimestamps)
      return timestamps_[seg].load(std::memory_order_acquire);
    else
      return 0;
  }
  void bump_timestamp(std::size_t seg) noexcept {
    if constexpr (WithTimestamps)
      timestamps_[seg].fetch_add(1, std::memory_order_acq_rel);
  }

  // Tries to move one element from the window (free - H, free) into the
  // BUSY hole at `free`; returns the new (lower) hole position, or `free`
  // unchanged if nothing in the window can move. The caller holds the home
  // segment's lock; the moved element's own segment lock is taken with
  // try_lock to stay deadlock-free across segments.
  std::uint64_t displace(std::uint64_t free, std::size_t held_seg) {
    for (std::uint64_t hb = free - (kHopRange - 1); hb < free; ++hb) {
      const std::size_t seg = segment(hb);
      // Candidate bucket's bitmap; need its segment lock to mutate it.
      std::unique_lock<spinlock> ul;
      if (seg != held_seg) {
        ul = std::unique_lock<spinlock>(locks_[seg], std::try_to_lock);
        if (!ul.owns_lock()) continue;
      }
      std::uint64_t bits = hop_load(hb & mask_);
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t s = hb + d;
        if (s >= free) break;  // bits are scanned lowest-first
        const value_type w = atomic_load(slot(s));
        if (Traits::is_empty(w) || bits_equal(w, Traits::busy())) continue;
        bump_timestamp(seg);
        atomic_store(slot(free), w);
        hop_store(hb & mask_,
                  (hop_load(hb & mask_) & ~(1ULL << d)) | (1ULL << (free - hb)));
        atomic_store(slot(s), Traits::busy());
        bump_timestamp(seg);
        return s;
      }
    }
    return free;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<value_type> slots_;
  std::vector<std::uint64_t> hop_;
  mutable std::vector<spinlock> locks_;
  std::vector<std::atomic<std::uint32_t>> timestamps_;
  mutable Phase phase_;
};

}  // namespace phch
