// hopscotchHash: re-implementation of Herlihy, Shavit & Tzafrir's hopscotch
// hashing (DISC 2008), the paper's fastest fully-concurrent open-addressing
// competitor, plus the paper's "-PC" variant.
//
// Every bucket b carries a 64-bit hop bitmap: bit d set means slot b+d
// (mod capacity) holds an element whose home bucket is b, so a find touches
// at most one extra cache line. Inserts lock the home bucket's *segment*,
// claim an empty slot with a CAS on a BUSY sentinel, and if the slot is
// further than H = 64 positions from home, repeatedly displace an element
// from the window just below the free slot to bring the hole closer.
//
// Concurrency control, as in the original:
//  - striped segment locks serialize updates to a bucket's hop bitmap;
//  - a per-segment timestamp lets fully-concurrent finds detect a racing
//    displacement and fall back to a linear scan of the hop window.
//
// The phase-concurrent variant (WithTimestamps = false) is the paper's
// hopscotchHash-PC: when finds never overlap updates the timestamp field is
// dead weight, so it is removed entirely.
//
// The table models phase_table / deletable_table and forwards its own batch
// members (batch_forwarding_table / erase_forwarding_table): every
// operation's first touches are the home bucket's hop word and the slots of
// its neighborhood, so the batch path keeps a ring of in-flight operations
// and prefetches that home neighborhood (hop word line, the home slot line
// and the next slot line — where nearly all residents sit at sane load
// factors — plus the segment-lock line for mutating ops) one rotation
// before resolving each operation through the scalar walk on warm lines.
// Occupancy is tracked by a striped counter (approx_size(), exact at phase
// boundaries); count() remains the O(capacity) verification scan.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"
#include "phch/parallel/striped_counter.h"
#include "phch/utils/phase_caps.h"

namespace phch {

template <typename Traits = int_entry<>, bool WithTimestamps = true,
          typename Phase = unchecked_phases>
class hopscotch_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  static constexpr std::size_t kHopRange = 64;  // machine word, as the paper suggests

  explicit hopscotch_table(std::size_t min_capacity)
      : capacity_(round_up_pow2(std::max<std::size_t>(min_capacity, 4 * kHopRange))),
        mask_(capacity_ - 1),
        slots_(capacity_),
        hop_(capacity_, 0),
        locks_(capacity_ / kSegmentSize),
        timestamps_(WithTimestamps ? capacity_ / kSegmentSize : 1) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  // Striped occupancy: exact at a phase boundary, approximate mid-phase.
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }

  // O(capacity) reference count, kept as the verification path for
  // approx_size() and the layout tests.
  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  void clear() {
    parallel_for(0, capacity_, [&](std::size_t i) {
      slots_[i] = Traits::empty();
      hop_[i] = 0;
    });
    occupied_.reset();
  }

  void insert(value_type v) PHCH_REQUIRES_PHASE(insert) {
    typename Phase::scope guard(phase_, op_kind::insert);
    insert_impl(v);
  }

  void erase(key_type kq) PHCH_REQUIRES_PHASE(erase) {
    typename Phase::scope guard(phase_, op_kind::erase);
    erase_impl(kq);
  }

  value_type find(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return find_impl(kq);
  }

  bool contains(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    return !Traits::is_empty(find(kq));
  }

  std::vector<value_type> elements() const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return pack(
        capacity_, [&](std::size_t i) { return !Traits::is_empty(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

  template <typename F>
  void for_each(F&& f) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity_, [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

  // --- whole-batch members (batch_forwarding_table) ------------------------
  // One phase scope spans the batch; blocked_for supplies the cross-block
  // parallelism and the per-block engines below supply the memory-level
  // parallelism.

  template <typename V>
  void insert_batch(const std::vector<V>& values) PHCH_REQUIRES_PHASE(insert) {
    [[maybe_unused]] auto scope = batch_insert_scope();
    const std::size_t width = batch_width();
    blocked_for(0, values.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  insert_batch_block(values.data() + s, e - s, width);
                });
  }

  template <typename K>
  std::vector<value_type> find_batch(const std::vector<K>& keys) const
      PHCH_REQUIRES_PHASE(query) {
    std::vector<value_type> out(keys.size());
    [[maybe_unused]] auto scope = batch_query_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  find_batch_block(keys.data() + s, e - s, out.data() + s, width);
                });
    return out;
  }

  template <typename K>
  void erase_batch(const std::vector<K>& keys) PHCH_REQUIRES_PHASE(erase) {
    [[maybe_unused]] auto scope = batch_erase_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  erase_batch_block(keys.data() + s, e - s, width);
                });
  }

  // --- single-thread block engines -----------------------------------------
  // Serial within a block; public so benches can drive them directly with
  // explicit widths. start() prefetches the home neighborhood, so by the
  // time the ring rotates back the scalar walk runs on warm lines.

  template <typename K>
  void find_batch_block(const K* keys, std::size_t n, value_type* out,
                        std::size_t width) const {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t idx;
      std::size_t b;
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0;

    auto start = [&](op& o) {
      const std::size_t idx = issued++;
      const key_type kq = keys[idx];
      o = op{idx, home(kq), kq};
      prefetch_neighborhood_ro(o.b);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      out[o.idx] = find_impl(o.kq);
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename V>
  void insert_batch_block(const V* values, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t b;
      value_type v;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const value_type v = values[issued++];
      o = op{home(Traits::key(v)), v};
      prefetch_neighborhood_rw(o.b);
      detail::prefetch_rw(&locks_[segment(o.b)]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      insert_impl(o.v);  // scalar handoff on a warm home neighborhood
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename K>
  void erase_batch_block(const K* keys, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t b;
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const key_type kq = keys[issued++];
      o = op{home(kq), kq};
      prefetch_neighborhood_rw(o.b);
      detail::prefetch_rw(&locks_[segment(o.b)]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      erase_impl(o.kq);
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  // Batch-engine phase hooks: one scope spanning a whole batch, so
  // checked_phases observes batched traffic it would otherwise miss.
  // phase_rt() is the table's single phase-state word (phase epoch +
  // current class, core/phase_runtime.h), shared by scalar and batch scopes.
  phase_runtime& phase_rt() const noexcept { return phase_.runtime(); }

  typename Phase::scope batch_query_scope() const PHCH_REQUIRES_PHASE(query) {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() PHCH_REQUIRES_PHASE(insert) {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() PHCH_REQUIRES_PHASE(erase) {
    return typename Phase::scope(phase_, op_kind::erase);
  }

 private:
  static constexpr std::size_t kSegmentSize = 256;  // buckets per lock stripe
  static constexpr int kFindRetries = 2;

  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & mask_; }
  std::size_t segment(std::uint64_t unwrapped) const noexcept {
    return (unwrapped & mask_) / kSegmentSize;
  }
  value_type* slot(std::uint64_t unwrapped) noexcept { return &slots_[unwrapped & mask_]; }
  const value_type* slot(std::uint64_t unwrapped) const noexcept {
    return &slots_[unwrapped & mask_];
  }

  // Home-neighborhood prefetch: the hop word plus the first two slot lines
  // of the window [b, b + H). At sane load factors nearly every resident of
  // bucket b sits within the first dozen positions, so these lines cover
  // the scalar walk that resolves the operation.
  void prefetch_neighborhood_ro(std::size_t b) const noexcept {
    detail::prefetch_ro(&hop_[b]);
    detail::prefetch_ro(&slots_[b]);
    detail::prefetch_ro(&slots_[(b + batch_detail::slots_per_line<value_type>)&mask_]);
  }
  void prefetch_neighborhood_rw(std::size_t b) const noexcept {
    detail::prefetch_rw(&hop_[b]);
    detail::prefetch_rw(&slots_[b]);
    detail::prefetch_rw(&slots_[(b + batch_detail::slots_per_line<value_type>)&mask_]);
  }

  std::uint64_t hop_load(std::size_t b) const noexcept {
    return __atomic_load_n(&hop_[b], __ATOMIC_ACQUIRE);
  }
  void hop_store(std::size_t b, std::uint64_t bits) noexcept {
    __atomic_store_n(&hop_[b], bits, __ATOMIC_RELEASE);
  }

  std::uint32_t read_timestamp(std::size_t seg) const noexcept {
    if constexpr (WithTimestamps)
      return timestamps_[seg].load(std::memory_order_acquire);
    else
      return 0;
  }
  void bump_timestamp(std::size_t seg) noexcept {
    if constexpr (WithTimestamps)
      timestamps_[seg].fetch_add(1, std::memory_order_acq_rel);
  }

  // Scalar insert, shared by insert() and the batch handoff. Exactly one of
  // insert_commits / insert_dups / insert_aborts is recorded per call.
  void insert_impl(value_type v) {
    obs::count(obs::counter::insert_ops);
    assert(!Traits::is_empty(v));
    const key_type k = Traits::key(v);
    const std::size_t b = home(k);
    std::lock_guard<spinlock> lg(locks_[segment(b)]);
    // Duplicate check through the hop bitmap (home segment is locked, so
    // bucket b's membership cannot change underneath us).
    if (std::uint64_t bits = hop_load(b)) {
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        value_type& s = slots_[(b + d) & mask_];
        const value_type c = atomic_load(&s);
        if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), k)) {
          if constexpr (Traits::has_combine) atomic_store(&s, Traits::combine(c, v));
          obs::count(obs::counter::insert_dups);
          return;
        }
      }
    }
    // Claim the first empty slot at or after b with a CAS to BUSY (other
    // segments' inserters compete for the same empty slots).
    std::uint64_t free = b;  // unwrapped position
    for (;;) {
      const value_type c = atomic_load(slot(free));
      if (Traits::is_empty(c) && cas(slot(free), c, Traits::busy())) break;
      ++free;
      if (free - b >= capacity_) {
        obs::count(obs::counter::insert_aborts);
        throw table_full_error();
      }
    }
    // Hopscotch displacement: while the hole is out of range of b, move an
    // element from the window just below the hole into the hole.
    while (free - b >= kHopRange) {
      const std::uint64_t new_free = displace(free, segment(b));
      if (new_free == free) {
        // No movable candidate: the table needs resizing; undo the claim.
        atomic_store(slot(free), Traits::empty());
        obs::count(obs::counter::insert_aborts);
        throw table_full_error();
      }
      free = new_free;
    }
    atomic_store(slot(free), v);
    hop_store(b, hop_load(b) | (1ULL << (free - b)));
    occupied_.increment();
    obs::count(obs::counter::insert_commits);
  }

  void erase_impl(key_type kq) {
    obs::count(obs::counter::erase_ops);
    const std::size_t b = home(kq);
    std::lock_guard<spinlock> lg(locks_[segment(b)]);
    std::uint64_t bits = hop_load(b);
    while (bits != 0) {
      const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      value_type& s = slots_[(b + d) & mask_];
      const value_type c = atomic_load(&s);
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) {
        bump_timestamp(segment(b));
        atomic_store(&s, Traits::empty());
        hop_store(b, hop_load(b) & ~(1ULL << d));
        bump_timestamp(segment(b));
        occupied_.decrement();
        obs::count(obs::counter::erase_hits);
        return;
      }
    }
  }

  value_type find_impl(key_type kq) const {
    obs::count(obs::counter::find_ops);
    obs::probe_tally tally;
    const std::size_t b = home(kq);
    for (int attempt = 0; attempt < kFindRetries; ++attempt) {
      const std::uint32_t ts0 = read_timestamp(segment(b));
      std::uint64_t bits = hop_load(b);
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const value_type c = atomic_load(&slots_[(b + d) & mask_]);
        ++tally.slots;
        if (!Traits::is_empty(c) && !bits_equal(c, Traits::busy()) &&
            Traits::key_equal(Traits::key(c), kq)) {
          obs::count(obs::counter::find_hits);
          return c;
        }
      }
      if constexpr (!WithTimestamps) return Traits::empty();
      if (read_timestamp(segment(b)) == ts0) return Traits::empty();
      // A displacement raced with us; retry, then fall through to the slow
      // path that scans the whole hop window regardless of bitmaps.
    }
    for (std::size_t d = 0; d < kHopRange; ++d) {
      const value_type c = atomic_load(&slots_[(b + d) & mask_]);
      ++tally.slots;
      if (!Traits::is_empty(c) && !bits_equal(c, Traits::busy()) &&
          Traits::key_equal(Traits::key(c), kq)) {
        obs::count(obs::counter::find_hits);
        return c;
      }
    }
    return Traits::empty();
  }

  // Tries to move one element from the window (free - H, free) into the
  // BUSY hole at `free`; returns the new (lower) hole position, or `free`
  // unchanged if nothing in the window can move. The caller holds the home
  // segment's lock; the moved element's own segment lock is taken with
  // try_lock to stay deadlock-free across segments.
  std::uint64_t displace(std::uint64_t free, std::size_t held_seg) {
    for (std::uint64_t hb = free - (kHopRange - 1); hb < free; ++hb) {
      const std::size_t seg = segment(hb);
      // Candidate bucket's bitmap; need its segment lock to mutate it.
      std::unique_lock<spinlock> ul;
      if (seg != held_seg) {
        ul = std::unique_lock<spinlock>(locks_[seg], std::try_to_lock);
        if (!ul.owns_lock()) continue;
      }
      std::uint64_t bits = hop_load(hb & mask_);
      while (bits != 0) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t s = hb + d;
        if (s >= free) break;  // bits are scanned lowest-first
        const value_type w = atomic_load(slot(s));
        if (Traits::is_empty(w) || bits_equal(w, Traits::busy())) continue;
        bump_timestamp(seg);
        atomic_store(slot(free), w);
        hop_store(hb & mask_,
                  (hop_load(hb & mask_) & ~(1ULL << d)) | (1ULL << (free - hb)));
        atomic_store(slot(s), Traits::busy());
        bump_timestamp(seg);
        obs::count(obs::counter::hopscotch_displacements);
        return s;
      }
    }
    return free;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<value_type> slots_;
  std::vector<std::uint64_t> hop_;
  mutable std::vector<spinlock> locks_;
  std::vector<std::atomic<std::uint32_t>> timestamps_;
  striped_counter occupied_;
  mutable Phase phase_;

 public:
  // Phase-capability tokens (utils/phase_caps.h): the static half of the
  // phase contract the Phase policy enforces at runtime.
  PHCH_PHASE_CAPABILITIES();
};

}  // namespace phch
