// Sequential baselines used throughout the paper's evaluation:
//  - serial_table_hi (serialHash-HI): the Blelloch–Golovin strongly
//    history-independent linear probing table (FOCS'07) — prioritized
//    probing with swaps on insert, recursive hole-filling on delete. Its
//    layout is a pure function of the key set.
//  - serial_table_hd (serialHash-HD): standard linear probing — first-empty
//    insert, backward-shift delete. Layout depends on operation history.
//
// Both share the deterministic tables' Traits policies so they can be
// compared slot-for-slot in tests.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/table_common.h"

// phch_lint: not-a-table
// (Single-threaded reference implementations: no concurrency contract, so
// no phase-capability surface — DESIGN.md §15.)

namespace phch {

template <typename Traits = int_entry<>>
class serial_table_hi {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit serial_table_hi(std::size_t min_capacity) : slots_(min_capacity) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }
  std::size_t count() const { return slots_.count(); }
  void clear() { slots_.clear(); }

  void insert(value_type v) {
    assert(!Traits::is_empty(v));
    std::size_t i = home(Traits::key(v));
    std::size_t advances = 0;
    while (!Traits::is_empty(v)) {
      value_type& c = slots_[i];
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), Traits::key(v))) {
        if constexpr (Traits::has_combine) c = Traits::combine(c, v);
        return;
      }
      if (Traits::is_empty(c) ||
          Traits::priority_less(Traits::key(c), Traits::key(v))) {
        std::swap(c, v);  // v takes the slot; the displaced element continues
      }
      i = next(i);
      if (++advances > capacity()) throw table_full_error();
    }
  }

  void erase(key_type kq) {
    // Locate kq; the ordering invariant allows stopping early.
    std::size_t i = home(kq);
    for (;;) {
      const value_type c = slots_[i];
      if (Traits::is_empty(c)) return;
      if (!Traits::priority_less(kq, Traits::key(c))) {
        if (!Traits::key_equal(Traits::key(c), kq)) return;  // not present
        break;
      }
      i = next(i);
    }
    // Recursive hole filling: replace with the nearest later element that
    // hashes at-or-before the hole, until the replacement is ⊥.
    for (;;) {
      // Find replacement for the hole at i.
      std::size_t j = i;
      std::size_t dist = 0;
      value_type w;
      for (;;) {
        j = next(j);
        ++dist;
        w = slots_[j];
        if (Traits::is_empty(w)) break;
        // home of w relative to the hole: distance from home(w) to j,
        // measured backward; if that distance >= dist then w hashed
        // at-or-before i and may move into the hole.
        const std::size_t back = (j - home(Traits::key(w))) & slots_.mask();
        if (back >= dist) break;
      }
      slots_[i] = w;
      if (Traits::is_empty(w)) return;
      i = j;  // continue filling the hole left by w
    }
  }

  value_type find(key_type kq) const {
    std::size_t i = home(kq);
    for (;;) {
      const value_type c = slots_[i];
      if (Traits::is_empty(c)) return Traits::empty();
      if (!Traits::priority_less(kq, Traits::key(c))) {
        return Traits::key_equal(Traits::key(c), kq) ? c : Traits::empty();
      }
      i = next(i);
    }
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  // The shared pack-based ELEMENTS() (table_common.h); slot order, so the
  // output is a deterministic function of the layout.
  std::vector<value_type> elements() const { return slots_.elements(); }

  const value_type* raw_slots() const noexcept { return slots_.data(); }

 private:
  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }

  slot_array<Traits> slots_;
};

template <typename Traits = int_entry<>>
class serial_table_hd {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit serial_table_hd(std::size_t min_capacity) : slots_(min_capacity) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }
  std::size_t count() const { return slots_.count(); }
  void clear() { slots_.clear(); }

  void insert(value_type v) {
    assert(!Traits::is_empty(v));
    std::size_t i = home(Traits::key(v));
    std::size_t advances = 0;
    for (;;) {
      value_type& c = slots_[i];
      if (Traits::is_empty(c)) {
        c = v;
        return;
      }
      if (Traits::key_equal(Traits::key(c), Traits::key(v))) {
        if constexpr (Traits::has_combine) c = Traits::combine(c, v);
        return;
      }
      i = next(i);
      if (++advances > capacity()) throw table_full_error();
    }
  }

  void erase(key_type kq) {
    std::size_t i = home(kq);
    for (;;) {
      const value_type c = slots_[i];
      if (Traits::is_empty(c)) return;
      if (Traits::key_equal(Traits::key(c), kq)) break;
      i = next(i);
    }
    // Standard backward-shift deletion.
    for (;;) {
      std::size_t j = i;
      std::size_t dist = 0;
      value_type w;
      for (;;) {
        j = next(j);
        ++dist;
        w = slots_[j];
        if (Traits::is_empty(w)) break;
        const std::size_t back = (j - home(Traits::key(w))) & slots_.mask();
        if (back >= dist) break;
      }
      slots_[i] = w;
      if (Traits::is_empty(w)) return;
      i = j;
    }
  }

  value_type find(key_type kq) const {
    std::size_t i = home(kq);
    for (;;) {
      const value_type c = slots_[i];
      if (Traits::is_empty(c)) return Traits::empty();
      if (Traits::key_equal(Traits::key(c), kq)) return c;
      i = next(i);
    }
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  std::vector<value_type> elements() const { return slots_.elements(); }

  const value_type* raw_slots() const noexcept { return slots_.data(); }

 private:
  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }

  slot_array<Traits> slots_;
};

}  // namespace phch
