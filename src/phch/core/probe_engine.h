// The policy-based open-addressing core behind the linear-probing tables.
//
// The paper's three linear-probing variants are one algorithm with two
// orthogonal policy choices:
//
//   ordering policy   what a probe may conclude from an occupant
//     prioritized_order  slots keep the history-independent ordering
//                        invariant (Definition 2): an insert displaces
//                        lower-priority occupants, and probes stop early at
//                        the first not-higher-priority slot (linearHash-D,
//                        §3, Figure 1).
//     arrival_order      first-empty-slot placement, so the layout depends
//                        on arrival order; probes stop only at ⊥ or an
//                        equal key (linearHash-ND, after Gao et al.).
//
//   delete policy     how erase removes an entry
//     backshift_delete   hole filling via FindReplacement (Figure 1, lines
//                        11–24): the cluster is repaired in place and the
//                        table carries no garbage.
//     tombstone_delete   the §2 strawman: mark the slot with Traits::busy()
//                        and never reuse it; probes skip tombstones, and
//                        only compact() reclaims them.
//
// probe_engine owns everything the policies share: the slot array, the
// probe/CAS loops (scalar entry points plus the insert_from/erase_from
// continuations the pipelined batch engine resumes into), the striped
// occupancy counter, capacity handling, phase-checking scopes, and the
// ELEMENTS() pack. The concrete tables are thin aliases:
//
//   deterministic_table = probe_engine<prioritized_order, backshift_delete>
//   nd_linear_table     = probe_engine<arrival_order,     backshift_delete>
//   tombstone_table     = probe_engine<arrival_order,     tombstone_delete>
//
// The engine also distills each policy pair into three static probe
// classifiers — classify_find / insert_scan_stop / erase_scan_stop — which
// the batched engines in core/batch_ops.h drive instead of re-implementing
// policy logic, so every policy combination gets software-pipelined batching
// for free. Layouts are bit-identical to the pre-engine tables: the loops
// below are the same control flow, merely parameterized.
//
// Tag sidecar (core/tag_array.h + core/simd_scan.h). Alongside the slots
// the engine keeps one fingerprint byte per slot, published with a relaxed
// store after each slot CAS commits. When the active SIMD backend is on,
// the scalar probe loops scan whole groups of tags and touch only candidate
// slots; every candidate is confirmed against the slot array, so layouts
// and results are unchanged. What each operation may soundly conclude from
// a (possibly stale) tag depends on the phase's slot transitions:
//
//   find   (query phase)    the table is quiescent, tags are exact: probe
//                           candidates below the first empty, all policies.
//   erase  (delete phase)   tombstone: slots only go live -> tombstone, an
//                           empty tag proves absence; candidates confirm.
//                           backshift: a mid-move copy can sit under a
//                           stale tag, so tags never prove absence — a
//                           confirmed candidate (or the first empty) only
//                           picks the start of the full-slot downward scan.
//   insert (insert phase)   arrival order only: stale tags err toward
//                           "empty", which merely stops the group scan
//                           early; the scalar insert_impl re-verifies from
//                           that slot. Prioritized inserts displace
//                           occupants (occupied -> occupied transitions
//                           with momentarily stale tags) and their stops
//                           are priority comparisons a fingerprint cannot
//                           decide, so they keep the untagged loop.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/simd_scan.h"
#include "phch/core/table_common.h"
#include "phch/core/tag_array.h"
#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/striped_counter.h"
#include "phch/utils/phase_caps.h"

namespace phch {

// --- ordering policies ------------------------------------------------------

// History-independent prioritized linear probing (the paper's contribution).
struct prioritized_order {
  static constexpr bool ordered_probes = true;
};

// First-fit placement, layout depends on arrival order (the ND baseline).
struct arrival_order {
  static constexpr bool ordered_probes = false;
};

// --- delete policies --------------------------------------------------------

// Hole filling by back-shifting (Figure 1 FINDREPLACEMENT); no garbage.
struct backshift_delete {
  static constexpr bool uses_tombstones = false;
};

// Gao-et-al tombstones: erase marks, probes skip, footprint only grows.
struct tombstone_delete {
  static constexpr bool uses_tombstones = true;
};

template <typename Traits, typename Phase, typename Order, typename Delete>
class probe_engine {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;
  using order_policy = Order;
  using delete_policy = Delete;

  // Probes may stop early on the ordering invariant (batch-engine tag).
  static constexpr bool ordered_probes = Order::ordered_probes;
  // Tombstones make every probe bounded: a full sweep proves absence rather
  // than signalling a (forbidden) full table, because garbage, not live
  // elements, may occupy every slot.
  static constexpr bool bounded_probes = Delete::uses_tombstones;

  // Capacity is rounded up to a power of two. The caller must keep the
  // table from filling (paper precondition); `load_factor()` reports usage.
  explicit probe_engine(std::size_t min_capacity)
      : slots_(min_capacity), tags_(slots_.capacity()) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }

  // Live entries (excludes tombstones), by parallel scan.
  std::size_t count() const {
    if constexpr (Delete::uses_tombstones) {
      return reduce(std::size_t{0}, capacity(), std::size_t{0},
                    std::plus<std::size_t>{},
                    [&](std::size_t i) { return std::size_t{is_present(slots_[i])}; });
    } else {
      return slots_.count();
    }
  }

  // Live-entry count maintained by a cache-line-striped counter so the
  // insert/erase hot paths never fetch_add a shared line (exact at phase
  // boundaries, summed lazily; used by the growable wrapper's load trigger
  // without an O(capacity) scan).
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }

  double load_factor() const { return static_cast<double>(count()) / capacity(); }

  void clear() {
    slots_.clear();
    tags_.clear();
    occupied_.reset();
  }

  // --- tombstone-only surface ----------------------------------------------

  // Live entries plus tombstones: the footprint that governs probe lengths.
  std::size_t footprint() const
    requires(Delete::uses_tombstones)
  {
    return reduce(std::size_t{0}, capacity(), std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return std::size_t{!Traits::is_empty(slots_[i])};
                  });
  }

  // Rebuilds the table, dropping tombstones — the "copy the whole hash
  // table" reclamation §2 describes. Quiescent-point operation.
  void compact()
    requires(Delete::uses_tombstones)
  {
    std::vector<value_type> live = elements();
    clear();
    parallel_for(0, live.size(), [&](std::size_t i) { insert(live[i]); });
  }

  // --- probe classification (the policy pair, distilled) -------------------
  //
  // These three statics are the whole ordering/delete policy as seen by a
  // probe loop. The scalar operations below and the pipelined batch engines
  // in core/batch_ops.h both consume them, so scalar and batched execution
  // agree by construction.

  // Verdict for one slot during a find for kq.
  static probe_verdict classify_find(value_type c, key_type kq) noexcept {
    if (Traits::is_empty(c)) return probe_verdict::miss;
    if constexpr (Order::ordered_probes) {
      // Ordering invariant: the first not-higher-priority slot decides.
      if (Traits::priority_less(kq, Traits::key(c))) return probe_verdict::advance;
      return Traits::key_equal(Traits::key(c), kq) ? probe_verdict::hit
                                                   : probe_verdict::miss;
    } else {
      if (is_present(c) && Traits::key_equal(Traits::key(c), kq)) {
        return probe_verdict::hit;
      }
      return probe_verdict::advance;  // occupied or tombstone: keep scanning
    }
  }

  // True iff an insert of v probing slot contents c has reached a potential
  // commit point (empty slot, duplicate key, or — under the ordering
  // invariant — a not-higher-priority occupant to displace). While false,
  // the probe advances without writing, which is what the batch engine
  // pipelines; the scalar continuation takes over from the first stop.
  static bool insert_scan_stop(value_type c, value_type v) noexcept {
    if (Traits::is_empty(c)) return true;
    if constexpr (Order::ordered_probes) {
      return !Traits::priority_less(Traits::key(v), Traits::key(c));
    } else {
      return is_present(c) && Traits::key_equal(Traits::key(c), Traits::key(v));
    }
  }

  // True iff the forward scan of an erase for kq stops at slot contents c.
  // Backshift erases then run the downward CAS scan from here; tombstone
  // erases resume the scalar mark loop at this position.
  static bool erase_scan_stop(value_type c, key_type kq) noexcept {
    if (Traits::is_empty(c)) return true;
    if constexpr (Order::ordered_probes) {
      return !Traits::priority_less(kq, Traits::key(c));
    } else if constexpr (Delete::uses_tombstones) {
      return is_present(c) && Traits::key_equal(Traits::key(c), kq);
    } else {
      return false;  // without the invariant only ⊥ stops the scan
    }
  }

  // --- insert ---------------------------------------------------------------

  // Outcome of insert_bounded, for the growable wrapper's resize trigger.
  enum class insert_result {
    ok,        // inserted within the probe limit
    lengthy,   // inserted, but the probe sequence exceeded the limit: the
               // table is overfull and should be grown (paper §4 Resizing)
    aborted,   // probe limit hit before the first CAS: nothing was modified;
               // grow and retry
  };

  // INSERT (Figure 1, lines 1-10 for prioritized order; first-fit
  // otherwise). Safe to call concurrently with other inserts only. No return
  // value: commutativity is with respect to table state, and "was it new?"
  // is not well defined under concurrent merging.
  void insert(value_type v) PHCH_REQUIRES_PHASE(insert) {
    obs::latency_sampler lat(hists_);
    if constexpr (!Order::ordered_probes) {
      const simd::backend b = simd::active();
      if (simd::usable(b, capacity())) {
        insert_tagged(v, b);
        return;
      }
    }
    insert_impl(v, capacity() + 1, home(Traits::key(v)), 0);
  }

  // Batch-engine continuation (core/batch_ops.h): resume the probe loop at
  // slot i after the pipelined prefix has advanced past `advances` slots
  // without reaching a commit point. The slot at i is re-loaded here, so a
  // stale prefix read only costs a retry, never correctness.
  void insert_from(value_type v, std::size_t i, std::size_t advances)
      PHCH_REQUIRES_PHASE(insert) {
    insert_impl(v, capacity() + 1, i, advances);
  }

  // Insert that detects an overfull table for the growable wrapper via the
  // probe-length trigger. An over-limit probe aborts cleanly if the
  // operation has not yet modified the table; once committed (first
  // successful CAS), a displacement chain cannot be abandoned, so the
  // insert completes and merely reports `lengthy`.
  insert_result insert_bounded(value_type v, std::size_t probe_limit)
      PHCH_REQUIRES_PHASE(insert) {
    obs::latency_sampler lat(hists_);
    return insert_impl(v, probe_limit, home(Traits::key(v)), 0);
  }

 private:
  // CAS with telemetry accounting; identical to phch::cas when obs is off.
  static bool cas_tallied(obs::probe_tally& t, value_type* p, value_type expect,
                          value_type desired) noexcept {
    ++t.cas;
    if (cas(p, expect, desired)) return true;
    ++t.cas_failed;
    return false;
  }

  insert_result insert_impl(value_type v, std::size_t probe_limit, std::size_t i,
                            std::size_t advances) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    obs::count(obs::counter::insert_ops);
    obs::probe_tally tally;
    // `advances` slots were already walked by the pipelined prefix; the
    // scope reads the tally's final slot count on every exit path below.
    obs::probe_depth_scope depth(&hists_, tally, advances);
    const std::size_t cap = capacity();
    bool committed = false;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      ++tally.slots;
      if (is_present(c) && Traits::key_equal(Traits::key(c), Traits::key(v))) {
        // Duplicate key: merge values per the traits' combine function.
        if constexpr (!Traits::has_combine) {
          obs::count(obs::counter::insert_dups);
          return finish(advances, probe_limit);  // key already present
        } else if constexpr (Order::ordered_probes) {
          // Whole-slot CAS merge; a failed CAS means another insert changed
          // the slot — re-examine it (it may no longer hold this key).
          const value_type merged = Traits::combine(c, v);
          if (bits_equal(merged, c) || cas_tallied(tally, &slots_[i], c, merged)) {
            obs::count(obs::counter::insert_dups);
            return finish(advances, probe_limit);
          }
          continue;
        } else if constexpr (Delete::uses_tombstones) {
          value_type cur = c;
          bool merged_in = false;
          for (;;) {
            const value_type merged = Traits::combine(cur, v);
            if (bits_equal(merged, cur) || cas_tallied(tally, &slots_[i], cur, merged)) {
              merged_in = true;
              break;
            }
            cur = atomic_load(&slots_[i]);
            if (is_tombstone(cur)) break;  // deleted meanwhile; keep probing
          }
          if (merged_in) {
            obs::count(obs::counter::insert_dups);
            return finish(advances, probe_limit);
          }
          // fall through: advance past the tombstone
        } else {
          // Arrival order with back-shift: a stored entry never moves during
          // an insert phase, so only the value word is merged (in place).
          combine_slot(tally, &slots_[i], c, v);
          obs::count(obs::counter::insert_dups);
          return finish(advances, probe_limit);
        }
      } else if (!insert_scan_stop(c, v)) {
        // The occupant keeps the slot; advance (below).
      } else if (cas_tallied(tally, &slots_[i], c, v)) {
        tags_.store(i, fp_of(v));
        if constexpr (Order::ordered_probes) {
          // The displaced (strictly lower priority) element, possibly ⊥, is
          // now this operation's responsibility.
          committed = true;
          if (Traits::is_empty(c)) {
            occupied_.increment();
            obs::count(obs::counter::insert_commits);
            return finish(advances, probe_limit);
          }
          v = c;  // carry the displaced element onward (advance below)
        } else {
          occupied_.increment();
          obs::count(obs::counter::insert_commits);
          return finish(advances, probe_limit);
        }
      } else {
        continue;  // CAS failure: re-read the same slot and try again
      }
      i = next(i);
      if (++advances > cap) throw table_full_error();
      if (!committed && advances > probe_limit) {
        obs::count(obs::counter::insert_aborts);
        return insert_result::aborted;
      }
    }
  }

  static insert_result finish(std::size_t advances, std::size_t probe_limit) noexcept {
    return advances > probe_limit ? insert_result::lengthy : insert_result::ok;
  }

 public:
  // --- erase ----------------------------------------------------------------

  // DELETE. Safe to call concurrently with other erases only. Backshift
  // (Figure 1, lines 25-41): removes the (single) entry whose key equals
  // `kq`, filling the hole history-independently via FindReplacement.
  // Tombstone: marks the entry's slot with Traits::busy().
  void erase(key_type kq) PHCH_REQUIRES_PHASE(erase) {
    typename Phase::scope guard(phase_, op_kind::erase);
    obs::latency_sampler lat(hists_);
    obs::count(obs::counter::erase_ops);
    const simd::backend b = simd::active();
    if (simd::usable(b, capacity())) {
      erase_tagged(kq, b);
      return;
    }
    if constexpr (Delete::uses_tombstones) {
      tombstone_erase(kq, home(kq), 0);
    } else {
      const std::size_t cap = capacity();
      obs::probe_tally tally;
      obs::probe_depth_scope depth(&hists_, tally);
      // Unwrapped coordinates, offset by one capacity so they never
      // underflow. Initial forward scan (lines 27-29): past every slot the
      // ordering policy says could still precede the key.
      const std::uint64_t i = cap + home(kq);
      std::uint64_t k = i;
      for (;;) {
        ++tally.slots;
        if (erase_scan_stop(atomic_load(slot(k)), kq)) break;
        ++k;
        if (k - i > cap) throw table_full_error();
      }
      erase_downward(tally, kq, i, k);
    }
  }

  // Batch-engine continuation (core/batch_ops.h): the pipelined engine has
  // already run the initial forward scan, stopping `fwd_advances` slots past
  // the key's home. Backshift runs the downward scan from there; tombstone
  // resumes the scalar mark loop at that position (the slot is re-loaded, so
  // a stale pipelined read only costs a few extra probes).
  void erase_from(key_type kq, std::size_t fwd_advances)
      PHCH_REQUIRES_PHASE(erase) {
    typename Phase::scope guard(phase_, op_kind::erase);
    obs::count(obs::counter::erase_ops);
    if constexpr (Delete::uses_tombstones) {
      tombstone_erase(kq, (home(kq) + fwd_advances) & slots_.mask(), fwd_advances);
    } else {
      obs::probe_tally tally;
      obs::probe_depth_scope depth(&hists_, tally, fwd_advances);
      const std::uint64_t i = capacity() + home(kq);
      erase_downward(tally, kq, i, i + fwd_advances);
    }
  }

 private:
  void tombstone_erase(key_type kq, std::size_t i, std::size_t advances) {
    const std::size_t cap = capacity();
    obs::probe_tally tally;
    obs::probe_depth_scope depth(&hists_, tally, advances);
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      ++tally.slots;
      if (Traits::is_empty(c)) return;  // not present
      if (is_present(c) && Traits::key_equal(Traits::key(c), kq)) {
        // Replace with the tombstone; a failed CAS means a concurrent erase
        // got it first (same result).
        if (cas_tallied(tally, &slots_[i], c, Traits::busy())) {
          tags_.store(i, tag_array::kTombstone);
          occupied_.decrement();
          obs::count(obs::counter::erase_hits);
        }
        return;
      }
      i = next(i);
      if (++advances > cap) return;
    }
  }

  // Downward scan (lines 30-41), from unwrapped position k down to the
  // query key's unwrapped home i.
  void erase_downward(obs::probe_tally& tally, key_type kq, std::uint64_t i,
                      std::uint64_t k) {
    while (k >= i) {
      const value_type c = atomic_load(slot(k));
      ++tally.slots;
      if (Traits::is_empty(c) || !Traits::key_equal(Traits::key(c), kq)) {
        --k;
        continue;
      }
      const auto [j, w] = find_replacement(tally, k);
      if (cas_tallied(tally, slot(k), c, w)) {
        tags_.store(static_cast<std::size_t>(k) & slots_.mask(),
                    Traits::is_empty(w) ? tag_array::kEmpty : fp_of(w));
        if (!Traits::is_empty(w)) {
          // A second copy of w now exists; this operation becomes an
          // outstanding delete for w (lines 36-39).
          kq = Traits::key(w);
          k = j;
          i = unwrapped_home(w, j);
        } else {
          occupied_.decrement();
          obs::count(obs::counter::erase_hits);
          return;
        }
      } else {
        --k;  // the copy we saw was deleted or moved down; keep scanning
      }
    }
  }

 public:
  // --- find / enumeration ---------------------------------------------------

  // FIND (Figure 1, lines 42-46). Safe concurrently with finds/elements.
  // Returns the stored value for key kq, or Traits::empty() if absent.
  // Under prioritized order the probe stops at the first slot whose priority
  // is not higher than kq — absent keys can be cheaper than in standard
  // linear probing.
  value_type find(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    obs::latency_sampler lat(hists_);
    obs::count(obs::counter::find_ops);
    const simd::backend b = simd::active();
    if (simd::usable(b, capacity())) return find_tagged(kq, b);
    return find_untagged(kq);
  }

 private:
  value_type find_untagged(key_type kq) const {
    obs::probe_tally tally;
    obs::probe_depth_scope depth(&hists_, tally);
    const std::size_t cap = capacity();
    std::size_t i = home(kq);
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      ++tally.slots;
      switch (classify_find(c, kq)) {
        case probe_verdict::miss:
          return Traits::empty();
        case probe_verdict::hit:
          obs::count(obs::counter::find_hits);
          return c;
        case probe_verdict::advance:
          break;
      }
      i = next(i);
      if (++advances > cap) {
        if constexpr (bounded_probes) return Traits::empty();
        else throw table_full_error();
      }
    }
  }

  // --- tagged probe loops (see the sidecar notes in the file header) -------
  //
  // All three walk the sidecar in naturally-aligned groups: start at the
  // home slot's group with the lanes before home masked off, advance whole
  // groups (the power-of-two capacity is a multiple of the group width), and
  // give up after capacity/W + 1 groups — a full wrap, resolved exactly like
  // the scalar loops' `advances > cap`.

  static std::uint8_t fp_of(value_type v) noexcept {
    return tag_array::fingerprint(Traits::hash(Traits::key(v)));
  }

  // In the (quiescent) query phase tags are exact, so for every policy pair
  // the verdict is: confirm fingerprint candidates below the first empty
  // tag, and conclude a miss at that empty. Prioritized tables trade their
  // early priority-stop for the group scan — same result, and the group
  // compares are far cheaper than per-slot priority compares.
  value_type find_tagged(key_type kq, simd::backend b) const {
    obs::probe_tally tally;
    obs::probe_depth_scope depth(&hists_, tally);
    obs::tag_tally tt;
    const std::uint64_t h = Traits::hash(kq);
    const std::uint8_t fp = tag_array::fingerprint(h);
    const std::size_t mask = slots_.mask();
    const std::size_t w = simd::group_width(b);
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    std::size_t g = ihome & ~(w - 1);
    std::uint32_t lanes = ~0u << (ihome - g);  // skip lanes before home
    const std::size_t max_groups = capacity() / w + 1;
    for (std::size_t scanned = 0;;) {
      simd::group_masks m =
          simd::scan_group(tags_.data() + g, fp, tag_array::kEmpty, b);
      ++tt.groups;
      m.match &= lanes;
      m.empty &= lanes;
      lanes = ~0u;
      std::uint32_t cand = m.match & simd::below_lowest(m.empty);
      while (cand != 0) {
        const std::size_t s = g + static_cast<std::size_t>(std::countr_zero(cand));
        cand &= cand - 1;
        const value_type c = atomic_load(&slots_[s]);
        ++tally.slots;
        ++tt.candidates;
        if (is_present(c) && Traits::key_equal(Traits::key(c), kq)) {
          obs::count(obs::counter::find_hits);
          return c;
        }
        ++tt.false_positives;
      }
      if (m.empty != 0) return Traits::empty();
      g = (g + w) & mask;
      if (++scanned >= max_groups) {
        if constexpr (bounded_probes) return Traits::empty();
        else throw table_full_error();
      }
    }
  }

  // Delete phase. Tombstone tables never move elements, so an empty tag
  // (published only after its slot became empty, and empty slots stay empty
  // all phase) proves absence, and a confirmed candidate is CASed to the
  // tombstone right here. Backshift deletes do move elements — a concurrent
  // FindReplacement may have CASed the key into a slot whose tag byte is
  // not yet published — so a scan verdict only chooses where the full-slot
  // downward scan starts: at a confirmed candidate (the key's position), or
  // at the first empty when no candidate confirms. Both starts dominate
  // every position the key (or a mid-move copy of it) can occupy, which is
  // all erase_downward needs.
  void erase_tagged(key_type kq, simd::backend b) {
    obs::probe_tally tally;
    obs::probe_depth_scope depth(&hists_, tally);
    obs::tag_tally tt;
    const std::uint64_t h = Traits::hash(kq);
    const std::uint8_t fp = tag_array::fingerprint(h);
    const std::size_t mask = slots_.mask();
    const std::size_t cap = capacity();
    const std::size_t w = simd::group_width(b);
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    std::size_t g = ihome & ~(w - 1);
    std::uint32_t lanes = ~0u << (ihome - g);
    const std::size_t max_groups = cap / w + 1;
    const std::uint64_t iu = cap + ihome;  // unwrapped home
    for (std::size_t scanned = 0;;) {
      simd::group_masks m =
          simd::scan_group(tags_.data() + g, fp, tag_array::kEmpty, b);
      ++tt.groups;
      m.match &= lanes;
      m.empty &= lanes;
      lanes = ~0u;
      std::uint32_t cand = m.match & simd::below_lowest(m.empty);
      while (cand != 0) {
        const std::size_t s = g + static_cast<std::size_t>(std::countr_zero(cand));
        cand &= cand - 1;
        const value_type c = atomic_load(&slots_[s]);
        ++tally.slots;
        ++tt.candidates;
        if (is_present(c) && Traits::key_equal(Traits::key(c), kq)) {
          if constexpr (Delete::uses_tombstones) {
            // A failed CAS means a concurrent erase got it first (same
            // result), exactly like the scalar mark loop.
            if (cas_tallied(tally, &slots_[s], c, Traits::busy())) {
              tags_.store(s, tag_array::kTombstone);
              occupied_.decrement();
              obs::count(obs::counter::erase_hits);
            }
          } else {
            erase_downward(tally, kq, iu, iu + ((s - ihome) & mask));
          }
          return;
        }
        ++tt.false_positives;
      }
      if (m.empty != 0) {
        if constexpr (Delete::uses_tombstones) return;  // first ⊥: absent
        const std::size_t s =
            g + static_cast<std::size_t>(std::countr_zero(m.empty));
        erase_downward(tally, kq, iu, iu + ((s - ihome) & mask));
        return;
      }
      g = (g + w) & mask;
      if (++scanned >= max_groups) {
        if constexpr (bounded_probes) return;
        else throw table_full_error();
      }
    }
  }

  // Insert phase, arrival order only (see the file header for why the
  // prioritized loop keeps its untagged scan). During an insert phase slots
  // only go empty -> occupied and tags lag behind, so a stale tag can only
  // look "empty" where the slot is already taken — stopping the group scan
  // early, never late. The scan therefore just finds the first potential
  // commit point (fingerprint match: possible duplicate; empty: possible
  // claim) and hands off to insert_impl, which re-loads from that slot and
  // is correct from any starting position at or before the real stop: every
  // skipped slot is live with a different fingerprint (hence a different
  // key) or a tombstone, and the scalar loop steps over both — inserts
  // never reuse tombstones (the footprint-only-grows policy), so kTombstone
  // tags are correctly not stops.
  void insert_tagged(value_type v, simd::backend b)
    requires(!Order::ordered_probes)
  {
    typename Phase::scope guard(phase_, op_kind::insert);
    obs::tag_tally tt;
    const std::uint64_t h = Traits::hash(Traits::key(v));
    const std::uint8_t fp = tag_array::fingerprint(h);
    const std::size_t mask = slots_.mask();
    const std::size_t cap = capacity();
    const std::size_t w = simd::group_width(b);
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    std::size_t g = ihome & ~(w - 1);
    std::uint32_t lanes = ~0u << (ihome - g);
    const std::size_t max_groups = cap / w + 1;
    for (std::size_t scanned = 0;;) {
      const simd::group_masks m =
          simd::scan_group(tags_.data() + g, fp, tag_array::kEmpty, b);
      ++tt.groups;
      const std::uint32_t stop = (m.match | m.empty) & lanes;
      lanes = ~0u;
      if (stop != 0) {
        const std::size_t s = g + static_cast<std::size_t>(std::countr_zero(stop));
        insert_impl(v, cap + 1, s, (s - ihome) & mask);
        return;
      }
      g = (g + w) & mask;
      if (++scanned >= max_groups) throw table_full_error();
    }
  }

 public:
  bool contains(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    return !Traits::is_empty(find(kq));
  }

  // ELEMENTS(): the live slots packed in slot order, via the shared
  // pack-based implementation. Under prioritized order the result is a
  // deterministic function of the table's contents (history independence).
  // Same phase class as find.
  std::vector<value_type> elements() const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return packed_elements<Traits>(slots_.data(), capacity(),
                                   [](value_type c) { return is_present(c); });
  }

  // Applies f to each live slot (in parallel); query phase.
  template <typename F>
  void for_each(F&& f) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity(), [&](std::size_t s) {
      const value_type c = slots_[s];
      if (is_present(c)) f(c);
    });
  }

  // Raw slot view for tests (layout/ordering-invariant verification).
  const value_type* raw_slots() const noexcept { return slots_.data(); }

  // Raw tag-sidecar view for the batch engine's group scans and the
  // tag-consistency tests. Entry i describes slots_[i]; see tag_array.
  const std::uint8_t* raw_tags() const noexcept { return tags_.data(); }

  // Address of the key's home slot, for software prefetching in batched
  // operations (see core/batch_ops.h).
  const void* home_address(key_type k) const noexcept { return &slots_[home(k)]; }

  // The table's single phase-state word (core/phase_runtime.h): current
  // operation class plus the monotone phase epoch. Exposed so wrappers —
  // auto_phased_table's room transitions, the trace-ledger validation in
  // tools/phch_trace — read and advance the same state the operation scopes
  // use, instead of keeping a parallel phase word.
  phase_runtime& phase_rt() const noexcept { return phase_.runtime(); }

  // The table's distribution block (probe depth, sampled op latency). The
  // batch engines record pipelined finds here; the registry (obs/registry.h)
  // exposes it per named table. Zero-size when telemetry is compiled out.
  obs::table_hists& hists() const noexcept { return hists_; }

  // Batch-engine phase hooks: one scope spanning a whole pipelined block
  // (routed through the same phase_runtime as scalar operations), so
  // checked_phases observes batched traffic it would otherwise miss.
  typename Phase::scope batch_query_scope() const PHCH_REQUIRES_PHASE(query) {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() PHCH_REQUIRES_PHASE(insert) {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() PHCH_REQUIRES_PHASE(erase) {
    return typename Phase::scope(phase_, op_kind::erase);
  }

  // True for a live entry: occupied and (under tombstone deletion) not a
  // tombstone.
  static bool is_present(value_type c) noexcept {
    if (Traits::is_empty(c)) return false;
    if constexpr (Delete::uses_tombstones) return !is_tombstone(c);
    return true;
  }

 private:
  static bool is_tombstone(value_type c) noexcept
    requires(Delete::uses_tombstones)
  {
    return bits_equal(c, Traits::busy());
  }

  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }
  value_type* slot(std::uint64_t unwrapped) noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }
  const value_type* slot(std::uint64_t unwrapped) const noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }

  // Unwrapped home position of element v observed at unwrapped position j:
  // the representative of h(key(v)) in the window (j - capacity, j].
  std::uint64_t unwrapped_home(value_type v, std::uint64_t j) const noexcept {
    const std::uint64_t raw = home(Traits::key(v));
    return j - ((j - raw) & slots_.mask());
  }

  // FINDREPLACEMENT (Figure 1, lines 11-24): locate the element that must
  // fill the hole at unwrapped position k. Scans up to the first candidate
  // that is ⊥ or hashes at-or-before k, then re-scans down because
  // concurrent deletes only move elements toward lower positions. The
  // replacement choice depends only on hash homes, never priorities, which
  // is why both ordering policies share it.
  std::pair<std::uint64_t, value_type> find_replacement(obs::probe_tally& tally,
                                                        std::uint64_t k) const {
    const std::size_t cap = capacity();
    std::uint64_t j = k;
    value_type w;
    do {
      ++j;
      if (j - k > cap) throw table_full_error();
      w = atomic_load(slot(j));
      ++tally.slots;
    } while (!Traits::is_empty(w) && unwrapped_home(w, j) > k);
    for (std::uint64_t m = j - 1; m > k; --m) {
      const value_type w2 = atomic_load(slot(m));
      ++tally.slots;
      if (Traits::is_empty(w2) || unwrapped_home(w2, m) <= k) {
        w = w2;
        j = m;
      }
    }
    return {j, w};
  }

  // In-place duplicate-key merge for arrival order: only the value word
  // changes, with hardware xadd when the combine function is + (the paper's
  // linearHash-ND optimization for edge contraction).
  static void combine_slot(obs::probe_tally& tally, value_type* p, value_type seen,
                           value_type incoming) noexcept {
    if constexpr (requires { Traits::combine_inplace(p, incoming); }) {
      Traits::combine_inplace(p, incoming);
    } else {
      value_type cur = seen;
      for (;;) {
        const value_type merged = Traits::combine(cur, incoming);
        if (bits_equal(merged, cur) || cas_tallied(tally, p, cur, merged)) return;
        cur = atomic_load(p);
      }
    }
  }

  slot_array<Traits> slots_;
  tag_array tags_;
  striped_counter occupied_;
  mutable Phase phase_;
  [[no_unique_address]] mutable obs::table_hists hists_;

 public:
  // Phase-capability tokens (utils/phase_caps.h): the static half of the
  // phase contract the Phase policy enforces at runtime. Public so callers'
  // phase-region markers can name them in their own annotations.
  PHCH_PHASE_CAPABILITIES();
};

}  // namespace phch
