// growable_table: the resizing extension outlined in §4 of the paper, on
// top of the deterministic phase-concurrent table.
//
// An insert detects an overfull table when its probe sequence exceeds a
// threshold of k * log2(capacity) slots (w.h.p. probes are shorter at a
// bounded load factor). The detecting thread allocates a table of twice the
// size behind a lock ("a lock can be used to avoid multiple processes
// allocating simultaneously"), and insertions cooperate to migrate the old
// contents before continuing — re-inserting with the same deterministic
// protocol, so the migrated layout is history-independent too. Migration is
// block-parallel: helpers claim fixed-size blocks of the old slot array from
// an atomic cursor.
//
// Divergence from the paper's sketch, documented here: the paper migrates
// *incrementally* (each insert copies two elements and both tables stay
// live), which requires finds/deletes to consult both tables. We instead
// drain in-flight inserts and migrate completely before new inserts
// proceed — a stop-the-world-per-phase variant that keeps exactly one live
// table, preserves determinism trivially, and has the same amortized cost.
// Only inserts can trigger growth; finds and deletes see a single table, as
// in the paper.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/parallel/spinlock.h"  // cpu_relax

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class growable_table {
 public:
  using inner_table = deterministic_table<Traits, Phase>;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit growable_table(std::size_t initial_capacity = 1024,
                          std::size_t probe_limit_factor = 16)
      : probe_limit_factor_(probe_limit_factor),
        table_(std::make_unique<inner_table>(initial_capacity)) {}

  std::size_t capacity() const noexcept { return table_->capacity(); }
  std::size_t count() const { return table_->count(); }

  void insert(value_type v) {
    using result = typename inner_table::insert_result;
    for (;;) {
      enter();
      result r;
      try {
        r = table_->insert_bounded(v, probe_limit());
      } catch (...) {
        leave();
        throw;
      }
      leave();
      if (r == result::ok) {
        // Secondary trigger: grow once occupancy passes 3/4 of capacity
        // (the probe-length trigger alone cannot protect very small tables,
        // where individual probes can stay short right up to full).
        // approx_size() is the inner table's striped occupancy counter —
        // a lazy per-stripe sum, so this check adds read traffic only, never
        // a contended read-modify-write on the insert hot path.
        const std::size_t cap = table_->capacity();
        if (table_->approx_size() >= cap - cap / 4) grow(cap * 2);
        return;
      }
      // Probe sequence too long: this table is overfull. Grow it (or help a
      // growth already under way), then retry if the insert was aborted.
      grow(table_->capacity() * 2);
      if (r == result::lengthy) return;  // inserted, just slowly
    }
  }

  void erase(key_type kq) { table_->erase(kq); }
  value_type find(key_type kq) const { return table_->find(kq); }
  bool contains(key_type kq) const { return table_->contains(kq); }
  std::vector<value_type> elements() const { return table_->elements(); }

  std::size_t growth_count() const noexcept {
    return growths_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t probe_limit() const noexcept {
    // k * log2(capacity): beyond this an insert declares the table overfull.
    // Capped at half the capacity so small tables trigger growth instead of
    // genuinely filling up.
    std::size_t lg = 1;
    for (std::size_t c = table_->capacity(); c > 1; c >>= 1) ++lg;
    return std::min(probe_limit_factor_ * lg, table_->capacity() / 2);
  }

  void enter() noexcept {
    for (;;) {
      active_.fetch_add(1, std::memory_order_acquire);
      if (!resizing_.load(std::memory_order_acquire)) return;
      // A resize is pending; back out and wait for it to finish.
      active_.fetch_sub(1, std::memory_order_release);
      while (resizing_.load(std::memory_order_acquire)) cpu_relax();
    }
  }
  void leave() noexcept { active_.fetch_sub(1, std::memory_order_release); }

  void grow(std::size_t target_capacity) {
    std::lock_guard<std::mutex> lg(grow_lock_);
    if (table_->capacity() >= target_capacity) return;  // someone else grew it
    resizing_.store(true, std::memory_order_release);
    // Drain in-flight inserts on the old table.
    while (active_.load(std::memory_order_acquire) != 0) cpu_relax();
    auto fresh = std::make_unique<inner_table>(target_capacity);
    // Migrate: deterministic re-insertion of the old contents. The grower
    // runs this with a parallel loop (worker threads stuck in enter() spin,
    // so on an oversubscribed machine migration may serialize; correctness
    // is unaffected).
    const inner_table& old = *table_;
    const value_type* slots = old.raw_slots();
    parallel_for(0, old.capacity(), [&](std::size_t s) {
      const value_type c = slots[s];
      if (!Traits::is_empty(c)) fresh->insert(c);
    });
    table_ = std::move(fresh);
    growths_.fetch_add(1, std::memory_order_relaxed);
    resizing_.store(false, std::memory_order_release);
  }

  std::size_t probe_limit_factor_;
  std::unique_ptr<inner_table> table_;
  std::mutex grow_lock_;
  std::atomic<bool> resizing_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> growths_{0};
};

}  // namespace phch
