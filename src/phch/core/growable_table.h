// growable_table: the resizing extension outlined in §4 of the paper, on
// top of the deterministic phase-concurrent table.
//
// An insert detects an overfull table when its probe sequence exceeds a
// threshold of k * log2(capacity) slots (w.h.p. probes are shorter at a
// bounded load factor). The detecting thread allocates a table of twice the
// size behind a lock ("a lock can be used to avoid multiple processes
// allocating simultaneously"), and insertions cooperate to migrate the old
// contents before continuing — re-inserting with the same deterministic
// protocol, so the migrated layout is history-independent too. Migration is
// batched: the old table's live elements are packed out in parallel and
// re-inserted through the software-pipelined batch engine, so the copy
// overlaps its cache misses exactly like any other insert batch.
//
// Divergence from the paper's sketch, documented here: the paper migrates
// *incrementally* (each insert copies two elements and both tables stay
// live), which requires finds/deletes to consult both tables. We instead
// drain in-flight *inserts* and migrate completely before new inserts
// proceed — a stop-the-insert-phase variant that keeps exactly one live
// table, preserves determinism trivially, and has the same amortized cost.
// Only inserts can trigger growth; finds and deletes see a single table, as
// in the paper.
//
// Lifetime of the old slot array: the table pointer is an atomic that grow()
// publishes with a release store, and the superseded table is handed to
// quiescence-based reclamation (parallel/reclaim.h) instead of being deleted
// in place. Readers therefore need no exclusion at all — a find may still be
// probing the old array while the swap happens and simply completes against
// a stale (but alive and immutable-to-it) table; the array is freed only
// after every participating thread has passed a quiescent point. This
// removes the old "all reads must happen inside the enter()/leave() window"
// seam: enter()/leave() now gates *writers only*, because a migration must
// observe every committed insert. Each public operation runs under a
// reclaim::op_guard, which registers the thread before the first pointer
// load and announces one quiescent point when the operation ends.
//
// The wrapper implements its own insert_batch/find_batch/erase_batch, so
// the free batch functions (core/batch_ops.h) forward to it
// (`batch_forwarding_table`): a batch insert runs in bounded chunks with one
// striped-counter occupancy check per chunk — never per element — and grows
// between chunks, so a single batch may cross several capacity doublings.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/deterministic_table.h"
#include "phch/core/table_concepts.h"
#include "phch/obs/trace.h"
#include "phch/parallel/reclaim.h"
#include "phch/parallel/spinlock.h"  // cpu_relax
#include "phch/utils/phase_caps.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class growable_table {
 public:
  using inner_table = deterministic_table<Traits, Phase>;
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  static_assert(growable_source<inner_table>,
                "growable_table's inner table must model growable_source "
                "(bounded inserts + striped occupancy)");

  explicit growable_table(std::size_t initial_capacity = 1024,
                          std::size_t probe_limit_factor = 16)
      : probe_limit_factor_(probe_limit_factor),
        table_(new inner_table(initial_capacity)) {}

  growable_table(const growable_table&) = delete;
  growable_table& operator=(const growable_table&) = delete;

  // The destructor deletes only the *current* table; superseded tables are
  // already in reclaim limbo and are freed when their grace period passes
  // (at the latest, at process teardown — LeakSanitizer-clean either way).
  ~growable_table() { delete table_.load(std::memory_order_relaxed); }

  std::size_t capacity() const noexcept {
    reclaim::op_guard qp;
    return cur()->capacity();
  }
  std::size_t count() const {
    reclaim::op_guard qp;
    return cur()->count();
  }

  // The inner table's striped occupancy counter (exact at phase boundaries),
  // surfaced so callers see the same size API on the wrapper as on the flat
  // tables.
  std::size_t approx_size() const noexcept {
    reclaim::op_guard qp;
    return cur()->approx_size();
  }

  void insert(value_type v) PHCH_REQUIRES_PHASE(insert) {
    using result = typename inner_table::insert_result;
    reclaim::op_guard qp;
    for (;;) {
      enter();
      result r;
      std::size_t cap;
      bool crowded = false;
      try {
        // Writers resolve the table pointer inside the enter()/leave()
        // window so a migration observes every committed insert (grow()
        // drains the active count before packing the old contents).
        inner_table* t = cur();
        cap = t->capacity();
        r = t->insert_bounded(v, probe_limit(cap));
        if (r == result::ok) {
          // Secondary trigger: grow once occupancy passes 3/4 of capacity
          // (the probe-length trigger alone cannot protect very small
          // tables, where individual probes can stay short right up to
          // full). approx_size() is the striped occupancy counter — a lazy
          // per-stripe sum, so this check adds read traffic only, never a
          // contended read-modify-write on the insert hot path.
          crowded = t->approx_size() >= cap - cap / 4;
        }
      } catch (...) {
        leave();
        throw;
      }
      leave();
      if (r == result::ok) {
        if (crowded) grow(cap * 2);
        return;
      }
      // Probe sequence too long: this table is overfull. Grow it (or help a
      // growth already under way), then retry if the insert was aborted.
      grow(cap * 2);
      if (r == result::lengthy) return;  // inserted, just slowly
    }
  }

  // Erases and queries take no enter()/leave(): the phase discipline keeps
  // them out of insert phases (only inserts grow), and even a racy overlap
  // with a migration is memory-safe now — the superseded array stays alive
  // until reclaim's grace period passes.
  void erase(key_type kq) PHCH_REQUIRES_PHASE(erase) {
    reclaim::op_guard qp;
    cur()->erase(kq);
  }
  value_type find(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    reclaim::op_guard qp;
    return cur()->find(kq);
  }
  bool contains(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    reclaim::op_guard qp;
    return cur()->contains(kq);
  }
  std::vector<value_type> elements() const PHCH_REQUIRES_PHASE(query) {
    reclaim::op_guard qp;
    return cur()->elements();
  }

  // --- whole-batch operations ----------------------------------------------
  //
  // Batch inserts run in fixed-size chunks. Before each chunk the wrapper
  // checks — once, against the striped counter — that the chunk fits under
  // the 3/4 occupancy ceiling, growing until it does; the chunk itself then
  // runs the software-pipelined engine on the inner table with no per-insert
  // occupancy reads and no probe-length bookkeeping. A single batch may
  // trigger several growths. A batch is one insert phase (Definition 1), so
  // finds/erases never run concurrently with it.

  void insert_batch(const value_type* values, std::size_t n)
      PHCH_REQUIRES_PHASE(insert) {
    reclaim::op_guard qp;
    for (std::size_t s = 0; s < n;) {
      const std::size_t chunk = std::min(kGrowChunk, n - s);
      enter();
      inner_table* t = cur();
      const std::size_t cap = t->capacity();
      const bool fits = t->approx_size() + chunk <= cap - cap / 4;
      if (!fits) {
        leave();
        grow(cap * 2);
        continue;  // re-check: one doubling may not be enough headroom
      }
      try {
        insert_batch_range(*t, values + s, chunk);
      } catch (...) {
        leave();
        throw;
      }
      leave();
      s += chunk;
    }
  }
  void insert_batch(const std::vector<value_type>& values)
      PHCH_REQUIRES_PHASE(insert) {
    insert_batch(values.data(), values.size());
  }

  std::vector<value_type> find_batch(const std::vector<key_type>& keys) const
      PHCH_REQUIRES_PHASE(query) {
    reclaim::op_guard qp;
    return phch::find_batch(*cur(), keys);
  }

  void erase_batch(const std::vector<key_type>& keys)
      PHCH_REQUIRES_PHASE(erase) {
    reclaim::op_guard qp;
    phch::erase_batch(*cur(), keys);
  }

  std::size_t growth_count() const noexcept {
    return growths_.load(std::memory_order_relaxed);
  }

  // Read-only view of the current flat table, for layout and tag-sidecar
  // inspection at quiescent points (racy against a concurrent grow()).
  const inner_table& inner() const noexcept { return *cur(); }

  // The *current* incarnation's distribution block. Growth replaces the
  // inner table, so a registered growable table's per-table histograms
  // cover the incarnation live at sample time; samples recorded by
  // superseded incarnations stay in the global graveyard totals
  // (obs::table_hist_totals), which remain exact.
  obs::table_hists& hists() const noexcept {
    reclaim::op_guard qp;
    return cur()->hists();
  }

  // The current incarnation's phase word (same caveat as hists()).
  phase_runtime& phase_rt() const noexcept { return cur()->phase_rt(); }

  // Phase-capability tokens (utils/phase_caps.h): the static half of the
  // phase contract the Phase policy enforces at runtime. Public so callers'
  // phase-region markers can name them in their own annotations.
  PHCH_PHASE_CAPABILITIES();

 private:
  // Elements per growth-checked chunk of a batch insert. Small enough that
  // "fits under the occupancy ceiling" is checkable up front per chunk,
  // large enough to amortize the check and keep the pipelined engine's
  // blocks full.
  static constexpr std::size_t kGrowChunk = 4096;

  inner_table* cur() const noexcept {
    return table_.load(std::memory_order_acquire);
  }

  std::size_t probe_limit(std::size_t cap) const noexcept {
    // k * log2(capacity): beyond this an insert declares the table overfull.
    // Capped at half the capacity so small tables trigger growth instead of
    // genuinely filling up.
    std::size_t lg = 1;
    for (std::size_t c = cap; c > 1; c >>= 1) ++lg;
    return std::min(probe_limit_factor_ * lg, cap / 2);
  }

  void enter() noexcept {
    for (;;) {
      active_.fetch_add(1, std::memory_order_acquire);
      if (!resizing_.load(std::memory_order_acquire)) return;
      // A resize is pending; back out and wait for it to finish.
      active_.fetch_sub(1, std::memory_order_release);
      while (resizing_.load(std::memory_order_acquire)) cpu_relax();
    }
  }
  void leave() noexcept { active_.fetch_sub(1, std::memory_order_release); }

  void grow(std::size_t target_capacity) {
    std::lock_guard<std::mutex> lg(grow_lock_);
    inner_table* old = cur();
    if (old->capacity() >= target_capacity) return;  // someone else grew it
    obs::span sp("grow");
    const std::uint64_t grow_t0 = obs::now_if_enabled();
    resizing_.store(true, std::memory_order_release);
    // Drain in-flight inserts on the old table (writers only — concurrent
    // readers keep probing the old array unexcluded; reclamation keeps it
    // alive for them).
    while (active_.load(std::memory_order_acquire) != 0) cpu_relax();
    auto fresh = std::make_unique<inner_table>(target_capacity);
    // Migrate: deterministic re-insertion of the old contents through the
    // pipelined batch engine (worker threads stuck in enter() spin, so on an
    // oversubscribed machine migration may serialize; correctness is
    // unaffected). Theorem 1 makes the migrated layout identical to a fresh
    // build regardless of re-insertion order, so batching changes nothing
    // observable.
    std::vector<value_type> live = old->elements();
    insert_batch_range(*fresh, live.data(), live.size());
    obs::count(obs::counter::growths);
    obs::count(obs::counter::migrated_elements, live.size());
    sp.a = static_cast<std::uint32_t>(
        live.size() < 0xffffffffu ? live.size() : 0xffffffffu);
    sp.b = target_capacity;
    // Publish the new table, then retire the old one: readers that loaded
    // the old pointer before the store finish against an array whose grace
    // period has not yet passed.
    table_.store(fresh.release(), std::memory_order_release);
    reclaim::retire(old);
    growths_.fetch_add(1, std::memory_order_relaxed);
    resizing_.store(false, std::memory_order_release);
    obs::hist_record_since(obs::global_hist::growth_ns, grow_t0);
  }

  std::size_t probe_limit_factor_;
  std::atomic<inner_table*> table_;
  std::mutex grow_lock_;
  std::atomic<bool> resizing_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> growths_{0};
};

static_assert(batch_forwarding_table<growable_table<>>);

}  // namespace phch
