// Batched table operations with software prefetching.
//
// Phase-concurrent workloads naturally arrive as batches (insert this whole
// sequence, look up all of these keys), which admits a classic memory-level
// parallelism trick single operations cannot use: hash the key `kAhead`
// positions down the batch and prefetch its home cache line while probing
// the current key, hiding most of the per-operation cache miss the paper
// identifies as the dominant cost. Works with any linear-probing table
// exposing `home_address(key)` (deterministic_table, nd_linear_table).
//
// All three batch helpers preserve the phase contract of the underlying
// operations: a batch is one phase.
#pragma once

#include <cstddef>
#include <vector>

#include "phch/parallel/parallel_for.h"

namespace phch {

inline constexpr std::size_t kPrefetchAhead = 8;

namespace detail {
inline void prefetch_ro(const void* p) noexcept { __builtin_prefetch(p, 0, 1); }
inline void prefetch_rw(const void* p) noexcept { __builtin_prefetch(p, 1, 1); }
}  // namespace detail

// Inserts values[lo..hi) with in-block prefetch pipelining; whole-batch
// parallel. One insert phase.
template <typename Table, typename V>
void insert_batch(Table& t, const std::vector<V>& values) {
  blocked_for(0, values.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_rw(
            t.home_address(Table::traits::key(values[i + kPrefetchAhead])));
      }
      t.insert(values[i]);
    }
  });
}

// Looks up keys[0..n); out[i] = stored value or empty. One query phase.
template <typename Table, typename K>
std::vector<typename Table::value_type> find_batch(const Table& t,
                                                   const std::vector<K>& keys) {
  std::vector<typename Table::value_type> out(keys.size());
  blocked_for(0, keys.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_ro(t.home_address(keys[i + kPrefetchAhead]));
      }
      out[i] = t.find(keys[i]);
    }
  });
  return out;
}

// Erases keys[0..n). One delete phase.
template <typename Table, typename K>
void erase_batch(Table& t, const std::vector<K>& keys) {
  blocked_for(0, keys.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_rw(t.home_address(keys[i + kPrefetchAhead]));
      }
      t.erase(keys[i]);
    }
  });
}

}  // namespace phch
