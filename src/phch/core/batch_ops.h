// Batched table operations with software-pipelined (AMAC-style) probing.
//
// Phase-concurrent workloads naturally arrive as batches (insert this whole
// sequence, look up all of these keys), which admits a memory-level
// parallelism trick single operations cannot use. The engine keeps K
// in-flight probes per worker in a ring (K from PHCH_BATCH_WIDTH, default
// 12) and advances them round-robin: each step inspects the slot whose
// prefetch was issued one rotation ago, either completes the operation or
// computes its next slot and prefetches *that*, then rotates to the next
// in-flight probe. Every cache miss along the whole probe chain — not just
// the home line — overlaps with up to K-1 others, the asynchronous-memory-
// access-chaining (AMAC) structure of Kocberber et al.
//
// Phase capabilities (utils/phase_caps.h, DESIGN.md §15): the free batch
// functions here are deliberately unannotated — they are templates over
// *any* table (including capability-free test mocks), and a TSA attribute
// naming a member the instantiating type lacks is a hard error. The static
// contract rides on the tables instead: each table's batch_*_scope() entry
// points carry PHCH_REQUIRES_PHASE, so a marked phase region still rejects
// a wrong-class batch at its scope-opening call.
//
// Per-operation semantics are untouched:
//  * find_batch and erase_batch pipeline their read-only probe scans fully;
//    an erase hands off to the table's scalar erase_from continuation once
//    its forward scan stops (those slots were just loaded, so the handoff
//    runs on warm lines).
//  * insert_batch pipelines the probe *prefix* — the advance-past-occupants
//    walk — and falls back to the table's scalar insert path at the first
//    slot where a CAS could commit. Displacement chains therefore execute
//    exactly the Figure-1 loop, preserving the ordering invariant
//    byte-for-byte: the pipelined prefix performs the same
//    one-load-per-advance reads as the scalar loop, so every pipelined
//    execution is indistinguishable from some legal scalar interleaving,
//    and Theorem 1 makes the final layout independent of which one.
//
// Each operation hashes its key exactly once (the scalar continuations
// resume from the prefix position instead of restarting from home).
//
// The engine knows no policy logic of its own: probe decisions go through
// the table's static classifiers (classify_find / insert_scan_stop /
// erase_scan_stop), which core/probe_engine.h distills from its ordering
// and delete policies. Any table modeling `batchable_table`
// (core/table_concepts.h) — deterministic, nd-linear, and tombstone alike —
// is driven by the same pipelined loops. Tables with their own whole-batch
// members (`batch_forwarding_table` / `erase_forwarding_table`: the
// growable wrapper, and the sparse family — cuckoo, hopscotch, chained —
// whose prefetch-structured walks live next to their probe logic) are
// forwarded to; everything else (serial_table, ...) gets a scalar
// fallback with identical semantics, so the batch API is usable
// generically. All batch helpers preserve the phase contract: a batch is
// one phase, and the engine opens the table's phase scope per block so
// checked_phases still observes batch traffic.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <vector>

#include "phch/core/simd_scan.h"
#include "phch/core/table_common.h"
#include "phch/core/table_concepts.h"
#include "phch/core/tag_array.h"
#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"
#include "phch/utils/env.h"

namespace phch {

// Retained for the prefetch-ahead reference paths (bench baselines).
inline constexpr std::size_t kPrefetchAhead = 8;

// Hard cap on in-flight probes per worker; beyond the hardware's miss
// handling capacity (~10-20 line fill buffers) extra streams only thrash.
inline constexpr std::size_t kMaxBatchWidth = 64;

// In-flight probes per worker: PHCH_BATCH_WIDTH, clamped to [1, 64].
inline std::size_t batch_width() {
  static const std::size_t w = [] {
    const long v = env_long("PHCH_BATCH_WIDTH", 12);
    if (v < 1) return std::size_t{1};
    if (v > static_cast<long>(kMaxBatchWidth)) return kMaxBatchWidth;
    return static_cast<std::size_t>(v);
  }();
  return w;
}

namespace detail {
// Locality 3 (prefetcht0): the line is consumed within ~one ring rotation,
// so it must land in L1, not just an outer level.
inline void prefetch_ro(const void* p) noexcept { __builtin_prefetch(p, 0, 3); }
inline void prefetch_rw(const void* p) noexcept { __builtin_prefetch(p, 1, 3); }
}  // namespace detail

// Backwards-compatible name for the concept the engine dispatches on (the
// definition moved to core/table_concepts.h as `batchable_table`).
template <typename Table>
concept pipelined_probe_table = batchable_table<Table>;

// The SIMD backend a batch over this table should drive the tag-sidecar
// engines with, or `off` when the table has no sidecar / the active backend
// cannot cover its capacity — the caller then uses the full-slot pipelined
// engines.
template <typename Table>
simd::backend batch_tag_backend(const Table& t) noexcept {
  if constexpr (tagged_probe_table<Table>) {
    const simd::backend b = simd::active();
    if (simd::usable(b, t.capacity())) return b;
  }
  return simd::backend::off;
}

namespace batch_detail {

// ---------------------------------------------------------------------------
// Per-block pipelined engines. Serial within a block (blocked_for supplies
// the cross-block parallelism); exposed here so tests and benchmarks can
// drive them directly with explicit widths on a single thread.
//
// Linear probing makes chains *sequential*, so a probe only risks a cache
// miss when it crosses into the next 64-byte line. Each engine therefore
// scans to the end of the current line before yielding its lane: rotation
// (and a prefetch) happens per line crossed, not per slot inspected, which
// keeps the ring bookkeeping off the critical path at high load factors.
//
// A probe that sweeps more than `capacity` slots has wrapped the table:
// with `Table::bounded_probes` (tombstone deletion — the table can be full
// of garbage) the operation resolves as a miss / no-op, exactly like the
// scalar loop; otherwise the table broke the never-full precondition and
// the engine throws, again matching scalar behavior.
// ---------------------------------------------------------------------------

// Slots per cache line; slot_array is 64-byte aligned, so slot i starts a
// fresh line exactly when i % slots_per_line == 0 (the wrap to slot 0 too).
template <typename V>
inline constexpr std::size_t slots_per_line =
    sizeof(V) < 64 ? 64 / sizeof(V) : 1;

template <typename Table, typename K>
void find_block_pipelined(const Table& t, const K* keys, std::size_t n,
                          typename Table::value_type* out, std::size_t width) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  const value_type* slots = t.raw_slots();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t idx;       // position in the batch (where the result goes)
    std::size_t slot;      // current probe position
    std::size_t advances;  // probe length so far (table-full detection)
    typename Table::key_type kq;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  // Local tallies flushed once per block (dead stores when obs is off).
  std::uint64_t t_slots = 0, t_rot = 0, t_hits = 0;
  [[maybe_unused]] obs::hist_accum t_depth;

  auto start = [&](op& o) {
    const std::size_t idx = issued++;
    const typename Table::key_type kq = keys[idx];
    o = op{idx, static_cast<std::size_t>(Traits::hash(kq)) & mask, 0, kq};
    detail::prefetch_ro(&slots[o.slot]);
  };
  while (live < width && issued < n) start(ring[live++]);

  constexpr std::size_t line = slots_per_line<value_type>;
  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    bool done = false;
    value_type result{};
    // Scan to the end of the current cache line; those slots are resident.
    do {
      const value_type c = atomic_load(&slots[o.slot]);
      ++t_slots;
      const probe_verdict verdict = Table::classify_find(c, o.kq);
      if (verdict != probe_verdict::advance) {
        done = true;
        if (verdict == probe_verdict::hit) {
          result = c;
          ++t_hits;
        } else {
          result = Traits::empty();
        }
        break;
      }
      o.slot = (o.slot + 1) & mask;
      if (++o.advances > cap) {
        if constexpr (Table::bounded_probes) {
          done = true;
          result = Traits::empty();
          break;
        } else {
          throw table_full_error();
        }
      }
    } while (o.slot & (line - 1));
    if (done) {
      // Probe-depth ledger: pipelined finds never reach a scalar
      // continuation, so their depth sample is noted here (advances
      // plus the resolving load) and flushed with the other tallies.
      if constexpr (requires { t.hists(); }) {
        t_depth.note(o.advances + 1);
      }
      out[o.idx] = result;
      if (issued < n) {
        start(o);  // refill the lane, keep rotating
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;  // the moved-in op already has a prefetch in flight
      }
    } else {
      detail::prefetch_ro(&slots[o.slot]);  // crossed into the next line
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::find_ops, n);
  obs::count(obs::counter::find_hits, t_hits);
  obs::count(obs::counter::batch_probe_slots, t_slots);
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::batch_blocks);
  if constexpr (requires { t.hists(); }) {
    t.hists().record_block(obs::table_hist::probe_depth, t_depth);
  }
}

template <typename Table, typename V>
void insert_block_pipelined(Table& t, const V* values, std::size_t n,
                            std::size_t width) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  const value_type* slots = t.raw_slots();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t slot;
    std::size_t advances;
    value_type v;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  std::uint64_t t_slots = 0, t_rot = 0, t_handoffs = 0;

  auto start = [&](op& o) {
    const value_type v = values[issued++];
    const std::size_t home =
        static_cast<std::size_t>(Traits::hash(Traits::key(v))) & mask;
    o = op{home, 0, v};
    detail::prefetch_rw(&slots[o.slot]);
  };
  while (live < width && issued < n) start(ring[live++]);

  constexpr std::size_t line = slots_per_line<value_type>;
  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    // The prefix advances exactly while the scalar loop would advance
    // without CASing; the table's insert_scan_stop classifier marks the
    // first potential commit point (empty slot, duplicate key, or a
    // displaceable occupant), where the operation hands off to the scalar
    // continuation resuming at this position. Slots up to the next line
    // boundary are resident, so scan them without yielding.
    bool commit = false;
    do {
      const value_type c = atomic_load(&slots[o.slot]);
      ++t_slots;
      if (Table::insert_scan_stop(c, o.v)) {
        commit = true;
        break;
      }
      o.slot = (o.slot + 1) & mask;
      if (++o.advances > cap) throw table_full_error();
    } while (o.slot & (line - 1));
    if (commit) {
      ++t_handoffs;
      t.insert_from(o.v, o.slot, o.advances);
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
    } else {
      detail::prefetch_rw(&slots[o.slot]);
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::batch_probe_slots, t_slots);
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::batch_handoffs, t_handoffs);
  obs::count(obs::counter::batch_blocks);
}

template <typename Table, typename K>
void erase_block_pipelined(Table& t, const K* keys, std::size_t n,
                           std::size_t width) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  const value_type* slots = t.raw_slots();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t slot;
    std::size_t advances;
    typename Table::key_type kq;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  std::uint64_t t_slots = 0, t_rot = 0, t_handoffs = 0, t_dropped = 0;
  [[maybe_unused]] obs::hist_accum t_depth;

  auto start = [&](op& o) {
    const typename Table::key_type kq = keys[issued++];
    o = op{static_cast<std::size_t>(Traits::hash(kq)) & mask, 0, kq};
    detail::prefetch_rw(&slots[o.slot]);
  };
  while (live < width && issued < n) start(ring[live++]);

  constexpr std::size_t line = slots_per_line<value_type>;
  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    // Pipelined initial forward scan: past every slot the table's
    // erase_scan_stop classifier says could still precede the key. Where
    // the scalar scan would stop, hand the CAS work to the table's
    // erase_from continuation; it re-walks slots this scan just loaded, so
    // it runs on warm lines. Within the current cache line the scan
    // continues without yielding the lane.
    bool stop = false;
    bool drop = false;  // bounded probe wrapped the table: key is absent
    do {
      const value_type c = atomic_load(&slots[o.slot]);
      ++t_slots;
      if (Table::erase_scan_stop(c, o.kq)) {
        stop = true;
        break;
      }
      o.slot = (o.slot + 1) & mask;
      if (++o.advances > cap) {
        if constexpr (Table::bounded_probes) {
          drop = true;
          break;
        } else {
          throw table_full_error();
        }
      }
    } while (o.slot & (line - 1));
    if (stop || drop) {
      if (stop) {
        ++t_handoffs;
        t.erase_from(o.kq, o.advances);
      } else {
        // The scalar continuation never runs for a wrapped probe, so the
        // dropped key's erase_ops tick and probe-depth sample are
        // accounted here.
        ++t_dropped;
        if constexpr (requires { t.hists(); }) {
          t_depth.note(o.advances);
        }
      }
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
    } else {
      detail::prefetch_rw(&slots[o.slot]);
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::erase_ops, t_dropped);
  obs::count(obs::counter::batch_probe_slots, t_slots);
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::batch_handoffs, t_handoffs);
  obs::count(obs::counter::batch_blocks);
  if constexpr (requires { t.hists(); }) {
    t.hists().record_block(obs::table_hist::probe_depth, t_depth);
  }
}

// ---------------------------------------------------------------------------
// Tag-sidecar pipelined engines. Same AMAC ring as above, but a lane
// consumes one *group* of fingerprint tags per rotation (core/simd_scan.h)
// instead of one cache line of full slots, prefetching the tag line on
// group advance and the slot line before each candidate confirmation /
// scalar handoff. Soundness per operation mirrors the scalar tagged loops
// in probe_engine.h — every conclusion is either confirmed against a slot
// or handed to a scalar continuation that re-verifies.
// ---------------------------------------------------------------------------

template <typename Table, typename K>
void find_block_tagged(const Table& t, const K* keys, std::size_t n,
                       typename Table::value_type* out, std::size_t width,
                       simd::backend b) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  const value_type* slots = t.raw_slots();
  const std::uint8_t* tags = t.raw_tags();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  const std::size_t w = simd::group_width(b);
  const std::size_t max_groups = cap / w + 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t idx;       // position in the batch (where the result goes)
    std::size_t g;         // current group base
    std::uint32_t lanes;   // first-group lane mask (home onward), then ~0
    std::uint32_t cand;    // unconfirmed fingerprint matches in group g
    std::uint32_t empty;   // empty-tag lanes of group g
    std::size_t groups;    // groups consumed (wrap detection)
    std::size_t loads;     // slot confirmations (probe-depth sample)
    std::uint8_t fp;
    typename Table::key_type kq;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  std::uint64_t t_slots = 0, t_rot = 0, t_hits = 0;
  std::uint64_t t_groups = 0, t_cand = 0, t_fp = 0;
  [[maybe_unused]] obs::hist_accum t_depth;

  auto start = [&](op& o) {
    const std::size_t idx = issued++;
    const typename Table::key_type kq = keys[idx];
    const std::uint64_t h = Traits::hash(kq);
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    const std::size_t g = ihome & ~(w - 1);
    o = op{idx,  g, ~0u << (ihome - g), 0, 0, 0, 0,
           tag_array::fingerprint(h), kq};
    detail::prefetch_ro(tags + g);
  };
  while (live < width && issued < n) start(ring[live++]);

  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    bool done = false;
    value_type result{};
    if (o.cand != 0) {
      // Confirm the candidate whose slot line was prefetched last rotation.
      const std::size_t s =
          o.g + static_cast<std::size_t>(std::countr_zero(o.cand));
      o.cand &= o.cand - 1;
      const value_type c = atomic_load(&slots[s]);
      ++t_slots;
      ++t_cand;
      ++o.loads;
      if (Table::is_present(c) &&
          Traits::key_equal(Traits::key(c), o.kq)) {
        done = true;
        result = c;
        ++t_hits;
      } else {
        ++t_fp;
        if (o.cand != 0) {
          detail::prefetch_ro(
              &slots[o.g + static_cast<std::size_t>(std::countr_zero(o.cand))]);
        } else if (o.empty != 0) {
          done = true;
          result = Traits::empty();
        } else if (++o.groups >= max_groups) {
          if constexpr (Table::bounded_probes) {
            done = true;
            result = Traits::empty();
          } else {
            throw table_full_error();
          }
        } else {
          o.g = (o.g + w) & mask;
          detail::prefetch_ro(tags + o.g);
        }
      }
    } else {
      // Scan the group whose tag line was prefetched last rotation.
      simd::group_masks m =
          simd::scan_group(tags + o.g, o.fp, tag_array::kEmpty, b);
      ++t_groups;
      m.match &= o.lanes;
      m.empty &= o.lanes;
      o.lanes = ~0u;
      o.empty = m.empty;
      o.cand = m.match & simd::below_lowest(m.empty);
      if (o.cand != 0) {
        detail::prefetch_ro(
            &slots[o.g + static_cast<std::size_t>(std::countr_zero(o.cand))]);
      } else if (m.empty != 0) {
        done = true;
        result = Traits::empty();
      } else if (++o.groups >= max_groups) {
        if constexpr (Table::bounded_probes) {
          done = true;
          result = Traits::empty();
        } else {
          throw table_full_error();
        }
      } else {
        o.g = (o.g + w) & mask;
        detail::prefetch_ro(tags + o.g);
      }
    }
    if (done) {
      // Probe-depth sample: slot confirmations, matching the scalar
      // tagged loop's tally (0 when the tags alone resolved the op).
      if constexpr (requires { t.hists(); }) {
        t_depth.note(o.loads);
      }
      out[o.idx] = result;
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;  // the moved-in op already has a prefetch in flight
      }
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::find_ops, n);
  obs::count(obs::counter::find_hits, t_hits);
  obs::count(obs::counter::batch_probe_slots, t_slots);
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::tag_groups_scanned, t_groups);
  obs::count(obs::counter::tag_candidates, t_cand);
  obs::count(obs::counter::tag_false_positives, t_fp);
  obs::count(obs::counter::batch_blocks);
  if constexpr (requires { t.hists(); }) {
    t.hists().record_block(obs::table_hist::probe_depth, t_depth);
  }
}

// Arrival-order tables only (the dispatcher guards): the group scan finds
// the first potential commit point — fingerprint match (possible
// duplicate) or empty tag (possible claim) — prefetches that slot line,
// and hands off to insert_from one rotation later. Stale tags in an insert
// phase can only stop the scan early (see probe_engine.h), and the scalar
// continuation re-verifies from the handoff slot.
template <typename Table, typename V>
void insert_block_tagged(Table& t, const V* values, std::size_t n,
                         std::size_t width, simd::backend b) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  static_assert(!Table::ordered_probes,
                "tagged insert prefix is sound for arrival order only");
  const value_type* slots = t.raw_slots();
  const std::uint8_t* tags = t.raw_tags();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  const std::size_t w = simd::group_width(b);
  const std::size_t max_groups = cap / w + 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t home;
    std::size_t g;
    std::uint32_t lanes;
    std::size_t groups;
    std::size_t stop;     // handoff slot, valid when has_stop
    bool has_stop;
    std::uint8_t fp;
    value_type v;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  std::uint64_t t_rot = 0, t_handoffs = 0, t_groups = 0;

  auto start = [&](op& o) {
    const value_type v = values[issued++];
    const std::uint64_t h = Traits::hash(Traits::key(v));
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    const std::size_t g = ihome & ~(w - 1);
    o = op{ihome, g, ~0u << (ihome - g), 0, 0, false,
           tag_array::fingerprint(h), v};
    detail::prefetch_ro(tags + g);
  };
  while (live < width && issued < n) start(ring[live++]);

  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    bool done = false;
    if (o.has_stop) {
      ++t_handoffs;
      t.insert_from(o.v, o.stop, (o.stop - o.home) & mask);
      done = true;
    } else {
      const simd::group_masks m =
          simd::scan_group(tags + o.g, o.fp, tag_array::kEmpty, b);
      ++t_groups;
      const std::uint32_t stop = (m.match | m.empty) & o.lanes;
      o.lanes = ~0u;
      if (stop != 0) {
        o.stop = o.g + static_cast<std::size_t>(std::countr_zero(stop));
        o.has_stop = true;
        detail::prefetch_rw(&slots[o.stop]);
      } else if (++o.groups >= max_groups) {
        throw table_full_error();
      } else {
        o.g = (o.g + w) & mask;
        detail::prefetch_ro(tags + o.g);
      }
    }
    if (done) {
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::batch_handoffs, t_handoffs);
  obs::count(obs::counter::tag_groups_scanned, t_groups);
  obs::count(obs::counter::batch_blocks);
}

// Both delete policies, with the same split as the scalar tagged erase:
// tombstone lanes hand any fingerprint match straight to erase_from (which
// re-verifies and continues forward on a collision) and resolve an empty
// tag as absent; backshift lanes must confirm candidates in-engine, because
// erase_from's downward scan needs a start position at or past the key —
// an unconfirmed (possibly false-positive) match bit is not that.
template <typename Table, typename K>
void erase_block_tagged(Table& t, const K* keys, std::size_t n,
                        std::size_t width, simd::backend b) {
  using Traits = typename Table::traits;
  using value_type = typename Table::value_type;
  const value_type* slots = t.raw_slots();
  const std::uint8_t* tags = t.raw_tags();
  const std::size_t cap = t.capacity();
  const std::size_t mask = cap - 1;
  const std::size_t w = simd::group_width(b);
  const std::size_t max_groups = cap / w + 1;
  if (width > kMaxBatchWidth) width = kMaxBatchWidth;
  if (width < 1) width = 1;

  struct op {
    std::size_t home;
    std::size_t g;
    std::uint32_t lanes;
    std::uint32_t cand;    // backshift: unconfirmed matches in group g
    std::uint32_t empty;   // empty-tag lanes of group g
    std::size_t groups;
    std::size_t handoff;   // pending erase_from fwd_advances (has_handoff)
    bool has_handoff;
    std::uint8_t fp;
    typename Table::key_type kq;
  };
  std::array<op, kMaxBatchWidth> ring;
  std::size_t issued = 0;
  std::size_t live = 0;
  std::uint64_t t_slots = 0, t_rot = 0, t_handoffs = 0, t_dropped = 0;
  std::uint64_t t_groups = 0, t_cand = 0, t_fp = 0;
  [[maybe_unused]] obs::hist_accum t_depth;

  auto start = [&](op& o) {
    const typename Table::key_type kq = keys[issued++];
    const std::uint64_t h = Traits::hash(kq);
    const std::size_t ihome = static_cast<std::size_t>(h) & mask;
    const std::size_t g = ihome & ~(w - 1);
    o = op{ihome, g, ~0u << (ihome - g), 0, 0, 0, 0, false,
           tag_array::fingerprint(h), kq};
    detail::prefetch_ro(tags + g);
  };
  while (live < width && issued < n) start(ring[live++]);

  std::size_t r = 0;
  while (live > 0) {
    op& o = ring[r];
    bool done = false;
    if (o.has_handoff) {
      ++t_handoffs;
      t.erase_from(o.kq, o.handoff);
      done = true;
    } else if (o.cand != 0) {
      // Backshift candidate confirmation (slot line prefetched).
      const std::size_t s =
          o.g + static_cast<std::size_t>(std::countr_zero(o.cand));
      o.cand &= o.cand - 1;
      const value_type c = atomic_load(&slots[s]);
      ++t_slots;
      ++t_cand;
      if (Table::is_present(c) &&
          Traits::key_equal(Traits::key(c), o.kq)) {
        // The slot line is hot from the confirm load; run the downward
        // scan now rather than spending a rotation on a prefetch.
        ++t_handoffs;
        t.erase_from(o.kq, (s - o.home) & mask);
        done = true;
      } else {
        ++t_fp;
        if (o.cand != 0) {
          detail::prefetch_rw(
              &slots[o.g + static_cast<std::size_t>(std::countr_zero(o.cand))]);
        } else if (o.empty != 0) {
          const std::size_t s2 =
              o.g + static_cast<std::size_t>(std::countr_zero(o.empty));
          o.handoff = (s2 - o.home) & mask;
          o.has_handoff = true;
          detail::prefetch_rw(&slots[s2]);
        } else if (++o.groups >= max_groups) {
          throw table_full_error();
        } else {
          o.g = (o.g + w) & mask;
          detail::prefetch_ro(tags + o.g);
        }
      }
    } else {
      simd::group_masks m =
          simd::scan_group(tags + o.g, o.fp, tag_array::kEmpty, b);
      ++t_groups;
      m.match &= o.lanes;
      m.empty &= o.lanes;
      o.lanes = ~0u;
      const std::uint32_t cand = m.match & simd::below_lowest(m.empty);
      if constexpr (Table::bounded_probes) {
        // Tombstone: no moves this phase, so a match bit can go straight
        // to the scalar forward continuation and an empty tag is absence.
        if (cand != 0) {
          const std::size_t s =
              o.g + static_cast<std::size_t>(std::countr_zero(cand));
          o.handoff = (s - o.home) & mask;
          o.has_handoff = true;
          detail::prefetch_rw(&slots[s]);
        } else if (m.empty != 0 || ++o.groups >= max_groups) {
          // The scalar continuation never runs for an absent key, so its
          // erase_ops tick (below) and probe-depth sample land here.
          ++t_dropped;
          if constexpr (requires { t.hists(); }) {
            t_depth.note(0);
          }
          done = true;
        } else {
          o.g = (o.g + w) & mask;
          detail::prefetch_ro(tags + o.g);
        }
      } else {
        o.empty = m.empty;
        o.cand = cand;
        if (cand != 0) {
          detail::prefetch_rw(
              &slots[o.g + static_cast<std::size_t>(std::countr_zero(cand))]);
        } else if (m.empty != 0) {
          const std::size_t s =
              o.g + static_cast<std::size_t>(std::countr_zero(m.empty));
          o.handoff = (s - o.home) & mask;
          o.has_handoff = true;
          detail::prefetch_rw(&slots[s]);
        } else if (++o.groups >= max_groups) {
          throw table_full_error();
        } else {
          o.g = (o.g + w) & mask;
          detail::prefetch_ro(tags + o.g);
        }
      }
    }
    if (done) {
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
    }
    ++t_rot;
    if (++r >= live) r = 0;
  }
  obs::count(obs::counter::erase_ops, t_dropped);
  obs::count(obs::counter::batch_probe_slots, t_slots);
  obs::count(obs::counter::batch_rotations, t_rot);
  obs::count(obs::counter::batch_handoffs, t_handoffs);
  obs::count(obs::counter::tag_groups_scanned, t_groups);
  obs::count(obs::counter::tag_candidates, t_cand);
  obs::count(obs::counter::tag_false_positives, t_fp);
  obs::count(obs::counter::batch_blocks);
  if constexpr (requires { t.hists(); }) {
    t.hists().record_block(obs::table_hist::probe_depth, t_depth);
  }
}

}  // namespace batch_detail

// ---------------------------------------------------------------------------
// Scalar reference batches: plain per-op loops, no prefetching. The
// semantic baseline the pipelined engine must match bit-for-bit; also the
// generic path for tables without probe hooks.
// ---------------------------------------------------------------------------

template <typename Table, typename V>
void insert_batch_scalar(Table& t, const V* values, std::size_t n) {
  parallel_for(0, n, [&](std::size_t i) { t.insert(values[i]); });
}

template <typename Table, typename V>
void insert_batch_scalar(Table& t, const std::vector<V>& values) {
  insert_batch_scalar(t, values.data(), values.size());
}

template <typename Table, typename K>
std::vector<typename Table::value_type> find_batch_scalar(
    const Table& t, const std::vector<K>& keys) {
  std::vector<typename Table::value_type> out(keys.size());
  parallel_for(0, keys.size(), [&](std::size_t i) { out[i] = t.find(keys[i]); });
  return out;
}

template <typename Table, typename K>
void erase_batch_scalar(Table& t, const std::vector<K>& keys) {
  parallel_for(0, keys.size(), [&](std::size_t i) { t.erase(keys[i]); });
}

// ---------------------------------------------------------------------------
// Prefetch-ahead reference batches: the previous engine (home line hashed
// kPrefetchAhead positions down the batch), kept as the bench baseline the
// pipelined engine is measured against.
// ---------------------------------------------------------------------------

template <typename Table, typename V>
void insert_batch_prefetch(Table& t, const std::vector<V>& values) {
  blocked_for(0, values.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_rw(
            t.home_address(Table::traits::key(values[i + kPrefetchAhead])));
      }
      t.insert(values[i]);
    }
  });
}

template <typename Table, typename K>
std::vector<typename Table::value_type> find_batch_prefetch(
    const Table& t, const std::vector<K>& keys) {
  std::vector<typename Table::value_type> out(keys.size());
  blocked_for(0, keys.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_ro(t.home_address(keys[i + kPrefetchAhead]));
      }
      out[i] = t.find(keys[i]);
    }
  });
  return out;
}

template <typename Table, typename K>
void erase_batch_prefetch(Table& t, const std::vector<K>& keys) {
  blocked_for(0, keys.size(), 2048, [&](std::size_t, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) {
      if (i + kPrefetchAhead < e) {
        detail::prefetch_rw(t.home_address(keys[i + kPrefetchAhead]));
      }
      t.erase(keys[i]);
    }
  });
}

// ---------------------------------------------------------------------------
// Public batch API. Dispatch order: a table with its own batch members is
// forwarded to (growable_table interleaves growth checks); a batchable
// table runs the pipelined engine; everything else gets the scalar loop.
//
// Each whole batch opens exactly one of the table's batch_*_scope()s, which
// are Phase::scope instances over the table's phase_runtime
// (core/phase_runtime.h): a batch announces its class to the same
// phase-state word scalar operations use, so a batch that starts a new
// phase advances the table's epoch exactly once, at the batch boundary.
// ---------------------------------------------------------------------------

// Pointer-range inserts: the building block the wrappers chunk over.
template <typename Table, typename V>
void insert_batch_range(Table& t, const V* values, std::size_t n) {
  if constexpr (batchable_table<Table>) {
    auto scope = t.batch_insert_scope();
    const std::size_t width = batch_width();
    [[maybe_unused]] const simd::backend b = batch_tag_backend(t);
    blocked_for(0, n, 2048, [&](std::size_t, std::size_t s, std::size_t e) {
      if constexpr (tagged_probe_table<Table> && !Table::ordered_probes) {
        if (b != simd::backend::off) {
          batch_detail::insert_block_tagged(t, values + s, e - s, width, b);
          return;
        }
      }
      batch_detail::insert_block_pipelined(t, values + s, e - s, width);
    });
  } else {
    insert_batch_scalar(t, values, n);
  }
}

// Inserts values[0..n); whole-batch parallel. One insert phase.
template <typename Table, typename V>
void insert_batch(Table& t, const std::vector<V>& values) {
  if constexpr (batch_forwarding_table<Table>) {
    t.insert_batch(values);
  } else {
    insert_batch_range(t, values.data(), values.size());
  }
}

// Looks up keys[0..n); out[i] = stored value or empty. One query phase.
template <typename Table, typename K>
std::vector<typename Table::value_type> find_batch(const Table& t,
                                                   const std::vector<K>& keys) {
  if constexpr (batch_forwarding_table<Table>) {
    return t.find_batch(keys);
  } else if constexpr (batchable_table<Table>) {
    std::vector<typename Table::value_type> out(keys.size());
    auto scope = t.batch_query_scope();
    const std::size_t width = batch_width();
    [[maybe_unused]] const simd::backend b = batch_tag_backend(t);
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  if constexpr (tagged_probe_table<Table>) {
                    if (b != simd::backend::off) {
                      batch_detail::find_block_tagged(t, keys.data() + s, e - s,
                                                      out.data() + s, width, b);
                      return;
                    }
                  }
                  batch_detail::find_block_pipelined(t, keys.data() + s, e - s,
                                                     out.data() + s, width);
                });
    return out;
  } else {
    return find_batch_scalar(t, keys);
  }
}

// Erases keys[0..n). One delete phase.
template <typename Table, typename K>
void erase_batch(Table& t, const std::vector<K>& keys) {
  if constexpr (erase_forwarding_table<Table>) {
    t.erase_batch(keys);
  } else if constexpr (batchable_table<Table>) {
    auto scope = t.batch_erase_scope();
    const std::size_t width = batch_width();
    [[maybe_unused]] const simd::backend b = batch_tag_backend(t);
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  if constexpr (tagged_probe_table<Table>) {
                    if (b != simd::backend::off) {
                      batch_detail::erase_block_tagged(t, keys.data() + s,
                                                       e - s, width, b);
                      return;
                    }
                  }
                  batch_detail::erase_block_pipelined(t, keys.data() + s, e - s,
                                                      width);
                });
  } else {
    erase_batch_scalar(t, keys);
  }
}

}  // namespace phch
