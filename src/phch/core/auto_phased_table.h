// auto_phased_table: the paper's future-work item realized — a wrapper that
// uses room synchronizations to separate operations into phases
// *automatically*, so callers may mix inserts, deletes and finds freely from
// any thread. Operations of one class still run fully concurrently; the
// rooms serialize only the transitions between classes.
//
// Determinism caveat (inherent, not an implementation artifact): automatic
// phasing makes mixing *safe*, but the induced phase boundaries depend on
// arrival timing, so a mixed workload is NOT deterministic — exactly why the
// paper leaves phase separation to the program structure when determinism is
// the goal. With phases separated by the caller (the deterministic use), the
// wrapper adds only the room-entry fast path per operation (measured in
// bench_ablation).
#pragma once

#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/table_concepts.h"
#include "phch/parallel/room_sync.h"

namespace phch {

// The wrapped table must be a phase-concurrent table over one flat slot
// array: phase_table is what the room discipline protects (rooms map 1:1
// onto the operation classes of Definition 1), deletable_table supplies the
// erase room, and open_addressing_table provides the raw_slots() view the
// serial elements()/count() scans use. A table that is not phase-concurrent
// (or hides its storage) is rejected at compile time rather than silently
// wrapped with the wrong synchronization.
template <typename Table>
  requires deletable_table<Table> && open_addressing_table<Table>
class auto_phased_table {
 public:
  using traits = typename Table::traits;
  using value_type = typename Table::value_type;
  using key_type = typename Table::key_type;

  explicit auto_phased_table(std::size_t min_capacity)
      : table_(min_capacity), rooms_(3) {}

  std::size_t capacity() const noexcept { return table_.capacity(); }

  void insert(value_type v) {
    room_sync::guard g(rooms_, kInsertRoom);
    table_.insert(v);
  }

  void erase(key_type k) {
    room_sync::guard g(rooms_, kEraseRoom);
    table_.erase(k);
  }

  value_type find(key_type k) const {
    room_sync::guard g(rooms_, kQueryRoom);
    return table_.find(k);
  }

  bool contains(key_type k) const {
    room_sync::guard g(rooms_, kQueryRoom);
    return table_.contains(k);
  }

  // elements() and count() scan the slots *serially* here: running a
  // parallel job while holding a room could deadlock against another user
  // thread that occupies the scheduler while waiting for this room. (With
  // caller-separated phases, use the underlying table's parallel
  // elements().)
  std::vector<value_type> elements() const {
    room_sync::guard g(rooms_, kQueryRoom);
    using traits = typename Table::traits;
    std::vector<value_type> out;
    const value_type* slots = table_.raw_slots();
    for (std::size_t s = 0; s < table_.capacity(); ++s) {
      if (!traits::is_empty(slots[s])) out.push_back(slots[s]);
    }
    return out;
  }

  // Count is a query (shares the find/elements room).
  std::size_t count() const {
    room_sync::guard g(rooms_, kQueryRoom);
    using traits = typename Table::traits;
    std::size_t c = 0;
    const value_type* slots = table_.raw_slots();
    for (std::size_t s = 0; s < table_.capacity(); ++s) c += !traits::is_empty(slots[s]);
    return c;
  }

  // Access to the underlying table at a quiescent point (caller's duty).
  Table& underlying() noexcept { return table_; }
  const Table& underlying() const noexcept { return table_; }

 private:
  static constexpr int kInsertRoom = 0;
  static constexpr int kEraseRoom = 1;
  static constexpr int kQueryRoom = 2;

  Table table_;
  mutable room_sync rooms_;
};

}  // namespace phch
