// auto_phased_table: the paper's future-work item realized — a wrapper that
// uses room synchronizations to separate operations into phases
// *automatically*, so callers may mix inserts, deletes and finds freely from
// any thread. Operations of one class still run fully concurrently; the
// rooms serialize only the transitions between classes.
//
// phch_lint: not-a-table
// (Mixing operation classes is this wrapper's entire purpose, so it is
// exempt from the PHCH_REQUIRES_PHASE surface contract — DESIGN.md §15.)
//
// Phase epoch: each room entry announces its class to the wrapped table's
// phase_runtime (core/phase_runtime.h), so a room transition advances the
// same monotone epoch every scalar and batch scope uses — the room word in
// room_sync stays pure occupancy control, and the trace ledger shows one
// phase_begin event per actual transition (validated by `phch_trace -table
// auto`). The announcement is idempotent with the operation's own scope
// (same class, no second edge), and for elements()/count() — which scan raw
// slots without entering an operation scope — it is the only announcement.
//
// Reclamation guarantee: completing an operation on this wrapper is a
// reclamation quiescent point for the calling thread (parallel/reclaim.h).
// Room transitions are therefore grace-period edges: memory retired before
// a transition is freed once every participating thread has completed an
// operation (or otherwise announced quiescence) after it. Callers must not
// invoke these operations while holding raw pointers into reclaim-protected
// structures (e.g. a growable_table's inner table or raw_slots view).
//
// Determinism caveat (inherent, not an implementation artifact): automatic
// phasing makes mixing *safe*, but the induced phase boundaries depend on
// arrival timing, so a mixed workload is NOT deterministic — exactly why the
// paper leaves phase separation to the program structure when determinism is
// the goal. With phases separated by the caller (the deterministic use), the
// wrapper adds only the room-entry fast path per operation (measured in
// bench_ablation).
#pragma once

#include <vector>

#include "phch/core/deterministic_table.h"
#include "phch/core/table_concepts.h"
#include "phch/obs/histogram.h"
#include "phch/parallel/reclaim.h"
#include "phch/parallel/room_sync.h"

namespace phch {

// The wrapped table must be a phase-concurrent table over one flat slot
// array: phase_table is what the room discipline protects (rooms map 1:1
// onto the operation classes of Definition 1), deletable_table supplies the
// erase room, and open_addressing_table provides the raw_slots() view the
// serial elements()/count() scans use. A table that is not phase-concurrent
// (or hides its storage) is rejected at compile time rather than silently
// wrapped with the wrong synchronization.
template <typename Table>
  requires deletable_table<Table> && open_addressing_table<Table>
class auto_phased_table {
 public:
  using traits = typename Table::traits;
  using value_type = typename Table::value_type;
  using key_type = typename Table::key_type;

  explicit auto_phased_table(std::size_t min_capacity)
      : table_(min_capacity), rooms_(3) {}

  std::size_t capacity() const noexcept { return table_.capacity(); }

  void insert(value_type v) {
    {
      room_sync::guard g(rooms_, kInsertRoom);
      note_room(op_kind::insert);
      table_.insert(v);
    }
    reclaim::quiescent();  // see reclamation guarantee above
  }

  void erase(key_type k) {
    {
      room_sync::guard g(rooms_, kEraseRoom);
      note_room(op_kind::erase);
      table_.erase(k);
    }
    reclaim::quiescent();
  }

  value_type find(key_type k) const {
    value_type r;
    {
      room_sync::guard g(rooms_, kQueryRoom);
      note_room(op_kind::query);
      r = table_.find(k);
    }
    reclaim::quiescent();
    return r;
  }

  bool contains(key_type k) const {
    bool r;
    {
      room_sync::guard g(rooms_, kQueryRoom);
      note_room(op_kind::query);
      r = table_.contains(k);
    }
    reclaim::quiescent();
    return r;
  }

  // elements() and count() scan the slots *serially* here: running a
  // parallel job while holding a room could deadlock against another user
  // thread that occupies the scheduler while waiting for this room. (With
  // caller-separated phases, use the underlying table's parallel
  // elements().)
  std::vector<value_type> elements() const {
    std::vector<value_type> out;
    {
      room_sync::guard g(rooms_, kQueryRoom);
      note_room(op_kind::query);
      const value_type* slots = table_.raw_slots();
      for (std::size_t s = 0; s < table_.capacity(); ++s) {
        if (!traits::is_empty(slots[s])) out.push_back(slots[s]);
      }
    }
    reclaim::quiescent();
    return out;
  }

  // Count is a query (shares the find/elements room).
  std::size_t count() const {
    std::size_t c = 0;
    {
      room_sync::guard g(rooms_, kQueryRoom);
      note_room(op_kind::query);
      const value_type* slots = table_.raw_slots();
      for (std::size_t s = 0; s < table_.capacity(); ++s) c += !traits::is_empty(slots[s]);
    }
    reclaim::quiescent();
    return c;
  }

  // Access to the underlying table at a quiescent point (caller's duty).
  Table& underlying() noexcept { return table_; }
  const Table& underlying() const noexcept { return table_; }

  // Observability passthroughs: the wrapper performs every operation on the
  // wrapped table, so its distribution block and phase word *are* this
  // table's — surfacing them here lets obs::register_table attribute
  // histograms and the phase epoch to the wrapper directly.
  obs::table_hists& hists() const noexcept
    requires requires(const Table& t) { t.hists(); }
  {
    return table_.hists();
  }
  phase_runtime& phase_rt() const noexcept
    requires phase_epoch_table<Table>
  {
    return table_.phase_rt();
  }

 private:
  static constexpr int kInsertRoom = 0;
  static constexpr int kEraseRoom = 1;
  static constexpr int kQueryRoom = 2;

  // Announces the room's class to the wrapped table's phase epoch. The
  // first entrant after a room transition wins the exactly-once edge;
  // same-room entrants see one relaxed load.
  void note_room(op_kind k) const {
    if constexpr (phase_epoch_table<Table>) table_.phase_rt().on_op(k);
  }

  Table table_;
  mutable room_sync rooms_;
};

}  // namespace phch
