// cuckooHash: the paper's phase-concurrent (but non-deterministic) cuckoo
// baseline. Two hash functions; an insertion locks its element's two
// candidate slots in increasing slot order (deadlock freedom), places the
// element in one of them, and recursively re-inserts any evicted element.
// The final position of an element depends on insertion interleaving, so
// the layout is history-dependent.
//
// As in the paper's implementation, every slot carries its own lock, which
// enlarges the memory footprint and is why elements() is slower here than
// for the plain linear-probing tables.
//
// The table models phase_table / deletable_table and forwards its own batch
// members (batch_forwarding_table / erase_forwarding_table): cuckoo probes
// touch exactly two unrelated cache lines per operation, so the batch path
// keeps a ring of in-flight operations and prefetches *both* candidate
// buckets (and their lock lines, for mutating ops) one rotation before
// resolving each operation on warm lines. Inserts resolve by handing off to
// the scalar loop at that point — the first eviction and any chain after it
// run exactly the scalar code. Occupancy is tracked by a striped counter
// (approx_size(), exact at phase boundaries); count() remains the O(capacity)
// verification scan.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"
#include "phch/parallel/striped_counter.h"
#include "phch/utils/phase_caps.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class cuckoo_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit cuckoo_table(std::size_t min_capacity)
      : capacity_(round_up_pow2(min_capacity < 4 ? 4 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_),
        locks_(capacity_) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  // Striped occupancy: exact at a phase boundary, approximate mid-phase.
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }

  // O(capacity) reference count, kept as the verification path for
  // approx_size() and the layout tests.
  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  void clear() {
    parallel_for(0, capacity_, [&](std::size_t i) { slots_[i] = Traits::empty(); });
    occupied_.reset();
  }

  void insert(value_type v) PHCH_REQUIRES_PHASE(insert) {
    typename Phase::scope guard(phase_, op_kind::insert);
    insert_impl(v);
  }

  void erase(key_type kq) PHCH_REQUIRES_PHASE(erase) {
    typename Phase::scope guard(phase_, op_kind::erase);
    erase_impl(kq);
  }

  value_type find(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return find_impl(kq);
  }

  bool contains(key_type kq) const PHCH_REQUIRES_PHASE(query) {
    return !Traits::is_empty(find(kq));
  }

  std::vector<value_type> elements() const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    return pack(
        capacity_, [&](std::size_t i) { return !Traits::is_empty(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

  template <typename F>
  void for_each(F&& f) const PHCH_REQUIRES_PHASE(query) {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity_, [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

  // --- whole-batch members (batch_forwarding_table) ------------------------
  // One phase scope spans the batch; blocked_for supplies the cross-block
  // parallelism and the per-block engines below supply the memory-level
  // parallelism.

  template <typename V>
  void insert_batch(const std::vector<V>& values) PHCH_REQUIRES_PHASE(insert) {
    [[maybe_unused]] auto scope = batch_insert_scope();
    const std::size_t width = batch_width();
    blocked_for(0, values.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  insert_batch_block(values.data() + s, e - s, width);
                });
  }

  template <typename K>
  std::vector<value_type> find_batch(const std::vector<K>& keys) const
      PHCH_REQUIRES_PHASE(query) {
    std::vector<value_type> out(keys.size());
    [[maybe_unused]] auto scope = batch_query_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  find_batch_block(keys.data() + s, e - s, out.data() + s, width);
                });
    return out;
  }

  template <typename K>
  void erase_batch(const std::vector<K>& keys) PHCH_REQUIRES_PHASE(erase) {
    [[maybe_unused]] auto scope = batch_erase_scope();
    const std::size_t width = batch_width();
    blocked_for(0, keys.size(), 2048,
                [&](std::size_t, std::size_t s, std::size_t e) {
                  erase_batch_block(keys.data() + s, e - s, width);
                });
  }

  // --- single-thread block engines -----------------------------------------
  // Serial within a block; public so benches can drive them directly with
  // explicit widths. Each lane's start() prefetches both candidate buckets,
  // so by the time the ring rotates back the resolve step runs on warm
  // lines: a lookup inspects at most two resident slots, a mutating op
  // hands off to the scalar continuation whose first lock/probe/CAS hits
  // the lines just fetched (evictions past that point run the plain scalar
  // chain).

  template <typename K>
  void find_batch_block(const K* keys, std::size_t n, value_type* out,
                        std::size_t width) const {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t idx;
      std::size_t i1, i2;
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_slots = 0, t_rot = 0, t_hits = 0;

    auto start = [&](op& o) {
      const std::size_t idx = issued++;
      const key_type kq = keys[idx];
      o = op{idx, home1(kq), home2(kq), kq};
      detail::prefetch_ro(&slots_[o.i1]);
      detail::prefetch_ro(&slots_[o.i2]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      value_type result = Traits::empty();
      for (const std::size_t s : {o.i1, o.i2}) {
        const value_type c = atomic_load(&slots_[s]);
        ++t_slots;
        if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), o.kq)) {
          result = c;
          ++t_hits;
          break;
        }
      }
      out[o.idx] = result;
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::find_ops, n);
    obs::count(obs::counter::find_hits, t_hits);
    obs::count(obs::counter::batch_probe_slots, t_slots);
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename V>
  void insert_batch_block(const V* values, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t i1, i2;
      value_type v;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const value_type v = values[issued++];
      const key_type k = Traits::key(v);
      o = op{home1(k), home2(k), v};
      detail::prefetch_rw(&slots_[o.i1]);
      detail::prefetch_rw(&slots_[o.i2]);
      detail::prefetch_rw(&locks_[o.i1]);
      detail::prefetch_rw(&locks_[o.i2]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      insert_impl(o.v);  // scalar handoff: iteration 0 runs on warm lines
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  template <typename K>
  void erase_batch_block(const K* keys, std::size_t n, std::size_t width) {
    if (width > kMaxBatchWidth) width = kMaxBatchWidth;
    if (width < 1) width = 1;
    struct op {
      std::size_t i1, i2;
      key_type kq;
    };
    std::array<op, kMaxBatchWidth> ring;
    std::size_t issued = 0;
    std::size_t live = 0;
    std::uint64_t t_rot = 0, t_handoffs = 0;

    auto start = [&](op& o) {
      const key_type kq = keys[issued++];
      o = op{home1(kq), home2(kq), kq};
      detail::prefetch_rw(&slots_[o.i1]);
      detail::prefetch_rw(&slots_[o.i2]);
      detail::prefetch_rw(&locks_[o.i1]);
      detail::prefetch_rw(&locks_[o.i2]);
    };
    while (live < width && issued < n) start(ring[live++]);

    std::size_t r = 0;
    while (live > 0) {
      op& o = ring[r];
      ++t_handoffs;
      erase_impl(o.kq);
      if (issued < n) {
        start(o);
      } else {
        ring[r] = ring[--live];
        if (r == live) r = 0;
        continue;
      }
      ++t_rot;
      if (++r >= live) r = 0;
    }
    obs::count(obs::counter::batch_rotations, t_rot);
    obs::count(obs::counter::batch_handoffs, t_handoffs);
    obs::count(obs::counter::batch_blocks);
  }

  // Batch-engine phase hooks: one scope spanning a whole batch, so
  // checked_phases observes batched traffic it would otherwise miss.
  // phase_rt() is the table's single phase-state word (phase epoch +
  // current class, core/phase_runtime.h), shared by scalar and batch scopes.
  phase_runtime& phase_rt() const noexcept { return phase_.runtime(); }

  typename Phase::scope batch_query_scope() const PHCH_REQUIRES_PHASE(query) {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() PHCH_REQUIRES_PHASE(insert) {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() PHCH_REQUIRES_PHASE(erase) {
    return typename Phase::scope(phase_, op_kind::erase);
  }

 private:
  static constexpr std::size_t kMaxEvictions = 10000;

  std::size_t home1(key_type k) const noexcept { return Traits::hash(k) & mask_; }
  std::size_t home2(key_type k) const noexcept {
    // Independent second hash from a re-mix of the primary hash.
    return hash64(Traits::hash(k) ^ 0xc2b2ae3d27d4eb4fULL) & mask_;
  }

  void lock_pair(std::size_t a, std::size_t b) const {
    if (a == b) {
      locks_[a].lock();
      return;
    }
    if (a > b) std::swap(a, b);  // increasing order prevents deadlock
    locks_[a].lock();
    locks_[b].lock();
  }
  void unlock_pair(std::size_t a, std::size_t b) const {
    locks_[a].unlock();
    if (b != a) locks_[b].unlock();
  }

  // Scalar insert loop, shared by insert() and the batch handoff. Exactly
  // one of insert_commits / insert_dups / insert_aborts is recorded per
  // call (the ledger identity phch_trace checks); eviction-chain steps that
  // re-place a carried victim tick only cuckoo_evictions.
  void insert_impl(value_type v) {
    assert(!Traits::is_empty(v));
    obs::count(obs::counter::insert_ops);
    // `avoid` is the slot the current element was just evicted from, so the
    // chain does not immediately bounce it back.
    std::size_t avoid = capacity_;  // invalid
    bool carrying = false;          // v is an evicted victim, already counted
    for (std::size_t iter = 0; iter < kMaxEvictions; ++iter) {
      const key_type k = Traits::key(v);
      const std::size_t i1 = home1(k);
      const std::size_t i2 = home2(k);
      lock_pair(i1, i2);
      // Duplicate key already present? A carried victim can hit this branch
      // too: while it was in flight, a concurrent insert of the same key may
      // have committed a fresh copy. Merging the victim into that copy
      // removes it from the table, so the occupancy it still accounts for is
      // released here.
      for (const std::size_t s : {i1, i2}) {
        const value_type c = slots_[s];
        if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), k)) {
          if constexpr (Traits::has_combine) {
            atomic_store(&slots_[s], Traits::combine(c, v));
          }
          unlock_pair(i1, i2);
          if (carrying)
            occupied_.decrement();
          else
            obs::count(obs::counter::insert_dups);
          return;
        }
      }
      // An empty candidate slot?
      for (const std::size_t s : {i1, i2}) {
        if (Traits::is_empty(slots_[s])) {
          atomic_store(&slots_[s], v);
          unlock_pair(i1, i2);
          if (!carrying) {
            occupied_.increment();
            obs::count(obs::counter::insert_commits);
          }
          return;
        }
      }
      // Evict: prefer i1 unless that is where v just came from.
      const std::size_t victim_slot = (i1 == avoid) ? i2 : i1;
      const value_type victim = slots_[victim_slot];
      atomic_store(&slots_[victim_slot], v);
      unlock_pair(i1, i2);
      if (!carrying) {
        occupied_.increment();
        obs::count(obs::counter::insert_commits);
        carrying = true;
      }
      obs::count(obs::counter::cuckoo_evictions);
      v = victim;
      avoid = victim_slot;
    }
    // Eviction chain too long: table effectively full. The carried victim
    // is dropped with the throw, so the occupancy net change is zero.
    if (carrying) occupied_.decrement();
    obs::count(obs::counter::insert_aborts);
    throw table_full_error();
  }

  void erase_impl(key_type kq) {
    obs::count(obs::counter::erase_ops);
    const std::size_t i1 = home1(kq);
    const std::size_t i2 = home2(kq);
    lock_pair(i1, i2);
    bool hit = false;
    for (const std::size_t s : {i1, i2}) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) {
        atomic_store(&slots_[s], Traits::empty());
        hit = true;
        break;
      }
    }
    unlock_pair(i1, i2);
    if (hit) {
      occupied_.decrement();
      obs::count(obs::counter::erase_hits);
    }
  }

  value_type find_impl(key_type kq) const {
    obs::count(obs::counter::find_ops);
    obs::probe_tally tally;
    for (const std::size_t s : {home1(kq), home2(kq)}) {
      const value_type c = atomic_load(&slots_[s]);
      ++tally.slots;
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) {
        obs::count(obs::counter::find_hits);
        return c;
      }
    }
    return Traits::empty();
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<value_type> slots_;
  mutable std::vector<spinlock> locks_;
  striped_counter occupied_;
  mutable Phase phase_;

 public:
  // Phase-capability tokens (utils/phase_caps.h): the static half of the
  // phase contract the Phase policy enforces at runtime.
  PHCH_PHASE_CAPABILITIES();
};

}  // namespace phch
