// cuckooHash: the paper's phase-concurrent (but non-deterministic) cuckoo
// baseline. Two hash functions; an insertion locks its element's two
// candidate slots in increasing slot order (deadlock freedom), places the
// element in one of them, and recursively re-inserts any evicted element.
// The final position of an element depends on insertion interleaving, so
// the layout is history-dependent.
//
// As in the paper's implementation, every slot carries its own lock, which
// enlarges the memory footprint and is why elements() is slower here than
// for the plain linear-probing tables.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/spinlock.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class cuckoo_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  explicit cuckoo_table(std::size_t min_capacity)
      : capacity_(round_up_pow2(min_capacity < 4 ? 4 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_),
        locks_(capacity_) {
    clear();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  std::size_t count() const {
    return reduce(std::size_t{0}, capacity_, std::size_t{0}, std::plus<std::size_t>{},
                  [&](std::size_t i) {
                    return Traits::is_empty(slots_[i]) ? std::size_t{0} : std::size_t{1};
                  });
  }

  void clear() {
    parallel_for(0, capacity_, [&](std::size_t i) { slots_[i] = Traits::empty(); });
  }

  void insert(value_type v) {
    typename Phase::scope guard(phase_, op_kind::insert);
    assert(!Traits::is_empty(v));
    // `avoid` is the slot the current element was just evicted from, so the
    // chain does not immediately bounce it back.
    std::size_t avoid = capacity_;  // invalid
    for (std::size_t iter = 0; iter < kMaxEvictions; ++iter) {
      const key_type k = Traits::key(v);
      const std::size_t i1 = home1(k);
      const std::size_t i2 = home2(k);
      lock_pair(i1, i2);
      // Duplicate key already present?
      for (const std::size_t s : {i1, i2}) {
        const value_type c = slots_[s];
        if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), k)) {
          if constexpr (Traits::has_combine) {
            atomic_store(&slots_[s], Traits::combine(c, v));
          }
          unlock_pair(i1, i2);
          return;
        }
      }
      // An empty candidate slot?
      for (const std::size_t s : {i1, i2}) {
        if (Traits::is_empty(slots_[s])) {
          atomic_store(&slots_[s], v);
          unlock_pair(i1, i2);
          return;
        }
      }
      // Evict: prefer i1 unless that is where v just came from.
      const std::size_t victim_slot = (i1 == avoid) ? i2 : i1;
      const value_type victim = slots_[victim_slot];
      atomic_store(&slots_[victim_slot], v);
      unlock_pair(i1, i2);
      v = victim;
      avoid = victim_slot;
    }
    throw table_full_error();  // eviction chain too long: table effectively full
  }

  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::size_t i1 = home1(kq);
    const std::size_t i2 = home2(kq);
    lock_pair(i1, i2);
    for (const std::size_t s : {i1, i2}) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) {
        atomic_store(&slots_[s], Traits::empty());
        break;
      }
    }
    unlock_pair(i1, i2);
  }

  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    for (const std::size_t s : {home1(kq), home2(kq)}) {
      const value_type c = atomic_load(&slots_[s]);
      if (!Traits::is_empty(c) && Traits::key_equal(Traits::key(c), kq)) return c;
    }
    return Traits::empty();
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    return pack(
        capacity_, [&](std::size_t i) { return !Traits::is_empty(slots_[i]); },
        [&](std::size_t i) { return slots_[i]; });
  }

  template <typename F>
  void for_each(F&& f) const {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity_, [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

 private:
  static constexpr std::size_t kMaxEvictions = 10000;

  std::size_t home1(key_type k) const noexcept { return Traits::hash(k) & mask_; }
  std::size_t home2(key_type k) const noexcept {
    // Independent second hash from a re-mix of the primary hash.
    return hash64(Traits::hash(k) ^ 0xc2b2ae3d27d4eb4fULL) & mask_;
  }

  void lock_pair(std::size_t a, std::size_t b) const {
    if (a == b) {
      locks_[a].lock();
      return;
    }
    if (a > b) std::swap(a, b);  // increasing order prevents deadlock
    locks_[a].lock();
    locks_[b].lock();
  }
  void unlock_pair(std::size_t a, std::size_t b) const {
    locks_[a].unlock();
    if (b != a) locks_[b].unlock();
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<value_type> slots_;
  mutable std::vector<spinlock> locks_;
  mutable Phase phase_;
};

}  // namespace phch
