// Vectorized group scans over the 1-byte tag sidecar (core/tag_array.h).
//
// A probe that walks full slots loads 8-16 bytes and takes a compare branch
// per position. With a fingerprint byte per slot, one vector compare +
// movemask classifies a whole *group* of slots at once; the probe loop then
// touches only the (rare) candidate slots whose fingerprint matched. Three
// backends share one shape so every platform takes the fast path:
//
//   avx2   32-slot groups   x86, compiled via a per-function target
//                           attribute and gated at runtime on cpuid, so the
//                           default build (no -mavx2) still carries it.
//   sse2   16-slot groups   x86-64 baseline (always available there).
//   neon   16-slot groups   aarch64 baseline.
//   swar   8-slot groups    portable uint64 arithmetic; also the forced
//                           fallback under ThreadSanitizer and when the
//                           build disables vector backends (PHCH_FORCE_SWAR).
//
// Selection: compile-time availability (this header), then a process-wide
// active backend initialized from the PHCH_SIMD environment variable
// (auto | off | swar | sse2 | neon | avx2) and overridable from code with
// set_backend() — tests use that to run every compiled backend, and `off`
// reverts every probe loop to the untagged scalar walk.
//
// Concurrency: tag bytes are published with relaxed atomic stores *after*
// the owning slot CAS commits, and every scan result is confirmed against
// the slot array, so a scan may read a mix of old and new tags without
// affecting semantics. The group loads below are deliberately plain vector
// loads (byte-wise atomicity is guaranteed by x86/ARM for naturally aligned
// vectors in practice, and any torn byte is just another candidate to
// confirm); under ThreadSanitizer, which models vector loads as one wide
// access and would report them racing with the byte stores, the SWAR
// backend is forced and assembles its group from per-byte relaxed atomic
// loads instead.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "phch/utils/arch.h"

#if defined(__SANITIZE_THREAD__)
#define PHCH_SIMD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PHCH_SIMD_TSAN 1
#endif
#endif
#ifndef PHCH_SIMD_TSAN
#define PHCH_SIMD_TSAN 0
#endif

// PHCH_FORCE_SWAR=1 (CMake option, CI matrix job) compiles the vector
// backends out entirely, proving the portable path never rots.
#if (defined(PHCH_FORCE_SWAR) && PHCH_FORCE_SWAR) || PHCH_SIMD_TSAN
#define PHCH_SIMD_VECTOR_BACKENDS 0
#else
#define PHCH_SIMD_VECTOR_BACKENDS 1
#endif

#if PHCH_SIMD_VECTOR_BACKENDS && PHCH_ARCH_X86 && defined(__SSE2__)
#define PHCH_SIMD_HAVE_SSE2 1
#else
#define PHCH_SIMD_HAVE_SSE2 0
#endif

#if PHCH_SIMD_VECTOR_BACKENDS && PHCH_ARCH_AARCH64 && defined(__ARM_NEON)
#include <arm_neon.h>
#define PHCH_SIMD_HAVE_NEON 1
#else
#define PHCH_SIMD_HAVE_NEON 0
#endif

namespace phch::simd {

enum class backend : std::uint8_t { off, swar, sse2, neon, avx2 };

// Widest group any backend scans; tag_array over-allocates to this so a
// group load never runs off the end of a small table's tag block.
inline constexpr std::size_t kMaxGroupWidth = 32;

constexpr std::size_t group_width(backend b) noexcept {
  switch (b) {
    case backend::avx2: return 32;
    case backend::sse2:
    case backend::neon: return 16;
    case backend::swar: return 8;
    case backend::off: return 0;
  }
  return 0;
}

constexpr const char* backend_name(backend b) noexcept {
  switch (b) {
    case backend::avx2: return "avx2";
    case backend::sse2: return "sse2";
    case backend::neon: return "neon";
    case backend::swar: return "swar";
    case backend::off: return "off";
  }
  return "?";
}

// One group scan's verdict: bit i set iff tag byte i equals the probed
// fingerprint (match) / the empty sentinel (empty). Only the low
// group_width(b) bits are ever set.
struct group_masks {
  std::uint32_t match = 0;
  std::uint32_t empty = 0;
};

namespace detail {

inline constexpr std::uint64_t kLoBits = 0x0101010101010101ULL;
inline constexpr std::uint64_t kHiBits = 0x8080808080808080ULL;
inline constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;

// 8 tag bytes as one little-endian word (byte i -> bits 8i..8i+7).
inline std::uint64_t load_group8(const std::uint8_t* g) noexcept {
#if PHCH_SIMD_TSAN
  // Per-byte relaxed loads: the tag stores are per-byte relaxed atomics,
  // so this is the access pattern TSan can pair them with.
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | __atomic_load_n(g + i, __ATOMIC_RELAXED);
  }
  return v;
#else
  return __atomic_load_n(reinterpret_cast<const std::uint64_t*>(g),
                         __ATOMIC_RELAXED);
#endif
}

// Exact byte-equality mask: bit i of the result is set iff byte i of v
// equals b. The usual haszero trick ((v-kLoBits) & ~v & kHiBits) reports
// false positives in bytes above the lowest zero (its borrow propagates);
// this form evaluates each byte independently, which the backend-equality
// tests rely on.
inline std::uint32_t eq_mask8(std::uint64_t v, std::uint8_t b) noexcept {
  const std::uint64_t x = v ^ (kLoBits * b);
  const std::uint64_t zero = ~(x | ((x & kLow7) + kLow7)) & kHiBits;
  // Compress the per-byte high bits (positions 8i+7) down to bits 0..7.
  return static_cast<std::uint32_t>((zero * 0x0002040810204081ULL) >> 56);
}

inline group_masks scan_swar(const std::uint8_t* g, std::uint8_t match_tag,
                             std::uint8_t empty_tag) noexcept {
  const std::uint64_t v = load_group8(g);
  return {eq_mask8(v, match_tag), eq_mask8(v, empty_tag)};
}

#if PHCH_SIMD_HAVE_SSE2
inline group_masks scan_sse2(const std::uint8_t* g, std::uint8_t match_tag,
                             std::uint8_t empty_tag) noexcept {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(g));
  const auto mask = [&](std::uint8_t b) {
    return static_cast<std::uint32_t>(_mm_movemask_epi8(
        _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(b)))));
  };
  return {mask(match_tag), mask(empty_tag)};
}

// Compiled with AVX2 enabled for this one function regardless of the
// translation unit's -m flags; only ever called after a cpuid check. No
// lambdas in the body: a lambda's operator() would not inherit the target
// attribute and the always_inline intrinsics would fail to inline into it.
__attribute__((target("avx2"))) inline group_masks scan_avx2(
    const std::uint8_t* g, std::uint8_t match_tag,
    std::uint8_t empty_tag) noexcept {
  const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(g));
  const __m256i eq_match =
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(match_tag)));
  const __m256i eq_empty =
      _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(empty_tag)));
  return {static_cast<std::uint32_t>(_mm256_movemask_epi8(eq_match)),
          static_cast<std::uint32_t>(_mm256_movemask_epi8(eq_empty))};
}
#endif  // PHCH_SIMD_HAVE_SSE2

#if PHCH_SIMD_HAVE_NEON
inline std::uint32_t neon_movemask(uint8x16_t eq) noexcept {
  // AND each compare byte (0x00/0xff) with its lane's bit weight, then
  // horizontal-add each half into one byte of the 16-bit mask.
  static const std::uint8_t kWeights[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                            1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t w = vandq_u8(eq, vld1q_u8(kWeights));
  return static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(w))) |
         (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(w))) << 8);
}

inline group_masks scan_neon(const std::uint8_t* g, std::uint8_t match_tag,
                             std::uint8_t empty_tag) noexcept {
  const uint8x16_t v = vld1q_u8(g);
  return {neon_movemask(vceqq_u8(v, vdupq_n_u8(match_tag))),
          neon_movemask(vceqq_u8(v, vdupq_n_u8(empty_tag)))};
}
#endif  // PHCH_SIMD_HAVE_NEON

}  // namespace detail

// Compile-time + runtime availability of a backend on this machine.
inline bool available(backend b) noexcept {
  switch (b) {
    case backend::off:
    case backend::swar:
      return true;
    case backend::sse2:
      return PHCH_SIMD_HAVE_SSE2 != 0;
    case backend::neon:
      return PHCH_SIMD_HAVE_NEON != 0;
    case backend::avx2:
#if PHCH_SIMD_HAVE_SSE2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

// Widest available backend (what PHCH_SIMD=auto resolves to).
inline backend best() noexcept {
  if (available(backend::avx2)) return backend::avx2;
  if (available(backend::sse2)) return backend::sse2;
  if (available(backend::neon)) return backend::neon;
  return backend::swar;
}

namespace detail {

inline backend parse_env() noexcept {
  const char* v = std::getenv("PHCH_SIMD");
  if (v == nullptr || *v == '\0' || std::strcmp(v, "auto") == 0) return best();
  if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
      std::strcmp(v, "scalar") == 0) {
    return backend::off;
  }
  const backend named = std::strcmp(v, "swar") == 0   ? backend::swar
                        : std::strcmp(v, "sse2") == 0 ? backend::sse2
                        : std::strcmp(v, "neon") == 0 ? backend::neon
                        : std::strcmp(v, "avx2") == 0 ? backend::avx2
                                                      : best();
  return available(named) ? named : best();
}

inline backend& active_ref() noexcept {
  static backend b = parse_env();
  return b;
}

}  // namespace detail

// The process-wide active backend. Plain (unsynchronized) read: the value
// only changes via set_backend(), which callers use at quiescent points
// (between phases / in tests and benches), never mid-operation.
inline backend active() noexcept { return detail::active_ref(); }

// Override the active backend; unavailable requests clamp to best().
// Returns what actually took effect.
inline backend set_backend(backend b) noexcept {
  if (b != backend::off && !available(b)) b = best();
  detail::active_ref() = b;
  return b;
}

// True when backend b can drive a table of this capacity: group-aligned
// iteration needs the (power-of-two) capacity to be at least one group.
inline bool usable(backend b, std::size_t capacity) noexcept {
  return b != backend::off && group_width(b) <= capacity;
}

// Scan one naturally-aligned group of tags for two byte values at once.
// `g` must be aligned to group_width(b).
inline group_masks scan_group(const std::uint8_t* g, std::uint8_t match_tag,
                              std::uint8_t empty_tag, backend b) noexcept {
  switch (b) {
#if PHCH_SIMD_HAVE_SSE2
    case backend::avx2:
      return detail::scan_avx2(g, match_tag, empty_tag);
    case backend::sse2:
      return detail::scan_sse2(g, match_tag, empty_tag);
#endif
#if PHCH_SIMD_HAVE_NEON
    case backend::neon:
      return detail::scan_neon(g, match_tag, empty_tag);
#endif
    default:
      return detail::scan_swar(g, match_tag, empty_tag);
  }
}

// Bits strictly below the lowest set bit of m (all ones when m == 0):
// candidates past the first empty slot belong to a later cluster and are
// masked off with this.
inline std::uint32_t below_lowest(std::uint32_t m) noexcept {
  return m != 0 ? (m & (~m + 1u)) - 1u : ~0u;
}

}  // namespace phch::simd
