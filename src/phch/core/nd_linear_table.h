// linearHash-ND: non-deterministic phase-concurrent linear probing, the
// paper's history-dependent baseline modeled on Gao, Groote & Hesselink
// (Distributed Computing 2005), with two changes the paper makes:
//  - deletions shift elements back (hole filling) instead of leaving
//    tombstones, and
//  - no resizing.
//
// Inserts place an element in the *first empty slot* of its probe sequence,
// so the layout depends on arrival order — the table is not deterministic.
// Inserted elements never move during an insert phase, which is why the
// paper notes inserts and finds could legally share a phase here, and why
// duplicate-key combining can update the value word in place (xadd).
//
// Deletion reuses the same hole-filling replacement protocol as the
// deterministic table (the replacement choice depends only on hash homes,
// not priorities): find the element, swap in the nearest later element that
// hashes at-or-before the hole, then chase the duplicated copy.
//
// Implementation: arrival-order placement with back-shift deletion over the
// shared open-addressing core (core/probe_engine.h).
#pragma once

#include "phch/core/probe_engine.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
using nd_linear_table = probe_engine<Traits, Phase, arrival_order, backshift_delete>;

}  // namespace phch
