// linearHash-ND: non-deterministic phase-concurrent linear probing, the
// paper's history-dependent baseline modeled on Gao, Groote & Hesselink
// (Distributed Computing 2005), with two changes the paper makes:
//  - deletions shift elements back (hole filling) instead of leaving
//    tombstones, and
//  - no resizing.
//
// Inserts place an element in the *first empty slot* of its probe sequence,
// so the layout depends on arrival order — the table is not deterministic.
// Inserted elements never move during an insert phase, which is why the
// paper notes inserts and finds could legally share a phase here, and why
// duplicate-key combining can update the value word in place (xadd).
//
// Deletion reuses the same hole-filling replacement protocol as the
// deterministic table (the replacement choice depends only on hash homes,
// not priorities): find the element, swap in the nearest later element that
// hashes at-or-before the hole, then chase the duplicated copy.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/core/phase_guard.h"
#include "phch/core/table_common.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/striped_counter.h"

namespace phch {

template <typename Traits = int_entry<>, typename Phase = unchecked_phases>
class nd_linear_table {
 public:
  using traits = Traits;
  using value_type = typename Traits::value_type;
  using key_type = typename Traits::key_type;

  // No ordering invariant: probes stop only at ⊥ or an equal key (batch
  // engine tag).
  static constexpr bool ordered_probes = false;

  explicit nd_linear_table(std::size_t min_capacity) : slots_(min_capacity) {}

  std::size_t capacity() const noexcept { return slots_.capacity(); }
  std::size_t count() const { return slots_.count(); }

  // Occupied-slot count from a cache-line-striped counter (exact at phase
  // boundaries, summed lazily), mirroring deterministic_table so wrappers
  // and load triggers treat both linear tables uniformly.
  std::size_t approx_size() const noexcept {
    return static_cast<std::size_t>(occupied_.sum());
  }
  double load_factor() const { return static_cast<double>(count()) / capacity(); }
  void clear() {
    slots_.clear();
    occupied_.reset();
  }

  void insert(value_type v) {
    assert(!Traits::is_empty(v));
    insert_impl(v, home(Traits::key(v)), 0);
  }

  // Batch-engine continuation (core/batch_ops.h): resume the probe at slot
  // i after the pipelined prefix advanced past `advances` occupied slots.
  void insert_from(value_type v, std::size_t i, std::size_t advances) {
    insert_impl(v, i, advances);
  }

  void erase(key_type kq) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::size_t cap = capacity();
    const std::uint64_t i = cap + home(kq);
    std::uint64_t k = i;
    // Without an ordering invariant the forward scan can only stop at ⊥.
    for (;;) {
      if (Traits::is_empty(atomic_load(slot(k)))) break;
      ++k;
      if (k - i > cap) throw table_full_error();
    }
    erase_downward(kq, i, k);
  }

  // Batch-engine continuation: forward scan already done by the pipelined
  // engine, stopping `fwd_advances` slots past the key's home.
  void erase_from(key_type kq, std::size_t fwd_advances) {
    typename Phase::scope guard(phase_, op_kind::erase);
    const std::uint64_t i = capacity() + home(kq);
    erase_downward(kq, i, i + fwd_advances);
  }

 private:
  void insert_impl(value_type v, std::size_t i, std::size_t advances) {
    typename Phase::scope guard(phase_, op_kind::insert);
    const std::size_t cap = capacity();
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) {
        if (cas(&slots_[i], c, v)) {
          occupied_.increment();
          return;
        }
        continue;  // slot was taken meanwhile; re-examine it
      }
      if (Traits::key_equal(Traits::key(c), Traits::key(v))) {
        if constexpr (Traits::has_combine) {
          combine_slot(&slots_[i], c, v);
        }
        return;  // never replaces on duplicate keys
      }
      i = next(i);
      if (++advances > cap) throw table_full_error();
    }
  }

  void erase_downward(key_type kq, std::uint64_t i, std::uint64_t k) {
    while (k >= i) {
      const value_type c = atomic_load(slot(k));
      if (Traits::is_empty(c) || !Traits::key_equal(Traits::key(c), kq)) {
        --k;
        continue;
      }
      const auto [j, w] = find_replacement(k);
      if (cas(slot(k), c, w)) {
        if (!Traits::is_empty(w)) {
          kq = Traits::key(w);
          k = j;
          i = unwrapped_home(w, j);
        } else {
          occupied_.decrement();
          return;
        }
      } else {
        --k;
      }
    }
  }

 public:

  // Probe until the key or an empty slot; no early exit is possible without
  // the ordering invariant.
  value_type find(key_type kq) const {
    typename Phase::scope guard(phase_, op_kind::query);
    const std::size_t cap = capacity();
    std::size_t i = home(kq);
    std::size_t advances = 0;
    for (;;) {
      const value_type c = atomic_load(&slots_[i]);
      if (Traits::is_empty(c)) return Traits::empty();
      if (Traits::key_equal(Traits::key(c), kq)) return c;
      i = next(i);
      if (++advances > cap) throw table_full_error();
    }
  }

  bool contains(key_type kq) const { return !Traits::is_empty(find(kq)); }

  std::vector<value_type> elements() const {
    typename Phase::scope guard(phase_, op_kind::query);
    return slots_.elements();
  }

  template <typename F>
  void for_each(F&& f) const {
    typename Phase::scope guard(phase_, op_kind::query);
    parallel_for(0, capacity(), [&](std::size_t s) {
      const value_type c = slots_[s];
      if (!Traits::is_empty(c)) f(c);
    });
  }

  const value_type* raw_slots() const noexcept { return slots_.data(); }

  // Address of the key's home slot, for software prefetching in batched
  // operations (see core/batch_ops.h).
  const void* home_address(key_type k) const noexcept { return &slots_[home(k)]; }

  // Batch-engine phase hooks: one scope spanning a whole pipelined block.
  typename Phase::scope batch_query_scope() const {
    return typename Phase::scope(phase_, op_kind::query);
  }
  typename Phase::scope batch_insert_scope() {
    return typename Phase::scope(phase_, op_kind::insert);
  }
  typename Phase::scope batch_erase_scope() {
    return typename Phase::scope(phase_, op_kind::erase);
  }

 private:
  std::size_t home(key_type k) const noexcept { return Traits::hash(k) & slots_.mask(); }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & slots_.mask(); }
  value_type* slot(std::uint64_t unwrapped) noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }
  const value_type* slot(std::uint64_t unwrapped) const noexcept {
    return &slots_[unwrapped & slots_.mask()];
  }
  std::uint64_t unwrapped_home(value_type v, std::uint64_t j) const noexcept {
    const std::uint64_t raw = home(Traits::key(v));
    return j - ((j - raw) & slots_.mask());
  }

  static void combine_slot(value_type* p, value_type seen, value_type incoming) noexcept {
    if constexpr (requires { Traits::combine_inplace(p, incoming); }) {
      Traits::combine_inplace(p, incoming);
    } else {
      value_type cur = seen;
      for (;;) {
        const value_type merged = Traits::combine(cur, incoming);
        if (bits_equal(merged, cur) || cas(p, cur, merged)) return;
        cur = atomic_load(p);
      }
    }
  }

  std::pair<std::uint64_t, value_type> find_replacement(std::uint64_t k) const {
    const std::size_t cap = capacity();
    std::uint64_t j = k;
    value_type w;
    do {
      ++j;
      if (j - k > cap) throw table_full_error();
      w = atomic_load(slot(j));
    } while (!Traits::is_empty(w) && unwrapped_home(w, j) > k);
    for (std::uint64_t m = j - 1; m > k; --m) {
      const value_type w2 = atomic_load(slot(m));
      if (Traits::is_empty(w2) || unwrapped_home(w2, m) <= k) {
        w = w2;
        j = m;
      }
    }
    return {j, w};
  }

  slot_array<Traits> slots_;
  striped_counter occupied_;
  mutable Phase phase_;
};

}  // namespace phch
