// speculative_for: the deterministic-reservations loop of Blelloch, Fineman,
// Gibbons & Shun (PPoPP'12), which the paper's applications (§5) instantiate
// by hand. Iterates a prioritized loop in parallel rounds:
//
//   step.reserve(i) -> bool   marks shared state with WRITEMIN of priority i;
//                             returns false to drop the iterate entirely
//   step.commit(i)  -> bool   returns true iff iterate i won all its
//                             reservations and performed its update
//
// Each round runs reserve over a prefix of the remaining iterates (all of
// them when granularity = 0), then commit; losers retry next round. Because
// reservations are WRITEMINs of iterate priorities, the winners — and hence
// the final state — are independent of thread schedule: the loop behaves as
// if iterates executed in priority order whenever the step's semantics are
// priority-monotone.
//
// Nesting: the reserve/commit phases and the pack between rounds are all
// built on parallel_for, so under the work-stealing scheduler they stay
// parallel even when speculative_for itself is invoked from inside another
// parallel construct (e.g. an application running two loops under par_do) —
// and parallel constructs used *inside* a step's reserve/commit keep their
// parallelism too. Retry sets determinism is unaffected: which iterates win
// depends only on WRITEMIN priorities, not on the schedule.
//
// Returns the number of rounds executed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"

namespace phch {

// A reservation cell in the PPoPP'12 style: reserve() WRITEMINs an iterate
// priority, check() asks whether the caller still holds the cell, and
// check_reset()/reset() release it. The commit protocol must release every
// cell the iterate still holds (win or lose), so no stale priority can
// starve later rounds.
class reservation {
 public:
  static constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();

  void reserve(std::size_t i) noexcept { write_min(&r_, i); }
  bool check(std::size_t i) const noexcept { return atomic_load(&r_) == i; }
  bool reserved() const noexcept { return atomic_load(&r_) != kFree; }
  void reset() noexcept { atomic_store(&r_, kFree); }

  // Releases the cell iff the caller holds it; returns whether it did.
  bool check_reset(std::size_t i) noexcept {
    if (check(i)) {
      reset();
      return true;
    }
    return false;
  }

 private:
  std::size_t r_ = kFree;
};

template <typename Step>
std::size_t speculative_for(Step& step, std::size_t lo, std::size_t hi,
                            std::size_t granularity = 0) {
  std::vector<std::size_t> live = tabulate(hi - lo, [&](std::size_t i) { return lo + i; });
  std::size_t rounds = 0;
  while (!live.empty()) {
    ++rounds;
    const std::size_t round_size =
        granularity == 0 ? live.size() : std::min(granularity, live.size());
    std::vector<std::uint8_t> keep(round_size, 0);
    parallel_for(0, round_size, [&](std::size_t k) {
      keep[k] = step.reserve(live[k]) ? 1 : 0;
    });
    std::vector<std::uint8_t> done(round_size, 0);
    parallel_for(0, round_size, [&](std::size_t k) {
      if (keep[k]) done[k] = step.commit(live[k]) ? 1 : 0;
    });
    // Retry iterates that reserved but failed to commit; keep the deferred
    // tail (beyond round_size) as is.
    std::vector<std::size_t> retry = pack(
        round_size, [&](std::size_t k) { return keep[k] && !done[k]; },
        [&](std::size_t k) { return live[k]; });
    if (round_size == live.size()) {
      live = std::move(retry);
    } else {
      retry.insert(retry.end(), live.begin() + static_cast<std::ptrdiff_t>(round_size),
                   live.end());
      live = std::move(retry);
    }
  }
  return rounds;
}

}  // namespace phch
