// Contention-free striped counter for hot-path occupancy accounting.
//
// A single shared std::atomic counter serializes every increment on one
// cache line: under concurrent inserts the fetch_add ping-pongs the line
// between cores and becomes the table's dominant contention point (Maier et
// al., "Concurrent Hash Tables: Fast and General(?)!"). This counter stripes
// the count across cache-line-padded cells, one per scheduler worker, so the
// hot path is an uncontended fetch_add on the caller's own line.
//
// Exactness contract (matches the tables' phase discipline): each add() is
// recorded exactly once in exactly one stripe, so sum() over a quiescent
// counter — e.g. at a phase boundary — is exact. A sum() taken *during* a
// phase is approximate in the same way a relaxed global counter was: it can
// miss in-flight updates, never invent them. Stripes are signed because an
// erase may decrement from a different stripe than the insert that
// incremented (per-stripe values can go negative; the sum cannot, at a
// boundary).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "phch/parallel/scheduler.h"

namespace phch {

class striped_counter {
 public:
  striped_counter() : cells_(stripe_count()) {}

  // Uncontended under the scheduler: each pool worker owns one padded cell.
  void add(std::int64_t delta) noexcept {
    cells_[stripe_index() & (cells_.size() - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  void decrement() noexcept { add(-1); }

  // Lazy sum over the stripes: exact at a phase boundary (see header
  // comment), approximate mid-phase. O(#stripes) relaxed loads.
  std::int64_t sum() const noexcept {
    std::int64_t total = 0;
    for (const cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) cell {
    std::atomic<std::int64_t> v{0};
  };

  // Power-of-two stripe count covering the worker pool (capped: beyond 64
  // stripes the lazy sum() cost outweighs any contention left to remove).
  static std::size_t stripe_count() {
    const std::size_t p = static_cast<std::size_t>(num_workers());
    std::size_t c = 1;
    while (c < p && c < 64) c <<= 1;
    return c;
  }

  // Pool workers map to their own stripe; foreign threads (user threads
  // driving table ops directly) get a stable per-thread stripe from a
  // round-robin ticket, masked into range by the caller.
  static std::size_t stripe_index() noexcept {
    const int w = scheduler::worker_id();
    if (w >= 0) return static_cast<std::size_t>(w);
    static std::atomic<std::size_t> tickets{0};
    thread_local const std::size_t mine =
        tickets.fetch_add(1, std::memory_order_relaxed);
    return mine;
  }

  std::vector<cell> cells_;
};

}  // namespace phch
