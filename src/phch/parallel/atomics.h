// Atomic building blocks used by the hash tables and applications.
//
//  - cas(loc, old, new): the compare-and-swap from the paper's pseudocode,
//    for any trivially-copyable 1/2/4/8/16-byte type (16-byte via
//    cmpxchg16b, enabled with -mcx16).
//  - write_min / write_max: the WRITEMIN "priority update" of Shun et al.
//    (SPAA'13), used by Delaunay refinement, BFS and spanning forest for
//    deterministic conflict resolution.
//  - fetch_add wrapper (the `xadd` the paper mentions for linearHash-ND's
//    combining path).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace phch {

namespace detail {
template <int Size>
struct uint_of_size;
template <>
struct uint_of_size<1> { using type = std::uint8_t; };
template <>
struct uint_of_size<2> { using type = std::uint16_t; };
template <>
struct uint_of_size<4> { using type = std::uint32_t; };
template <>
struct uint_of_size<8> { using type = std::uint64_t; };
template <>
struct uint_of_size<16> { using type = unsigned __int128; };

template <typename T>
using uint_for = typename uint_of_size<static_cast<int>(sizeof(T))>::type;
}  // namespace detail

// Atomically: if (*loc == old_v) { *loc = new_v; return true; } else false.
// T must be trivially copyable and of width 1, 2, 4, 8, or 16 bytes.
template <typename T>
inline bool cas(T* loc, T old_v, T new_v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  using U = detail::uint_for<T>;
  U expected;
  U desired;
  std::memcpy(&expected, &old_v, sizeof(T));
  std::memcpy(&desired, &new_v, sizeof(T));
  return __atomic_compare_exchange_n(reinterpret_cast<U*>(loc), &expected, desired,
                                     /*weak=*/false, __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
}

// Atomic load with sequential consistency (paired with cas above; the
// pseudocode reads M[i] directly, so this is the "plain read" of the paper
// made explicit).
template <typename T>
inline T atomic_load(const T* loc) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  using U = detail::uint_for<T>;
  const U raw = __atomic_load_n(reinterpret_cast<const U*>(loc), __ATOMIC_SEQ_CST);
  T out;
  std::memcpy(&out, &raw, sizeof(T));
  return out;
}

template <typename T>
inline void atomic_store(T* loc, T v) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  using U = detail::uint_for<T>;
  U raw;
  std::memcpy(&raw, &v, sizeof(T));
  __atomic_store_n(reinterpret_cast<U*>(loc), raw, __ATOMIC_SEQ_CST);
}

// WRITEMIN: stores val at loc iff val < *loc (by Less); returns true iff it
// performed the update. Deterministic regardless of arrival order: the
// minimum value wins.
template <typename T, typename Less = std::less<T>>
inline bool write_min(T* loc, T val, Less less = Less{}) noexcept {
  T cur = atomic_load(loc);
  while (less(val, cur)) {
    if (cas(loc, cur, val)) return true;
    cur = atomic_load(loc);
  }
  return false;
}

// WRITEMAX: dual of write_min; the maximum value wins.
template <typename T, typename Less = std::less<T>>
inline bool write_max(T* loc, T val, Less less = Less{}) noexcept {
  T cur = atomic_load(loc);
  while (less(cur, val)) {
    if (cas(loc, cur, val)) return true;
    cur = atomic_load(loc);
  }
  return false;
}

// Atomic fetch-and-add (hardware xadd for integral T).
template <typename T>
inline T fetch_add(T* loc, T delta) noexcept {
  return __atomic_fetch_add(loc, delta, __ATOMIC_SEQ_CST);
}

}  // namespace phch
