// Quiescence-based deferred reclamation (QSBR) keyed to phase boundaries.
//
// Phase-concurrency gives this library something general-purpose concurrent
// tables have to build elaborate machinery for (Gao–Groote–Hesselink's
// lock-free resizing, hazard pointers, RCU): program-visible quiescent
// points. A phase boundary — the end of a table operation, a room
// transition in auto_phased_table, an idle scheduler worker between
// top-level tasks — is by construction a moment where the thread holds no
// references into reclaim-protected structures. This header turns those
// moments into grace periods:
//
//  * retire(p): stamps `p` with the current global epoch G and parks it on
//    the calling thread's limbo list. Nothing is freed yet — concurrent
//    readers may still hold `p` (a find probing a growable_table's old slot
//    array, a thief reading a retired deque ring).
//  * quiescent(): announces "this thread holds no protected references".
//    It publishes the thread's local epoch L := G, opportunistically
//    advances G when every online thread has announced the current epoch,
//    and frees the caller's limbo nodes whose grace period has passed.
//  * A node stamped s is freed only once G >= s + 2. Advancing G twice
//    requires every online thread to announce *after* the retirement, so
//    every reference acquired before the retirement is provably dropped —
//    the standard QSBR grace-period argument, with phase boundaries as the
//    quiescent states (DESIGN.md §13 ties this to Definition 1).
//
// Threads register lazily on first use (retire / quiescent / op_guard /
// ensure_registered) and unregister automatically at thread exit; leftover
// limbo nodes are orphaned and freed once their grace period passes, or at
// process teardown by the registry destructor (so LeakSanitizer sees every
// retired ring and slot array freed). Scheduler workers announce quiescence
// between top-level tasks and go offline() around the deep-idle sleep so a
// sleeping pool never stalls reclamation. Threads that never call into this
// header cost nothing and block nothing.
//
// op_guard is the per-operation RAII shim tables use: it pins the calling
// thread for the duration of an operation (suppressing any nested
// quiescent() that would otherwise break protection) and announces one
// quiescent point when the outermost operation ends.
//
// set_deferred(false) switches retire() to free immediately. That restores
// the pre-reclaim lifetime discipline — only safe when the caller
// guarantees no concurrent reader can hold the retired object (fully
// drained tables, single-threaded use). It exists for the reclaim-on/off
// ablation in bench_ablation; leave it on everywhere else.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/utils/phase_caps.h"

namespace phch::reclaim {

// Analysis-only token for "this thread is pinned inside a table operation"
// (an op_guard is alive). Held *shared* — any number of threads are pinned
// at once. quiescent() and offline() are annotated as excluding it: calling
// either while pinned is either a silent no-op (quiescent) or a
// grace-period bug (offline), and under clang -Wthread-safety both become
// compile errors wherever the guard is visible to the analysis.
class PHCH_CAPABILITY("reclaim_pin") pin_token {
 public:
  pin_token() noexcept = default;
  pin_token(const pin_token&) = delete;
  pin_token& operator=(const pin_token&) = delete;
};
inline pin_token pin_cap;  // never touched at runtime; TSA bookkeeping only

struct stats_snapshot {
  std::uint64_t retired = 0;  // nodes ever passed to retire()
  std::uint64_t freed = 0;    // nodes whose deleter has run
  std::size_t pending = 0;    // retired - freed, summed over limbo + orphans
};

namespace detail {

struct retired_node {
  void* ptr;
  void (*deleter)(void*);
  std::uint64_t stamp;  // global epoch at retire time
  retired_node* next;
#if PHCH_TELEMETRY_ENABLED
  std::uint64_t retire_ns = 0;  // wall clock at retire; 0 = recording off
#endif
};

// Limbo age (retire -> deleter run), recorded only for nodes stamped while
// recording was on. A free function so the three free sites share it.
inline void note_limbo_age(const retired_node* n) noexcept {
#if PHCH_TELEMETRY_ENABLED
  obs::hist_record_since(obs::global_hist::limbo_age_ns, n->retire_ns);
#else
  (void)n;
#endif
}

// Upper bound on concurrently registered threads. Slots are recycled at
// thread exit, so this bounds *live* registrations, not thread churn.
inline constexpr std::size_t kMaxThreads = 512;

struct alignas(64) thread_slot {
  std::atomic<std::uint64_t> local{0};   // last announced epoch
  std::atomic<bool> online{false};       // participates in grace periods
  std::atomic<bool> claimed{false};
  std::atomic<std::size_t> pending{0};   // |limbo|, readable by anyone
  retired_node* limbo = nullptr;         // owner-only
  int pin_depth = 0;                     // owner-only (op_guard nesting)
  std::uint32_t housekeeping = 0;        // owner-only call throttle
};

class registry {
 public:
  // Function-local static: constructed before the scheduler singleton
  // (scheduler::start_workers touches it first) and therefore destroyed
  // after the workers have been joined — the destructor may free all
  // remaining limbo single-threadedly.
  static registry& get() {
    static registry r;
    return r;
  }

  registry() = default;
  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  ~registry() {
    for (std::size_t i = 0; i < kMaxThreads; ++i) free_list(slots[i].limbo);
    free_list(orphans);
  }

  std::atomic<std::uint64_t> global{0};
  std::array<thread_slot, kMaxThreads> slots;
  std::atomic<std::size_t> high_water{0};  // slots ever claimed
  std::atomic<bool> deferred{true};

  std::mutex advance_m;  // serializes epoch-advance scans (try_lock only)
  std::mutex orphan_m;   // guards the orphan list
  retired_node* orphans = nullptr;
  std::atomic<std::size_t> orphan_pending{0};

  std::atomic<std::uint64_t> retired_total{0};
  std::atomic<std::uint64_t> freed_total{0};

 private:
  void free_list(retired_node*& head) {
    std::uint64_t n = 0;
    while (head != nullptr) {
      retired_node* node = head;
      head = node->next;
      note_limbo_age(node);
      node->deleter(node->ptr);
      delete node;
      ++n;
    }
    freed_total.fetch_add(n, std::memory_order_relaxed);
  }
};

// Frees the nodes of `list` whose grace period has passed under epoch `g`,
// returning how many were freed. `list` must be owned by the caller.
inline std::size_t free_expired(retired_node*& list, std::uint64_t g) {
  std::size_t freed = 0;
  retired_node** pp = &list;
  while (*pp != nullptr) {
    retired_node* n = *pp;
    if (n->stamp + 2 <= g) {
      *pp = n->next;
      note_limbo_age(n);
      n->deleter(n->ptr);
      delete n;
      ++freed;
    } else {
      pp = &n->next;
    }
  }
  return freed;
}

inline void free_orphans(registry& R) {
  if (!R.orphan_m.try_lock()) return;
  const std::uint64_t g = R.global.load(std::memory_order_acquire);
  const std::size_t freed = free_expired(R.orphans, g);
  R.orphan_m.unlock();
  if (freed != 0) {
    R.orphan_pending.fetch_sub(freed, std::memory_order_relaxed);
    R.freed_total.fetch_add(freed, std::memory_order_relaxed);
    obs::count(obs::counter::reclaim_freed, freed);
  }
}

// Advances the global epoch by one if every online registered thread has
// announced the current one. try_lock: contending callers just skip — the
// next quiescent point retries.
inline void try_advance(registry& R) {
  if (!R.advance_m.try_lock()) return;
  const std::uint64_t g = R.global.load(std::memory_order_relaxed);
  bool all_quiescent = true;
  const std::size_t hw = R.high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw && all_quiescent; ++i) {
    thread_slot& s = R.slots[i];
    if (s.claimed.load(std::memory_order_acquire) &&
        s.online.load(std::memory_order_acquire) &&
        s.local.load(std::memory_order_acquire) != g) {
      all_quiescent = false;
    }
  }
  if (all_quiescent) R.global.store(g + 1, std::memory_order_release);
  R.advance_m.unlock();
  if (all_quiescent) free_orphans(R);
}

// Frees the caller's own expired limbo nodes.
inline void free_own(registry& R, thread_slot& s) {
  if (s.limbo == nullptr) return;
  const std::size_t freed =
      free_expired(s.limbo, R.global.load(std::memory_order_acquire));
  if (freed != 0) {
    s.pending.fetch_sub(freed, std::memory_order_relaxed);
    R.freed_total.fetch_add(freed, std::memory_order_relaxed);
    obs::count(obs::counter::reclaim_freed, freed);
  }
}

inline thread_slot* acquire_slot(registry& R) {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    thread_slot& s = R.slots[i];
    bool expected = false;
    if (!s.claimed.load(std::memory_order_relaxed) &&
        s.claimed.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      // Order matters for the advance scan: local must be current before
      // online flips, so a scanner that sees us online sees a fresh epoch.
      s.local.store(R.global.load(std::memory_order_acquire),
                    std::memory_order_release);
      s.online.store(true, std::memory_order_release);
      std::size_t hw = R.high_water.load(std::memory_order_relaxed);
      while (hw < i + 1 && !R.high_water.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      return &s;
    }
  }
  return nullptr;  // more than kMaxThreads concurrent threads: unprotected
}

inline void release_slot(registry& R, thread_slot& s) {
  s.online.store(false, std::memory_order_release);
  if (s.limbo != nullptr) {
    // Orphan leftover limbo; it keeps its stamps and is freed by whichever
    // thread next advances the epoch (or by the registry destructor).
    std::lock_guard<std::mutex> lock(R.orphan_m);
    retired_node* tail = s.limbo;
    std::size_t n = 1;
    while (tail->next != nullptr) {
      tail = tail->next;
      ++n;
    }
    tail->next = R.orphans;
    R.orphans = s.limbo;
    s.limbo = nullptr;
    R.orphan_pending.fetch_add(n, std::memory_order_relaxed);
    s.pending.store(0, std::memory_order_relaxed);
  }
  s.pin_depth = 0;
  s.claimed.store(false, std::memory_order_release);
}

// Per-thread registration handle. Constructed on first use (after the
// registry, so it is destroyed before it) and released at thread exit.
inline thread_slot* my_slot() {
  struct handle {
    thread_slot* s = nullptr;
    ~handle() {
      if (s != nullptr) release_slot(registry::get(), *s);
    }
  };
  static thread_local handle h;
  if (h.s == nullptr) h.s = acquire_slot(registry::get());
  return h.s;
}

}  // namespace detail

// Registers the calling thread (idempotent). Structures whose readers may
// observe retired memory — e.g. work_stealing_deque thieves — call this
// before the first racy load, which makes the access safe: any node retired
// before registration is unreachable through the structure's published
// pointers by then.
inline void ensure_registered() { detail::my_slot(); }

// Defers destruction of `p` until every online thread has passed a
// quiescent point twice. `del(p)` runs on whichever thread frees it.
inline void retire(void* p, void (*del)(void*)) {
  detail::registry& R = detail::registry::get();
  obs::count(obs::counter::reclaim_retired);
  R.retired_total.fetch_add(1, std::memory_order_relaxed);
  if (!R.deferred.load(std::memory_order_relaxed)) {
    del(p);  // ablation mode: caller guarantees no concurrent readers
    R.freed_total.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::counter::reclaim_freed);
    obs::hist_record(obs::global_hist::limbo_age_ns, 0);  // no limbo at all
    return;
  }
  detail::thread_slot* s = detail::my_slot();
  if (s == nullptr) {  // registry full: leak rather than free unsafely
    return;
  }
  detail::retired_node* node = new detail::retired_node{
      p, del, R.global.load(std::memory_order_acquire), s->limbo};
#if PHCH_TELEMETRY_ENABLED
  node->retire_ns = obs::now_if_enabled();
#endif
  s->limbo = node;
  s->pending.fetch_add(1, std::memory_order_relaxed);
  // Retire-heavy threads (a deque growing many times between quiescent
  // points) do their own housekeeping so limbo stays bounded.
  if (s->pending.load(std::memory_order_relaxed) >= 8) {
    detail::try_advance(R);
    detail::free_own(R, *s);
  }
}

template <typename T>
inline void retire(T* p) {
  retire(static_cast<void*>(p),
         [](void* q) { delete static_cast<T*>(q); });
}

// Announces a quiescent point for the calling thread: it holds no
// references into reclaim-protected structures. No-op while pinned by an
// op_guard (a nested announcement would break the grace-period argument).
inline void quiescent() PHCH_EXCLUDES(pin_cap) {
  detail::registry& R = detail::registry::get();
  detail::thread_slot* s = detail::my_slot();
  if (s == nullptr || s->pin_depth != 0) return;
  s->local.store(R.global.load(std::memory_order_acquire),
                 std::memory_order_release);
  // Epoch advancement needs one scan over the slots; amortize it for
  // threads with nothing to free (idle workers announcing in a loop).
  if (s->pending.load(std::memory_order_relaxed) != 0 ||
      R.orphan_pending.load(std::memory_order_relaxed) != 0 ||
      (++s->housekeeping & 63u) == 0) {
    detail::try_advance(R);
    detail::free_own(R, *s);
  }
}

// Takes the calling thread out of grace-period accounting (it promises not
// to touch reclaim-protected memory until online() is called). Scheduler
// workers wrap the deep-idle sleep in offline()/online() so a sleeping pool
// never stalls reclamation.
inline void offline() PHCH_EXCLUDES(pin_cap) {
  detail::thread_slot* s = detail::my_slot();
  if (s != nullptr) s->online.store(false, std::memory_order_release);
}

inline void online() {
  detail::registry& R = detail::registry::get();
  detail::thread_slot* s = detail::my_slot();
  if (s == nullptr) return;
  s->local.store(R.global.load(std::memory_order_acquire),
                 std::memory_order_release);
  s->online.store(true, std::memory_order_release);
}

// RAII shim around one table operation: pins the thread (nested quiescent()
// calls are suppressed — the thread may hold a snapshot pointer into the
// table) and announces one quiescent point when the outermost operation
// ends. Registration happens in the constructor, *before* the operation
// loads any protected pointer, which is what makes a thread's first access
// to a reclaim-protected structure safe.
class PHCH_SCOPED_CAPABILITY op_guard {
 public:
  op_guard() noexcept PHCH_ACQUIRE_SHARED(pin_cap) : s_(detail::my_slot()) {
    if (s_ != nullptr) ++s_->pin_depth;
  }
  // The pin is released *before* the quiescent announcement (pin_depth hits
  // zero first), which is exactly the call the EXCLUDES annotation on
  // quiescent() would flag — so the body opts out of the analysis while the
  // release contract stays visible to callers.
  ~op_guard() PHCH_RELEASE() PHCH_NO_TSA {
    if (s_ != nullptr && --s_->pin_depth == 0) quiescent();
  }
  op_guard(const op_guard&) = delete;
  op_guard& operator=(const op_guard&) = delete;

 private:
  detail::thread_slot* s_;
};

// Ablation switch; see header comment. Returns the previous setting.
inline bool set_deferred(bool on) noexcept {
  return detail::registry::get().deferred.exchange(on,
                                                   std::memory_order_relaxed);
}

inline std::size_t pending_count() noexcept {
  detail::registry& R = detail::registry::get();
  std::size_t n = R.orphan_pending.load(std::memory_order_relaxed);
  const std::size_t hw = R.high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i)
    n += R.slots[i].pending.load(std::memory_order_relaxed);
  return n;
}

inline stats_snapshot stats() noexcept {
  detail::registry& R = detail::registry::get();
  stats_snapshot s;
  s.retired = R.retired_total.load(std::memory_order_relaxed);
  s.freed = R.freed_total.load(std::memory_order_relaxed);
  s.pending = pending_count();
  return s;
}

inline std::uint64_t global_epoch() noexcept {
  return detail::registry::get().global.load(std::memory_order_relaxed);
}

}  // namespace phch::reclaim
