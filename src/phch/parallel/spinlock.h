// Test-and-test-and-set spinlock used by the lock-based baseline tables
// (cuckoo, hopscotch, chained). Meets the Lockable requirements so it works
// with std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>
#include <thread>

#include "phch/utils/arch.h"  // cpu_relax
#include "phch/utils/phase_caps.h"

namespace phch {

class PHCH_CAPABILITY("mutex") spinlock {
 public:
  spinlock() noexcept = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  // Escalates from pause to yield so an oversubscribed work-stealing pool
  // (more runnable threads than cores) cannot starve the lock holder.
  void lock() noexcept PHCH_ACQUIRE() {
    int spins = 0;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < 128) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  bool try_lock() noexcept PHCH_TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept PHCH_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace phch
