// Test-and-test-and-set spinlock used by the lock-based baseline tables
// (cuckoo, hopscotch, chained). Meets the Lockable requirements so it works
// with std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace phch {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#endif
}

class spinlock {
 public:
  spinlock() noexcept = default;
  spinlock(const spinlock&) = delete;
  spinlock& operator=(const spinlock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace phch
