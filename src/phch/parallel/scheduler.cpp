#include "phch/parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/reclaim.h"
#include "phch/parallel/spinlock.h"

namespace phch {

namespace detail {
thread_local worker_state* tl_worker = nullptr;
thread_local std::uint64_t tl_worker_gen = 0;
thread_local int tl_depth = 0;
}  // namespace detail

namespace {

// Pool generations are numbered globally so a thread registered with an old
// pool (before a set_num_workers rebuild) is detected by a cheap integer
// compare instead of dereferencing a dangling worker_state pointer.
std::atomic<std::uint64_t> global_generation{0};

// Steal-failure thresholds for the idle backoff ladder:
// pause -> yield -> 1 ms condition-variable sleep.
constexpr int kSpinFailures = 32;
constexpr int kYieldFailures = 256;

int default_workers() {
  if (const char* env = std::getenv("PHCH_THREADS")) {
    const int p = std::atoi(env);
    if (p >= 1) return p;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

scheduler& scheduler::get() {
  static scheduler instance;
  return instance;
}

scheduler::scheduler() : num_workers_(default_workers()) { start_workers(); }

scheduler::~scheduler() { stop_workers(); }

void scheduler::start_workers() {
  // Construct the reclamation registry (a function-local static) before the
  // scheduler singleton finishes constructing and before any worker thread
  // exists: static destruction then tears the scheduler down first, so the
  // registry destructor frees remaining limbo single-threadedly. Also
  // registers the calling thread (worker 0) as a reclamation participant.
  reclaim::online();
  generation_ = global_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int id = 0; id < num_workers_; ++id) {
    workers_.emplace_back(std::make_unique<detail::worker_state>(
        this, id, mix64(generation_ * 0x10001ULL + static_cast<std::uint64_t>(id))));
  }
  // The calling thread is worker 0 of this generation.
  detail::tl_worker = workers_[0].get();
  detail::tl_worker_gen = generation_;
  obs::bind_worker(0);
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

void scheduler::stop_workers() {
  shutdown_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  workers_.clear();
  detail::tl_worker = nullptr;
  shutdown_.store(false, std::memory_order_relaxed);
}

void scheduler::set_num_workers(int p) {
  if (p < 1) throw std::invalid_argument("scheduler: worker count must be >= 1");
  if (detail::tl_depth > 0) {
    throw std::logic_error("scheduler: set_num_workers called inside a parallel region");
  }
  if (p == num_workers_ && detail::tl_worker != nullptr &&
      detail::tl_worker_gen == generation_ && detail::tl_worker->id == 0) {
    return;  // caller is already the registered main thread of a pool this size
  }
  stop_workers();
  num_workers_ = p;
  start_workers();
}

void scheduler::worker_loop(int id) {
  detail::worker_state& self = *workers_[static_cast<std::size_t>(id)];
  detail::tl_worker = &self;
  detail::tl_worker_gen = generation_;
  obs::bind_worker(id);
  reclaim::online();  // participate in grace periods from the first task
  int failures = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (detail::ws_task* t = try_steal(self)) {
      detail::depth_guard depth;
      t->run();
      failures = 0;
    } else {
      // An idle worker between top-level tasks holds no references into any
      // reclaim-protected structure — this is the scheduler quiescent point
      // the reclamation layer's grace periods are built on. (wait_for
      // deliberately does NOT announce: a blocked join has stolen-task
      // frames on its stack that may hold such references.)
      reclaim::quiescent();
      if (++failures < kSpinFailures) {
        cpu_relax();
      } else if (failures < kYieldFailures) {
        std::this_thread::yield();
      } else {
        // Deep idle: sleep until fork_join signals new work (or 1 ms passes
        // — the timeout bounds the cost of a missed notify, so signal_work
        // can stay lock-free on the push path). Going offline keeps a
        // sleeping pool from stalling epoch advancement.
        obs::count(obs::counter::backoff_sleeps);
        reclaim::offline();
        {
          std::unique_lock<std::mutex> lock(sleep_m_);
          num_sleeping_.fetch_add(1, std::memory_order_relaxed);
          sleep_cv_.wait_for(lock, std::chrono::milliseconds(1));
          num_sleeping_.fetch_sub(1, std::memory_order_relaxed);
        }
        reclaim::online();
        failures = kSpinFailures;  // resume at yield-level polling
      }
    }
  }
  detail::tl_worker = nullptr;
}

detail::ws_task* scheduler::try_steal(detail::worker_state& self) {
  const int p = num_workers_;
  if (p <= 1) return nullptr;
  // One sweep over all other deques starting at a random victim (xorshift).
  std::uint64_t x = self.rng;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  self.rng = x;
  const int start = static_cast<int>(x % static_cast<std::uint64_t>(p));
  for (int k = 0; k < p; ++k) {
    int v = start + k;
    if (v >= p) v -= p;
    if (v == self.id) continue;
    if (detail::ws_task* t = workers_[static_cast<std::size_t>(v)]->deque.steal()) {
      obs::count(obs::counter::steals);
      return t;
    }
  }
  obs::count(obs::counter::steal_failures);
  return nullptr;
}

void scheduler::wait_for(detail::ws_task& t) {
  detail::worker_state& self = *detail::tl_worker;
  int failures = 0;
  while (!t.done()) {
    if (detail::ws_task* s = try_steal(self)) {
      s->run();
      failures = 0;
    } else if (++failures < kSpinFailures) {
      cpu_relax();
    } else {
      // Never deep-sleep on a join: task completion is not signalled, and
      // yield keeps single-core machines making progress on the thief.
      std::this_thread::yield();
    }
  }
}

void scheduler::broadcast_range(const std::function<void(int)>& f, int lo, int hi) {
  if (hi - lo == 1) {
    f(lo);
    return;
  }
  const int mid = lo + (hi - lo) / 2;
  fork_join([&] { broadcast_range(f, lo, mid); }, [&] { broadcast_range(f, mid, hi); });
}

void scheduler::execute(const std::function<void(int)>& f) {
  obs::span sp("execute");
  sp.a = static_cast<std::uint32_t>(num_workers_);
  detail::depth_guard depth;
  broadcast_range(f, 0, num_workers_);
}

}  // namespace phch
