#include "phch/parallel/scheduler.h"

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

namespace phch {

namespace {
thread_local bool tl_in_parallel = false;

int default_workers() {
  if (const char* env = std::getenv("PHCH_THREADS")) {
    const int p = std::atoi(env);
    if (p >= 1) return p;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

scheduler& scheduler::get() {
  static scheduler instance;
  return instance;
}

scheduler::scheduler() : num_workers_(default_workers()) { start_workers(); }

scheduler::~scheduler() { stop_workers(); }

bool scheduler::in_parallel() noexcept { return tl_in_parallel; }

void scheduler::start_workers() {
  threads_.reserve(static_cast<std::size_t>(num_workers_ > 0 ? num_workers_ - 1 : 0));
  // Workers must start from the *current* epoch: the counter survives pool
  // restarts, and a fresh worker seeded with epoch 0 would treat the stale
  // counter as a pending job and invoke a null function.
  const std::uint64_t start_epoch = epoch_;
  for (int id = 1; id < num_workers_; ++id) {
    threads_.emplace_back([this, id, start_epoch] { worker_loop(id, start_epoch); });
  }
}

void scheduler::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(m_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(m_);
    shutdown_ = false;
  }
}

void scheduler::set_num_workers(int p) {
  if (p < 1) throw std::invalid_argument("scheduler: worker count must be >= 1");
  std::lock_guard<std::mutex> job_lock(job_mutex_);
  stop_workers();
  num_workers_ = p;
  start_workers();
}

void scheduler::worker_loop(int id, std::uint64_t start_epoch) {
  std::uint64_t seen_epoch = start_epoch;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    tl_in_parallel = true;
    (*job)(id);
    tl_in_parallel = false;
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void scheduler::execute(const std::function<void(int)>& f) {
  if (tl_in_parallel || num_workers_ == 1) {
    // Nested job (or no pool): run the whole job inline on this thread.
    f(0);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mutex_);
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &f;
    pending_ = num_workers_ - 1;
    ++epoch_;
  }
  cv_start_.notify_all();
  tl_in_parallel = true;
  f(0);
  tl_in_parallel = false;
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace phch
