// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005) with the portable
// C11/C++11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
//
// One owner thread pushes and pops tasks at the *bottom* (LIFO, preserving
// the serial depth-first order and cache locality of fork-join work);
// any number of thieves steal from the *top* (FIFO, taking the oldest —
// and therefore largest — pending subtree). The deque stores raw pointers;
// task lifetime is managed by the forker (tasks live on the forker's stack
// until joined).
//
// The ring buffer grows geometrically when full. Retired rings are kept
// alive until the deque is destroyed because a concurrent thief may still
// be reading a slot from an old ring; the subsequent CAS on `top_` detects
// and discards any such stale read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace phch {
namespace detail {

// ThreadSanitizer does not model standalone atomic_thread_fence, so under
// TSan every ordering is strengthened to seq_cst and the fences compile
// away; this is strictly stronger, just slower.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif
#else
inline constexpr bool kTsanBuild = false;
#endif

constexpr std::memory_order mo(std::memory_order m) noexcept {
  return kTsanBuild ? std::memory_order_seq_cst : m;
}

inline void seq_cst_fence() noexcept {
  if constexpr (!kTsanBuild) std::atomic_thread_fence(std::memory_order_seq_cst);
}

template <typename T>
class work_stealing_deque {
 public:
  explicit work_stealing_deque(std::int64_t initial_capacity = 64) {
    rings_.emplace_back(std::make_unique<ring>(initial_capacity));
    buf_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  work_stealing_deque(const work_stealing_deque&) = delete;
  work_stealing_deque& operator=(const work_stealing_deque&) = delete;

  // Owner only. Pushes `x` at the bottom, growing the ring if full.
  void push_bottom(T* x) {
    const std::int64_t b = bottom_.load(mo(std::memory_order_relaxed));
    const std::int64_t t = top_.load(mo(std::memory_order_acquire));
    ring* a = buf_.load(mo(std::memory_order_relaxed));
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->put(b, x);
    // Publish the slot before publishing the new bottom so a thief that
    // observes bottom == b+1 also observes the stored pointer.
    if constexpr (kTsanBuild) {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    } else {
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  }

  // Owner only. Pops the most recently pushed task, or nullptr if the deque
  // is empty (including the case where a thief won the race for the last
  // remaining task).
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(mo(std::memory_order_relaxed)) - 1;
    ring* a = buf_.load(mo(std::memory_order_relaxed));
    bottom_.store(b, mo(std::memory_order_relaxed));
    seq_cst_fence();
    std::int64_t t = top_.load(mo(std::memory_order_relaxed));
    T* x;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // Single element left: race a thief for it via the CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, mo(std::memory_order_seq_cst),
                                          mo(std::memory_order_relaxed))) {
          x = nullptr;  // thief got it
        }
        bottom_.store(b + 1, mo(std::memory_order_relaxed));
      }
    } else {
      x = nullptr;
      bottom_.store(b + 1, mo(std::memory_order_relaxed));
    }
    return x;
  }

  // Any thread. Steals the oldest task, or returns nullptr when the deque
  // is empty or another thief (or the owner) won the race.
  T* steal() {
    std::int64_t t = top_.load(mo(std::memory_order_acquire));
    seq_cst_fence();
    const std::int64_t b = bottom_.load(mo(std::memory_order_acquire));
    if (t >= b) return nullptr;
    ring* a = buf_.load(mo(std::memory_order_acquire));
    T* x = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, mo(std::memory_order_seq_cst),
                                      mo(std::memory_order_relaxed))) {
      return nullptr;  // lost the race; the read of x may be stale, discard it
    }
    return x;
  }

  // Approximate (racy) emptiness check for cheap idle-loop polling.
  bool empty() const noexcept {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct ring {
    explicit ring(std::int64_t c)
        : capacity(c), mask(c - 1), slots(new std::atomic<T*>[static_cast<std::size_t>(c)]) {}
    T* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(mo(std::memory_order_relaxed));
    }
    void put(std::int64_t i, T* x) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(x, mo(std::memory_order_relaxed));
    }
    const std::int64_t capacity;
    const std::int64_t mask;  // capacity is a power of two
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<ring>(2 * old->capacity);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    ring* raw = bigger.get();
    rings_.emplace_back(std::move(bigger));  // owner-only; keeps old rings alive
    buf_.store(raw, mo(std::memory_order_release));
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<ring*> buf_{nullptr};
  std::vector<std::unique_ptr<ring>> rings_;
};

}  // namespace detail
}  // namespace phch
