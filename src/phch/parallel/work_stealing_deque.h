// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005) with the portable
// C11/C++11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
//
// One owner thread pushes and pops tasks at the *bottom* (LIFO, preserving
// the serial depth-first order and cache locality of fork-join work);
// any number of thieves steal from the *top* (FIFO, taking the oldest —
// and therefore largest — pending subtree). The deque stores raw pointers;
// task lifetime is managed by the forker (tasks live on the forker's stack
// until joined).
//
// The ring buffer grows geometrically when full. A concurrent thief may
// still be reading a slot from a superseded ring (the subsequent CAS on
// `top_` detects and discards any such stale read), so retired rings cannot
// be deleted in place — but hoarding them for the deque's whole lifetime
// (the old scheme) made a long-lived deque's memory grow without bound.
// Instead, grow() hands the old ring to quiescence-based reclamation
// (parallel/reclaim.h): it is freed once every registered thread has passed
// a quiescent point after the retirement, which scheduler workers do
// between top-level tasks. steal() registers the calling thread *before*
// its first load of `buf_`, which is what makes stale reads safe: any ring
// freed after that point must have been retired after registration, and a
// retired ring is unreachable through `buf_` by then. Threads outside the
// scheduler pool that steal from a growing deque get the same protection
// automatically; they simply never announce quiescence, so rings retired
// while they run stay in limbo until process teardown (safe, merely
// deferred).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "phch/parallel/reclaim.h"

namespace phch {
namespace detail {

// ThreadSanitizer does not model standalone atomic_thread_fence, so under
// TSan every ordering is strengthened to seq_cst and the fences compile
// away; this is strictly stronger, just slower.
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif
#else
inline constexpr bool kTsanBuild = false;
#endif

constexpr std::memory_order mo(std::memory_order m) noexcept {
  return kTsanBuild ? std::memory_order_seq_cst : m;
}

inline void seq_cst_fence() noexcept {
  if constexpr (!kTsanBuild) std::atomic_thread_fence(std::memory_order_seq_cst);
}

template <typename T>
class work_stealing_deque {
 public:
  explicit work_stealing_deque(std::int64_t initial_capacity = 64) {
    buf_.store(new ring(initial_capacity), std::memory_order_relaxed);
  }

  work_stealing_deque(const work_stealing_deque&) = delete;
  work_stealing_deque& operator=(const work_stealing_deque&) = delete;

  // Destroying the deque requires quiescence (no concurrent thieves), as
  // before; superseded rings are already in reclaim limbo and freed when
  // their grace period passes.
  ~work_stealing_deque() { delete buf_.load(std::memory_order_relaxed); }

  // Owner only. Pushes `x` at the bottom, growing the ring if full.
  void push_bottom(T* x) {
    const std::int64_t b = bottom_.load(mo(std::memory_order_relaxed));
    const std::int64_t t = top_.load(mo(std::memory_order_acquire));
    ring* a = buf_.load(mo(std::memory_order_relaxed));
    if (b - t > a->capacity - 1) a = grow(a, t, b);
    a->put(b, x);
    // Publish the slot before publishing the new bottom so a thief that
    // observes bottom == b+1 also observes the stored pointer.
    if constexpr (kTsanBuild) {
      bottom_.store(b + 1, std::memory_order_seq_cst);
    } else {
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  }

  // Owner only. Pops the most recently pushed task, or nullptr if the deque
  // is empty (including the case where a thief won the race for the last
  // remaining task).
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(mo(std::memory_order_relaxed)) - 1;
    ring* a = buf_.load(mo(std::memory_order_relaxed));
    bottom_.store(b, mo(std::memory_order_relaxed));
    seq_cst_fence();
    std::int64_t t = top_.load(mo(std::memory_order_relaxed));
    T* x;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // Single element left: race a thief for it via the CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, mo(std::memory_order_seq_cst),
                                          mo(std::memory_order_relaxed))) {
          x = nullptr;  // thief got it
        }
        bottom_.store(b + 1, mo(std::memory_order_relaxed));
      }
    } else {
      x = nullptr;
      bottom_.store(b + 1, mo(std::memory_order_relaxed));
    }
    return x;
  }

  // Any thread. Steals the oldest task, or returns nullptr when the deque
  // is empty or another thief (or the owner) won the race.
  T* steal() {
    // Must precede the buf_ load (see header comment): registration makes
    // any ring reachable through buf_ unfree-able until this thread next
    // announces quiescence — which it does not do mid-steal.
    reclaim::ensure_registered();
    std::int64_t t = top_.load(mo(std::memory_order_acquire));
    seq_cst_fence();
    const std::int64_t b = bottom_.load(mo(std::memory_order_acquire));
    if (t >= b) return nullptr;
    ring* a = buf_.load(mo(std::memory_order_acquire));
    T* x = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, mo(std::memory_order_seq_cst),
                                      mo(std::memory_order_relaxed))) {
      return nullptr;  // lost the race; the read of x may be stale, discard it
    }
    return x;
  }

  // Approximate (racy) emptiness check for cheap idle-loop polling.
  bool empty() const noexcept {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct ring {
    explicit ring(std::int64_t c)
        : capacity(c), mask(c - 1), slots(new std::atomic<T*>[static_cast<std::size_t>(c)]) {}
    T* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i & mask)].load(mo(std::memory_order_relaxed));
    }
    void put(std::int64_t i, T* x) noexcept {
      slots[static_cast<std::size_t>(i & mask)].store(x, mo(std::memory_order_relaxed));
    }
    const std::int64_t capacity;
    const std::int64_t mask;  // capacity is a power of two
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    ring* bigger = new ring(2 * old->capacity);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buf_.store(bigger, mo(std::memory_order_release));
    // Owner-only: publish first, then retire. Racing thieves that loaded
    // the old ring finish their (possibly stale, CAS-discarded) reads
    // before their next quiescent point, so the grace period covers them.
    reclaim::retire(old);
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<ring*> buf_{nullptr};
};

}  // namespace detail
}  // namespace phch
