// Room synchronizations (Blelloch, Cheng & Gibbons, Theory Comput. Syst.
// 2003) — the mechanism the paper's conclusion names for *automatically*
// separating hash table operations into phases.
//
// A room_sync object manages R mutually exclusive "rooms". Any number of
// threads may occupy one room concurrently; threads asking for a different
// room wait until the current room empties. Fairness: when occupants drain,
// the next room is the lowest-numbered one with waiters after the current
// room (cyclic order), so no room starves while demand rotates.
//
// Usage:
//     room_sync rooms(3);
//     { room_sync::guard g(rooms, kInsertRoom); table.insert(x); }
//
// The implementation packs (current room, occupancy) into one atomic word:
//  - enter: CAS occupancy+1 if the current room matches (or the building is
//    empty, claiming it for the requested room); otherwise register as a
//    waiter and spin.
//  - exit: decrement occupancy; the thread that drops it to zero elects the
//    next room among waiters and opens it.
// Entering is lock-free when the requested room is already open.
//
// The packed word here is *occupancy control only* — it decides who may run,
// not what phase a table is in. Phase identity (current class + monotone
// epoch) lives in the table's phase_runtime (core/phase_runtime.h);
// auto_phased_table advances that epoch at each room transition, so the
// rooms and the phase ledger stay in lockstep without a second phase word.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <vector>

#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/parallel/spinlock.h"
#include "phch/utils/phase_caps.h"

namespace phch {

// A TSA capability held *shared*: any number of threads occupy the open
// room concurrently (what the capability cannot express — occupants of a
// different room excluding each other — is the runtime's job). The
// annotations catch the structural misuses: exiting a room that was never
// entered, re-entering while already inside, and leaking an occupancy.
class PHCH_CAPABILITY("room") room_sync {
 public:
  explicit room_sync(int num_rooms)
      : num_rooms_(num_rooms), waiters_(static_cast<std::size_t>(num_rooms)) {
    assert(num_rooms >= 1);
    for (auto& w : waiters_) w.store(0, std::memory_order_relaxed);
  }

  room_sync(const room_sync&) = delete;
  room_sync& operator=(const room_sync&) = delete;

  int num_rooms() const noexcept { return num_rooms_; }

  // Blocks until `room` is open, then occupies it. The wait escalates from
  // pause to yield: under the work-stealing pool there can be more runnable
  // threads than cores, and a hard spin would starve the room's occupants
  // of the timeslices they need to leave.
  void enter(int room) PHCH_ACQUIRES_ROOM() {
    assert(room >= 0 && room < num_rooms_);
    // Fast path: the room is open (or the building is empty).
    if (try_enter(room)) return;
    obs::count(obs::counter::room_waits);  // once per blocked enter, not per spin
    const std::uint64_t wait_t0 = obs::now_if_enabled();
    waiters_[static_cast<std::size_t>(room)].fetch_add(1, std::memory_order_acq_rel);
    int spins = 0;
    while (!try_enter(room)) {
      if (++spins < 64) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    waiters_[static_cast<std::size_t>(room)].fetch_sub(1, std::memory_order_acq_rel);
    obs::hist_record_since(obs::global_hist::room_wait_ns, wait_t0);
  }

  // Leaves the current room. The last occupant hands the building to the
  // next room with waiters (cyclic scan from the current room).
  void exit() PHCH_RELEASES_ROOM() {
    const std::uint64_t prev = state_.fetch_sub(1, std::memory_order_acq_rel);
    assert((prev & kCountMask) >= 1);
    if ((prev & kCountMask) != 1) return;
    // We *may* have been the last occupant; if the building is now empty,
    // rotate to a waiting room so a stream of entries to the current room
    // cannot starve others.
    const int cur = static_cast<int>(prev >> kRoomShift);
    for (int step = 1; step <= num_rooms_; ++step) {
      const int next = (cur + step) % num_rooms_;
      if (next != cur &&
          waiters_[static_cast<std::size_t>(next)].load(std::memory_order_acquire) > 0) {
        // Swing the door: only succeeds if still empty and unchanged.
        std::uint64_t expected = make_state(cur, 0);
        state_.compare_exchange_strong(expected, make_state(next, 0),
                                       std::memory_order_acq_rel);
        return;
      }
    }
  }

  // RAII occupancy.
  class PHCH_SCOPED_CAPABILITY guard {
   public:
    guard(room_sync& rs, int room) PHCH_ACQUIRES_ROOM(rs) : rs_(rs) {
      rs_.enter(room);
    }
    ~guard() PHCH_RELEASE() { rs_.exit(); }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;

   private:
    room_sync& rs_;
  };

 private:
  static constexpr int kRoomShift = 48;
  static constexpr std::uint64_t kCountMask = (1ULL << kRoomShift) - 1;

  static std::uint64_t make_state(int room, std::uint64_t count) noexcept {
    return (static_cast<std::uint64_t>(room) << kRoomShift) | count;
  }

  bool try_enter(int room) noexcept PHCH_TRY_ACQUIRE(true) {
    std::uint64_t s = state_.load(std::memory_order_acquire);
    for (;;) {
      const int cur = static_cast<int>(s >> kRoomShift);
      const std::uint64_t count = s & kCountMask;
      if (cur != room && count != 0) return false;  // another room is occupied
      // Either our room is open, or the building is empty and we claim it.
      if (state_.compare_exchange_weak(s, make_state(room, count + 1),
                                       std::memory_order_acq_rel)) {
        return true;
      }
      // s reloaded by compare_exchange_weak; retry.
    }
  }

  int num_rooms_;
  std::atomic<std::uint64_t> state_{0};
  std::vector<std::atomic<std::uint32_t>> waiters_;
};

}  // namespace phch
