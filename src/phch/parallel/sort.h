// Parallel sorting: comparison sort (fork-join merge sort with parallel
// merges) and a stable LSD radix sort for bounded integer keys. Both are
// deterministic: every split point is a fixed function of the data, never
// of thread timing.
//
// The comparison sort recursively halves the input (par_do on the two
// halves, ping-ponging between the input and one scratch buffer), then
// merges the sorted halves with a divide-and-conquer merge that bisects the
// larger run and binary-searches the split point in the smaller one. Under
// the work-stealing scheduler every level of this recursion parallelizes —
// including when the sort itself is called from inside another parallel
// construct, which the old flat pool ran fully serially.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"

namespace phch {

namespace detail {

inline constexpr std::size_t kSortSerialCutoff = 4096;
inline constexpr std::size_t kMergeSerialCutoff = 8192;

// Merges sorted runs [a0,a1) and [b0,b1) into out. Stable: ties take the
// a-side first (lower_bound on b for an a-pivot, upper_bound on a for a
// b-pivot keep equal elements on the correct side of each split).
template <typename T, typename Comp>
void parallel_merge(const T* a0, const T* a1, const T* b0, const T* b1, T* out,
                    Comp& comp) {
  const std::size_t na = static_cast<std::size_t>(a1 - a0);
  const std::size_t nb = static_cast<std::size_t>(b1 - b0);
  if (na + nb <= kMergeSerialCutoff) {
    std::merge(a0, a1, b0, b1, out, comp);
    return;
  }
  const T* am;
  const T* bm;
  if (na >= nb) {
    am = a0 + na / 2;
    bm = std::lower_bound(b0, b1, *am, comp);
  } else {
    bm = b0 + nb / 2;
    am = std::upper_bound(a0, a1, *bm, comp);
  }
  T* out_mid = out + (am - a0) + (bm - b0);
  par_do([&] { parallel_merge(a0, am, b0, bm, out, comp); },
         [&] { parallel_merge(am, a1, bm, b1, out_mid, comp); });
}

// Sorts in[0..n). The result lands in `in` when !to_tmp, in `tmp` when
// to_tmp; children produce their halves in the other buffer so the merge
// always moves data into the requested destination.
template <typename T, typename Comp>
void merge_sort_rec(T* in, T* tmp, std::size_t n, Comp& comp, bool to_tmp) {
  if (n <= kSortSerialCutoff) {
    std::sort(in, in + n, comp);
    if (to_tmp) std::copy(in, in + n, tmp);
    return;
  }
  const std::size_t mid = n / 2;
  par_do([&] { merge_sort_rec(in, tmp, mid, comp, !to_tmp); },
         [&] { merge_sort_rec(in + mid, tmp + mid, n - mid, comp, !to_tmp); });
  const T* src = to_tmp ? in : tmp;
  T* dst = to_tmp ? tmp : in;
  parallel_merge(src, src + mid, src + mid, src + n, dst, comp);
}

}  // namespace detail

template <typename T, typename Comp = std::less<T>>
void parallel_sort(std::vector<T>& a, Comp comp = Comp{}) {
  const std::size_t n = a.size();
  if (n <= detail::kSortSerialCutoff || num_workers() == 1) {
    std::sort(a.begin(), a.end(), comp);
    return;
  }
  std::vector<T> tmp(n);
  detail::merge_sort_rec(a.data(), tmp.data(), n, comp, /*to_tmp=*/false);
}

template <typename T, typename Comp = std::less<T>>
std::vector<T> sorted(std::vector<T> a, Comp comp = Comp{}) {
  parallel_sort(a, comp);
  return a;
}

// Stable counting sort of `in` by key(x) in [0, num_buckets). Parallel
// per-block histograms, a column-major prefix sum over (bucket, block), and
// a stable scatter.
template <typename T, typename Key>
std::vector<T> stable_counting_sort(const std::vector<T>& in, std::size_t num_buckets,
                                    Key&& key) {
  const std::size_t n = in.size();
  std::vector<T> out(n);
  if (n == 0) return out;
  const std::size_t bsize = n / detail::num_scan_blocks(n) + 1;
  const std::size_t num_blocks = (n + bsize - 1) / bsize;
  // counts[bucket * num_blocks + block]: column-major so the serial scan
  // visits all blocks of bucket 0, then bucket 1, ... giving stability.
  std::vector<std::size_t> counts(num_buckets * num_blocks, 0);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) counts[key(in[i]) * num_blocks + b]++;
  });
  scan_add_inplace(counts);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    std::vector<std::size_t> offsets(num_buckets);
    for (std::size_t k = 0; k < num_buckets; ++k) offsets[k] = counts[k * num_blocks + b];
    for (std::size_t i = s; i < e; ++i) out[offsets[key(in[i])]++] = in[i];
  });
  return out;
}

// Stable LSD radix sort by key(x), an unsigned integer < 2^bits.
template <typename T, typename Key>
void radix_sort(std::vector<T>& a, int bits, Key&& key) {
  constexpr int kRadixBits = 8;
  for (int shift = 0; shift < bits; shift += kRadixBits) {
    a = stable_counting_sort(a, std::size_t{1} << kRadixBits, [&](const T& x) {
      return static_cast<std::size_t>((key(x) >> shift) & ((1u << kRadixBits) - 1));
    });
  }
}

}  // namespace phch
