// Parallel sorting: comparison sort (blocked merge sort) and a stable
// LSD radix sort for bounded integer keys. Both are deterministic.
//
// The comparison sort splits the input into 2^k blocks, sorts each block
// with std::sort in parallel, then performs log rounds of pairwise merges
// (each merge itself runs on one worker — adequate parallelism for the
// block counts we use, and fully deterministic).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"

namespace phch {

template <typename T, typename Comp = std::less<T>>
void parallel_sort(std::vector<T>& a, Comp comp = Comp{}) {
  const std::size_t n = a.size();
  const std::size_t p = static_cast<std::size_t>(num_workers());
  if (n < 4096 || p == 1 || scheduler::in_parallel()) {
    std::sort(a.begin(), a.end(), comp);
    return;
  }
  // Round block count up to a power of two so merge rounds pair evenly.
  std::size_t num_blocks = 1;
  while (num_blocks < 2 * p) num_blocks <<= 1;
  const std::size_t bsize = (n + num_blocks - 1) / num_blocks;

  auto block_begin = [&](std::size_t b) { return std::min(b * bsize, n); };
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        std::sort(a.begin() + static_cast<std::ptrdiff_t>(block_begin(b)),
                  a.begin() + static_cast<std::ptrdiff_t>(block_begin(b + 1)), comp);
      },
      1);
  for (std::size_t width = 1; width < num_blocks; width <<= 1) {
    parallel_for(
        0, num_blocks / (2 * width),
        [&](std::size_t pair) {
          const std::size_t lo = block_begin(pair * 2 * width);
          const std::size_t mid = block_begin(pair * 2 * width + width);
          const std::size_t hi = block_begin(pair * 2 * width + 2 * width);
          std::inplace_merge(a.begin() + static_cast<std::ptrdiff_t>(lo),
                             a.begin() + static_cast<std::ptrdiff_t>(mid),
                             a.begin() + static_cast<std::ptrdiff_t>(hi), comp);
        },
        1);
  }
}

template <typename T, typename Comp = std::less<T>>
std::vector<T> sorted(std::vector<T> a, Comp comp = Comp{}) {
  parallel_sort(a, comp);
  return a;
}

// Stable counting sort of `in` by key(x) in [0, num_buckets). Parallel
// per-block histograms, a column-major prefix sum over (bucket, block), and
// a stable scatter.
template <typename T, typename Key>
std::vector<T> stable_counting_sort(const std::vector<T>& in, std::size_t num_buckets,
                                    Key&& key) {
  const std::size_t n = in.size();
  std::vector<T> out(n);
  if (n == 0) return out;
  const std::size_t bsize = n / detail::num_scan_blocks(n) + 1;
  const std::size_t num_blocks = (n + bsize - 1) / bsize;
  // counts[bucket * num_blocks + block]: column-major so the serial scan
  // visits all blocks of bucket 0, then bucket 1, ... giving stability.
  std::vector<std::size_t> counts(num_buckets * num_blocks, 0);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    for (std::size_t i = s; i < e; ++i) counts[key(in[i]) * num_blocks + b]++;
  });
  scan_add_inplace(counts);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    std::vector<std::size_t> offsets(num_buckets);
    for (std::size_t k = 0; k < num_buckets; ++k) offsets[k] = counts[k * num_blocks + b];
    for (std::size_t i = s; i < e; ++i) out[offsets[key(in[i])]++] = in[i];
  });
  return out;
}

// Stable LSD radix sort by key(x), an unsigned integer < 2^bits.
template <typename T, typename Key>
void radix_sort(std::vector<T>& a, int bits, Key&& key) {
  constexpr int kRadixBits = 8;
  for (int shift = 0; shift < bits; shift += kRadixBits) {
    a = stable_counting_sort(a, std::size_t{1} << kRadixBits, [&](const T& x) {
      return static_cast<std::size_t>((key(x) >> shift) & ((1u << kRadixBits) - 1));
    });
  }
}

}  // namespace phch
