// Work-stealing fork-join scheduler: per-worker Chase–Lev deques, a
// `fork_join` task primitive, randomized victim selection, and exponential
// backoff to idle sleep. This gives the library the Cilk-style nested-safe
// runtime the paper assumes: parallel constructs issued from *inside* a
// parallel region keep their parallelism instead of degrading to serial.
//
// Model
//  - `scheduler::get()` lazily spawns `num_workers() - 1` worker threads;
//    the thread that first touches the scheduler is registered as worker 0
//    and participates in every computation it issues.
//  - `fork_join(a, b)` pushes `b` on the calling worker's deque (LIFO),
//    runs `a` inline, then pops `b` back (still LIFO) or — if a thief stole
//    it from the FIFO end — steals other work while waiting for the thief
//    to finish. Exceptions from either branch are captured and rethrown on
//    the forking thread after both branches have joined.
//  - Idle workers steal from uniformly random victims; repeated failures
//    back off from pause to yield to a 1 ms condition-variable sleep, and
//    `fork_join` wakes sleepers whenever new work is pushed.
//  - Threads that are not pool workers (e.g. user threads issuing table
//    operations concurrently) run parallel constructs serially inline;
//    they have no deque, which keeps the pool deadlock-free.
//  - Worker count comes from the PHCH_THREADS environment variable, falling
//    back to std::thread::hardware_concurrency(). Benchmarks may change it
//    at a quiescent point with `set_num_workers`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "phch/parallel/work_stealing_deque.h"

namespace phch {

class scheduler;

namespace detail {

// A forkable unit of work. fork_join stack-allocates one per fork; `done_`
// is the join flag and `error_` carries an exception from a thief back to
// the forking thread.
class ws_task {
 public:
  virtual void execute() = 0;

  void run() noexcept {
    try {
      execute();
    } catch (...) {
      error_ = std::current_exception();
    }
    done_.store(true, std::memory_order_release);
  }

  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

  // Only meaningful once done() is true.
  const std::exception_ptr& error() const noexcept { return error_; }

 protected:
  ~ws_task() = default;

 private:
  std::atomic<bool> done_{false};
  std::exception_ptr error_;
};

template <typename F>
class lambda_task final : public ws_task {
 public:
  explicit lambda_task(F& f) noexcept : f_(f) {}
  void execute() override { f_(); }

 private:
  F& f_;
};

// Per-worker state, cache-line separated. Address-stable for the lifetime
// of the pool generation (workers_ holds unique_ptrs).
struct alignas(64) worker_state {
  worker_state(scheduler* s, int worker_id, std::uint64_t seed)
      : owner(s), id(worker_id), rng(seed | 1) {}
  scheduler* owner;
  int id;
  std::uint64_t rng;  // xorshift state for victim selection
  work_stealing_deque<ws_task> deque;
};

// Current thread's worker registration (nullptr on non-pool threads), the
// pool generation it belongs to (compared before dereferencing tl_worker so
// a registration left over from before a set_num_workers rebuild is treated
// as "not a pool thread" instead of a dangling pointer), and the fork
// nesting depth (0 outside any parallel region).
extern thread_local worker_state* tl_worker;
extern thread_local std::uint64_t tl_worker_gen;
extern thread_local int tl_depth;

struct depth_guard {
  depth_guard() noexcept { ++tl_depth; }
  ~depth_guard() { --tl_depth; }
};

}  // namespace detail

class scheduler {
 public:
  // Global scheduler instance (workers are started on first use).
  static scheduler& get();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;
  ~scheduler();

  // Total parallelism, including the registered main thread. Always >= 1.
  int num_workers() const noexcept { return num_workers_; }

  // True while the current thread is executing inside a parallel region.
  static bool in_parallel() noexcept { return detail::tl_depth > 0; }

  // Id of the calling pool worker in [0, num_workers()), or -1 for threads
  // that are not part of the pool.
  static int worker_id() noexcept {
    return detail::tl_worker == nullptr ? -1 : detail::tl_worker->id;
  }

  // Re-sizes the pool. Must be called at a quiescent point (no tasks in
  // flight); the calling thread becomes the registered worker 0.
  void set_num_workers(int p);

  // The fork-join primitive everything else is layered on: spawns `b` as a
  // stealable task, runs `a` inline, joins both, then rethrows the first
  // captured exception (a's before b's). On threads that are not pool
  // workers, runs both serially.
  template <typename A, typename B>
  void fork_join(A&& a, B&& b) {
    detail::worker_state* w = detail::tl_worker;
    if (w == nullptr || detail::tl_worker_gen != generation_ || num_workers_ == 1) {
      serial_pair(std::forward<A>(a), std::forward<B>(b));
      return;
    }
    using task_t = detail::lambda_task<std::remove_reference_t<B>>;
    task_t tb(b);
    w->deque.push_bottom(&tb);
    signal_work();
    std::exception_ptr ea;
    {
      detail::depth_guard depth;
      try {
        a();
      } catch (...) {
        ea = std::current_exception();
      }
      // Forks inside a() are fully joined before it returns (even when it
      // throws), so the bottom of the deque is either &tb or tb was stolen.
      if (w->deque.pop_bottom() != nullptr) {
        tb.run();  // not stolen: run the forked half inline
      } else {
        wait_for(tb);  // steal other work until the thief finishes tb
      }
    }
    if (ea) std::rethrow_exception(ea);
    if (tb.error()) std::rethrow_exception(tb.error());
  }

  // Compatibility broadcast from the flat-pool era: runs f(0..p-1) exactly
  // once each, in parallel, via a balanced fork-join tree.
  void execute(const std::function<void(int)>& f);

 private:
  scheduler();
  void start_workers();
  void stop_workers();
  void worker_loop(int id);

  // Runs both thunks serially with the nesting depth bumped, preserving
  // exactly-once semantics and exception priority (a's error wins).
  template <typename A, typename B>
  void serial_pair(A&& a, B&& b) {
    detail::depth_guard depth;
    std::exception_ptr ea;
    try {
      a();
    } catch (...) {
      ea = std::current_exception();
    }
    std::exception_ptr eb;
    try {
      b();
    } catch (...) {
      eb = std::current_exception();
    }
    if (ea) std::rethrow_exception(ea);
    if (eb) std::rethrow_exception(eb);
  }

  void broadcast_range(const std::function<void(int)>& f, int lo, int hi);

  // One random steal attempt over all other workers' deques.
  detail::ws_task* try_steal(detail::worker_state& self);

  // Steal-while-waiting join: executes other tasks until t completes.
  void wait_for(detail::ws_task& t);

  // Wakes a sleeping worker if any; called whenever work is pushed.
  void signal_work() noexcept {
    if (num_sleeping_.load(std::memory_order_relaxed) > 0) sleep_cv_.notify_one();
  }

  int num_workers_;
  std::uint64_t generation_ = 0;  // which pool build registered threads belong to
  std::vector<std::unique_ptr<detail::worker_state>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_{false};

  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<int> num_sleeping_{0};
};

// Convenience accessor used throughout the library.
inline int num_workers() { return scheduler::get().num_workers(); }

}  // namespace phch
