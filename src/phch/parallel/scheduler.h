// Fork-join scheduler: a fixed pool of worker threads executing one
// data-parallel job at a time. This replaces the Cilk Plus runtime used by
// the paper; the programming model exposed to the rest of the library is the
// same flat fork-join model (parallel_for + primitives built on it).
//
// Model
//  - `scheduler::get()` lazily spawns `num_workers() - 1` threads; the
//    calling thread acts as worker 0 of every job.
//  - `execute(f)` runs `f(worker_id)` on every worker and returns when all
//    are done. Jobs are serialized: nested or concurrent `execute` calls run
//    the job inline on the calling thread instead (see `in_parallel()`),
//    which keeps the pool deadlock-free without a work-stealing deque.
//  - Worker count comes from the PHCH_THREADS environment variable, falling
//    back to std::thread::hardware_concurrency(). Benchmarks may change it
//    at a quiescent point with `set_num_workers`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phch {

class scheduler {
 public:
  // Global scheduler instance (workers are started on first use).
  static scheduler& get();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;
  ~scheduler();

  // Total parallelism of a job, including the calling thread. Always >= 1.
  int num_workers() const noexcept { return num_workers_; }

  // Runs f(0) on the calling thread and f(1..p-1) on the pool, returning
  // once every invocation has finished. Exceptions thrown by any invocation
  // are rethrown on the caller (the first one captured wins).
  void execute(const std::function<void(int)>& f);

  // True while the current thread is executing inside a job; used to run
  // nested parallel constructs inline.
  static bool in_parallel() noexcept;

  // Re-sizes the pool. Must be called at a quiescent point (no job running).
  void set_num_workers(int p);

 private:
  scheduler();
  void start_workers();
  void stop_workers();
  void worker_loop(int id, std::uint64_t start_epoch);

  int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex job_mutex_;  // serializes whole jobs from distinct user threads

  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

// Convenience accessor used throughout the library.
inline int num_workers() { return scheduler::get().num_workers(); }

}  // namespace phch
