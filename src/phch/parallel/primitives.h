// Parallel sequence primitives: tabulate, map, reduce, scan (prefix sum),
// pack, filter, and helpers. These are the PBBS-style building blocks the
// paper's `elements()` routine and applications rely on ("a parallel prefix
// sum and cache-block friendly writes").
//
// All primitives are deterministic: block decompositions are fixed functions
// of (n, block count), never of thread timing.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "phch/parallel/parallel_for.h"

namespace phch {

namespace detail {
// Deterministic block count for two-pass algorithms: enough blocks for load
// balance, few enough that the serial block-level scan is negligible.
inline std::size_t num_scan_blocks(std::size_t n) {
  const std::size_t p = static_cast<std::size_t>(num_workers());
  std::size_t blocks = p * kDefaultGrainTarget;
  const std::size_t max_blocks = n / 2048 + 1;
  if (blocks > max_blocks) blocks = max_blocks;
  return blocks < 1 ? 1 : blocks;
}
}  // namespace detail

// Returns {f(0), f(1), ..., f(n-1)}.
template <typename F>
auto tabulate(std::size_t n, F&& f) {
  using T = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

// Returns {f(in[0]), ..., f(in[n-1])}.
template <typename T, typename F>
auto map(const std::vector<T>& in, F&& f) {
  return tabulate(in.size(), [&](std::size_t i) { return f(in[i]); });
}

// Reduction of f(lo..hi) under an associative op with identity.
template <typename T, typename F, typename Op>
T reduce(std::size_t lo, std::size_t hi, T identity, Op op, F&& f) {
  if (hi <= lo) return identity;
  const std::size_t bsize = (hi - lo) / detail::num_scan_blocks(hi - lo) + 1;
  const std::size_t num_blocks = (hi - lo + bsize - 1) / bsize;
  std::vector<T> sums(num_blocks, identity);
  blocked_for(lo, hi, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    T acc = identity;
    for (std::size_t i = s; i < e; ++i) acc = op(acc, f(i));
    sums[b] = acc;
  });
  T total = identity;
  for (const T& s : sums) total = op(total, s);
  return total;
}

template <typename T>
T reduce_add(const std::vector<T>& in) {
  return reduce(std::size_t{0}, in.size(), T{}, std::plus<T>{},
                [&](std::size_t i) { return in[i]; });
}

// Exclusive prefix sum of `a` in place under (op, identity); returns the
// grand total. Two-pass blocked algorithm.
template <typename T, typename Op>
T scan_inplace(std::vector<T>& a, Op op, T identity) {
  const std::size_t n = a.size();
  if (n == 0) return identity;
  const std::size_t bsize = n / detail::num_scan_blocks(n) + 1;
  const std::size_t num_blocks = (n + bsize - 1) / bsize;
  std::vector<T> sums(num_blocks);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    T acc = identity;
    for (std::size_t i = s; i < e; ++i) acc = op(acc, a[i]);
    sums[b] = acc;
  });
  T total = identity;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const T next = op(total, sums[b]);
    sums[b] = total;
    total = next;
  }
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    T acc = sums[b];
    for (std::size_t i = s; i < e; ++i) {
      const T next = op(acc, a[i]);
      a[i] = acc;
      acc = next;
    }
  });
  return total;
}

template <typename T>
T scan_add_inplace(std::vector<T>& a) {
  return scan_inplace(a, std::plus<T>{}, T{});
}

// Stable pack: returns get(i) for each i in [0, n) with keep(i) true, in
// index order. This is exactly the paper's ELEMENTS() skeleton: count per
// block, prefix-sum the counts, then copy with cache-friendly writes.
template <typename Keep, typename Get>
auto pack(std::size_t n, Keep&& keep, Get&& get) {
  using T = std::decay_t<decltype(get(std::size_t{0}))>;
  if (n == 0) return std::vector<T>{};
  const std::size_t bsize = n / detail::num_scan_blocks(n) + 1;
  const std::size_t num_blocks = (n + bsize - 1) / bsize;
  std::vector<std::size_t> counts(num_blocks);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    std::size_t c = 0;
    for (std::size_t i = s; i < e; ++i) c += keep(i) ? 1 : 0;
    counts[b] = c;
  });
  const std::size_t total = scan_add_inplace(counts);
  std::vector<T> out(total);
  blocked_for(0, n, bsize, [&](std::size_t b, std::size_t s, std::size_t e) {
    std::size_t o = counts[b];
    for (std::size_t i = s; i < e; ++i)
      if (keep(i)) out[o++] = get(i);
  });
  return out;
}

// Stable filter of a vector by predicate on elements.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& in, Pred&& pred) {
  return pack(
      in.size(), [&](std::size_t i) { return pred(in[i]); },
      [&](std::size_t i) { return in[i]; });
}

// Indices i in [0, n) where flag(i) holds, ascending.
template <typename Flag>
std::vector<std::size_t> pack_index(std::size_t n, Flag&& flag) {
  return pack(
      n, [&](std::size_t i) { return flag(i); }, [](std::size_t i) { return i; });
}

// iota
inline std::vector<std::size_t> iota(std::size_t n) {
  return tabulate(n, [](std::size_t i) { return i; });
}

}  // namespace phch
