// Data-parallel loop constructs on top of the scheduler.
//
//   parallel_for(lo, hi, f)            f(i) for each i in [lo, hi)
//   parallel_for(lo, hi, f, grain)     explicit chunk size
//   blocked_for(lo, hi, bsize, g)      g(block_id, block_lo, block_hi)
//   par_do(a, b)                       runs a() and b() (possibly) in parallel
//
// Iterations are distributed dynamically: participants claim chunks of
// `grain` iterations from a shared atomic cursor, so irregular per-iteration
// costs balance automatically. Exceptions thrown by the body are captured
// and rethrown on the calling thread (first-captured wins).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <utility>

#include "phch/parallel/scheduler.h"

namespace phch {

inline constexpr std::size_t kDefaultGrainTarget = 8;  // chunks per worker

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f, std::size_t grain = 0) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  scheduler& sched = scheduler::get();
  const std::size_t p = static_cast<std::size_t>(sched.num_workers());
  if (grain == 0) grain = (n + p * kDefaultGrainTarget - 1) / (p * kDefaultGrainTarget);
  if (grain < 1) grain = 1;
  if (p == 1 || n <= grain || scheduler::in_parallel()) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }

  std::atomic<std::size_t> cursor{lo};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::atomic_flag error_claimed = ATOMIC_FLAG_INIT;

  sched.execute([&](int) {
    for (;;) {
      const std::size_t start = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (start >= hi || failed.load(std::memory_order_relaxed)) return;
      const std::size_t end = start + grain < hi ? start + grain : hi;
      try {
        for (std::size_t i = start; i < end; ++i) f(i);
      } catch (...) {
        if (!error_claimed.test_and_set()) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (error) std::rethrow_exception(error);
}

// Calls g(block_id, block_lo, block_hi) for consecutive blocks of size
// `bsize` covering [lo, hi). Useful for two-pass algorithms (scan, pack)
// that need a deterministic block decomposition.
template <typename G>
void blocked_for(std::size_t lo, std::size_t hi, std::size_t bsize, G&& g) {
  if (hi <= lo) return;
  if (bsize < 1) bsize = 1;
  const std::size_t num_blocks = (hi - lo + bsize - 1) / bsize;
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        const std::size_t s = lo + b * bsize;
        const std::size_t e = s + bsize < hi ? s + bsize : hi;
        g(b, s, e);
      },
      1);
}

// Runs two thunks, in parallel when a pool is available.
template <typename A, typename B>
void par_do(A&& a, B&& b) {
  scheduler& sched = scheduler::get();
  if (sched.num_workers() == 1 || scheduler::in_parallel()) {
    a();
    b();
    return;
  }
  std::exception_ptr error;
  std::atomic_flag error_claimed = ATOMIC_FLAG_INIT;
  std::atomic<int> next{0};
  sched.execute([&](int) {
    for (;;) {
      const int task = next.fetch_add(1, std::memory_order_relaxed);
      if (task > 1) return;
      try {
        if (task == 0)
          a();
        else
          b();
      } catch (...) {
        if (!error_claimed.test_and_set()) error = std::current_exception();
      }
    }
  });
  if (error) std::rethrow_exception(error);
}

}  // namespace phch
