// Data-parallel loop constructs on top of the work-stealing scheduler.
//
//   parallel_for(lo, hi, f)            f(i) for each i in [lo, hi)
//   parallel_for(lo, hi, f, grain)     explicit leaf size
//   blocked_for(lo, hi, bsize, g)      g(block_id, block_lo, block_hi)
//   par_do(a, b)                       runs a() and b() (possibly) in parallel
//
// parallel_for splits [lo, hi) by recursive binary halving down to `grain`
// iterations per leaf, forking the right half at every level. Idle workers
// steal the oldest (largest) pending halves, so irregular per-iteration
// costs balance automatically and — unlike the old flat broadcast pool —
// a parallel_for or par_do issued from *inside* another parallel construct
// keeps its parallelism. Which indices each leaf covers is a fixed function
// of (lo, hi, grain), never of thread timing, preserving the deterministic
// decomposition contract the primitives rely on.
//
// Exceptions thrown by the body are captured and rethrown on the calling
// thread after the whole loop has joined.
#pragma once

#include <cstddef>
#include <utility>

#include "phch/obs/trace.h"
#include "phch/parallel/scheduler.h"

namespace phch {

inline constexpr std::size_t kDefaultGrainTarget = 8;  // leaves per worker

namespace detail {

template <typename F>
void parallel_for_rec(scheduler& sched, std::size_t lo, std::size_t hi, F& f,
                      std::size_t grain) {
  if (hi - lo <= grain) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  sched.fork_join([&] { parallel_for_rec(sched, lo, mid, f, grain); },
                  [&] { parallel_for_rec(sched, mid, hi, f, grain); });
}

}  // namespace detail

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f, std::size_t grain = 0) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  scheduler& sched = scheduler::get();
  const std::size_t p = static_cast<std::size_t>(sched.num_workers());
  if (grain == 0) grain = (n + p * kDefaultGrainTarget - 1) / (p * kDefaultGrainTarget);
  if (grain < 1) grain = 1;
  if (p == 1 || n <= grain) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  if (!scheduler::in_parallel()) {
    // Root-level loop: record one fork-join span (nested loops ride inside
    // their parent's span and would only flood the trace rings).
    obs::span sp("parallel_for");
    sp.b = n;
    detail::parallel_for_rec(sched, lo, hi, f, grain);
    return;
  }
  detail::parallel_for_rec(sched, lo, hi, f, grain);
}

// Calls g(block_id, block_lo, block_hi) for consecutive blocks of size
// `bsize` covering [lo, hi). Useful for two-pass algorithms (scan, pack)
// that need a deterministic block decomposition.
template <typename G>
void blocked_for(std::size_t lo, std::size_t hi, std::size_t bsize, G&& g) {
  if (hi <= lo) return;
  if (bsize < 1) bsize = 1;
  const std::size_t num_blocks = (hi - lo + bsize - 1) / bsize;
  parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        const std::size_t s = lo + b * bsize;
        const std::size_t e = s + bsize < hi ? s + bsize : hi;
        g(b, s, e);
      },
      1);
}

// Runs two thunks as a real fork-join pair: b is spawned as a stealable
// task, a runs on the calling worker, and both are joined before returning.
// Nests arbitrarily.
template <typename A, typename B>
void par_do(A&& a, B&& b) {
  scheduler::get().fork_join(std::forward<A>(a), std::forward<B>(b));
}

}  // namespace phch
