// Suffix tree with hash-table child maps (§5 of the paper).
//
// The tree skeleton (nodes, parents, string depths) is built sequentially
// from the suffix array + LCP array with the classic stack algorithm; the
// paper's timed kernels are then
//   - *insert*: populating a phase-concurrent hash table with one entry per
//     tree edge, keyed by (parent node, first edge character), in parallel;
//   - *search*: walking patterns from the root with hash-table finds.
// This split mirrors the paper's "parallel insertions of nodes into a
// suffix tree and parallel searches", a natural two-phase use of the table.
//
// A NUL sentinel is appended internally so no suffix is a proper prefix of
// another (every leaf hangs off a non-empty edge).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/parallel/parallel_for.h"
#include "phch/strings/suffix_array.h"

namespace phch::strings {

struct st_node {
  std::uint32_t parent;
  std::uint32_t depth;  // string depth (characters from the root)
  std::uint32_t rep;    // start index of a suffix passing through this node
};

// Tree skeleton: node 0 is the root; leaves and internal nodes share the
// array. Built once, then populated into any table type.
struct suffix_tree_skeleton {
  std::string text;  // input plus NUL sentinel
  std::vector<st_node> nodes;

  static suffix_tree_skeleton build(std::string_view input) {
    suffix_tree_skeleton st;
    st.text.assign(input);
    st.text.push_back('\0');
    const std::string& s = st.text;
    const std::size_t n = s.size();
    const auto sa = suffix_array(s);
    const auto lcp = lcp_array(s, sa);

    st.nodes.reserve(2 * n);
    st.nodes.push_back(st_node{0, 0, sa[0]});  // root
    std::vector<std::uint32_t> stack{0};
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t l = (i == 0) ? 0 : lcp[i];
      std::uint32_t last = UINT32_MAX;
      while (st.nodes[stack.back()].depth > l) {
        last = stack.back();
        stack.pop_back();
      }
      std::uint32_t attach = stack.back();
      if (st.nodes[attach].depth < l) {
        // Split: a new internal node of depth l between `attach` and the
        // last popped node.
        const std::uint32_t u = static_cast<std::uint32_t>(st.nodes.size());
        st.nodes.push_back(st_node{attach, l, st.nodes[last].rep});
        st.nodes[last].parent = u;
        stack.push_back(u);
        attach = u;
      } else if (last != UINT32_MAX) {
        st.nodes[last].parent = attach;
      }
      const std::uint32_t leaf = static_cast<std::uint32_t>(st.nodes.size());
      st.nodes.push_back(
          st_node{attach, static_cast<std::uint32_t>(n - sa[i]), sa[i]});
      stack.push_back(leaf);
    }
    return st;
  }

  std::size_t num_edges() const noexcept { return nodes.size() - 1; }

  // Hash key of the edge entering node v: (parent id, first edge char).
  std::uint64_t edge_key_of(std::uint32_t v) const noexcept {
    const st_node& nd = nodes[v];
    const unsigned char c =
        static_cast<unsigned char>(text[nd.rep + nodes[nd.parent].depth]);
    return (static_cast<std::uint64_t>(nd.parent) << 8) | c;
  }

  // Number of leaves under each node (a leaf's count is 1). Since a parent
  // is always strictly shallower than its children, aggregating in order of
  // decreasing depth propagates counts in one pass. The root's count is the
  // number of suffixes (text length + sentinel).
  std::vector<std::uint32_t> subtree_leaf_counts() const {
    const std::size_t m = nodes.size();
    std::vector<std::uint32_t> child_count(m, 0);
    for (std::size_t v = 1; v < m; ++v) child_count[nodes[v].parent]++;
    std::vector<std::uint32_t> counts(m);
    for (std::size_t v = 0; v < m; ++v) counts[v] = child_count[v] == 0 ? 1 : 0;
    std::vector<std::uint32_t> order(m);
    for (std::size_t v = 0; v < m; ++v) order[v] = static_cast<std::uint32_t>(v);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return nodes[a].depth > nodes[b].depth;
    });
    for (const std::uint32_t v : order) {
      if (v != 0) counts[nodes[v].parent] += counts[v];
    }
    return counts;
  }
};

// The queryable tree: skeleton + a populated child-map table. Table must
// store kv64 entries (pair_entry traits); edge keys are unique so the
// combine function is never exercised.
template <typename Table>
class suffix_tree {
 public:
  explicit suffix_tree(std::string_view input)
      : skel_(suffix_tree_skeleton::build(input)),
        leaf_counts_(skel_.subtree_leaf_counts()),
        table_(table_capacity(skel_.num_edges())) {
    populate();
  }

  // Separate-phase constructor for benchmarks: build the skeleton first
  // (untimed), then call populate() (the timed insert kernel).
  explicit suffix_tree(suffix_tree_skeleton skel)
      : skel_(std::move(skel)),
        leaf_counts_(skel_.subtree_leaf_counts()),
        table_(table_capacity(skel_.num_edges())) {}

  // Parallel insertion of every tree edge into the table (insert phase).
  void populate() {
    parallel_for(1, skel_.nodes.size(), [&](std::size_t v) {
      table_.insert(kv64{skel_.edge_key_of(static_cast<std::uint32_t>(v)),
                         static_cast<std::uint64_t>(v)});
    });
  }

  // True iff `pattern` occurs in the text (find phase).
  bool search(std::string_view pattern) const { return occurrences(pattern) > 0; }

  // Number of occurrences of `pattern` in the text: the leaf count of the
  // subtree the pattern walk lands in (find phase).
  std::size_t occurrences(std::string_view pattern) const {
    const std::string& s = skel_.text;
    std::uint32_t cur = 0;
    std::size_t d = 0;
    while (d < pattern.size()) {
      const std::uint64_t key = (static_cast<std::uint64_t>(cur) << 8) |
                                static_cast<unsigned char>(pattern[d]);
      const kv64 e = table_.find(key);
      if (pair_entry<>::is_empty(e)) return 0;
      const std::uint32_t child = static_cast<std::uint32_t>(e.v);
      const st_node& nd = skel_.nodes[child];
      const std::size_t edge_end = std::min<std::size_t>(nd.depth, pattern.size());
      for (std::size_t t = d + 1; t < edge_end; ++t) {
        if (s[nd.rep + t] != pattern[t]) return 0;
      }
      if (pattern.size() <= nd.depth) return leaf_counts_[child];
      cur = child;
      d = nd.depth;
    }
    return leaf_counts_[cur];
  }

  const suffix_tree_skeleton& skeleton() const noexcept { return skel_; }
  const Table& table() const noexcept { return table_; }

  // Paper's sizing: twice the number of nodes, rounded to a power of two.
  static std::size_t table_capacity(std::size_t edges) noexcept {
    return 2 * edges + 4;
  }

 private:
  suffix_tree_skeleton skel_;
  std::vector<std::uint32_t> leaf_counts_;
  Table table_;
};

}  // namespace phch::strings
