#include "phch/strings/suffix_array.h"

#include <algorithm>

namespace phch::strings {

namespace {

// DC3 / skew algorithm over an integer alphabet [1, K]. `s` must have three
// zero-padding entries past `n`. Classic formulation (Kärkkäinen & Sanders,
// ICALP 2003).
void radix_pass(const std::vector<std::uint32_t>& src, std::vector<std::uint32_t>& dst,
                const std::uint32_t* key, std::size_t n, std::uint32_t K) {
  std::vector<std::uint32_t> count(K + 2, 0);
  for (std::size_t i = 0; i < n; ++i) count[key[src[i]] + 1]++;
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  for (std::size_t i = 0; i < n; ++i) dst[count[key[src[i]]]++] = src[i];
}

void dc3(const std::vector<std::uint32_t>& s, std::vector<std::uint32_t>& sa,
         std::size_t n, std::uint32_t K) {
  if (n == 0) return;
  if (n == 1) {
    sa[0] = 0;
    return;
  }
  if (n == 2) {
    // Suffix 1 precedes suffix 0 iff s[1] < s[0], or s[1] == s[0] and the
    // shorter suffix wins as a proper prefix.
    if (s[1] <= s[0]) {
      sa[0] = 1;
      sa[1] = 0;
    } else {
      sa[0] = 0;
      sa[1] = 1;
    }
    return;
  }

  const std::size_t n0 = (n + 2) / 3;
  const std::size_t n1 = (n + 1) / 3;
  const std::size_t n2 = n / 3;
  const std::size_t n02 = n0 + n2;

  std::vector<std::uint32_t> s12(n02 + 3, 0);
  std::vector<std::uint32_t> sa12(n02 + 3, 0);
  // Positions i mod 3 != 0. (The n0 - n1 padding suffix aligns mod-1
  // positions when n % 3 == 1.)
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < n + (n0 - n1); ++i) {
      if (i % 3 != 0) s12[j++] = static_cast<std::uint32_t>(i);
    }
  }
  // Radix sort the mod-1/2 triples.
  radix_pass(s12, sa12, s.data() + 2, n02, K);
  std::swap(s12, sa12);
  radix_pass(s12, sa12, s.data() + 1, n02, K);
  std::swap(s12, sa12);
  radix_pass(s12, sa12, s.data(), n02, K);

  // Name the triples.
  std::uint32_t name = 0;
  std::uint32_t c0 = ~0u;
  std::uint32_t c1 = ~0u;
  std::uint32_t c2 = ~0u;
  std::vector<std::uint32_t> r12(n02 + 3, 0);
  for (std::size_t i = 0; i < n02; ++i) {
    const std::uint32_t p = sa12[i];
    if (s[p] != c0 || s[p + 1] != c1 || s[p + 2] != c2) {
      ++name;
      c0 = s[p];
      c1 = s[p + 1];
      c2 = s[p + 2];
    }
    if (p % 3 == 1) {
      r12[p / 3] = name;  // mod-1 block
    } else {
      r12[p / 3 + n0] = name;  // mod-2 block
    }
  }

  if (name < n02) {
    dc3(r12, sa12, n02, name);
    for (std::size_t i = 0; i < n02; ++i) r12[sa12[i]] = static_cast<std::uint32_t>(i + 1);
  } else {
    for (std::size_t i = 0; i < n02; ++i) sa12[r12[i] - 1] = static_cast<std::uint32_t>(i);
  }

  // Sort the mod-0 suffixes by (char, rank of following mod-1 suffix).
  std::vector<std::uint32_t> s0(n0);
  std::vector<std::uint32_t> sa0(n0);
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < n02; ++i) {
      if (sa12[i] < n0) s0[j++] = 3 * sa12[i];
    }
  }
  radix_pass(s0, sa0, s.data(), n0, K);

  // Merge.
  auto get_i = [&](std::size_t t) {
    return sa12[t] < n0 ? sa12[t] * 3 + 1 : (sa12[t] - n0) * 3 + 2;
  };
  auto leq2 = [&](std::uint32_t a1, std::uint32_t a2, std::uint32_t b1, std::uint32_t b2) {
    return a1 < b1 || (a1 == b1 && a2 <= b2);
  };
  auto leq3 = [&](std::uint32_t a1, std::uint32_t a2, std::uint32_t a3, std::uint32_t b1,
                  std::uint32_t b2, std::uint32_t b3) {
    return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3));
  };
  std::size_t p = 0;
  std::size_t t = n0 - n1;
  std::size_t k = 0;
  while (t < n02 && p < n0) {
    const std::uint32_t i = get_i(t);
    const std::uint32_t j = sa0[p];
    const bool take12 =
        (sa12[t] < n0)
            ? leq2(s[i], r12[sa12[t] + n0], s[j], r12[j / 3])
            : leq3(s[i], s[i + 1], r12[sa12[t] - n0 + 1], s[j], s[j + 1],
                   r12[j / 3 + n0]);
    if (take12) {
      sa[k++] = i;
      ++t;
    } else {
      sa[k++] = j;
      ++p;
    }
  }
  while (p < n0) sa[k++] = sa0[p++];
  while (t < n02) sa[k++] = get_i(t++);
}

}  // namespace

std::vector<std::uint32_t> suffix_array(const std::string& s) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> text(n + 3, 0);
  for (std::size_t i = 0; i < n; ++i) {
    text[i] = static_cast<std::uint32_t>(static_cast<unsigned char>(s[i])) + 1;
  }
  std::vector<std::uint32_t> sa(n + 3, 0);
  dc3(text, sa, n, 257);
  sa.resize(n);
  return sa;
}

std::vector<std::uint32_t> lcp_array(const std::string& s,
                                     const std::vector<std::uint32_t>& sa) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[sa[i]] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> lcp(n, 0);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rank[i] > 0) {
      const std::size_t j = sa[rank[i] - 1];
      while (i + h < n && j + h < n && s[i + h] == s[j + h]) ++h;
      lcp[rank[i]] = static_cast<std::uint32_t>(h);
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  return lcp;
}

}  // namespace phch::strings
