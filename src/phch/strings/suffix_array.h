// Suffix array (Kärkkäinen–Sanders DC3/skew algorithm) and LCP array
// (Kasai). Substrate for the suffix-tree application (§5): the paper builds
// suffix trees whose per-node child maps live in a phase-concurrent hash
// table; we construct the tree from SA + LCP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phch::strings {

// Suffix array of s (all characters allowed, including NUL).
std::vector<std::uint32_t> suffix_array(const std::string& s);

// lcp[i] = longest common prefix of suffixes sa[i-1] and sa[i] (lcp[0] = 0).
std::vector<std::uint32_t> lcp_array(const std::string& s,
                                     const std::vector<std::uint32_t>& sa);

}  // namespace phch::strings
