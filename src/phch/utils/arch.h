// Architecture detection and the portable spin-wait hint.
//
// Two consumers need to know what ISA they are on: the spin-wait sites
// (parallel/spinlock.h, room_sync, growable_table, the scheduler) want the
// cheapest "I am busy-waiting" hint the core offers, and the SIMD dispatch
// layer (core/simd_scan.h) wants the compile-time half of its backend
// selection. Centralizing the #ifdef ladder here keeps both in sync and
// keeps <immintrin.h> from being included unconditionally on non-x86
// builds.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#define PHCH_ARCH_X86 1
#include <immintrin.h>
#else
#define PHCH_ARCH_X86 0
#endif

#if defined(__aarch64__)
#define PHCH_ARCH_AARCH64 1
#else
#define PHCH_ARCH_AARCH64 0
#endif

namespace phch {

// One busy-wait iteration's worth of politeness: tells the core to stall
// the speculative pipeline / release shared resources while another thread
// makes progress. Never a syscall except on ISAs with no hint at all.
inline void cpu_relax() noexcept {
#if PHCH_ARCH_X86
  _mm_pause();
#elif PHCH_ARCH_AARCH64
  // ISB stalls longer than YIELD (which many cores treat as a NOP), making
  // it the closer analogue of x86 PAUSE for spin-wait loops.
  asm volatile("isb" ::: "memory");
#elif defined(__ARM_ARCH)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace phch
