// Wall-clock timer used by benchmarks and examples.
#pragma once

#include <chrono>

namespace phch {

class timer {
 public:
  timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace phch
