// Phase-capability annotations: the phase discipline of Definition 1 as a
// compile-time contract, via Clang's thread-safety analysis (TSA).
//
// The paper's guarantee rests on callers keeping operation classes
//     S = { {insert}, {delete}, {find, elements} }
// from overlapping in time. At runtime that contract is enforced by
// checked_phases (core/phase_guard.h) and observed by TSan — both
// probabilistic: a misuse must actually overlap under load to be caught.
// This header makes the same contract *static*. Every phase-concurrent
// table carries three zero-size capability tokens (one per operation
// class), and every public operation is annotated with the classes it is
// incompatible with. Under `clang++ -Wthread-safety -Werror` a call such as
// `table.find(k)` from inside a region annotated as insert-phase is a
// compile error; under any other compiler (or without the warning) every
// macro below expands to nothing, so the annotations cost zero in code
// size, layout and runtime.
//
// The model, concretely:
//
//  * `PHCH_PHASE_CAPABILITIES()` injects the three capability members
//    (phch_insert_cap_ / phch_erase_cap_ / phch_query_cap_) into a table.
//    They are empty structs — pure analysis tokens, no storage semantics.
//  * `PHCH_REQUIRES_PHASE(cls)` on a public operation expands to
//    `EXCLUDES(<the other two capabilities>)`: the operation may run only
//    when the caller provably does NOT sit inside a region of a different
//    class on the same table. Plain call sites hold no capabilities and
//    compile untouched — the contract binds exactly the callers that mark
//    their regions.
//  * `phch::insert_phase / erase_phase / query_phase` are RAII region
//    markers (scoped capabilities). `phch::insert_phase r(table);` makes
//    every different-class operation on `table` inside the region a
//    -Wthread-safety error. They compile to empty objects: marking a region
//    is free and purely declarative.
//  * Rooms (parallel/room_sync.h) are *shared* capabilities — any number of
//    threads occupy one room concurrently — so room_sync::enter/exit use
//    the PHCH_ACQUIRES_ROOM/PHCH_RELEASES_ROOM (shared) forms, and
//    spinlock.h uses the classic exclusive mutex forms.
//
// tools/phch_lint.py closes the loop: it fails any public table operation
// that does not carry a PHCH_REQUIRES_PHASE annotation (or an explicit
// PHCH_NO_TSA opt-out), so new tables cannot silently skip the contract.
// DESIGN.md §15 documents the model and how to annotate a new table.
#pragma once

// TSA attributes exist on Clang only; everything is a no-op elsewhere.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PHCH_TSA(x) __attribute__((x))
#endif
#endif
#ifndef PHCH_TSA
#define PHCH_TSA(x)  // non-Clang (or pre-capability Clang): annotation-free
#endif

// --- raw attribute vocabulary (thin names over Clang TSA) -------------------

#define PHCH_CAPABILITY(name) PHCH_TSA(capability(name))
#define PHCH_SCOPED_CAPABILITY PHCH_TSA(scoped_lockable)
#define PHCH_GUARDED_BY(x) PHCH_TSA(guarded_by(x))
#define PHCH_PT_GUARDED_BY(x) PHCH_TSA(pt_guarded_by(x))
#define PHCH_REQUIRES(...) PHCH_TSA(requires_capability(__VA_ARGS__))
#define PHCH_REQUIRES_SHARED(...) PHCH_TSA(requires_shared_capability(__VA_ARGS__))
#define PHCH_ACQUIRE(...) PHCH_TSA(acquire_capability(__VA_ARGS__))
#define PHCH_ACQUIRE_SHARED(...) PHCH_TSA(acquire_shared_capability(__VA_ARGS__))
#define PHCH_RELEASE(...) PHCH_TSA(release_capability(__VA_ARGS__))
#define PHCH_RELEASE_SHARED(...) PHCH_TSA(release_shared_capability(__VA_ARGS__))
#define PHCH_TRY_ACQUIRE(...) PHCH_TSA(try_acquire_capability(__VA_ARGS__))
#define PHCH_EXCLUDES(...) PHCH_TSA(locks_excluded(__VA_ARGS__))
#define PHCH_ASSERT_CAPABILITY(x) PHCH_TSA(assert_capability(x))
#define PHCH_RETURN_CAPABILITY(x) PHCH_TSA(lock_returned(x))
#define PHCH_NO_TSA PHCH_TSA(no_thread_safety_analysis)

// --- room synchronization forms (parallel/room_sync.h) ----------------------
//
// A room is held *shared*: many threads occupy it at once, and what the
// capability excludes is occupants of a different room, which TSA cannot
// express directly — the shared acquire still catches the real bug class of
// re-entering / exiting a room that is not held.

#define PHCH_ACQUIRES_ROOM(...) PHCH_ACQUIRE_SHARED(__VA_ARGS__)
#define PHCH_RELEASES_ROOM(...) PHCH_RELEASE_SHARED(__VA_ARGS__)

namespace phch {

// Zero-size analysis token: one per operation class, per table. Never
// locked at runtime — acquired/released only in the TSA model by the
// region markers below.
class PHCH_CAPABILITY("phase") phase_capability {
 public:
  phase_capability() noexcept = default;
  phase_capability(const phase_capability&) = delete;
  phase_capability& operator=(const phase_capability&) = delete;
};

}  // namespace phch

// Injects the per-class capability tokens into a table. `mutable` because
// query-class operations are const. The trailing member list is expanded
// unconditionally (the tokens are empty structs), so table layouts do not
// depend on the compiler: [[no_unique_address]] keeps them size-free.
#define PHCH_PHASE_CAPABILITIES()                                      \
  [[no_unique_address]] mutable ::phch::phase_capability phch_insert_cap_; \
  [[no_unique_address]] mutable ::phch::phase_capability phch_erase_cap_;  \
  [[no_unique_address]] mutable ::phch::phase_capability phch_query_cap_

// The per-class operation contract: an operation of class `cls` must not
// run inside a marked region of either *other* class on the same table.
// Spelled as EXCLUDES (not REQUIRES) so unmarked call sites — the existing
// code base, and callers whose phase separation comes from program
// structure — stay warning-free.
#define PHCH_REQUIRES_PHASE(cls) PHCH_REQUIRES_PHASE_##cls
#define PHCH_REQUIRES_PHASE_insert \
  PHCH_EXCLUDES(phch_erase_cap_, phch_query_cap_)
#define PHCH_REQUIRES_PHASE_erase \
  PHCH_EXCLUDES(phch_insert_cap_, phch_query_cap_)
#define PHCH_REQUIRES_PHASE_query \
  PHCH_EXCLUDES(phch_insert_cap_, phch_erase_cap_)

namespace phch {

// RAII phase-region markers. `insert_phase r(table);` declares "this region
// is an insert phase of `table`": TSA then rejects any different-class
// operation on that table within the region. Runtime cost: an empty object.
//
// The constructors are templates so the markers work with every table that
// carries PHCH_PHASE_CAPABILITIES() — probe_engine and friends, the sparse
// family, growable_table. (TSA resolves the attribute argument against the
// deduced t; a table without the capability members simply fails to
// instantiate, which is the correct error.)

class PHCH_SCOPED_CAPABILITY insert_phase {
 public:
  template <typename Table>
  explicit insert_phase(Table& t) PHCH_ACQUIRE(t.phch_insert_cap_)
      PHCH_EXCLUDES(t.phch_erase_cap_, t.phch_query_cap_) {
    (void)t;
  }
  ~insert_phase() PHCH_RELEASE() {}
  insert_phase(const insert_phase&) = delete;
  insert_phase& operator=(const insert_phase&) = delete;
};

class PHCH_SCOPED_CAPABILITY erase_phase {
 public:
  template <typename Table>
  explicit erase_phase(Table& t) PHCH_ACQUIRE(t.phch_erase_cap_)
      PHCH_EXCLUDES(t.phch_insert_cap_, t.phch_query_cap_) {
    (void)t;
  }
  ~erase_phase() PHCH_RELEASE() {}
  erase_phase(const erase_phase&) = delete;
  erase_phase& operator=(const erase_phase&) = delete;
};

class PHCH_SCOPED_CAPABILITY query_phase {
 public:
  template <typename Table>
  explicit query_phase(const Table& t) PHCH_ACQUIRE(t.phch_query_cap_)
      PHCH_EXCLUDES(t.phch_insert_cap_, t.phch_erase_cap_) {
    (void)t;
  }
  ~query_phase() PHCH_RELEASE() {}
  query_phase(const query_phase&) = delete;
  query_phase& operator=(const query_phase&) = delete;
};

}  // namespace phch
