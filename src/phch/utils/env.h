// Environment-variable helpers for benchmark scaling.
//
//   PHCH_THREADS  worker count (read by the scheduler)
//   PHCH_SCALE    multiplier applied to benchmark problem sizes; the paper
//                 ran n = 1e8 on a 40-core/256 GB machine, benches here
//                 default to machine-appropriate sizes and PHCH_SCALE
//                 rescales them (e.g. PHCH_SCALE=50 approximates the paper).
#pragma once

#include <cstdlib>
#include <string>

namespace phch {

inline double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const double x = std::strtod(v, &end);
    if (end != v) return x;
  }
  return fallback;
}

inline long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const long x = std::strtol(v, &end, 10);
    if (end != v) return x;
  }
  return fallback;
}

// Benchmark problem size: base scaled by PHCH_SCALE.
inline std::size_t scaled_size(std::size_t base) {
  const double s = env_double("PHCH_SCALE", 1.0);
  const double n = static_cast<double>(base) * (s > 0 ? s : 1.0);
  return n < 1 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace phch
