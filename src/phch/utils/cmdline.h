// Minimal command-line option parser for the example tools:
//   cmdline cl(argc, argv);
//   auto n = cl.get_long("-n", 1000000);
//   auto dist = cl.get_string("-dist", "uniform");
//   if (cl.has("-verify")) ...;
// Positional arguments are available via positional(i).
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

namespace phch {

class cmdline {
 public:
  cmdline(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has(const std::string& flag) const {
    for (const auto& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

  std::string get_string(const std::string& flag, const std::string& fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == flag) return args_[i + 1];
    }
    return fallback;
  }

  long long get_long(const std::string& flag, long long fallback) const {
    const std::string v = get_string(flag, "");
    if (v.empty()) return fallback;
    return std::strtoll(v.c_str(), nullptr, 10);
  }

  double get_double(const std::string& flag, double fallback) const {
    const std::string v = get_string(flag, "");
    if (v.empty()) return fallback;
    return std::strtod(v.c_str(), nullptr);
  }

  // i-th argument that is not a flag ("-x") and not a flag's value.
  std::string positional(std::size_t idx, const std::string& fallback = "") const {
    std::size_t seen = 0;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (!args_[i].empty() && args_[i][0] == '-') {
        ++i;  // skip the flag's value
        continue;
      }
      if (seen++ == idx) return args_[i];
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

}  // namespace phch
