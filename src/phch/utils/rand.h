// Deterministic pseudo-random utilities in the PBBS style: a strong 64-bit
// mixing hash and a forkable generator, so parallel loops can draw
// independent deterministic streams by indexing (no shared RNG state, no
// timing dependence).
#pragma once

#include <cstdint>

namespace phch {

// splitmix64 finalizer: a high-quality 64 -> 64 bit mixing function.
inline std::uint64_t hash64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// 32-bit variant (Wang hash style via hash64 truncation).
inline std::uint32_t hash32(std::uint64_t x) noexcept {
  return static_cast<std::uint32_t>(hash64(x));
}

// A counter-based generator: rng(seed)[i] is a pure function of (seed, i).
// fork(i) derives an independent stream, as in PBBS's `random`.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0) noexcept : seed_(seed) {}

  rng fork(std::uint64_t i) const noexcept { return rng(hash64(seed_ + i)); }

  std::uint64_t ith_rand(std::uint64_t i) const noexcept { return hash64(seed_ + i); }

  // Uniform in [0, range). Slight modulo bias is irrelevant for workloads.
  std::uint64_t ith_rand(std::uint64_t i, std::uint64_t range) const noexcept {
    return ith_rand(i) % range;
  }

  // Uniform double in [0, 1).
  double ith_double(std::uint64_t i) const noexcept {
    return static_cast<double>(ith_rand(i) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace phch
