// Named per-table metric registry.
//
// The counters and histograms are process-global by default; the registry
// adds the attribution layer: a table (or the app that owns it) registers
// itself under a stable name, and the exporters (obs/prom.h, tools) can
// then report per-table gauges (capacity, approximate size, load factor,
// phase epoch) and per-table histograms (probe depth, sampled op latency)
// next to the process totals.
//
// Registration is duck-typed: register_table(name, t) probes the table at
// compile time for capacity() / approx_size() / phase_rt().epoch() /
// hists() and wires up only the gauges the type actually has, so every
// table family (probe_engine specializations, growable_table,
// auto_phased_table, the sparse tables) registers with the same one-liner.
// The stored callables reference the table, so the registration must not
// outlive it — scoped_registration ties the two lifetimes together, and
// growable_table re-resolves its current inner table on every read (its
// callables go through the outer object, which is stable across growth).
//
// Reads (snapshot_tables) materialize the gauge values under the registry
// mutex; unregistration takes the same mutex, so a table is never sampled
// mid-destruction. Like everything in obs/, the whole registry compiles to
// empty inline no-ops when PHCH_TELEMETRY is off.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"

namespace phch::obs {

// A materialized (already-sampled) view of one registered table, safe to
// use after the registry lock is released.
struct table_sample {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t capacity = 0;       // 0 when the type exposes no capacity()
  std::uint64_t size = 0;           // approx_size() at sample time
  bool has_size = false;
  std::uint64_t phase_epoch = 0;    // phase_rt().epoch() at sample time
  bool has_epoch = false;
  bool has_hists = false;
  hist_snapshot probe_depth;        // empty unless has_hists
  hist_snapshot op_latency_ns;      // empty unless has_hists
};

#if PHCH_TELEMETRY_ENABLED

// The raw registration record: name plus lazy gauge resolvers. Callables
// may be null when the table type lacks the corresponding accessor.
struct table_registration {
  std::string name;
  const void* address = nullptr;
  std::function<std::uint64_t()> capacity;
  std::function<std::uint64_t()> size;
  std::function<std::uint64_t()> epoch;
  std::function<table_hists*()> hists;
};

namespace detail {

struct registry_state {
  std::mutex m;
  std::uint64_t next_id = 1;
  std::vector<std::pair<std::uint64_t, table_registration>> entries;
};

inline registry_state& registry() noexcept {
  static registry_state r;
  return r;
}

}  // namespace detail

// Registers a prepared record; returns the id used to unregister. Names
// need not be unique (two incarnations can briefly coexist) but stable
// names make the Prometheus series continuous.
inline std::uint64_t register_table_entry(table_registration reg) {
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.m);
  const std::uint64_t id = r.next_id++;
  r.entries.emplace_back(id, std::move(reg));
  return id;
}

inline void unregister_table(std::uint64_t id) {
  if (id == 0) return;
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.m);
  for (auto it = r.entries.begin(); it != r.entries.end(); ++it) {
    if (it->first == id) {
      r.entries.erase(it);
      return;
    }
  }
}

// Duck-typed registration: wires up whichever of capacity / approx_size /
// phase_rt().epoch() / hists() the table type provides.
template <class Table>
std::uint64_t register_table(std::string name, Table& t) {
  table_registration reg;
  reg.name = std::move(name);
  reg.address = &t;
  if constexpr (requires { t.capacity(); }) {
    reg.capacity = [&t] { return static_cast<std::uint64_t>(t.capacity()); };
  }
  if constexpr (requires { t.approx_size(); }) {
    reg.size = [&t] { return static_cast<std::uint64_t>(t.approx_size()); };
  }
  if constexpr (requires { t.phase_rt().epoch(); }) {
    reg.epoch = [&t] { return static_cast<std::uint64_t>(t.phase_rt().epoch()); };
  }
  if constexpr (requires { t.hists(); }) {
    reg.hists = [&t]() -> table_hists* { return &t.hists(); };
  }
  return register_table_entry(std::move(reg));
}

// Samples every registered table's gauges and histograms under the lock.
// Call at (or near) a quiescent point for exact values; mid-phase reads
// are approximate exactly like counter sums.
inline std::vector<table_sample> snapshot_tables() {
  auto& r = detail::registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::vector<table_sample> out;
  out.reserve(r.entries.size());
  for (const auto& [id, reg] : r.entries) {
    table_sample s;
    s.id = id;
    s.name = reg.name;
    if (reg.capacity) s.capacity = reg.capacity();
    if (reg.size) {
      s.size = reg.size();
      s.has_size = true;
    }
    if (reg.epoch) {
      s.phase_epoch = reg.epoch();
      s.has_epoch = true;
    }
    if (reg.hists) {
      if (table_hists* h = reg.hists(); h != nullptr) {
        s.has_hists = true;
        s.probe_depth = h->snapshot(table_hist::probe_depth);
        s.op_latency_ns = h->snapshot(table_hist::op_latency_ns);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

// RAII registration whose lifetime matches the owning scope (the apps wrap
// their workload tables in one so the monitor can attribute metrics).
class scoped_registration {
 public:
  scoped_registration() = default;
  template <class Table>
  scoped_registration(std::string name, Table& t)
      : id_(register_table(std::move(name), t)) {}
  scoped_registration(const scoped_registration&) = delete;
  scoped_registration& operator=(const scoped_registration&) = delete;
  scoped_registration(scoped_registration&& o) noexcept : id_(o.id_) { o.id_ = 0; }
  scoped_registration& operator=(scoped_registration&& o) noexcept {
    if (this != &o) {
      unregister_table(id_);
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }
  ~scoped_registration() { unregister_table(id_); }

 private:
  std::uint64_t id_ = 0;
};

#else  // !PHCH_TELEMETRY_ENABLED

inline std::uint64_t register_table_entry(...) { return 0; }
inline void unregister_table(std::uint64_t) {}

template <class Table>
std::uint64_t register_table(std::string, Table&) {
  return 0;
}

inline std::vector<table_sample> snapshot_tables() { return {}; }

class scoped_registration {
 public:
  scoped_registration() = default;
  template <class Table>
  scoped_registration(std::string, Table&) {}
  scoped_registration(const scoped_registration&) = delete;
  scoped_registration& operator=(const scoped_registration&) = delete;
  scoped_registration(scoped_registration&&) noexcept {}
  scoped_registration& operator=(scoped_registration&&) noexcept { return *this; }
};

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
