// Zero-overhead-when-off operational telemetry: striped event counters.
//
// The paper's whole evaluation is narrated through probe lengths, CAS
// traffic, and scalability, but until now the runtime could only measure
// those offline (table_stats walks a quiesced slot array). This layer
// counts what the *live* system does — probe slot loads, CAS attempts and
// failures, batch-lane rotations and scalar handoffs, steals and backoff
// sleeps, growth migrations, phase transitions — without perturbing it:
//
//  * Compile-time gate. The whole subsystem exists only when the CMake
//    option PHCH_TELEMETRY is ON (which defines PHCH_TELEMETRY=1). When it
//    is OFF (the default) every entry point below compiles to an empty
//    inline no-op, instrumented classes carry no extra members
//    (tests/test_telemetry.cpp asserts this by object size), and dead local
//    tallies vanish under optimization — the hot paths' object code is the
//    pre-telemetry code.
//  * Runtime gate. When compiled in, recording still honors a process-wide
//    enable flag (obs::set_enabled, or the PHCH_TELEMETRY environment
//    variable at startup); disabled cost is one relaxed load + branch.
//  * Striped storage. Counters live in 64 cache-line-padded stripes, one
//    per scheduler worker (the scheduler binds each worker to its stripe;
//    foreign threads get a ticket), mirroring parallel/striped_counter.h:
//    the enabled hot path is a relaxed fetch_add on the caller's own line.
//    Sums over stripes are exact at a phase boundary / quiescent point and
//    approximate mid-phase, exactly like the occupancy counter.
//
// The tracer (obs/trace.h) and exporters (obs/export.h) build on this
// header; this header depends on nothing in phch (so phase_guard.h and the
// scheduler can both include it without cycles).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(PHCH_TELEMETRY) && PHCH_TELEMETRY
#define PHCH_TELEMETRY_ENABLED 1
#else
#define PHCH_TELEMETRY_ENABLED 0
#endif

namespace phch::obs {

// True when the layer is compiled in (CMake -DPHCH_TELEMETRY=ON).
inline constexpr bool compiled = PHCH_TELEMETRY_ENABLED == 1;

// Everything the runtime counts. Kept flat and dense so a snapshot is one
// small array and the JSON exporter can enumerate mechanically.
enum class counter : std::uint8_t {
  // probe_engine scalar loops (incl. the continuations batch ops resume).
  probe_slots,       // slot loads performed by scalar probe loops
  cas_attempts,      // CASes issued by insert/erase paths
  cas_failures,      // CASes that lost to a concurrent operation
  insert_ops,        // insert operations started (one per logical insert)
  insert_commits,    // inserts that claimed an empty slot (new element)
  insert_dups,       // inserts resolved against an existing key (merge/no-op)
  insert_aborts,     // bounded inserts aborted by the probe limit (growable)
  erase_ops,         // erase operations started
  erase_hits,        // erases that actually removed a live element
  find_ops,          // finds started (scalar or pipelined)
  find_hits,         // finds that returned a stored value
  // core/batch_ops.h pipelined engines.
  batch_probe_slots, // slot inspections by the pipelined prefix scans
  batch_rotations,   // ring-lane rotations (one per line crossed per op)
  batch_handoffs,    // pipelined-prefix -> scalar-continuation handoffs
  batch_blocks,      // pipelined blocks executed
  // core/simd_scan.h tag-sidecar probing (scalar and batched loops).
  tag_groups_scanned,  // vector/SWAR group scans over the tag sidecar
  tag_candidates,      // fingerprint-match candidates confirmed against slots
  tag_false_positives, // candidates whose slot did not hold the probed key
  // parallel/scheduler.cpp.
  steals,            // tasks stolen from another worker's deque
  steal_failures,    // full victim sweeps that found nothing
  backoff_sleeps,    // idle workers entering the 1 ms deep-idle sleep
  // core/growable_table.h.
  growths,           // capacity doublings (migrations)
  migrated_elements, // elements re-inserted by migrations
  // sparse-family structural events (cuckoo/hopscotch/chained tables).
  cuckoo_evictions,        // eviction-chain steps (one per displaced victim)
  hopscotch_displacements, // displace() moves bringing the hole toward home
  chained_chain_links,     // chain nodes walked by finds and batch walks
  // core/phase_runtime.h transition edge.
  phase_transitions, // per-table operation-class changes (insert->query, ...)
  // parallel/reclaim.h (quiescence-based deferred reclamation).
  reclaim_retired,   // objects handed to reclaim::retire
  reclaim_freed,     // retired objects whose grace period passed (deleter ran)
  // parallel/room_sync.h (auto_phased_table's automatic phase separation).
  room_waits,        // enters that blocked because another room was occupied
  kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(counter::kCount);

inline const char* counter_name(counter c) noexcept {
  static constexpr const char* names[kNumCounters] = {
      "probe_slots",       "cas_attempts",  "cas_failures",   "insert_ops",
      "insert_commits",    "insert_dups",   "insert_aborts",  "erase_ops",
      "erase_hits",        "find_ops",      "find_hits",      "batch_probe_slots",
      "batch_rotations",   "batch_handoffs", "batch_blocks",
      "tag_groups_scanned", "tag_candidates", "tag_false_positives", "steals",
      "steal_failures",    "backoff_sleeps", "growths",       "migrated_elements",
      "cuckoo_evictions",  "hopscotch_displacements", "chained_chain_links",
      "phase_transitions", "reclaim_retired", "reclaim_freed", "room_waits",
  };
  const auto i = static_cast<std::size_t>(c);
  return i < kNumCounters ? names[i] : "?";
}

// A quiescent-point reading of every counter (sum over stripes). Returned
// by snapshot() in both modes; all-zero when the layer is compiled out.
struct metrics_snapshot {
  std::array<std::uint64_t, kNumCounters> totals{};
  std::uint64_t operator[](counter c) const noexcept {
    return totals[static_cast<std::size_t>(c)];
  }
};

inline metrics_snapshot operator-(const metrics_snapshot& a, const metrics_snapshot& b) {
  metrics_snapshot d;
  for (std::size_t i = 0; i < kNumCounters; ++i) d.totals[i] = a.totals[i] - b.totals[i];
  return d;
}

#if PHCH_TELEMETRY_ENABLED

inline constexpr std::size_t kStripes = 64;  // power of two; see striped_counter

namespace detail {

struct alignas(64) counter_stripe {
  std::array<std::atomic<std::uint64_t>, kNumCounters> c{};
};

inline std::array<counter_stripe, kStripes> g_counters;

inline bool env_enabled() noexcept {
  const char* v = std::getenv("PHCH_TELEMETRY");
  return v != nullptr && *v != '\0' && *v != '0';
}

inline std::atomic<bool> g_enabled{env_enabled()};

// Scheduler workers are bound to stripe (worker_id & mask) by bind_worker;
// threads outside the pool draw a stable round-robin ticket on first use.
inline thread_local int tl_stripe = -1;

inline std::size_t stripe_index() noexcept {
  if (tl_stripe < 0) {
    static std::atomic<int> tickets{0};
    tl_stripe = tickets.fetch_add(1, std::memory_order_relaxed) &
                static_cast<int>(kStripes - 1);
  }
  return static_cast<std::size_t>(tl_stripe);
}

}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// Called by the scheduler when a thread becomes pool worker `id` so its
// telemetry lands in that worker's stripe.
inline void bind_worker(int id) noexcept {
  detail::tl_stripe = id & static_cast<int>(kStripes - 1);
}

// The calling thread's stripe (also used by the trace rings as a tid).
inline int stripe() noexcept { return static_cast<int>(detail::stripe_index()); }

// The one hot-path entry point: relaxed add on the caller's own line.
inline void count(counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  detail::g_counters[detail::stripe_index()]
      .c[static_cast<std::size_t>(c)]
      .fetch_add(n, std::memory_order_relaxed);
}

inline std::uint64_t total(counter c) noexcept {
  std::uint64_t t = 0;
  for (const auto& s : detail::g_counters)
    t += s.c[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  return t;
}

inline metrics_snapshot snapshot() noexcept {
  metrics_snapshot m;
  for (const auto& s : detail::g_counters)
    for (std::size_t i = 0; i < kNumCounters; ++i)
      m.totals[i] += s.c[i].load(std::memory_order_relaxed);
  return m;
}

inline void reset_counters() noexcept {
  for (auto& s : detail::g_counters)
    for (auto& c : s.c) c.store(0, std::memory_order_relaxed);
}

// Scratch tally for one scalar table operation: the probe loop bumps plain
// locals (register traffic, no atomics) and the destructor flushes them to
// the stripes in at most three adds. When the layer is compiled out the
// increments write dead stack slots the optimizer deletes.
struct probe_tally {
  std::uint64_t slots = 0;
  std::uint64_t cas = 0;
  std::uint64_t cas_failed = 0;
  probe_tally() = default;
  probe_tally(const probe_tally&) = delete;
  probe_tally& operator=(const probe_tally&) = delete;
  ~probe_tally() {
    if (slots != 0) count(counter::probe_slots, slots);
    if (cas != 0) count(counter::cas_attempts, cas);
    if (cas_failed != 0) count(counter::cas_failures, cas_failed);
  }
};

// Scratch tally for the tag-sidecar scans (core/simd_scan.h consumers),
// same pattern as probe_tally: plain locals, flushed on destruction.
struct tag_tally {
  std::uint64_t groups = 0;
  std::uint64_t candidates = 0;
  std::uint64_t false_positives = 0;
  tag_tally() = default;
  tag_tally(const tag_tally&) = delete;
  tag_tally& operator=(const tag_tally&) = delete;
  ~tag_tally() {
    if (groups != 0) count(counter::tag_groups_scanned, groups);
    if (candidates != 0) count(counter::tag_candidates, candidates);
    if (false_positives != 0) count(counter::tag_false_positives, false_positives);
  }
};

#else  // !PHCH_TELEMETRY_ENABLED — every entry point is an empty inline no-op

inline constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void bind_worker(int) noexcept {}
inline constexpr int stripe() noexcept { return 0; }
inline void count(counter, std::uint64_t = 1) noexcept {}
inline constexpr std::uint64_t total(counter) noexcept { return 0; }
inline metrics_snapshot snapshot() noexcept { return {}; }
inline void reset_counters() noexcept {}

struct probe_tally {
  std::uint64_t slots = 0;
  std::uint64_t cas = 0;
  std::uint64_t cas_failed = 0;
};

struct tag_tally {
  std::uint64_t groups = 0;
  std::uint64_t candidates = 0;
  std::uint64_t false_positives = 0;
};

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
