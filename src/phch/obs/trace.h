// Phase-epoch and span tracing: timestamped events in per-worker rings.
//
// Records the *rare* structural events of a run — per-table phase
// transitions (insert/erase/query epochs, fed exactly once per boundary by
// the phase_runtime transition edge, core/phase_runtime.h),
// root fork-join spans (one per top-level parallel_for / execute), growth
// migrations, and user marks — as fixed-size events in per-stripe ring
// buffers. Hot-path table operations never record events; they only bump
// counters (obs/telemetry.h). The exporters (obs/export.h) drain the rings
// into a chrome://tracing-compatible file and a JSON metrics snapshot.
//
// Concurrency: each stripe's ring has an atomic head; a recording thread
// claims a slot with a relaxed fetch_add and fills it with relaxed atomic
// stores, so the rings are data-race-free (TSan-clean) without locks. Two
// threads sharing a stripe can collide on one slot only after a full ring
// wrap; the slot then holds a mix of two events — harmless for diagnostics,
// and impossible for scheduler workers (one thread per stripe). Rings keep
// the newest kRingCapacity events per stripe; the drop count of older
// events is reported by drained_trace::dropped.
//
// Marks are quiescent-point counter snapshots with a label, taken by the
// applications at phase boundaries (e.g. remove_duplicates marks the end of
// its insert phase); consecutive mark deltas give exact per-phase counter
// sums in the metrics JSON. Marks are mutex-guarded — they are rare by
// contract.
//
// Like everything in obs/, all of this compiles to empty inline no-ops when
// PHCH_TELEMETRY is off, and honors the runtime enable flag when on.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"

namespace phch::obs {

enum class event_kind : std::uint32_t {
  phase_begin = 0,  // a = op class (0 insert, 1 erase, 2 query), b = table id,
                    // dur_ns = the table's new phase epoch (phase_runtime)
  span = 1,         // dur_ns spans the region; a, b are name-specific payload
  mark = 2,         // b = index into marks()
};

// A drained (plain, non-atomic) trace event.
struct trace_event {
  std::uint64_t ts_ns = 0;   // steady_clock, relative to trace_epoch_ns()
  std::uint64_t dur_ns = 0;  // spans only
  std::uint64_t b = 0;
  const char* name = nullptr;  // static string; never null after drain
  event_kind kind = event_kind::span;
  std::uint32_t a = 0;
  int worker = 0;  // stripe that recorded the event
};

struct drained_trace {
  std::vector<trace_event> events;  // sorted by ts_ns
  std::uint64_t dropped = 0;        // events overwritten by ring wrap
};

// A labelled quiescent-point counter snapshot (see header comment). Also
// captures the global probe-depth distribution so consecutive mark deltas
// give per-phase histogram summaries (export.h turns these into Perfetto
// counter tracks).
struct mark_entry {
  std::string label;
  std::uint64_t ts_ns = 0;
  metrics_snapshot counters;
  hist_snapshot probe_depth;
};

#if PHCH_TELEMETRY_ENABLED

inline constexpr std::size_t kRingCapacity = 1024;  // events kept per stripe

namespace detail {

// steady_now_ns lives in histogram.h's detail (the duration histograms and
// the tracer share one clock).

// Process-wide trace epoch: all event timestamps are relative to the first
// time anything asked for the clock, keeping chrome-trace numbers small.
inline std::uint64_t trace_epoch() noexcept {
  static const std::uint64_t t0 = steady_now_ns();
  return t0;
}

struct event_slot {
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint32_t> kind{0};
  std::atomic<std::uint32_t> a{0};
};

struct alignas(64) event_ring {
  std::atomic<std::uint64_t> head{0};
  std::array<event_slot, kRingCapacity> slots;
};

inline std::array<event_ring, kStripes> g_rings;

inline std::mutex g_marks_m;
inline std::vector<mark_entry> g_marks;

inline std::atomic<std::uint32_t> g_table_ids{0};

}  // namespace detail

inline std::uint64_t now_ns() noexcept {
  return detail::steady_now_ns() - detail::trace_epoch();
}

// Records one event into the calling thread's ring. `name` must point to
// storage that outlives the drain (string literals in practice).
inline void record_event(event_kind k, const char* name, std::uint32_t a,
                         std::uint64_t b, std::uint64_t ts_ns,
                         std::uint64_t dur_ns = 0) noexcept {
  if (!enabled()) return;
  detail::event_ring& r = detail::g_rings[detail::stripe_index()];
  const std::uint64_t i = r.head.fetch_add(1, std::memory_order_relaxed);
  detail::event_slot& s = r.slots[i & (kRingCapacity - 1)];
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint32_t>(k), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
}

// RAII span: captures the clock on construction (when enabled) and records
// one `span` event on destruction. a/b payload can be set before the scope
// closes.
class span {
 public:
  explicit span(const char* name) noexcept {
    if (enabled()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span() {
    if (name_ != nullptr) {
      record_event(event_kind::span, name_, a, b, t0_, now_ns() - t0_);
    }
  }
  std::uint32_t a = 0;
  std::uint64_t b = 0;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
};

// --- phase-transition seam (fed by core/phase_runtime.h) --------------------
//
// The tracer no longer keeps its own per-table "last class" atomic: the
// phase state machine in core/phase_runtime.h is the single source of
// truth, and the thread that wins its transition CAS calls
// note_phase_transition exactly once per actual class boundary. The new
// phase epoch rides in the event's dur field (unused by non-span events),
// so a drained trace is a checkable ledger: per table, epochs are distinct
// and dense up to the table's current epoch.

inline std::uint32_t next_table_id() noexcept {
  return detail::g_table_ids.fetch_add(1, std::memory_order_relaxed);
}

inline void note_phase_transition(std::uint32_t table_id, std::uint8_t op_class,
                                  std::uint64_t epoch) noexcept {
  static constexpr const char* names[3] = {"phase:insert", "phase:erase",
                                           "phase:query"};
  record_event(event_kind::phase_begin,
               op_class < 3 ? names[op_class] : "phase:?", op_class, table_id,
               now_ns(), epoch);
}

// --- marks ------------------------------------------------------------------

inline void mark(const char* label) {
  if (!enabled()) return;
  mark_entry m;
  m.label = label;
  m.ts_ns = now_ns();
  m.counters = snapshot();
  m.probe_depth = table_hist_totals(table_hist::probe_depth);
  std::uint64_t idx;
  {
    std::lock_guard<std::mutex> lock(detail::g_marks_m);
    idx = detail::g_marks.size();
    detail::g_marks.push_back(std::move(m));
  }
  record_event(event_kind::mark, label, 0, idx, now_ns());
}

inline std::vector<mark_entry> marks() {
  std::lock_guard<std::mutex> lock(detail::g_marks_m);
  return detail::g_marks;
}

// Copies out every ring's surviving events, oldest first per stripe, merged
// and sorted by timestamp. Call at a quiescent point for a consistent view.
inline drained_trace drain_trace() {
  drained_trace out;
  for (std::size_t w = 0; w < kStripes; ++w) {
    const detail::event_ring& r = detail::g_rings[w];
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
    out.dropped += head - n;
    for (std::uint64_t i = head - n; i < head; ++i) {
      const detail::event_slot& s = r.slots[i & (kRingCapacity - 1)];
      trace_event e;
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.b = s.b.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      e.kind = static_cast<event_kind>(s.kind.load(std::memory_order_relaxed));
      e.a = s.a.load(std::memory_order_relaxed);
      e.worker = static_cast<int>(w);
      if (e.name == nullptr) e.name = "?";
      out.events.push_back(e);
    }
  }
  std::sort(out.events.begin(), out.events.end(),
            [](const trace_event& x, const trace_event& y) { return x.ts_ns < y.ts_ns; });
  return out;
}

// Clears rings and marks (counters are reset separately).
inline void reset_trace() {
  for (auto& r : detail::g_rings) r.head.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(detail::g_marks_m);
  detail::g_marks.clear();
}

inline void reset() {
  reset_counters();
  reset_histograms();
  reset_trace();
}

#else  // !PHCH_TELEMETRY_ENABLED

inline constexpr std::uint64_t now_ns() noexcept { return 0; }
inline void record_event(event_kind, const char*, std::uint32_t, std::uint64_t,
                         std::uint64_t, std::uint64_t = 0) noexcept {}

class span {
 public:
  explicit span(const char*) noexcept {}
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
};

inline constexpr std::uint32_t next_table_id() noexcept { return 0; }
inline void note_phase_transition(std::uint32_t, std::uint8_t,
                                  std::uint64_t) noexcept {}

inline void mark(const char*) {}
inline std::vector<mark_entry> marks() { return {}; }
inline drained_trace drain_trace() { return {}; }
inline void reset_trace() {}
inline void reset() {}

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
