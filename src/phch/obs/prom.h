// Prometheus text-exposition writer over the obs layer.
//
// render_prometheus() serializes, into one std::string:
//  * every counter as `phch_<name>_total`,
//  * the process-global histograms (merged probe depth and op latency over
//    all tables incl. destroyed ones, room-wait / limbo-age / growth
//    durations) in the native histogram exposition (`_bucket{le=...}`
//    cumulative counts, `_sum`, `_count`),
//  * per-table gauges from the registry (capacity, size, load factor,
//    phase epoch) labelled {table="<name>"},
//  * per-table probe-depth / op-latency histograms, same labels.
//
// Bucket `le` bounds are the inclusive hist_bucket_upper() values, so the
// cumulative counts are exact (values are integers; "le" is <=). Empty
// buckets between occupied ones are skipped — cumulative counts make that
// lossless — and +Inf always closes the series. Output follows the
// text/plain; version=0.0.4 exposition format; label values escape
// backslash, double-quote, and newline per the spec.
//
// Reads are stripe sums: exact at a quiescent point, approximate
// mid-phase. tools/phch_monitor.cpp therefore rebuilds its served page at
// workload phase boundaries, so every scrape observes a consistent ledger
// (probe-depth count == find_ops + insert_ops + erase_ops).
//
// Compiled out, render_prometheus() returns a single comment line so a
// monitor binary built without telemetry still serves well-formed output.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "phch/obs/histogram.h"
#include "phch/obs/registry.h"
#include "phch/obs/telemetry.h"

namespace phch::obs {

#if PHCH_TELEMETRY_ENABLED

namespace detail {

inline void prom_append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

inline void prom_append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

// Escapes a label value per the exposition format: \\ , \" , \n.
inline void prom_append_label_value(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
}

// Emits one histogram series (no TYPE line — the caller emits that once
// per metric name). `labels` is either empty or a pre-rendered
// `key="value"` list without braces (e.g. `table="dedup"`).
inline void prom_append_histogram(std::string& out, const char* metric,
                                  const std::string& labels,
                                  const hist_snapshot& h) {
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    cum += h.buckets[i];
    out += metric;
    out += "_bucket{";
    if (!labels.empty()) {
      out += labels;
      out += ',';
    }
    out += "le=\"";
    prom_append_u64(out, hist_bucket_upper(i));
    out += "\"} ";
    prom_append_u64(out, cum);
    out += '\n';
  }
  out += metric;
  out += "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += "le=\"+Inf\"} ";
  prom_append_u64(out, h.count);
  out += '\n';
  out += metric;
  out += "_sum";
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  prom_append_u64(out, h.sum);
  out += '\n';
  out += metric;
  out += "_count";
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  prom_append_u64(out, h.count);
  out += '\n';
}

inline void prom_append_gauge(std::string& out, const char* metric,
                              const std::string& labels, double v) {
  out += metric;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  prom_append_double(out, v);
  out += '\n';
}

}  // namespace detail

inline std::string render_prometheus() {
  std::string out;
  out.reserve(16384);
  const metrics_snapshot m = snapshot();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* name = counter_name(static_cast<counter>(i));
    out += "# TYPE phch_";
    out += name;
    out += "_total counter\nphch_";
    out += name;
    out += "_total ";
    detail::prom_append_u64(out, m.totals[i]);
    out += '\n';
  }

  // Process-global distributions. The per-table kinds are merged over all
  // tables ever (live + graveyard), which is the side the ledger check
  // (probe_depth count == find+insert+erase ops) holds on.
  out += "# TYPE phch_probe_depth histogram\n";
  detail::prom_append_histogram(out, "phch_probe_depth", "",
                                table_hist_totals(table_hist::probe_depth));
  out += "# TYPE phch_op_latency_ns histogram\n";
  detail::prom_append_histogram(out, "phch_op_latency_ns", "",
                                table_hist_totals(table_hist::op_latency_ns));
  for (std::size_t i = 0; i < kNumGlobalHists; ++i) {
    const auto kind = static_cast<global_hist>(i);
    std::string name = "phch_";
    name += global_hist_name(kind);
    out += "# TYPE ";
    out += name;
    out += " histogram\n";
    detail::prom_append_histogram(out, name.c_str(), "", hist_totals(kind));
  }

  // Per-table gauges + distributions from the registry.
  const auto tables = snapshot_tables();
  if (!tables.empty()) {
    out += "# TYPE phch_table_capacity gauge\n";
    out += "# TYPE phch_table_size gauge\n";
    out += "# TYPE phch_table_load_factor gauge\n";
    out += "# TYPE phch_table_phase_epoch gauge\n";
    out += "# TYPE phch_table_probe_depth histogram\n";
    out += "# TYPE phch_table_op_latency_ns histogram\n";
  }
  for (const table_sample& t : tables) {
    std::string labels = "table=\"";
    detail::prom_append_label_value(labels, t.name);
    labels += '"';
    if (t.capacity != 0) {
      detail::prom_append_gauge(out, "phch_table_capacity", labels,
                                static_cast<double>(t.capacity));
    }
    if (t.has_size) {
      detail::prom_append_gauge(out, "phch_table_size", labels,
                                static_cast<double>(t.size));
      if (t.capacity != 0) {
        detail::prom_append_gauge(
            out, "phch_table_load_factor", labels,
            static_cast<double>(t.size) / static_cast<double>(t.capacity));
      }
    }
    if (t.has_epoch) {
      detail::prom_append_gauge(out, "phch_table_phase_epoch", labels,
                                static_cast<double>(t.phase_epoch));
    }
    if (t.has_hists) {
      detail::prom_append_histogram(out, "phch_table_probe_depth", labels,
                                    t.probe_depth);
      detail::prom_append_histogram(out, "phch_table_op_latency_ns", labels,
                                    t.op_latency_ns);
    }
  }
  return out;
}

#else  // !PHCH_TELEMETRY_ENABLED

inline std::string render_prometheus() {
  return "# phch telemetry compiled out (build with -DPHCH_TELEMETRY=ON)\n";
}

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
