// Telemetry exporters: JSON metrics snapshots and chrome://tracing files.
//
//  * write_metrics_json(path)  — counter totals, marks (with per-phase
//    counter deltas between consecutive marks), and trace bookkeeping, as a
//    single JSON object. The `table_stats`-style programmatic equivalents
//    are obs::snapshot() / obs::marks() / obs::drain_trace().
//  * write_chrome_trace(path)  — the drained event rings in the Trace Event
//    Format consumed by chrome://tracing and https://ui.perfetto.dev:
//    phase transitions as instant events, spans as complete ("X") events,
//    marks as instant events; tid = telemetry stripe (worker id).
//
// Both return false (and write nothing useful) when telemetry is compiled
// out or produced no data; callers typically gate on obs::enabled().
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "phch/obs/histogram.h"
#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"

namespace phch::obs {

// Emits {"name": value, ...} for every counter in `m` to `f` at the given
// indentation. Shared with benches that embed a snapshot in their own JSON.
inline void write_counters_json(std::FILE* f, const metrics_snapshot& m,
                                const char* indent) {
  std::fprintf(f, "{");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    std::fprintf(f, "%s\n%s  \"%s\": %" PRIu64, i == 0 ? "" : ",", indent,
                 counter_name(static_cast<counter>(i)), m.totals[i]);
  }
  std::fprintf(f, "\n%s}", indent);
}

// Emits one histogram as {"count", "sum", "max", "mean", "p50", "p90",
// "p99", "buckets": [[lower_bound, count], ...]} (occupied buckets only).
// Shared with benches that embed distribution summaries in their own JSON.
inline void write_hist_json(std::FILE* f, const hist_snapshot& h,
                            const char* indent) {
  std::fprintf(f,
               "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"max\": %" PRIu64
               ",\n%s \"mean\": %.3f, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f,"
               "\n%s \"buckets\": [",
               h.count, h.sum, h.max, indent, h.mean(), h.quantile(0.50),
               h.quantile(0.90), h.quantile(0.99), indent);
  bool first = true;
  for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    std::fprintf(f, "%s[%" PRIu64 ", %" PRIu64 "]", first ? "" : ", ",
                 hist_bucket_lower(i), h.buckets[i]);
    first = false;
  }
  std::fprintf(f, "]}");
}

#if PHCH_TELEMETRY_ENABLED

namespace detail {
// String escaping for the labels we emit (static names and mark labels
// under caller control). Escapes quotes, backslashes, and — required for
// valid JSON — control characters, with short forms for the common ones.
inline void write_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\t': std::fputs("\\t", f); break;
      case '\r': std::fputs("\\r", f); break;
      default:
        if (c < 0x20) {
          std::fprintf(f, "\\u%04x", c);
        } else {
          std::fputc(*s, f);
        }
        break;
    }
  }
}
}  // namespace detail

inline bool write_metrics_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const metrics_snapshot now = snapshot();
  std::fprintf(f, "{\n  \"telemetry\": true,\n  \"stripes\": %zu,\n", kStripes);
  std::fprintf(f, "  \"counters\": ");
  write_counters_json(f, now, "  ");
  // Distribution summaries: merged per-table histograms (live + graveyard)
  // and the process-global duration histograms.
  std::fprintf(f, ",\n  \"histograms\": {");
  std::fprintf(f, "\n    \"probe_depth\": ");
  write_hist_json(f, table_hist_totals(table_hist::probe_depth), "    ");
  std::fprintf(f, ",\n    \"op_latency_ns\": ");
  write_hist_json(f, table_hist_totals(table_hist::op_latency_ns), "    ");
  for (std::size_t i = 0; i < kNumGlobalHists; ++i) {
    const auto kind = static_cast<global_hist>(i);
    std::fprintf(f, ",\n    \"%s\": ", global_hist_name(kind));
    write_hist_json(f, hist_totals(kind), "    ");
  }
  std::fprintf(f, "\n  }");
  const auto ms = marks();
  std::fprintf(f, ",\n  \"marks\": [");
  for (std::size_t i = 0; i < ms.size(); ++i) {
    std::fprintf(f, "%s\n    {\"label\": \"", i == 0 ? "" : ",");
    detail::write_escaped(f, ms[i].label.c_str());
    std::fprintf(f, "\", \"ts_ns\": %" PRIu64 ",\n     \"counters\": ", ms[i].ts_ns);
    write_counters_json(f, ms[i].counters, "     ");
    // Delta since the previous mark: the per-phase counter sums.
    std::fprintf(f, ",\n     \"delta\": ");
    write_counters_json(
        f, i == 0 ? ms[i].counters : ms[i].counters - ms[i - 1].counters, "     ");
    std::fprintf(f, ",\n     \"probe_depth\": ");
    write_hist_json(f, ms[i].probe_depth, "     ");
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

inline bool write_chrome_trace(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const drained_trace tr = drain_trace();
  std::fprintf(f, "{\"displayTimeUnit\": \"ns\",\n \"droppedEvents\": %" PRIu64
                  ",\n \"traceEvents\": [\n",
               tr.dropped);
  bool first = true;
  // Name the "threads" (stripes) once so the viewer shows worker ids.
  for (const trace_event& e : tr.events) {
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    std::fprintf(f, "%s  {\"name\": \"", first ? "" : ",\n");
    first = false;
    detail::write_escaped(f, e.name);
    std::fprintf(f, "\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f", e.worker, ts_us);
    switch (e.kind) {
      case event_kind::span:
        std::fprintf(f, ", \"ph\": \"X\", \"dur\": %.3f",
                     static_cast<double>(e.dur_ns) / 1000.0);
        std::fprintf(f, ", \"args\": {\"a\": %u, \"b\": %" PRIu64 "}", e.a, e.b);
        break;
      case event_kind::phase_begin:
        std::fprintf(f, ", \"ph\": \"i\", \"s\": \"p\"");
        std::fprintf(f, ", \"args\": {\"op_class\": %u, \"table\": %" PRIu64 "}",
                     e.a, e.b);
        break;
      case event_kind::mark:
        std::fprintf(f, ", \"ph\": \"i\", \"s\": \"g\"");
        std::fprintf(f, ", \"args\": {\"mark\": %" PRIu64 "}", e.b);
        break;
    }
    std::fprintf(f, "}");
  }
  // Counter tracks: the probe-depth distribution summary at every mark
  // (cumulative count and tail quantiles), rendered by Perfetto as "C"
  // counter series on their own track.
  for (const mark_entry& m : marks()) {
    const double ts_us = static_cast<double>(m.ts_ns) / 1000.0;
    std::fprintf(f,
                 "%s  {\"name\": \"probe_depth\", \"ph\": \"C\", \"pid\": 1, "
                 "\"tid\": 0, \"ts\": %.3f, \"args\": {\"count\": %" PRIu64
                 ", \"p50\": %.3f, \"p99\": %.3f, \"max\": %" PRIu64 "}}",
                 first ? "" : ",\n", ts_us, m.probe_depth.count,
                 m.probe_depth.quantile(0.50), m.probe_depth.quantile(0.99),
                 m.probe_depth.max);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

#else  // !PHCH_TELEMETRY_ENABLED

inline bool write_metrics_json(const char*) { return false; }
inline bool write_chrome_trace(const char*) { return false; }

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
