// Telemetry exporters: JSON metrics snapshots and chrome://tracing files.
//
//  * write_metrics_json(path)  — counter totals, marks (with per-phase
//    counter deltas between consecutive marks), and trace bookkeeping, as a
//    single JSON object. The `table_stats`-style programmatic equivalents
//    are obs::snapshot() / obs::marks() / obs::drain_trace().
//  * write_chrome_trace(path)  — the drained event rings in the Trace Event
//    Format consumed by chrome://tracing and https://ui.perfetto.dev:
//    phase transitions as instant events, spans as complete ("X") events,
//    marks as instant events; tid = telemetry stripe (worker id).
//
// Both return false (and write nothing useful) when telemetry is compiled
// out or produced no data; callers typically gate on obs::enabled().
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "phch/obs/telemetry.h"
#include "phch/obs/trace.h"

namespace phch::obs {

// Emits {"name": value, ...} for every counter in `m` to `f` at the given
// indentation. Shared with benches that embed a snapshot in their own JSON.
inline void write_counters_json(std::FILE* f, const metrics_snapshot& m,
                                const char* indent) {
  std::fprintf(f, "{");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    std::fprintf(f, "%s\n%s  \"%s\": %" PRIu64, i == 0 ? "" : ",", indent,
                 counter_name(static_cast<counter>(i)), m.totals[i]);
  }
  std::fprintf(f, "\n%s}", indent);
}

#if PHCH_TELEMETRY_ENABLED

namespace detail {
// Minimal string escaping for the labels we emit (static names and mark
// labels under caller control).
inline void write_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') std::fputc('\\', f);
    std::fputc(*s, f);
  }
}
}  // namespace detail

inline bool write_metrics_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const metrics_snapshot now = snapshot();
  std::fprintf(f, "{\n  \"telemetry\": true,\n  \"stripes\": %zu,\n", kStripes);
  std::fprintf(f, "  \"counters\": ");
  write_counters_json(f, now, "  ");
  const auto ms = marks();
  std::fprintf(f, ",\n  \"marks\": [");
  for (std::size_t i = 0; i < ms.size(); ++i) {
    std::fprintf(f, "%s\n    {\"label\": \"", i == 0 ? "" : ",");
    detail::write_escaped(f, ms[i].label.c_str());
    std::fprintf(f, "\", \"ts_ns\": %" PRIu64 ",\n     \"counters\": ", ms[i].ts_ns);
    write_counters_json(f, ms[i].counters, "     ");
    // Delta since the previous mark: the per-phase counter sums.
    std::fprintf(f, ",\n     \"delta\": ");
    write_counters_json(
        f, i == 0 ? ms[i].counters : ms[i].counters - ms[i - 1].counters, "     ");
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

inline bool write_chrome_trace(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const drained_trace tr = drain_trace();
  std::fprintf(f, "{\"displayTimeUnit\": \"ns\",\n \"droppedEvents\": %" PRIu64
                  ",\n \"traceEvents\": [\n",
               tr.dropped);
  bool first = true;
  // Name the "threads" (stripes) once so the viewer shows worker ids.
  for (const trace_event& e : tr.events) {
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    std::fprintf(f, "%s  {\"name\": \"", first ? "" : ",\n");
    first = false;
    detail::write_escaped(f, e.name);
    std::fprintf(f, "\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f", e.worker, ts_us);
    switch (e.kind) {
      case event_kind::span:
        std::fprintf(f, ", \"ph\": \"X\", \"dur\": %.3f",
                     static_cast<double>(e.dur_ns) / 1000.0);
        std::fprintf(f, ", \"args\": {\"a\": %u, \"b\": %" PRIu64 "}", e.a, e.b);
        break;
      case event_kind::phase_begin:
        std::fprintf(f, ", \"ph\": \"i\", \"s\": \"p\"");
        std::fprintf(f, ", \"args\": {\"op_class\": %u, \"table\": %" PRIu64 "}",
                     e.a, e.b);
        break;
      case event_kind::mark:
        std::fprintf(f, ", \"ph\": \"i\", \"s\": \"g\"");
        std::fprintf(f, ", \"args\": {\"mark\": %" PRIu64 "}", e.b);
        break;
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

#else  // !PHCH_TELEMETRY_ENABLED

inline bool write_metrics_json(const char*) { return false; }
inline bool write_chrome_trace(const char*) { return false; }

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
