// Zero-overhead-when-off distribution telemetry: striped log-linear
// histograms.
//
// The counters (obs/telemetry.h) say how many events happened; this layer
// says how they are *distributed* — probe depth per operation, sampled
// operation latency, room-wait durations, limbo ages at free, and growth
// migration times. Distributions are what the paper's phase-concurrency
// argument actually claims things about (expected O(1) probes at fixed
// load, contention-free phases), and what tail-latency engineering needs.
//
// Encoding. HDR-style log-linear buckets: values 0..3 get their own bucket,
// and every octave above that is split into 2^kHistSubBits = 4 sub-buckets,
// giving <= 25% relative bucket width over the full 64-bit range in
// kHistBuckets = 252 buckets. hist_bucket / hist_bucket_lower /
// hist_bucket_upper are pure constexpr functions available in both build
// modes (the unit tests exercise them compiled-out too).
//
// Storage. A striped_histogram keeps kHistStripes = 8 cache-line-aligned
// stripes of relaxed atomic buckets; record() is two relaxed fetch_adds
// and a relaxed max-CAS on the caller's stripe. The pipelined engines do
// not even pay that: they note() samples into a block-local hist_accum
// (plain stack memory, like their other tallies) and record_block() the
// whole thing once per block. Like the counters, sums over stripes are
// exact at a quiescent point and approximate mid-phase.
//
// Per-table vs global. table_hists is the per-table block (probe depth +
// sampled op latency) embedded in the instrumented tables behind
// [[no_unique_address]]; every live block self-registers so
// table_hist_totals() can merge all of them, and a dying block folds its
// final counts into a process-wide graveyard first — global totals stay
// exact across table destruction, which is what makes the probe-depth
// ledger (sum of samples == find_ops + insert_ops + erase_ops) checkable
// after a workload's tables are gone. The global_hist histograms
// (room_wait_ns, limbo_age_ns, growth_ns) are plain process-wide singletons.
//
// Latency sampling. Timestamps are too expensive per op, so op latency is
// sampled 1-in-N per thread (N from PHCH_LATENCY_SAMPLE, default 256): a
// thread-local countdown arms a latency_sampler only when it hits zero, so
// the un-sampled hot path never reads the clock.
//
// Everything below compiles to empty inline no-ops when PHCH_TELEMETRY is
// off, exactly like the counters; instrumented classes embed table_hists
// behind [[no_unique_address]] so their compiled-out size is unchanged.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "phch/obs/telemetry.h"

namespace phch::obs {

// --- bucket math (both build modes; pure and constexpr) ---------------------

inline constexpr std::uint32_t kHistSubBits = 2;  // 4 sub-buckets per octave
inline constexpr std::uint32_t kHistSubBuckets = 1u << kHistSubBits;
// Max index is hist_bucket(UINT64_MAX) = ((63 - 2 + 1) << 2) + 3 = 251.
inline constexpr std::uint32_t kHistBuckets = 252;

constexpr std::uint32_t hist_bucket(std::uint64_t v) noexcept {
  if (v < kHistSubBuckets) return static_cast<std::uint32_t>(v);
  const auto e = static_cast<std::uint32_t>(63 - std::countl_zero(v));
  return ((e - kHistSubBits + 1) << kHistSubBits) +
         static_cast<std::uint32_t>((v >> (e - kHistSubBits)) &
                                    (kHistSubBuckets - 1));
}

// Smallest value mapping to bucket `idx` (inverse of hist_bucket).
constexpr std::uint64_t hist_bucket_lower(std::uint32_t idx) noexcept {
  if (idx < kHistSubBuckets) return idx;
  const std::uint32_t e = (idx >> kHistSubBits) + kHistSubBits - 1;
  const std::uint64_t pos = idx & (kHistSubBuckets - 1);
  return (std::uint64_t{1} << e) + (pos << (e - kHistSubBits));
}

// Largest value mapping to bucket `idx` (saturates for the top bucket).
constexpr std::uint64_t hist_bucket_upper(std::uint32_t idx) noexcept {
  return idx + 1 < kHistBuckets ? hist_bucket_lower(idx + 1) - 1
                                : ~std::uint64_t{0};
}

// A quiescent-point reading of one histogram (merged over stripes). Plain
// data in both modes; all-zero when the layer is compiled out.
struct hist_snapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;  // sum of buckets
  std::uint64_t sum = 0;    // sum of recorded values
  std::uint64_t max = 0;    // largest recorded value (exact, not bucketed)

  void merge(const hist_snapshot& o) noexcept {
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
  }

  double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Quantile estimate (q in [0,1]): linear interpolation inside the owning
  // bucket, clamped by the exact max. q=1 returns max exactly.
  double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q >= 1.0) return static_cast<double>(max);
    if (q < 0.0) q = 0.0;
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
      const double c = static_cast<double>(buckets[i]);
      if (c == 0.0) continue;
      if (cum + c > target) {
        const double lo = static_cast<double>(hist_bucket_lower(i));
        double hi = static_cast<double>(hist_bucket_upper(i));
        const double mx = static_cast<double>(max);
        if (mx < hi) hi = mx;  // top bucket can't exceed the exact max
        const double frac = (target - cum) / c;
        return lo + (hi - lo) * frac;
      }
      cum += c;
    }
    return static_cast<double>(max);
  }
};

// Per-table histogram kinds (one table_hists block per instrumented table).
enum class table_hist : std::uint8_t {
  probe_depth,     // slots inspected per op (scalar + pipelined paths)
  op_latency_ns,   // sampled wall time per scalar op (1-in-N)
  kCount
};
inline constexpr std::size_t kNumTableHists =
    static_cast<std::size_t>(table_hist::kCount);

inline const char* table_hist_name(table_hist h) noexcept {
  static constexpr const char* names[kNumTableHists] = {"probe_depth",
                                                        "op_latency_ns"};
  const auto i = static_cast<std::size_t>(h);
  return i < kNumTableHists ? names[i] : "?";
}

// Process-global histogram kinds (no per-table attribution).
enum class global_hist : std::uint8_t {
  room_wait_ns,   // wall time blocked in room_sync::enter
  limbo_age_ns,   // retire -> deleter-run age in the reclamation limbo lists
  growth_ns,      // growable_table migration duration
  kCount
};
inline constexpr std::size_t kNumGlobalHists =
    static_cast<std::size_t>(global_hist::kCount);

inline const char* global_hist_name(global_hist h) noexcept {
  static constexpr const char* names[kNumGlobalHists] = {
      "room_wait_ns", "limbo_age_ns", "growth_ns"};
  const auto i = static_cast<std::size_t>(h);
  return i < kNumGlobalHists ? names[i] : "?";
}

#if PHCH_TELEMETRY_ENABLED

inline constexpr std::size_t kHistStripes = 8;  // power of two
static_assert((kHistStripes & (kHistStripes - 1)) == 0);

namespace detail {

// Wall clock for durations (shared with the tracer; trace.h reuses this).
inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct alignas(64) hist_stripe {
  std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};
};

}  // namespace detail

class striped_histogram;

// Block-local accumulator for the pipelined engines, mirroring their plain
// local tallies (t_slots, t_hits, ...): note() is pure register/stack work,
// and the striped histogram is touched once per block at flush, not once
// per op. Without this, three relaxed RMWs per op on the shared stripes
// dominate a cache-resident find loop and blow the <5% telemetry-ON budget.
class hist_accum {
 public:
  void note(std::uint64_t v) noexcept {
    ++counts_[hist_bucket(v)];
    sum_ += v;
    if (v > max_) max_ = v;
    ++n_;
  }
  bool empty() const noexcept { return n_ == 0; }

 private:
  friend class striped_histogram;
  std::array<std::uint64_t, kHistBuckets> counts_{};
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t n_ = 0;
};

// Striped log-linear histogram: the record hot path touches only the
// caller's own stripe with relaxed atomics.
class striped_histogram {
 public:
  striped_histogram() = default;
  striped_histogram(const striped_histogram&) = delete;
  striped_histogram& operator=(const striped_histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    if (!enabled()) return;
    detail::hist_stripe& s =
        stripes_[detail::stripe_index() & (kHistStripes - 1)];
    s.buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m &&
           !s.max.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  // Merge a block-local accumulator: one fetch_add per *touched* bucket
  // instead of three atomics per sample.
  void record_block(const hist_accum& a) noexcept {
    if (!enabled() || a.n_ == 0) return;
    detail::hist_stripe& s =
        stripes_[detail::stripe_index() & (kHistStripes - 1)];
    for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
      if (a.counts_[i] != 0)
        s.buckets[i].fetch_add(a.counts_[i], std::memory_order_relaxed);
    }
    s.sum.fetch_add(a.sum_, std::memory_order_relaxed);
    std::uint64_t m = s.max.load(std::memory_order_relaxed);
    while (a.max_ > m &&
           !s.max.compare_exchange_weak(m, a.max_, std::memory_order_relaxed)) {
    }
  }

  hist_snapshot snapshot() const noexcept {
    hist_snapshot out;
    for (const auto& s : stripes_) {
      for (std::uint32_t i = 0; i < kHistBuckets; ++i) {
        const std::uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
        out.buckets[i] += c;
        out.count += c;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
    }
    return out;
  }

  void reset() noexcept {
    for (auto& s : stripes_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::hist_stripe, kHistStripes> stripes_{};
};

class table_hists;

namespace detail {

// Live-block list + graveyard. One mutex guards both (a dying block merges
// into the graveyard while still on the list, then unlinks — no window in
// which its samples are counted twice or not at all).
struct table_hist_globals {
  std::mutex m;
  std::vector<table_hists*> live;
  std::array<hist_snapshot, kNumTableHists> graveyard{};
};

inline table_hist_globals& hist_globals() noexcept {
  static table_hist_globals g;
  return g;
}

inline int latency_period() noexcept {
  static const int period = [] {
    const char* v = std::getenv("PHCH_LATENCY_SAMPLE");
    if (v == nullptr || *v == '\0') return 256;
    const long n = std::strtol(v, nullptr, 10);
    return n > 0 ? static_cast<int>(n) : 256;
  }();
  return period;
}

inline thread_local int tl_latency_countdown = 1;

}  // namespace detail

// The per-table histogram block. Instrumented tables embed one (mutable,
// [[no_unique_address]] so the compiled-out empty twin adds no size) and
// route their probe loops' depths and sampled latencies into it.
class table_hists {
 public:
  table_hists() {
    auto& g = detail::hist_globals();
    std::lock_guard<std::mutex> lock(g.m);
    g.live.push_back(this);
  }
  table_hists(const table_hists&) = delete;
  table_hists& operator=(const table_hists&) = delete;
  ~table_hists() {
    auto& g = detail::hist_globals();
    std::lock_guard<std::mutex> lock(g.m);
    for (std::size_t i = 0; i < kNumTableHists; ++i)
      g.graveyard[i].merge(h_[i].snapshot());
    for (auto it = g.live.begin(); it != g.live.end(); ++it) {
      if (*it == this) {
        g.live.erase(it);
        break;
      }
    }
  }

  void record(table_hist kind, std::uint64_t v) noexcept {
    h_[static_cast<std::size_t>(kind)].record(v);
  }

  void record_block(table_hist kind, const hist_accum& a) noexcept {
    h_[static_cast<std::size_t>(kind)].record_block(a);
  }

  hist_snapshot snapshot(table_hist kind) const noexcept {
    return h_[static_cast<std::size_t>(kind)].snapshot();
  }

  void reset() noexcept {
    for (auto& h : h_) h.reset();
  }

 private:
  std::array<striped_histogram, kNumTableHists> h_;
};

// Sum of one per-table histogram over every live table plus the graveyard:
// globally exact at a quiescent point, surviving table destruction.
inline hist_snapshot table_hist_totals(table_hist kind) {
  auto& g = detail::hist_globals();
  std::lock_guard<std::mutex> lock(g.m);
  hist_snapshot out = g.graveyard[static_cast<std::size_t>(kind)];
  for (const table_hists* t : g.live) out.merge(t->snapshot(kind));
  return out;
}

namespace detail {

inline std::array<striped_histogram, kNumGlobalHists> g_global_hists;

}  // namespace detail

inline void hist_record(global_hist kind, std::uint64_t v) noexcept {
  detail::g_global_hists[static_cast<std::size_t>(kind)].record(v);
}

inline hist_snapshot hist_totals(global_hist kind) noexcept {
  return detail::g_global_hists[static_cast<std::size_t>(kind)].snapshot();
}

// Timestamp helper for duration histograms: returns 0 when recording is
// disabled so the paired hist_record_since is a no-op and the disabled
// path never reads the clock.
inline std::uint64_t now_if_enabled() noexcept {
  return enabled() ? detail::steady_now_ns() : 0;
}

inline void hist_record_since(global_hist kind, std::uint64_t t0) noexcept {
  if (t0 == 0) return;
  hist_record(kind, detail::steady_now_ns() - t0);
}

// Clears the global histograms, every live per-table block, and the
// graveyard. Called from obs::reset(); quiescent-point use only.
inline void reset_histograms() {
  auto& g = detail::hist_globals();
  std::lock_guard<std::mutex> lock(g.m);
  for (auto& s : g.graveyard) s = hist_snapshot{};
  for (table_hists* t : g.live) t->reset();
  for (auto& h : detail::g_global_hists) h.reset();
}

// RAII probe-depth recorder. Declared *after* the op's probe_tally so it
// destructs first on every exit path and reads the tally's final slot
// count; `base` carries the pipelined/tagged prefix distance already
// travelled before the scalar continuation took over.
class probe_depth_scope {
 public:
  probe_depth_scope(table_hists* h, const probe_tally& t,
                    std::uint64_t base = 0) noexcept
      : h_(h), t_(&t), base_(base) {}
  probe_depth_scope(const probe_depth_scope&) = delete;
  probe_depth_scope& operator=(const probe_depth_scope&) = delete;
  ~probe_depth_scope() {
    if (h_ != nullptr) h_->record(table_hist::probe_depth, base_ + t_->slots);
  }

 private:
  table_hists* h_;
  const probe_tally* t_;
  std::uint64_t base_;
};

// RAII 1-in-N op-latency sampler: arms (and reads the clock) only when the
// thread-local countdown expires, so the common path is one decrement.
class latency_sampler {
 public:
  explicit latency_sampler(table_hists& h) noexcept {
    if (!enabled()) return;
    if (--detail::tl_latency_countdown > 0) return;
    detail::tl_latency_countdown = detail::latency_period();
    h_ = &h;
    t0_ = detail::steady_now_ns();
  }
  latency_sampler(const latency_sampler&) = delete;
  latency_sampler& operator=(const latency_sampler&) = delete;
  ~latency_sampler() {
    if (h_ != nullptr)
      h_->record(table_hist::op_latency_ns, detail::steady_now_ns() - t0_);
  }

 private:
  table_hists* h_ = nullptr;
  std::uint64_t t0_ = 0;
};

#else  // !PHCH_TELEMETRY_ENABLED — empty inline no-ops, zero-size members

class hist_accum {
 public:
  void note(std::uint64_t) noexcept {}
  bool empty() const noexcept { return true; }
};

class striped_histogram {
 public:
  striped_histogram() = default;
  striped_histogram(const striped_histogram&) = delete;
  striped_histogram& operator=(const striped_histogram&) = delete;
  void record(std::uint64_t) noexcept {}
  void record_block(const hist_accum&) noexcept {}
  hist_snapshot snapshot() const noexcept { return {}; }
  void reset() noexcept {}
};

class table_hists {
 public:
  table_hists() = default;
  table_hists(const table_hists&) = delete;
  table_hists& operator=(const table_hists&) = delete;
  void record(table_hist, std::uint64_t) noexcept {}
  void record_block(table_hist, const hist_accum&) noexcept {}
  hist_snapshot snapshot(table_hist) const noexcept { return {}; }
  void reset() noexcept {}
};

inline hist_snapshot table_hist_totals(table_hist) { return {}; }
inline void hist_record(global_hist, std::uint64_t) noexcept {}
inline hist_snapshot hist_totals(global_hist) noexcept { return {}; }
inline constexpr std::uint64_t now_if_enabled() noexcept { return 0; }
inline void hist_record_since(global_hist, std::uint64_t) noexcept {}
inline void reset_histograms() {}

class probe_depth_scope {
 public:
  probe_depth_scope(table_hists*, const probe_tally&,
                    std::uint64_t = 0) noexcept {}
  probe_depth_scope(const probe_depth_scope&) = delete;
  probe_depth_scope& operator=(const probe_depth_scope&) = delete;
};

class latency_sampler {
 public:
  explicit latency_sampler(table_hists&) noexcept {}
  latency_sampler(const latency_sampler&) = delete;
  latency_sampler& operator=(const latency_sampler&) = delete;
};

#endif  // PHCH_TELEMETRY_ENABLED

}  // namespace phch::obs
