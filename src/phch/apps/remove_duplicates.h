// Remove duplicates (§5): insert every element of the input into a table in
// parallel, then return ELEMENTS(). With a deterministic table, the output
// *order* is the same on every run — the property that distinguishes this
// from merely returning the right set.
#pragma once

#include <vector>

#include "phch/parallel/parallel_for.h"

namespace phch::apps {

// Table is any of the phch tables; its traits' value_type must match In.
template <typename Table, typename In>
std::vector<typename Table::value_type> remove_duplicates(const std::vector<In>& input,
                                                          std::size_t table_capacity) {
  Table table(table_capacity);
  parallel_for(0, input.size(), [&](std::size_t i) { table.insert(input[i]); });
  return table.elements();
}

}  // namespace phch::apps
