// Remove duplicates (§5): insert every element of the input into a table in
// parallel, then return ELEMENTS(). With a deterministic table, the output
// *order* is the same on every run — the property that distinguishes this
// from merely returning the right set.
#pragma once

#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/table_concepts.h"
#include "phch/obs/registry.h"
#include "phch/obs/trace.h"

namespace phch::apps {

// Table is any phase_table whose value_type matches In. The whole input is
// one insert phase, routed through the batched engine: linear-probing
// tables get software-pipelined multi-probe inserts (core/batch_ops.h),
// others a plain parallel insert loop. Under PHCH_TELEMETRY the two phases
// (insert, elements) are bracketed by marks, so the metrics JSON reports
// per-phase counter deltas, and each phase is a trace span.
template <phase_table Table, typename In>
std::vector<typename Table::value_type> remove_duplicates(const std::vector<In>& input,
                                                          std::size_t table_capacity) {
  Table table(table_capacity);
  const obs::scoped_registration reg("dedup", table);
  obs::mark("dedup/start");
  {
    obs::span sp("dedup:insert");
    sp.b = input.size();
    insert_batch(table, input);
  }
  obs::mark("dedup/inserted");
  std::vector<typename Table::value_type> out;
  {
    obs::span sp("dedup:elements");
    out = table.elements();
    sp.b = out.size();
  }
  obs::mark("dedup/elements");
  return out;
}

}  // namespace phch::apps
