// Spanning forest (§5) by deterministic reservations [Blelloch et al.,
// PPoPP'12]: edges carry their input index as priority; each round, every
// undecided edge finds its endpoints' components and reserves *both* roots
// with WRITEMIN of its priority. An edge commits if it holds the
// reservation on at least one of its roots, linking that root under the
// other. Each root is linked by at most one edge (its unique winner), and a
// cycle of same-round links would require a descending cycle of priorities,
// so the forest stays acyclic. Losers retry next round; edges whose
// endpoints share a component are dropped.
//
// Three variants, as compared in Table 8:
//   serial_spanning_forest   sequential union-find sweep
//   array_spanning_forest    reservations in a direct-addressed array R[v]
//   hash_spanning_forest     reservations in a phase-concurrent hash table
//                            keyed by root id (value = edge priority,
//                            combine = min) — avoids vertex relabeling when
//                            ids are sparse; deterministic when the table is
//
// The two parallel variants produce identical forests on every run and
// thread count (when the hash table is deterministic); the serial greedy
// forest can differ in which cycle edges it rejects but spans the same
// components.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "phch/graph/graph.h"
#include "phch/graph/union_find.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/sort.h"

namespace phch::apps {

inline std::vector<std::size_t> serial_spanning_forest(std::size_t n,
                                                       const std::vector<graph::edge>& edges) {
  graph::union_find uf(n);
  std::vector<std::size_t> forest;
  forest.reserve(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::uint32_t ru = uf.find(edges[i].u);
    const std::uint32_t rv = uf.find(edges[i].v);
    if (ru != rv) {
      uf.link(std::max(ru, rv), std::min(ru, rv));
      forest.push_back(i);
    }
  }
  return forest;
}

namespace detail {
// One reservation/commit round over the undecided edges (indices `live`).
// reserve(root, p) WRITEMINs priority p into the root's cell; winner(root,
// p) tests it; unreserve(root) clears it (no-op for per-round tables).
// Appends committed edge indices to `forest` and compacts `live`.
template <typename Reserve, typename Winner, typename Unreserve>
void sf_round(graph::union_find& uf, std::vector<std::size_t>& live,
              const std::vector<graph::edge>& edges, std::vector<std::size_t>& forest,
              Reserve&& reserve, Winner&& winner, Unreserve&& unreserve) {
  const std::size_t m = live.size();
  std::vector<std::uint32_t> ru(m);
  std::vector<std::uint32_t> rv(m);
  // Find phase (concurrent finds with path compression).
  parallel_for(0, m, [&](std::size_t i) {
    ru[i] = uf.find(edges[live[i]].u);
    rv[i] = uf.find(edges[live[i]].v);
  });
  // Reserve phase: WRITEMIN the edge's priority into both roots.
  parallel_for(0, m, [&](std::size_t i) {
    if (ru[i] != rv[i]) {
      reserve(ru[i], live[i]);
      reserve(rv[i], live[i]);
    }
  });
  // Commit phase: link a root this edge won under the other endpoint's
  // root. Exactly one winner per root; a same-round cycle would need a
  // strictly decreasing priority cycle, which cannot exist.
  std::vector<std::uint8_t> joined(m, 0);
  parallel_for(0, m, [&](std::size_t i) {
    if (ru[i] == rv[i]) return;
    if (winner(ru[i], live[i])) {
      uf.link(ru[i], rv[i]);
      joined[i] = 1;
    } else if (winner(rv[i], live[i])) {
      uf.link(rv[i], ru[i]);
      joined[i] = 1;
    }
  });
  // Clear this round's reservations using the cached roots (fresh finds
  // would chase pointers updated by the links above and miss cells).
  parallel_for(0, m, [&](std::size_t i) {
    if (ru[i] != rv[i]) {
      unreserve(ru[i]);
      unreserve(rv[i]);
    }
  });
  auto added = pack(
      m, [&](std::size_t i) { return joined[i] == 1; },
      [&](std::size_t i) { return live[i]; });
  forest.insert(forest.end(), added.begin(), added.end());
  live = pack(
      m, [&](std::size_t i) { return joined[i] == 0 && ru[i] != rv[i]; },
      [&](std::size_t i) { return live[i]; });
}
}  // namespace detail

// Array-based variant: reservations live in R[0..n), reset after each round.
inline std::vector<std::size_t> array_spanning_forest(std::size_t n,
                                                      const std::vector<graph::edge>& edges) {
  constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();
  graph::union_find uf(n);
  std::vector<std::size_t> reservations(n, kFree);
  std::vector<std::size_t> live = iota(edges.size());
  std::vector<std::size_t> forest;
  while (!live.empty()) {
    detail::sf_round(
        uf, live, edges, forest,
        [&](std::uint32_t root, std::size_t p) { write_min(&reservations[root], p); },
        [&](std::uint32_t root, std::size_t p) { return reservations[root] == p; },
        [&](std::uint32_t root) { reservations[root] = kFree; });
  }
  parallel_sort(forest);
  return forest;
}

// Hash-table variant: a fresh phase-concurrent table per round maps root id
// -> min edge priority. Table must use packed_pair_entry<combine_min>-style
// traits (32-bit key, 32-bit value, min-combining).
template <typename Table>
std::vector<std::size_t> hash_spanning_forest(std::size_t n,
                                              const std::vector<graph::edge>& edges,
                                              double space_mult = 2.0) {
  using traits = typename Table::traits;
  graph::union_find uf(n);
  std::vector<std::size_t> live = iota(edges.size());
  std::vector<std::size_t> forest;
  while (!live.empty()) {
    // Reservations are keyed by component roots: at most min(n, 2 * live)
    // distinct keys, so cap the table accordingly (paper: twice the number
    // of vertices).
    const std::size_t max_roots = std::min<std::size_t>(n, 2 * live.size());
    Table table(static_cast<std::size_t>(space_mult * (max_roots + 2)));
    detail::sf_round(
        uf, live, edges, forest,
        [&](std::uint32_t root, std::size_t p) {
          table.insert(traits::make(root, static_cast<std::uint32_t>(p)));
        },
        [&](std::uint32_t root, std::size_t p) {
          const auto stored = table.find(root);
          return !traits::is_empty(stored) &&
                 traits::value_of(stored) == static_cast<std::uint32_t>(p);
        },
        [](std::uint32_t) {});  // fresh table each round; nothing to clear
  }
  parallel_sort(forest);
  return forest;
}

}  // namespace phch::apps
