// Edge contraction (§5): relabel edge endpoints through a label array R and
// return the unique relabeled edges, combining the data on duplicate edges
// with a commutative function (+ here, as in a graph-partitioning
// coarsening step; the paper's Table 6 setup).
//
// The timed kernel inserts each relabeled edge (when its endpoints differ)
// into a hash table keyed by the endpoint pair, with the weight as value and
// combine = +, then calls ELEMENTS(). With linearHash-D the key-value pair
// moves during insertion, so combining needs a full-entry double-word CAS;
// with linearHash-ND entries never move and the weight is merged with a
// hardware xadd — exactly the difference the paper measures.
//
// The label array comes from a maximal matching computed by deterministic
// reservations (each edge WRITEMINs its priority into both endpoints; an
// edge that wins both is matched), the standard coarsening step.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/graph/graph.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"
#include "phch/parallel/speculative_for.h"

namespace phch::apps {

// Maximal matching by deterministic reservations (speculative_for with the
// PPoPP'12 reserve/commit protocol); returns R with R[v] = min(v,
// partner(v)) (unmatched vertices map to themselves).
namespace detail {
struct matching_step {
  const std::vector<graph::edge>& edges;
  std::vector<reservation>& cells;
  std::vector<std::uint8_t>& matched;
  std::vector<graph::vertex_id>& partner;

  bool reserve(std::size_t i) {
    const auto& e = edges[i];
    if (e.u == e.v || matched[e.u] || matched[e.v]) return false;  // drop
    cells[e.u].reserve(i);
    cells[e.v].reserve(i);
    return true;
  }

  bool commit(std::size_t i) {
    const auto& e = edges[i];
    // Release every cell this iterate still holds; match on a double win.
    if (cells[e.v].check(i)) {
      cells[e.v].reset();
      if (cells[e.u].check_reset(i)) {
        matched[e.u] = 1;
        matched[e.v] = 1;
        partner[e.u] = e.v;
        partner[e.v] = e.u;
        return true;
      }
    } else {
      cells[e.u].check_reset(i);
    }
    return false;
  }
};
}  // namespace detail

inline std::vector<graph::vertex_id> matching_labels(std::size_t n,
                                                     const std::vector<graph::edge>& edges) {
  std::vector<reservation> cells(n);
  std::vector<std::uint8_t> matched(n, 0);
  std::vector<graph::vertex_id> partner = tabulate(
      n, [](std::size_t v) { return static_cast<graph::vertex_id>(v); });
  detail::matching_step step{edges, cells, matched, partner};
  speculative_for(step, 0, edges.size());
  return tabulate(n, [&](std::size_t v) {
    return std::min(static_cast<graph::vertex_id>(v), partner[v]);
  });
}

// Canonical 64-bit key for an undirected relabeled edge.
inline std::uint64_t edge_key(graph::vertex_id a, graph::vertex_id b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// The timed kernel: insert relabeled edges with additive weight combining,
// return the unique contracted edge list via ELEMENTS(). Table must store
// kv64 entries with combine = + (pair_entry<combine_add> traits).
template <typename Table>
std::vector<kv64> contract_edges(const std::vector<graph::weighted_edge>& edges,
                                 const std::vector<graph::vertex_id>& labels,
                                 std::size_t table_capacity) {
  Table table(table_capacity);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    const graph::vertex_id nu = labels[edges[i].u];
    const graph::vertex_id nv = labels[edges[i].v];
    if (nu != nv) table.insert(kv64{edge_key(nu, nv), edges[i].w});
  });
  return table.elements();
}

}  // namespace phch::apps
