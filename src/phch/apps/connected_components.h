// Connected components by repeated edge contraction — the §5 use case the
// paper cites from Shun, Dhulipala & Blelloch (SPAA'14 [31]), where the
// deterministic hash table removes duplicate edges on contraction.
//
// Each round:
//   1. compute a maximal matching on the remaining edges (deterministic
//      reservations) and merge matched pairs into supervertices;
//   2. relabel every edge through union-find roots and insert the distinct
//      relabeled edges into a phase-concurrent hash table (keyed by the
//      canonical endpoint pair);
//   3. ELEMENTS() yields the contracted edge list for the next round.
// Rounds repeat until no edges remain; union-find roots then name the
// components. With a deterministic table the per-round edge orders — and
// thus the whole execution — are identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "phch/apps/edge_contraction.h"
#include "phch/core/table_common.h"
#include "phch/graph/graph.h"
#include "phch/graph/union_find.h"
#include "phch/parallel/primitives.h"

namespace phch::apps {

struct cc_stats {
  std::size_t rounds = 0;
  std::size_t num_components = 0;
};

// Returns the component label (root id) of every vertex; stats optionally.
template <typename Table>
std::vector<std::uint32_t> connected_components(std::size_t n,
                                                const std::vector<graph::edge>& edges,
                                                cc_stats* stats = nullptr) {
  graph::union_find uf(n);
  std::vector<graph::edge> work = filter(edges, [](const graph::edge& e) {
    return e.u != e.v;
  });

  std::size_t rounds = 0;
  while (!work.empty()) {
    ++rounds;
    // 1. maximal matching on the current (super)graph; merge pairs.
    const auto labels = matching_labels(n, work);
    parallel_for(0, n, [&](std::size_t v) {
      // labels[v] = min(v, partner): link the larger id under the smaller.
      if (labels[v] != static_cast<graph::vertex_id>(v)) {
        uf.link(static_cast<std::uint32_t>(v), labels[v]);
      }
    });
    // 2. relabel through roots and deduplicate via the hash table.
    std::vector<std::uint32_t> ru(work.size());
    std::vector<std::uint32_t> rv(work.size());
    parallel_for(0, work.size(), [&](std::size_t i) {
      ru[i] = uf.find(work[i].u);
      rv[i] = uf.find(work[i].v);
    });
    Table table(round_up_pow2(2 * work.size() + 16));
    parallel_for(0, work.size(), [&](std::size_t i) {
      if (ru[i] != rv[i]) {
        table.insert(kv64{edge_key(ru[i], rv[i]), 1});
      }
    });
    // 3. the contracted edge list, deterministically ordered.
    const auto packed = table.elements();
    work = tabulate(packed.size(), [&](std::size_t i) {
      return graph::edge{static_cast<graph::vertex_id>(packed[i].k >> 32),
                         static_cast<graph::vertex_id>(packed[i].k)};
    });
    // Progress guarantee: matching_labels always matches at least one edge
    // of any nonempty graph, so supervertex count strictly decreases.
  }

  std::vector<std::uint32_t> comp(n);
  parallel_for(0, n, [&](std::size_t v) {
    comp[v] = uf.find(static_cast<std::uint32_t>(v));
  });
  if (stats) {
    stats->rounds = rounds;
    std::vector<std::uint8_t> is_root(n);
    parallel_for(0, n, [&](std::size_t v) { is_root[v] = comp[v] == v; });
    stats->num_components = reduce(std::size_t{0}, n, std::size_t{0}, std::plus<>{},
                                   [&](std::size_t v) { return std::size_t{is_root[v]}; });
  }
  return comp;
}

// Sequential reference.
inline std::vector<std::uint32_t> serial_connected_components(
    std::size_t n, const std::vector<graph::edge>& edges) {
  graph::union_find uf(n);
  for (const auto& e : edges) {
    const auto a = uf.find(e.u);
    const auto b = uf.find(e.v);
    if (a != b) uf.link(std::max(a, b), std::min(a, b));
  }
  std::vector<std::uint32_t> comp(n);
  for (std::size_t v = 0; v < n; ++v) comp[v] = uf.find(static_cast<std::uint32_t>(v));
  return comp;
}

}  // namespace phch::apps
