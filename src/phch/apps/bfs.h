// Breadth-first search (§5, Figure 2): three implementations compared by
// the paper in Table 7.
//   serial_bfs  classic queue-based BFS (baseline row "serial")
//   array_bfs   deterministic parallel BFS that computes each next frontier
//               through a pre-allocated candidate array + pack (row "array")
//   hash_bfs    Figure 2: WRITEMIN chooses each vertex's parent, winners
//               insert the neighbor into a phase-concurrent table, and the
//               next frontier is ELEMENTS() — deterministic when the table
//               is (row "linearHash-D" etc.)
//
// All three return the parent array (parent[v] = v for the root,
// kNotReached for unreachable vertices); the deterministic versions produce
// the same parent array as each other on every run and thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "phch/core/batch_ops.h"
#include "phch/core/table_common.h"
#include "phch/core/table_concepts.h"
#include "phch/graph/graph.h"
#include "phch/obs/registry.h"
#include "phch/obs/trace.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"

namespace phch::apps {

inline constexpr std::int64_t kNotReached = std::numeric_limits<std::int64_t>::max();

// Parent encoding during the search: unvisited = kNotReached; candidate
// parent = nonnegative vertex id (WRITEMIN keeps the smallest); visited =
// -(parent) - 1, which is negative and therefore never displaced by a
// later WRITEMIN. decode() recovers the parent id.
inline std::int64_t encode_visited(std::int64_t parent) { return -parent - 1; }
inline std::int64_t decode_parent(std::int64_t stored) {
  return stored < 0 ? -stored - 1 : stored;
}

inline std::vector<std::int64_t> serial_bfs(const graph::csr_graph& g,
                                            graph::vertex_id root) {
  std::vector<std::int64_t> parents(g.num_vertices(), kNotReached);
  parents[root] = encode_visited(root);
  std::queue<graph::vertex_id> q;
  q.push(root);
  while (!q.empty()) {
    const graph::vertex_id v = q.front();
    q.pop();
    g.for_each_neighbor(v, [&](graph::vertex_id w) {
      if (parents[w] == kNotReached) {
        parents[w] = encode_visited(v);
        q.push(w);
      }
    });
  }
  return parents;
}

namespace detail {
// Shared round structure: WRITEMIN every frontier->neighbor candidate, then
// hand each winning (parent, child) pair to sink(child). Returns nothing;
// the caller materializes the next frontier its own way.
template <typename Sink>
void relax_frontier(const graph::csr_graph& g, const std::vector<graph::vertex_id>& frontier,
                    std::vector<std::int64_t>& parents,
                    const std::vector<std::size_t>& frontier_offsets, Sink&& sink) {
  // Phase 1: compete for parenthood with WRITEMIN (deterministic winner:
  // the smallest frontier vertex id adjacent to each unvisited neighbor).
  parallel_for(0, frontier.size(), [&](std::size_t i) {
    const graph::vertex_id v = frontier[i];
    g.for_each_neighbor(v, [&](graph::vertex_id w) {
      write_min(&parents[w], static_cast<std::int64_t>(v));
    });
  });
  // Phase 2: winners claim their children.
  parallel_for(0, frontier.size(), [&](std::size_t i) {
    const graph::vertex_id v = frontier[i];
    std::size_t slot = frontier_offsets.empty() ? 0 : frontier_offsets[i];
    g.for_each_neighbor(v, [&](graph::vertex_id w) {
      if (parents[w] == static_cast<std::int64_t>(v)) {
        sink(w, slot);
      }
      ++slot;
    });
  });
}
}  // namespace detail

// Array-based deterministic BFS: the next frontier is collected into a
// pre-sized candidate array indexed by (frontier position, neighbor index),
// then packed — the paper's "first method" in §5.
inline std::vector<std::int64_t> array_bfs(const graph::csr_graph& g,
                                           graph::vertex_id root) {
  constexpr graph::vertex_id kHole = std::numeric_limits<graph::vertex_id>::max();
  std::vector<std::int64_t> parents(g.num_vertices(), kNotReached);
  parents[root] = encode_visited(root);
  std::vector<graph::vertex_id> frontier{root};
  while (!frontier.empty()) {
    std::vector<std::size_t> offsets = tabulate(
        frontier.size(), [&](std::size_t i) { return g.degree(frontier[i]); });
    const std::size_t total = scan_add_inplace(offsets);
    std::vector<graph::vertex_id> candidates(total, kHole);
    detail::relax_frontier(g, frontier, parents, offsets,
                           [&](graph::vertex_id w, std::size_t slot) {
                             candidates[slot] = w;
                           });
    frontier = filter(candidates, [&](graph::vertex_id w) { return w != kHole; });
    parallel_for(0, frontier.size(), [&](std::size_t i) {
      const graph::vertex_id w = frontier[i];
      parents[w] = encode_visited(parents[w]);
    });
  }
  return parents;
}

// Hash-table BFS (Figure 2). Table must store graph::vertex_id keys
// (int_entry<std::uint32_t> traits). A fresh table sized to the frontier's
// total degree (times `space_mult`) is created per level, as in §6.
//
// The frontier expansion is batch-shaped: winners are first collected into
// the pre-sized candidate array (as in array_bfs), then inserted as one
// batch through the software-pipelined engine, which overlaps the probe
// cache misses of up to PHCH_BATCH_WIDTH inserts per worker. The inserted
// key *set* per level is identical to inserting from inside the relax loop,
// so the frontier (= ELEMENTS()) and the resulting parent array are
// unchanged — determinism is the table's, not the insertion order's.
template <phase_table Table>
std::vector<std::int64_t> hash_bfs(const graph::csr_graph& g, graph::vertex_id root,
                                   double space_mult = 1.0) {
  constexpr graph::vertex_id kHole = std::numeric_limits<graph::vertex_id>::max();
  std::vector<std::int64_t> parents(g.num_vertices(), kNotReached);
  parents[root] = encode_visited(root);
  std::vector<graph::vertex_id> frontier{root};
  obs::mark("bfs/start");
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    // One span per BFS level: a = level number, b = frontier size. The
    // per-level table create/insert/elements cycle shows up as the span's
    // children in a chrome trace.
    obs::span level_span("bfs:level");
    level_span.a = level++;
    level_span.b = frontier.size();
    std::vector<std::size_t> offsets = tabulate(
        frontier.size(), [&](std::size_t i) { return g.degree(frontier[i]); });
    const std::size_t total_degree = scan_add_inplace(offsets);
    Table table(
        round_up_pow2(static_cast<std::size_t>(space_mult * 2.0 * (total_degree + 2))));
    // Each level's fresh table registers under the same name; a metrics
    // scrape mid-search sees the level currently expanding.
    const obs::scoped_registration reg("bfs", table);
    std::vector<graph::vertex_id> candidates(total_degree, kHole);
    detail::relax_frontier(g, frontier, parents, offsets,
                           [&](graph::vertex_id w, std::size_t slot) {
                             candidates[slot] = w;
                           });
    const std::vector<graph::vertex_id> winners =
        filter(candidates, [&](graph::vertex_id w) { return w != kHole; });
    insert_batch(table, winners);
    frontier = table.elements();
    parallel_for(0, frontier.size(), [&](std::size_t i) {
      const graph::vertex_id w = frontier[i];
      parents[w] = encode_visited(parents[w]);
    });
  }
  obs::mark("bfs/done");
  return parents;
}

}  // namespace phch::apps
