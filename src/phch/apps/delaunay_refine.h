// Delaunay refinement (§5): repeatedly insert circumcenters of "bad"
// (skinny) triangles until all triangles meet the quality bound, keeping
// the set of pending bad triangles in a phase-concurrent hash table.
//
// Round structure (deterministic reservations, as in the paper):
//   1. bad = table.ELEMENTS()                  [timed: hash portion]
//   2. each bad triangle locates its circumcenter's cavity and WRITEMINs
//      its *index in the bad sequence* into every affected triangle
//      (cavity + outer ring);
//   3. triangles whose affected set is fully self-marked are winners; new
//      triangle/point slots are assigned by prefix sums over the winners,
//      so ids are deterministic;
//   4. winners retriangulate; newly created bad triangles are inserted
//      into a fresh table                      [timed: hash portion].
//
// Because ELEMENTS() of a deterministic table is order-deterministic, the
// priorities — and hence the final mesh — are identical on every run and
// thread count. With a non-deterministic table the refinement still
// terminates with a valid mesh, but the mesh differs run to run.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "phch/core/table_common.h"
#include "phch/geometry/delaunay.h"
#include "phch/parallel/atomics.h"
#include "phch/parallel/primitives.h"

namespace phch::apps {

struct refine_stats {
  std::size_t rounds = 0;
  std::size_t points_added = 0;
  std::size_t final_bad = 0;      // refinable bad triangles left (nonzero only
                                  // when the point cap stopped the run)
  std::size_t unrefinable = 0;    // skinny triangles whose circumcenter falls
                                  // outside the mesh (no boundary handling)
  double hash_seconds = 0;        // time in ELEMENTS() + inserts (Table 4)
};

namespace detail {
inline bool is_bad_triangle(const geometry::mesh& m, geometry::tri_id t,
                            double ratio_bound) {
  if (!m.is_real(t)) return false;
  const auto& tr = m.triangles()[static_cast<std::size_t>(t)];
  return geometry::radius_edge_ratio(m.pt(tr.v[0]), m.pt(tr.v[1]), m.pt(tr.v[2])) >
         ratio_bound;
}
}  // namespace detail

// Refines `m` in place until no bad triangles remain or `max_new_points`
// circumcenters have been added. `min_angle_deg` sets the quality bound
// (Ruppert: ratio bound = 1 / (2 sin alpha); alpha <= ~26 degrees is
// guaranteed to terminate). Table stores triangle ids
// (int_entry<std::uint64_t> traits). A `Clock` functor (returning seconds)
// lets the benchmark attribute the hash-table portion.
template <typename Table, typename Clock>
refine_stats refine(geometry::mesh& m, double min_angle_deg, std::size_t max_new_points,
                    Clock&& now) {
  const double ratio_bound = 1.0 / (2.0 * std::sin(min_angle_deg * M_PI / 180.0));
  refine_stats stats;

  // Seed table with the initial bad triangles.
  auto initial_bad = pack_index(m.triangles().size(), [&](std::size_t t) {
    return detail::is_bad_triangle(m, static_cast<geometry::tri_id>(t), ratio_bound);
  });
  auto table = std::make_unique<Table>(round_up_pow2(2 * initial_bad.size() + 4));
  {
    const double t0 = now();
    parallel_for(0, initial_bad.size(), [&](std::size_t i) {
      table->insert(static_cast<std::uint64_t>(initial_bad[i]));
    });
    stats.hash_seconds += now() - t0;
  }

  // Reservation slots per triangle (grown lazily), UINT64_MAX = free.
  constexpr std::uint64_t kFree = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> reserved;

  for (;;) {
    const double t0 = now();
    std::vector<std::uint64_t> bad = table->elements();
    stats.hash_seconds += now() - t0;
    if (bad.empty()) break;
    ++stats.rounds;
    if (stats.points_added >= max_new_points) {
      stats.final_bad = bad.size();
      break;
    }

    reserved.assign(m.triangles().size(), kFree);

    // Phase A (read-only on the mesh): compute each bad triangle's cavity
    // and affected set, and reserve with WRITEMIN of its sequence index.
    const std::size_t nb = bad.size();
    std::vector<geometry::point2d> centers(nb);
    std::vector<std::vector<geometry::tri_id>> cavities(nb);
    std::vector<std::vector<geometry::tri_id>> affected(nb);
    std::vector<std::uint8_t> still_bad(nb, 0);
    parallel_for(0, nb, [&](std::size_t i) {
      const auto t = static_cast<geometry::tri_id>(bad[i]);
      if (!detail::is_bad_triangle(m, t, ratio_bound)) return;  // stale entry
      const auto& tr = m.triangles()[static_cast<std::size_t>(t)];
      centers[i] = geometry::circumcenter(m.pt(tr.v[0]), m.pt(tr.v[1]), m.pt(tr.v[2]));
      if (!m.insertable(centers[i])) {
        // Circumcenter outside the mesh (boundary-adjacent sliver); cannot
        // be refined without boundary handling — drop it.
        fetch_add(&stats.unrefinable, std::size_t{1});
        return;
      }
      still_bad[i] = 1;
      const geometry::tri_id t0c = m.locate(centers[i], t);
      cavities[i] = m.cavity_of(centers[i], t0c);
      affected[i] = cavities[i];
      for (const geometry::tri_id c : cavities[i]) {
        const auto& ct = m.triangles()[static_cast<std::size_t>(c)];
        for (const geometry::tri_id out : ct.nbr) {
          if (out == geometry::kNoTri) continue;
          bool inside = false;
          for (const geometry::tri_id cc : cavities[i]) inside |= cc == out;
          if (!inside) affected[i].push_back(out);
        }
      }
      for (const geometry::tri_id a : affected[i]) {
        write_min(&reserved[static_cast<std::size_t>(a)], static_cast<std::uint64_t>(i));
      }
    });

    // Phase B: winners own every triangle they affect.
    std::vector<std::uint8_t> winner(nb, 0);
    parallel_for(0, nb, [&](std::size_t i) {
      if (!still_bad[i]) return;
      for (const geometry::tri_id a : affected[i]) {
        if (reserved[static_cast<std::size_t>(a)] != static_cast<std::uint64_t>(i)) return;
      }
      winner[i] = 1;
    });

    // Phase C: deterministic slot assignment. Winner i creates
    // boundary_size(cavity_i) triangles and one point.
    std::vector<std::size_t> tri_counts(nb, 0);
    std::vector<std::size_t> pt_counts(nb, 0);
    parallel_for(0, nb, [&](std::size_t i) {
      if (winner[i]) {
        tri_counts[i] = m.cavity_boundary_size(cavities[i]);
        pt_counts[i] = 1;
      }
    });
    const std::size_t tri_base = m.triangles().size();
    const std::size_t pt_base = m.points().size();
    const std::size_t new_tris = scan_add_inplace(tri_counts);
    const std::size_t new_pts = scan_add_inplace(pt_counts);
    if (new_pts == 0) {
      // Every entry was stale or unrefinable; nothing left to do. (A
      // still-bad refinable entry always yields at least one winner — the
      // minimum-index one owns everything it marked.)
      break;
    }
    m.triangles().resize(tri_base + new_tris);
    m.points().resize(pt_base + new_pts);

    // Phase D: winners carve (mutually disjoint affected sets => safe).
    std::vector<std::vector<geometry::tri_id>> created(nb);
    parallel_for(0, nb, [&](std::size_t i) {
      if (!winner[i]) return;
      const auto pv = static_cast<std::int32_t>(pt_base + pt_counts[i]);
      m.points()[static_cast<std::size_t>(pv)] = centers[i];
      created[i] = m.carve_and_fill(pv, cavities[i], tri_base + tri_counts[i]);
    });
    stats.points_added += new_pts;

    // Phase E: gather the next round's bad triangles — new triangles from
    // winners, plus losers' targets, which stay bad and must be retried.
    auto next = std::make_unique<Table>(
        round_up_pow2(2 * (new_tris + nb) + 4));
    const double t1 = now();
    parallel_for(0, nb, [&](std::size_t i) {
      if (winner[i]) {
        for (const geometry::tri_id nt : created[i]) {
          if (detail::is_bad_triangle(m, nt, ratio_bound)) {
            next->insert(static_cast<std::uint64_t>(nt));
          }
        }
      } else if (still_bad[i]) {
        // Loser: its triangle may have been destroyed by a winner; re-check.
        const auto t = static_cast<geometry::tri_id>(bad[i]);
        if (detail::is_bad_triangle(m, t, ratio_bound)) {
          next->insert(static_cast<std::uint64_t>(t));
        }
      }
    });
    stats.hash_seconds += now() - t1;
    table = std::move(next);
  }
  return stats;
}

}  // namespace phch::apps
