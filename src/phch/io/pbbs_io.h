// File I/O in the PBBS benchmark-suite formats, so inputs and outputs can be
// exchanged with the original Problem Based Benchmark Suite tooling:
//
//   sequenceInt          "sequenceInt\n" then one integer per line
//   sequenceDouble       "sequenceDouble\n" then one double per line
//   EdgeArray            "EdgeArray\n" then "u v" per line
//   WeightedEdgeArray    "WeightedEdgeArray\n" then "u v w" per line
//   pbbs_sequencePoint2d "pbbs_sequencePoint2d\n" then "x y" per line
//
// Readers validate the header and throw std::runtime_error with the file
// name on malformed input. Writers are deterministic (fixed formatting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/geometry/point.h"
#include "phch/graph/graph.h"

namespace phch::io {

// --- sequences ---------------------------------------------------------------
void write_int_seq(const std::string& path, const std::vector<std::uint64_t>& seq);
std::vector<std::uint64_t> read_int_seq(const std::string& path);

void write_pair_seq(const std::string& path, const std::vector<kv64>& seq);
std::vector<kv64> read_pair_seq(const std::string& path);

// --- graphs ------------------------------------------------------------------
void write_edges(const std::string& path, const std::vector<graph::edge>& edges);
std::vector<graph::edge> read_edges(const std::string& path);

void write_weighted_edges(const std::string& path,
                          const std::vector<graph::weighted_edge>& edges);
std::vector<graph::weighted_edge> read_weighted_edges(const std::string& path);

// --- geometry ----------------------------------------------------------------
void write_points(const std::string& path, const std::vector<geometry::point2d>& pts);
std::vector<geometry::point2d> read_points(const std::string& path);

// --- plain text (suffix-tree corpora) ----------------------------------------
void write_text(const std::string& path, const std::string& text);
std::string read_text(const std::string& path);

}  // namespace phch::io
