#include "phch/io/pbbs_io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace phch::io {

namespace {

struct file_closer {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using unique_file = std::unique_ptr<std::FILE, file_closer>;

unique_file open_or_throw(const std::string& path, const char* mode) {
  unique_file f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("phch::io: cannot open " + path);
  return f;
}

void expect_header(std::FILE* f, const char* header, const std::string& path) {
  char buf[64] = {};
  if (std::fscanf(f, "%63s", buf) != 1 || std::string(buf) != header) {
    throw std::runtime_error("phch::io: " + path + ": expected header '" + header +
                             "', got '" + buf + "'");
  }
}

[[noreturn]] void malformed(const std::string& path) {
  throw std::runtime_error("phch::io: " + path + ": malformed record");
}

}  // namespace

// --- sequences ---------------------------------------------------------------

void write_int_seq(const std::string& path, const std::vector<std::uint64_t>& seq) {
  auto f = open_or_throw(path, "w");
  std::fprintf(f.get(), "sequenceInt\n");
  for (const auto v : seq) std::fprintf(f.get(), "%" PRIu64 "\n", v);
}

std::vector<std::uint64_t> read_int_seq(const std::string& path) {
  auto f = open_or_throw(path, "r");
  expect_header(f.get(), "sequenceInt", path);
  std::vector<std::uint64_t> out;
  std::uint64_t v = 0;
  for (;;) {
    const int got = std::fscanf(f.get(), "%" SCNu64, &v);
    if (got == 1) {
      out.push_back(v);
    } else if (got == EOF && std::feof(f.get())) {
      return out;
    } else {
      malformed(path);
    }
  }
}

void write_pair_seq(const std::string& path, const std::vector<kv64>& seq) {
  auto f = open_or_throw(path, "w");
  std::fprintf(f.get(), "sequenceIntPair\n");
  for (const auto& p : seq) std::fprintf(f.get(), "%" PRIu64 " %" PRIu64 "\n", p.k, p.v);
}

std::vector<kv64> read_pair_seq(const std::string& path) {
  auto f = open_or_throw(path, "r");
  expect_header(f.get(), "sequenceIntPair", path);
  std::vector<kv64> out;
  kv64 p{0, 0};
  for (;;) {
    const int got = std::fscanf(f.get(), "%" SCNu64 " %" SCNu64, &p.k, &p.v);
    if (got == 2) {
      out.push_back(p);
    } else if (got == EOF && std::feof(f.get())) {
      return out;
    } else {
      malformed(path);  // junk or a truncated record
    }
  }
}

// --- graphs ------------------------------------------------------------------

void write_edges(const std::string& path, const std::vector<graph::edge>& edges) {
  auto f = open_or_throw(path, "w");
  std::fprintf(f.get(), "EdgeArray\n");
  for (const auto& e : edges) std::fprintf(f.get(), "%u %u\n", e.u, e.v);
}

std::vector<graph::edge> read_edges(const std::string& path) {
  auto f = open_or_throw(path, "r");
  expect_header(f.get(), "EdgeArray", path);
  std::vector<graph::edge> out;
  graph::edge e{0, 0};
  for (;;) {
    const int got = std::fscanf(f.get(), "%u %u", &e.u, &e.v);
    if (got == 2) {
      out.push_back(e);
    } else if (got == EOF && std::feof(f.get())) {
      return out;
    } else {
      malformed(path);  // junk or a truncated record
    }
  }
}

void write_weighted_edges(const std::string& path,
                          const std::vector<graph::weighted_edge>& edges) {
  auto f = open_or_throw(path, "w");
  std::fprintf(f.get(), "WeightedEdgeArray\n");
  for (const auto& e : edges) std::fprintf(f.get(), "%u %u %u\n", e.u, e.v, e.w);
}

std::vector<graph::weighted_edge> read_weighted_edges(const std::string& path) {
  auto f = open_or_throw(path, "r");
  expect_header(f.get(), "WeightedEdgeArray", path);
  std::vector<graph::weighted_edge> out;
  graph::weighted_edge e{0, 0, 0};
  for (;;) {
    const int got = std::fscanf(f.get(), "%u %u %u", &e.u, &e.v, &e.w);
    if (got == 3) {
      out.push_back(e);
    } else if (got == EOF && std::feof(f.get())) {
      return out;
    } else {
      malformed(path);
    }
  }
}

// --- geometry ----------------------------------------------------------------

void write_points(const std::string& path, const std::vector<geometry::point2d>& pts) {
  auto f = open_or_throw(path, "w");
  std::fprintf(f.get(), "pbbs_sequencePoint2d\n");
  for (const auto& p : pts) std::fprintf(f.get(), "%.17g %.17g\n", p.x, p.y);
}

std::vector<geometry::point2d> read_points(const std::string& path) {
  auto f = open_or_throw(path, "r");
  expect_header(f.get(), "pbbs_sequencePoint2d", path);
  std::vector<geometry::point2d> out;
  geometry::point2d p{0, 0};
  for (;;) {
    const int got = std::fscanf(f.get(), "%lf %lf", &p.x, &p.y);
    if (got == 2) {
      out.push_back(p);
    } else if (got == EOF && std::feof(f.get())) {
      return out;
    } else {
      malformed(path);
    }
  }
}

// --- text --------------------------------------------------------------------

void write_text(const std::string& path, const std::string& text) {
  auto f = open_or_throw(path, "wb");
  if (std::fwrite(text.data(), 1, text.size(), f.get()) != text.size()) {
    throw std::runtime_error("phch::io: short write to " + path);
  }
}

std::string read_text(const std::string& path) {
  auto f = open_or_throw(path, "rb");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) malformed(path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::string out(static_cast<std::size_t>(size), '\0');
  if (std::fread(out.data(), 1, out.size(), f.get()) != out.size()) malformed(path);
  return out;
}

}  // namespace phch::io
