#include "phch/geometry/predicates.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace phch::geometry {

namespace {
constexpr double kEps = 2.220446049250313e-16;  // double machine epsilon
// Forward error coefficients in the style of Shewchuk's static filters.
constexpr double kOrientBound = (3.0 + 16.0 * kEps) * kEps;
constexpr double kInCircleBound = (10.0 + 96.0 * kEps) * kEps;

double orient2d_exactish(point2d a, point2d b, point2d c) {
  const long double acx = static_cast<long double>(a.x) - c.x;
  const long double bcx = static_cast<long double>(b.x) - c.x;
  const long double acy = static_cast<long double>(a.y) - c.y;
  const long double bcy = static_cast<long double>(b.y) - c.y;
  return static_cast<double>(acx * bcy - acy * bcx);
}

double in_circle_exactish(point2d a, point2d b, point2d c, point2d d) {
  const long double adx = static_cast<long double>(a.x) - d.x;
  const long double ady = static_cast<long double>(a.y) - d.y;
  const long double bdx = static_cast<long double>(b.x) - d.x;
  const long double bdy = static_cast<long double>(b.y) - d.y;
  const long double cdx = static_cast<long double>(c.x) - d.x;
  const long double cdy = static_cast<long double>(c.y) - d.y;
  const long double ad2 = adx * adx + ady * ady;
  const long double bd2 = bdx * bdx + bdy * bdy;
  const long double cd2 = cdx * cdx + cdy * cdy;
  const long double det = adx * (bdy * cd2 - cdy * bd2) -
                          ady * (bdx * cd2 - cdx * bd2) +
                          ad2 * (bdx * cdy - cdx * bdy);
  return static_cast<double>(det);
}
}  // namespace

double orient2d(point2d a, point2d b, point2d c) {
  const double detl = (a.x - c.x) * (b.y - c.y);
  const double detr = (a.y - c.y) * (b.x - c.x);
  const double det = detl - detr;
  const double mag = std::fabs(detl) + std::fabs(detr);
  if (std::fabs(det) > kOrientBound * mag) return det;
  return orient2d_exactish(a, b, c);
}

double in_circle(point2d a, point2d b, point2d c, point2d d) {
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;
  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;
  const double det = adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2) +
                     ad2 * (bdx * cdy - cdx * bdy);
  const double mag = (std::fabs(adx) + std::fabs(ady)) * (std::fabs(bd2) + std::fabs(cd2)) +
                     (std::fabs(bdx) + std::fabs(bdy)) * (std::fabs(ad2) + std::fabs(cd2)) +
                     (std::fabs(cdx) + std::fabs(cdy)) * (std::fabs(ad2) + std::fabs(bd2));
  if (std::fabs(det) > kInCircleBound * mag) return det;
  return in_circle_exactish(a, b, c, d);
}

point2d circumcenter(point2d a, point2d b, point2d c) {
  const point2d ab = b - a;
  const point2d ac = c - a;
  const double d = 2.0 * cross(ab, ac);
  const double ab2 = norm2(ab);
  const double ac2 = norm2(ac);
  const double ux = (ac.y * ab2 - ab.y * ac2) / d;
  const double uy = (ab.x * ac2 - ac.x * ab2) / d;
  return point2d{a.x + ux, a.y + uy};
}

double min_angle(point2d a, point2d b, point2d c) {
  auto angle_at = [](point2d p, point2d q, point2d r) {
    const point2d u = q - p;
    const point2d v = r - p;
    const double cosv = dot(u, v) / std::sqrt(norm2(u) * norm2(v));
    return std::acos(std::clamp(cosv, -1.0, 1.0));
  };
  return std::min({angle_at(a, b, c), angle_at(b, c, a), angle_at(c, a, b)});
}

double radius_edge_ratio(point2d a, point2d b, point2d c) {
  const double la = dist(b, c);
  const double lb = dist(a, c);
  const double lc = dist(a, b);
  const double shortest = std::min({la, lb, lc});
  const double area2 = std::fabs(orient2d(a, b, c));  // twice the area
  if (area2 == 0.0) return std::numeric_limits<double>::infinity();
  // circumradius = (la * lb * lc) / (4 * area) = (la*lb*lc) / (2 * area2)
  const double r = la * lb * lc / (2.0 * area2);
  return r / shortest;
}

}  // namespace phch::geometry
