// 2D geometry basics for the Delaunay substrate.
#pragma once

#include <cmath>

namespace phch::geometry {

struct point2d {
  double x;
  double y;

  friend point2d operator-(point2d a, point2d b) { return {a.x - b.x, a.y - b.y}; }
  friend point2d operator+(point2d a, point2d b) { return {a.x + b.x, a.y + b.y}; }
  friend bool operator==(point2d a, point2d b) { return a.x == b.x && a.y == b.y; }
};

inline double dot(point2d a, point2d b) { return a.x * b.x + a.y * b.y; }
inline double cross(point2d a, point2d b) { return a.x * b.y - a.y * b.x; }
inline double norm2(point2d a) { return dot(a, a); }
inline double dist(point2d a, point2d b) { return std::sqrt(norm2(a - b)); }

}  // namespace phch::geometry
