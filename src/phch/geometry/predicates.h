// Geometric predicates for Delaunay triangulation.
//
// orient2d / in_circle are evaluated in double precision with a static
// forward-error filter; when the result magnitude is below the error bound
// the predicate is re-evaluated in extended (long double) precision. This is
// not a full Shewchuk adaptive-precision implementation, but it is reliable
// for the randomized point sets used here (uniform square and Kuzmin disc),
// where exactly-degenerate configurations do not arise; see DESIGN.md.
#pragma once

#include "phch/geometry/point.h"

namespace phch::geometry {

// > 0 if (a, b, c) make a counter-clockwise turn, < 0 clockwise, 0 collinear.
double orient2d(point2d a, point2d b, point2d c);

// > 0 if d lies strictly inside the circumcircle of CCW triangle (a, b, c),
// < 0 strictly outside, 0 on the circle.
double in_circle(point2d a, point2d b, point2d c, point2d d);

// Circumcenter of (a, b, c); the triangle must not be degenerate.
point2d circumcenter(point2d a, point2d b, point2d c);

// Minimum angle of the triangle, in radians.
double min_angle(point2d a, point2d b, point2d c);

// Circumradius-to-shortest-edge ratio (Ruppert's quality measure; a
// triangle is "skinny" when this exceeds 1 / (2 sin alpha)).
double radius_edge_ratio(point2d a, point2d b, point2d c);

}  // namespace phch::geometry
