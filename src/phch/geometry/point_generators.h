// Point-set generators matching the paper's Delaunay inputs:
//   2D-cube    n points uniform in the unit square (PBBS "2DinCube")
//   2D-kuzmin  n points from the Kuzmin distribution — a radially symmetric
//              density with a very dense core (PBBS "2Dkuzmin"), stressing
//              non-uniform triangle sizes
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "phch/geometry/point.h"
#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

namespace phch::geometry {

inline std::vector<point2d> cube2d_points(std::size_t n, std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0xc0beULL));
  return tabulate(n, [&](std::size_t i) {
    return point2d{r.fork(i).ith_double(0), r.fork(i).ith_double(1)};
  });
}

inline std::vector<point2d> kuzmin_points(std::size_t n, std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0x4422ULL));
  return tabulate(n, [&](std::size_t i) {
    const rng ri = r.fork(i);
    // Inverse-CDF sampling of the Kuzmin radial profile
    // F(r) = 1 - 1/sqrt(1 + r^2)  =>  r = sqrt(1/(1-u)^2 - 1).
    const double u = ri.ith_double(0) * 0.999999;  // avoid the infinite tail
    const double rad = std::sqrt(1.0 / ((1.0 - u) * (1.0 - u)) - 1.0);
    const double theta = ri.ith_double(1) * 2.0 * M_PI;
    return point2d{rad * std::cos(theta), rad * std::sin(theta)};
  });
}

}  // namespace phch::geometry
