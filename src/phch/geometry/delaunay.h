// Delaunay triangulation substrate: a triangle mesh with neighbor pointers
// and an incremental Bowyer–Watson triangulator (walking point location +
// cavity retriangulation). Used to build the inputs for the Delaunay
// refinement application and by the refinement itself.
//
// A large enclosing "super-triangle" of three artificial vertices bounds the
// mesh, so every insertion point is interior and walks never fall off the
// hull. Triangles incident to super-vertices are excluded from quality
// measurements (is_real()).
//
// The triangle array is append-only: dead triangles are flagged, never
// reused, so triangle ids are stable — which the refinement's deterministic
// reservations rely on.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "phch/geometry/point.h"
#include "phch/geometry/predicates.h"

namespace phch::geometry {

using tri_id = std::int64_t;
inline constexpr tri_id kNoTri = -1;

struct triangle {
  std::array<std::int32_t, 3> v;    // vertex indices, CCW
  std::array<tri_id, 3> nbr;        // nbr[i] shares the edge opposite v[i]
  bool alive = true;
};

class mesh {
 public:
  // Builds the Delaunay triangulation of `points` (plus 3 super-vertices)
  // by randomized incremental insertion.
  static mesh delaunay(const std::vector<point2d>& points);

  const std::vector<point2d>& points() const noexcept { return points_; }
  const std::vector<triangle>& triangles() const noexcept { return tris_; }
  std::vector<point2d>& points() noexcept { return points_; }
  std::vector<triangle>& triangles() noexcept { return tris_; }

  std::size_t num_super_vertices() const noexcept { return 3; }
  bool is_super_vertex(std::int32_t v) const noexcept { return v < 3; }

  // Alive and not incident to a super-vertex.
  bool is_real(tri_id t) const noexcept {
    const triangle& tr = tris_[static_cast<std::size_t>(t)];
    return tr.alive && !is_super_vertex(tr.v[0]) && !is_super_vertex(tr.v[1]) &&
           !is_super_vertex(tr.v[2]);
  }

  point2d pt(std::int32_t v) const noexcept {
    return points_[static_cast<std::size_t>(v)];
  }

  // True iff p lies strictly inside the super-triangle (insertable: walks
  // cannot fall off the mesh). Circumcenters of nearly-degenerate triangles
  // can land outside; the refinement skips those.
  bool insertable(point2d p) const noexcept {
    return orient2d(pt(0), pt(1), p) > 0 && orient2d(pt(1), pt(2), p) > 0 &&
           orient2d(pt(2), pt(0), p) > 0;
  }

  // Walks from `hint` to the live triangle containing p (ties on edges go
  // to either side consistently). Read-only; safe to run concurrently with
  // other reads.
  tri_id locate(point2d p, tri_id hint) const;

  // All live triangles whose circumcircle strictly contains p, found by
  // search from the containing triangle `t0`. Read-only. Result order is a
  // deterministic function of (mesh, t0).
  std::vector<tri_id> cavity_of(point2d p, tri_id t0) const;

  // Inserts p (already appended to points() by the caller as index pv) by
  // carving `cavity` and fanning new triangles to pv. New triangles are
  // written at indices [slot, slot + cavity boundary size); the caller must
  // have resized triangles() to make room and guarantee exclusive access to
  // the cavity and its outer ring. Returns the ids of the new triangles.
  // (Serial construction passes slot = tris.size() after growing by the
  // boundary size; the parallel refinement allocates slots by prefix sums.)
  std::vector<tri_id> carve_and_fill(std::int32_t pv, const std::vector<tri_id>& cavity,
                                     std::size_t slot);

  // Number of boundary edges of a cavity (= number of new triangles its
  // retriangulation creates).
  std::size_t cavity_boundary_size(const std::vector<tri_id>& cavity) const;

  // Sanity checks used by tests: local Delaunay property and neighbor
  // pointer symmetry over all live triangles.
  bool check_valid() const;

 private:
  std::vector<point2d> points_;
  std::vector<triangle> tris_;

  bool in_cavity(const std::vector<tri_id>& cavity, tri_id t) const {
    for (const tri_id c : cavity)
      if (c == t) return true;
    return false;
  }
};

// --- implementation -------------------------------------------------------

inline tri_id mesh::locate(point2d p, tri_id hint) const {
  tri_id cur = hint;
  const std::size_t max_steps = 4 * tris_.size() + 64;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const triangle& t = tris_[static_cast<std::size_t>(cur)];
    bool moved = false;
    for (int i = 0; i < 3; ++i) {
      const point2d a = pt(t.v[(i + 1) % 3]);
      const point2d b = pt(t.v[(i + 2) % 3]);
      if (orient2d(a, b, p) < 0) {  // p strictly right of directed edge a->b
        const tri_id next = t.nbr[static_cast<std::size_t>(i)];
        if (next == kNoTri) throw std::runtime_error("phch: locate fell off the mesh");
        cur = next;
        moved = true;
        break;
      }
    }
    if (!moved) return cur;
  }
  throw std::runtime_error("phch: locate did not converge");
}

inline std::vector<tri_id> mesh::cavity_of(point2d p, tri_id t0) const {
  std::vector<tri_id> cavity;
  std::vector<tri_id> stack{t0};
  cavity.push_back(t0);
  while (!stack.empty()) {
    const tri_id t = stack.back();
    stack.pop_back();
    const triangle& tr = tris_[static_cast<std::size_t>(t)];
    for (int i = 0; i < 3; ++i) {
      const tri_id nb = tr.nbr[static_cast<std::size_t>(i)];
      if (nb == kNoTri || in_cavity(cavity, nb)) continue;
      const triangle& nt = tris_[static_cast<std::size_t>(nb)];
      if (in_circle(pt(nt.v[0]), pt(nt.v[1]), pt(nt.v[2]), p) > 0) {
        cavity.push_back(nb);
        stack.push_back(nb);
      }
    }
  }
  return cavity;
}

inline std::size_t mesh::cavity_boundary_size(const std::vector<tri_id>& cavity) const {
  std::size_t edges = 0;
  for (const tri_id t : cavity) {
    const triangle& tr = tris_[static_cast<std::size_t>(t)];
    for (int i = 0; i < 3; ++i) {
      if (!in_cavity(cavity, tr.nbr[static_cast<std::size_t>(i)])) ++edges;
    }
  }
  return edges;
}

inline std::vector<tri_id> mesh::carve_and_fill(std::int32_t pv,
                                                const std::vector<tri_id>& cavity,
                                                std::size_t slot) {
  // Collect boundary edges (a, b) in triangle CCW orientation together with
  // the outside neighbor across each.
  struct boundary_edge {
    std::int32_t a;
    std::int32_t b;
    tri_id outside;
  };
  std::vector<boundary_edge> boundary;
  boundary.reserve(cavity.size() + 2);
  for (const tri_id t : cavity) {
    const triangle& tr = tris_[static_cast<std::size_t>(t)];
    for (int i = 0; i < 3; ++i) {
      const tri_id nb = tr.nbr[static_cast<std::size_t>(i)];
      if (!in_cavity(cavity, nb)) {
        boundary.push_back(
            boundary_edge{tr.v[(i + 1) % 3], tr.v[(i + 2) % 3], nb});
      }
    }
  }
  // New triangle T_e = (a, b, pv) for each boundary edge; neighbors:
  //   across (a, b)  -> the old outside triangle
  //   across (b, pv) -> the new triangle whose boundary edge starts at b
  //   across (pv, a) -> the new triangle whose boundary edge ends at a
  std::vector<tri_id> fresh(boundary.size());
  for (std::size_t e = 0; e < boundary.size(); ++e)
    fresh[e] = static_cast<tri_id>(slot + e);
  auto starting_at = [&](std::int32_t vtx) {
    for (std::size_t e = 0; e < boundary.size(); ++e)
      if (boundary[e].a == vtx) return fresh[e];
    throw std::runtime_error("phch: open cavity boundary");
  };
  auto ending_at = [&](std::int32_t vtx) {
    for (std::size_t e = 0; e < boundary.size(); ++e)
      if (boundary[e].b == vtx) return fresh[e];
    throw std::runtime_error("phch: open cavity boundary");
  };
  for (std::size_t e = 0; e < boundary.size(); ++e) {
    const boundary_edge& be = boundary[e];
    triangle nt;
    nt.v = {be.a, be.b, pv};
    nt.nbr = {starting_at(be.b), ending_at(be.a), be.outside};
    nt.alive = true;
    tris_[static_cast<std::size_t>(fresh[e])] = nt;
    // Re-aim the outside triangle's pointer from the dead cavity triangle.
    if (be.outside != kNoTri) {
      triangle& out = tris_[static_cast<std::size_t>(be.outside)];
      for (int i = 0; i < 3; ++i) {
        if (in_cavity(cavity, out.nbr[static_cast<std::size_t>(i)])) {
          // The edge shared with the cavity is (a, b) reversed in `out`.
          const std::int32_t oa = out.v[(i + 1) % 3];
          const std::int32_t ob = out.v[(i + 2) % 3];
          if (oa == be.b && ob == be.a) {
            out.nbr[static_cast<std::size_t>(i)] = fresh[e];
            break;
          }
        }
      }
    }
  }
  for (const tri_id t : cavity) tris_[static_cast<std::size_t>(t)].alive = false;
  return fresh;
}

inline mesh mesh::delaunay(const std::vector<point2d>& points) {
  mesh m;
  // Bounding box -> super-triangle comfortably containing all points.
  double lo_x = 0;
  double hi_x = 1;
  double lo_y = 0;
  double hi_y = 1;
  if (!points.empty()) {
    lo_x = hi_x = points[0].x;
    lo_y = hi_y = points[0].y;
    for (const point2d& p : points) {
      lo_x = std::min(lo_x, p.x);
      hi_x = std::max(hi_x, p.x);
      lo_y = std::min(lo_y, p.y);
      hi_y = std::max(hi_y, p.y);
    }
  }
  const double w = std::max({hi_x - lo_x, hi_y - lo_y, 1.0});
  const double cx = (lo_x + hi_x) / 2;
  const double cy = (lo_y + hi_y) / 2;
  m.points_.push_back(point2d{cx - 30 * w, cy - 20 * w});
  m.points_.push_back(point2d{cx + 30 * w, cy - 20 * w});
  m.points_.push_back(point2d{cx, cy + 40 * w});
  m.points_.reserve(points.size() + 3);
  for (const point2d& p : points) m.points_.push_back(p);

  triangle root;
  root.v = {0, 1, 2};
  root.nbr = {kNoTri, kNoTri, kNoTri};
  root.alive = true;
  m.tris_.push_back(root);

  tri_id hint = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::int32_t pv = static_cast<std::int32_t>(i + 3);
    const point2d p = m.points_[static_cast<std::size_t>(pv)];
    if (!m.tris_[static_cast<std::size_t>(hint)].alive) hint = static_cast<tri_id>(m.tris_.size() - 1);
    const tri_id t0 = m.locate(p, hint);
    const std::vector<tri_id> cavity = m.cavity_of(p, t0);
    const std::size_t nb = m.cavity_boundary_size(cavity);
    const std::size_t slot = m.tris_.size();
    m.tris_.resize(slot + nb);
    const auto fresh = m.carve_and_fill(pv, cavity, slot);
    hint = fresh.empty() ? hint : fresh[0];
  }
  return m;
}

inline bool mesh::check_valid() const {
  for (std::size_t t = 0; t < tris_.size(); ++t) {
    const triangle& tr = tris_[t];
    if (!tr.alive) continue;
    if (orient2d(pt(tr.v[0]), pt(tr.v[1]), pt(tr.v[2])) <= 0) return false;
    for (int i = 0; i < 3; ++i) {
      const tri_id nb = tr.nbr[static_cast<std::size_t>(i)];
      if (nb == kNoTri) continue;
      const triangle& nt = tris_[static_cast<std::size_t>(nb)];
      if (!nt.alive) return false;
      bool back = false;
      for (int j = 0; j < 3; ++j)
        back |= nt.nbr[static_cast<std::size_t>(j)] == static_cast<tri_id>(t);
      if (!back) return false;
      // Local Delaunay: the apex of the neighbor must not lie strictly
      // inside this triangle's circumcircle.
      for (int j = 0; j < 3; ++j) {
        const std::int32_t apex = nt.v[static_cast<std::size_t>(j)];
        if (apex != tr.v[0] && apex != tr.v[1] && apex != tr.v[2]) {
          if (in_circle(pt(tr.v[0]), pt(tr.v[1]), pt(tr.v[2]), pt(apex)) > 0)
            return false;
        }
      }
    }
  }
  return true;
}

}  // namespace phch::geometry
