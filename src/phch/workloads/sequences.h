// PBBS-style input sequence generators used by the paper's evaluation (§6):
//
//   randomSeq-int       n uniform integers in [1, n]
//   randomSeq-pairInt   n uniform (key, value) integer pairs
//   exptSeq-int         n integers from an exponential distribution (many
//                       duplicates; stresses collision/contention handling)
//   exptSeq-pairInt     exponential keys with attached values
//
// (trigramSeq / trigramSeq-pairInt live in trigram.h.)
//
// All generators are deterministic functions of (n, seed): parallel loops
// draw from a counter-based rng, so regenerating an input always produces
// identical data regardless of thread count.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "phch/core/entry_traits.h"
#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

namespace phch::workloads {

// n uniform keys in [1, n] (0 and max are reserved by the entry traits).
inline std::vector<std::uint64_t> random_int_seq(std::size_t n, std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0x5eedULL));
  return tabulate(n, [&](std::size_t i) { return 1 + r.ith_rand(i, n); });
}

// n uniform (key, value) pairs with keys in [1, n].
inline std::vector<kv64> random_pair_seq(std::size_t n, std::uint64_t seed = 0) {
  const rng rk(hash64(seed ^ 0x5eedULL));
  const rng rv(hash64(seed ^ 0x7a19e37ULL));
  return tabulate(n, [&](std::size_t i) {
    return kv64{1 + rk.ith_rand(i, n), 1 + rv.ith_rand(i, n)};
  });
}

// n keys from a (discretized) exponential distribution over [1, n]: key
// k = 1 + floor(-mean * ln(1 - u)). With mean = n / 2^8 roughly n/40 keys
// are distinct — the heavy duplication the paper uses to test high
// collision rates.
inline std::vector<std::uint64_t> expt_int_seq(std::size_t n, std::uint64_t seed = 0) {
  const rng r(hash64(seed ^ 0xe4b7ULL));
  const double mean = static_cast<double>(n) / 256.0 + 1.0;
  return tabulate(n, [&](std::size_t i) {
    const double u = r.ith_double(i);
    const double x = -mean * std::log1p(-u);
    const std::uint64_t k = 1 + static_cast<std::uint64_t>(x);
    return k < n ? k : static_cast<std::uint64_t>(n);
  });
}

// Exponential keys with uniform values attached.
inline std::vector<kv64> expt_pair_seq(std::size_t n, std::uint64_t seed = 0) {
  const auto keys = expt_int_seq(n, seed);
  const rng rv(hash64(seed ^ 0xabcdULL));
  return tabulate(n, [&](std::size_t i) { return kv64{keys[i], 1 + rv.ith_rand(i, n)}; });
}

}  // namespace phch::workloads
