#include "phch/workloads/trigram.h"

#include <array>
#include <cstring>

#include "phch/parallel/parallel_for.h"
#include "phch/parallel/primitives.h"
#include "phch/utils/rand.h"

namespace phch::workloads {

namespace {

// Seed prose for the trigram model. The generator only consumes letter
// statistics, so any few kilobytes of ordinary English works; this text was
// written for this repository.
constexpr const char* kSeedText =
    "the quick growth of parallel machines has made shared memory programs a "
    "common way to use many cores at once and with that growth came a steady "
    "demand for data structures that behave the same way on every run so that "
    "a programmer can test and debug a program once and trust the result on "
    "any schedule of threads the hash table is among the most used of these "
    "structures because it offers constant time insertion search and removal "
    "of keys and because so many algorithms need to gather a set of items "
    "without duplicates or to map names to values in this work we consider "
    "tables that keep their layout independent of the order in which the "
    "operations arrive which means that reading out the contents gives the "
    "same sequence every time such a table makes a whole class of parallel "
    "algorithms deterministic from graph search to mesh refinement to the "
    "removal of duplicate records the idea rests on a simple rule when two "
    "keys want the same cell the one with higher priority takes it and the "
    "other moves along the probe path this rule gives a unique stable layout "
    "for any set of keys no matter how the inserts interleave and a matching "
    "rule for removal fills each hole with the proper later element so the "
    "layout stays canonical the cost of keeping this order is small a few "
    "extra swaps during insertion and a short scan during removal while the "
    "gain is large since any program built on the table inherits the same "
    "answer on one thread or eighty the experiments in the original study "
    "ran on a machine with forty cores and showed that the ordered table "
    "kept pace with the fastest unordered tables of its day while none of "
    "those could promise a stable layout the lesson carries over to modern "
    "machines where the memory system dominates cost and a single cache miss "
    "per operation is the budget one must meet to stay competitive with a "
    "plain scatter of writes into an array a careful design keeps most "
    "probes inside one cache line and lets the table meet that budget the "
    "applications tell the rest of the story finding the unique words in a "
    "stream refining a triangle mesh until every angle is wide enough "
    "building the tree of suffixes of a long text joining the edges of a "
    "shrinking graph walking a graph level by level and growing a spanning "
    "forest all of these want a place to pour items from many threads and "
    "then read them back in a fixed order and all of them run almost as "
    "fast on the ordered table as on the unordered one which is the point "
    "of the whole exercise determinism can be close to free if the data "
    "structure is built for it";

constexpr int kAlpha = 27;  // 'a'..'z' plus word boundary at index 26
constexpr int kBoundary = 26;
constexpr int kMaxWord = 16;

int char_class(char c) {
  return (c >= 'a' && c <= 'z') ? c - 'a' : kBoundary;
}

// Cumulative trigram distribution: for each (c1, c2) context, cum[x] is the
// cumulative count of successor class x, used for inverse-CDF sampling.
struct trigram_model {
  std::array<std::array<std::array<std::uint32_t, kAlpha>, kAlpha>, kAlpha> cum{};

  trigram_model() {
    std::array<std::array<std::array<std::uint32_t, kAlpha>, kAlpha>, kAlpha> counts{};
    int c1 = kBoundary;
    int c2 = kBoundary;
    for (const char* p = kSeedText; *p; ++p) {
      const int c3 = char_class(*p);
      counts[c1][c2][c3]++;
      c1 = c2;
      c2 = c3;
    }
    for (int a = 0; a < kAlpha; ++a) {
      for (int b = 0; b < kAlpha; ++b) {
        std::uint32_t acc = 0;
        for (int c = 0; c < kAlpha; ++c) {
          // Real counts dominate; light smoothing keeps every class
          // reachable, with extra weight on the boundary so words sampled
          // from unseen contexts terminate quickly (matching English-like
          // word lengths and the heavy key duplication PBBS's trigramSeq
          // exhibits).
          acc += 24 * counts[a][b][c] + (c == kBoundary ? 6 : 1);
          cum[a][b][c] = acc;
        }
      }
    }
  }

  // Samples the successor class of context (c1, c2) with random draw u.
  int sample(int c1, int c2, std::uint64_t u) const {
    const auto& row = cum[c1][c2];
    const std::uint32_t target = static_cast<std::uint32_t>(u % row[kAlpha - 1]);
    int lo = 0;
    while (row[lo] <= target) ++lo;
    return lo;
  }
};

const trigram_model& model() {
  static const trigram_model m;
  return m;
}

// Writes one sampled word (NUL-terminated) into out[0..kMaxWord]; returns
// its length (at least 1, at most kMaxWord).
std::size_t sample_word(const rng& r, char* out) {
  const trigram_model& m = model();
  int c1 = kBoundary;
  int c2 = kBoundary;
  std::size_t len = 0;
  std::uint64_t draw = 0;
  while (len < kMaxWord) {
    const int c3 = m.sample(c1, c2, r.ith_rand(draw++));
    if (c3 == kBoundary) {
      if (len == 0) continue;  // no empty words
      break;
    }
    out[len++] = static_cast<char>('a' + c3);
    c1 = c2;
    c2 = c3;
  }
  out[len] = '\0';
  return len;
}

}  // namespace

string_seq trigram_string_seq(std::size_t n, std::uint64_t seed) {
  const rng base(hash64(seed ^ 0x7419aaULL));
  constexpr std::size_t kStride = kMaxWord + 1;
  std::vector<char> scratch(n * kStride);
  std::vector<std::size_t> lens(n);
  parallel_for(0, n, [&](std::size_t i) {
    lens[i] = sample_word(base.fork(i), &scratch[i * kStride]) + 1;  // incl NUL
  });
  std::vector<std::size_t> offsets = lens;
  const std::size_t total = scan_add_inplace(offsets);
  string_seq out;
  out.arena.resize(total);
  out.keys.resize(n);
  parallel_for(0, n, [&](std::size_t i) {
    char* dst = &out.arena[offsets[i]];
    std::memcpy(dst, &scratch[i * kStride], lens[i]);
    out.keys[i] = dst;
  });
  return out;
}

string_pair_seq trigram_pair_seq(std::size_t n, std::uint64_t seed) {
  string_seq words = trigram_string_seq(n, seed);
  const rng rv(hash64(seed ^ 0xbeefULL));
  string_pair_seq out;
  out.arena = std::move(words.arena);
  out.records.resize(n);
  out.entries.resize(n);
  parallel_for(0, n, [&](std::size_t i) {
    out.records[i] = string_kv{words.keys[i], 1 + rv.ith_rand(i, n ? n : 1)};
    out.entries[i] = &out.records[i];
  });
  return out;
}

std::string trigram_text(std::size_t n, std::uint64_t seed) {
  // Sample words until the stream is long enough, then truncate. Word
  // generation is sequential in structure (each word follows the last) but
  // words are independent streams, so build in parallel chunks.
  const rng base(hash64(seed ^ 0x7e87ULL));
  const std::size_t approx_words = n / 5 + 2;
  string_seq words = trigram_string_seq(approx_words, hash64(seed ^ 0x7e87ULL));
  std::string text;
  text.reserve(n + kMaxWord + 1);
  std::size_t i = 0;
  while (text.size() < n) {
    if (i == words.keys.size()) {
      words = trigram_string_seq(approx_words, base.ith_rand(i));
      i = 0;
    }
    text += words.keys[i++];
    text += ' ';
  }
  text.resize(n);
  return text;
}

std::string protein_text(std::size_t n, std::uint64_t seed) {
  // Amino-acid alphabet with (approximate) natural frequencies, per mille.
  static constexpr char kAcids[20] = {'L', 'A', 'G', 'V', 'E', 'S', 'I', 'K', 'R', 'D',
                                      'T', 'P', 'N', 'Q', 'F', 'Y', 'M', 'H', 'C', 'W'};
  static constexpr int kFreq[20] = {99, 83, 71, 69, 62, 66, 59, 58, 55, 54,
                                    53, 47, 41, 39, 39, 29, 24, 23, 14, 11};
  std::array<std::uint32_t, 20> cum{};
  std::uint32_t acc = 0;
  for (int i = 0; i < 20; ++i) {
    acc += static_cast<std::uint32_t>(kFreq[i]);
    cum[static_cast<std::size_t>(i)] = acc;
  }
  const rng r(hash64(seed ^ 0x9047e14ULL));
  std::string text(n, 'A');
  parallel_for(0, n, [&](std::size_t i) {
    const std::uint32_t t = static_cast<std::uint32_t>(r.ith_rand(i) % acc);
    int lo = 0;
    while (cum[static_cast<std::size_t>(lo)] <= t) ++lo;
    text[i] = kAcids[lo];
  });
  return text;
}

}  // namespace phch::workloads
