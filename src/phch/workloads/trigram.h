// trigramSeq / trigramSeq-pairInt: string-key workloads generated from
// trigram probabilities of English text, as in PBBS.
//
// Substitution note (see DESIGN.md §3): PBBS ships a trigram-probability
// data file; we instead embed a few kilobytes of public-domain English
// prose, build the trigram model from it at first use, and sample words
// from the model. The resulting key distribution has the property the
// paper relies on: a heavy-tailed set of strings with *many duplicate
// keys*, exercising contention and combining paths.
//
// The generator also produces whole synthetic *texts* (English-like and
// protein-like) for the suffix-tree experiments.
//
// Strings are arena-allocated: a workload owns one big character buffer and
// the tables store `const char*` into it, mirroring the paper's
// pointer-stored string keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "phch/core/entry_traits.h"

namespace phch::workloads {

// A set of n C-strings sampled from the trigram model (with duplicates).
// The `arena` owns the character data; `keys[i]` points into it.
struct string_seq {
  std::vector<char> arena;
  std::vector<const char*> keys;
};

// A set of n (string key, integer value) records, stored by pointer as in
// the paper's trigramSeq-pairInt (extra level of indirection).
struct string_pair_seq {
  std::vector<char> arena;
  std::vector<string_kv> records;
  std::vector<const string_kv*> entries;
};

// n word-strings from trigram probabilities of English.
string_seq trigram_string_seq(std::size_t n, std::uint64_t seed = 0);

// n (word, value) records, values uniform in [1, n].
string_pair_seq trigram_pair_seq(std::size_t n, std::uint64_t seed = 0);

// A length-n English-like character stream (words joined by spaces) for the
// suffix-tree experiments (stands in for etext99/rctail96).
std::string trigram_text(std::size_t n, std::uint64_t seed = 0);

// A length-n protein-like sequence over the 20 amino-acid letters with
// skewed frequencies (stands in for sprot34.dat).
std::string protein_text(std::size_t n, std::uint64_t seed = 0);

}  // namespace phch::workloads
