// phch_lint: table-header
// Known-good fixture: a minimal "table" that satisfies every phch_lint
// policy — annotated public operations, phase scopes, explicitly ordered
// atomics covered by the fixture contract, no vendor intrinsics.
#pragma once

#include <atomic>
#include <cstddef>

struct fixture_phase {
  struct scope {
    scope(int&, int) {}
  };
};

class good_table {
 public:
  void insert(int v) PHCH_REQUIRES_PHASE(insert) {
    typename fixture_phase::scope guard(phase_, 0);
    last_.store(v, std::memory_order_release);
  }

  int find(int) const PHCH_REQUIRES_PHASE(query) {
    typename fixture_phase::scope guard(phase_, 2);
    return last_.load(std::memory_order_acquire);
  }

  bool contains(int k) const PHCH_REQUIRES_PHASE(query) {
    return find(k) != 0;  // delegation counts as a scope
  }

 private:
  mutable int phase_ = 0;
  std::atomic<int> last_{0};
};
