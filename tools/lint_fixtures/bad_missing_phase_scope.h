// phch_lint: table-header
// Known-bad fixture: `erase` carries the annotation but opens no phase or
// batch scope — phch_lint must report phase-scope-missing. `insert` lacks
// the annotation entirely — phase-annotation-missing.
#pragma once

class bad_missing_phase_scope {
 public:
  void insert(int v) { stash = v; }

  void erase(int) PHCH_REQUIRES_PHASE(erase) { stash = 0; }

 private:
  int stash = 0;
};
