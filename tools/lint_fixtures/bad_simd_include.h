// Known-bad fixture: pulls a vendor intrinsic header outside the two
// dedicated homes (core/simd_scan.h, utils/arch.h) — phch_lint must report
// simd-include even though the include is guarded.
#pragma once

#if defined(__AVX2__)
#include <immintrin.h>
#endif
