// Known-bad fixture: a header without #pragma once — phch_lint must report
// pragma-once-missing.

inline int fixture_answer() { return 42; }
